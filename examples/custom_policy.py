#!/usr/bin/env python3
"""Write your own tiering policy against the public substrate.

Implements ``FrequencyLruPolicy`` — a deliberately simple hybrid (LRU
demotion + frequency promotion, per-workload partitions but no credits,
no bias, no QoS) — registers it alongside the built-ins, and races it
against Memtis and Vulcan on the paper mix.

The point: a policy only needs three methods (`_make_profiler`,
`_uses_shadowing`, `_plan_and_migrate`) and gets the whole machine —
structural page tables, calibrated migration engine, workloads, metrics
— for free.

Run:  python examples/custom_policy.py
"""

from __future__ import annotations

import numpy as np

from repro.harness import ColocationExperiment
from repro.metrics.fairness import cfi
from repro.metrics.reporting import render_table
from repro.mm import pte as pte_mod
from repro.mm.migration import MigrationRequest, OptimizationFlags
from repro.policies import POLICY_REGISTRY
from repro.policies.base import TieringPolicy
from repro.profiling.base import Profiler
from repro.profiling.pebs import PebsProfiler
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import paper_colocation_mix


class FrequencyLruPolicy(TieringPolicy):
    """Even per-workload partitions; promote by sampled frequency,
    demote by recency — the 'obvious' design, for contrast."""

    name = "freqlru"
    replication_enabled = False
    engine_flags = OptimizationFlags(opt_prep=False, opt_tlb=False)

    def __init__(self, *args, budget: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.budget = budget

    def _make_profiler(self, pid: int) -> Profiler:
        return PebsProfiler(period=64, rng=np.random.default_rng(self.rng.integers(2**63)))

    def _plan_and_migrate(self) -> None:
        if not self.workloads:
            return
        share = self.allocator.tiers[0].total // len(self.workloads)
        for pid, rt in self.workloads.items():
            heat = rt.profiler.hotness(pid)
            fast, slow = [], []
            for vpn, value in rt.space.process.repl.process_table.iter_ptes():
                pfn = pte_mod.pte_pfn(value)
                entry = (heat.get(vpn, 0.0), self.allocator.page(pfn).last_access_cycle, vpn)
                (fast if self.allocator.tier_of_pfn(pfn) == 0 else slow).append(entry)
            requests = []
            # Demote beyond the share, least-recently-used first.
            overflow = len(fast) - share
            if overflow > 0:
                fast.sort(key=lambda e: (e[1], e[0]))  # oldest, coldest first
                requests += [
                    MigrationRequest(pid=pid, vpn=vpn, dest_tier=1, sync=True)
                    for _, _, vpn in fast[:overflow]
                ]
            # Promote the hottest slow pages into the remaining room.
            room = min(share - len(fast) + max(overflow, 0), self.budget)
            if room > 0:
                slow.sort(key=lambda e: -e[0])
                requests += [
                    MigrationRequest(pid=pid, vpn=vpn, dest_tier=0, sync=True)
                    for h, _, vpn in slow[:room]
                    if h > 0
                ]
            if requests:
                rt.engine.migrate_batch(requests)


def main() -> None:
    POLICY_REGISTRY["freqlru"] = FrequencyLruPolicy  # plug it in

    sim = SimulationConfig(epoch_seconds=2.0)
    rows = []
    for policy in ("freqlru", "memtis", "vulcan"):
        print(f"running '{policy}' ...")
        exp = ColocationExperiment(
            policy, paper_colocation_mix(sim, accesses_per_thread=5000), sim=sim, seed=1
        )
        res = exp.run(70)  # covers Liblinear's t=110 s arrival (epoch 55)
        window = 10
        alloc = {pid: np.asarray(ts.fast_pages[-window:], float) for pid, ts in res.workloads.items()}
        fthr = {pid: np.asarray(ts.fthr_true[-window:], float) for pid, ts in res.workloads.items()}
        row = [policy]
        for name in ("memcached", "pagerank", "liblinear"):
            row.append(float(np.mean(res.by_name(name).ops[-window:])))
        row.append(cfi(alloc, fthr))
        rows.append(row)

    print()
    print(render_table(
        ["policy", "memcached_ops", "pagerank_ops", "liblinear_ops", "CFI"],
        rows,
        title="your policy vs the built-ins (paper mix, steady state)",
        float_fmt="{:.3g}",
    ))


if __name__ == "__main__":
    main()
