#!/usr/bin/env python3
"""The Colloid extension (§3.6): when is migration pointless?

Under heavy bandwidth contention the fast tier's *loaded* latency can
approach the slow tier's — at which point promoting more hot pages just
moves the queue.  The paper proposes integrating Colloid's
latency-balancing so Vulcan suspends migration in that regime.

This script sweeps the loaded-latency ratio through the balancer and
shows the hysteresis band, then runs a bandwidth-saturating co-location
with `VulcanPolicy(colloid=True)` and reports how many epochs migration
was suspended.

Run:  python examples/colloid_contention.py
"""

from __future__ import annotations

import numpy as np

from repro.core.colloid import LatencyBalancer
from repro.harness import ColocationExperiment
from repro.metrics.reporting import render_table
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import paper_colocation_mix


def sweep_balancer() -> None:
    b = LatencyBalancer(suspend_margin=0.10, resume_margin=0.25)
    fast = 300.0
    rows = []
    # Advantage collapses, dithers inside the band, then recovers.
    for ratio in (2.0, 1.5, 1.08, 1.15, 1.20, 1.08, 1.30, 1.40, 1.05, 1.35):
        proceed = b.update(fast, fast * ratio)
        rows.append([f"{ratio:.2f}", "migrate" if proceed else "SUSPENDED"])
    print(render_table(
        ["slow/fast loaded ratio", "decision"],
        rows,
        title="latency-balancer hysteresis (suspend <1.10, resume >1.25)",
    ))
    print(f"suspensions: {b.suspensions}, resumes: {b.resumes}\n")


def run_contended() -> None:
    sim = SimulationConfig(epoch_seconds=2.0)
    # Crank intensity so tier bandwidth runs hot.
    workloads = paper_colocation_mix(sim, accesses_per_thread=20_000)
    exp = ColocationExperiment(
        "vulcan", workloads, sim=sim, seed=1, policy_kwargs={"colloid": True}
    )
    print("running a bandwidth-heavy co-location with colloid=True ...")
    res = exp.run(40)
    balancer = exp.policy.balancer
    rows = []
    for ts in res.workloads.values():
        rows.append([
            ts.name,
            ts.fast_pages[-1],
            float(np.mean(ts.fthr_true[-8:])),
            float(np.mean(ts.ops[-8:])),
        ])
    print(render_table(
        ["workload", "fast_pages", "FTHR", "ops/epoch"],
        rows,
        title="steady state with latency balancing",
        float_fmt="{:.3g}",
    ))
    print(f"\nbalancer: {balancer.suspensions} suspensions, {balancer.resumes} resumes; "
          f"final advantage ratio {balancer.last_advantage_ratio:.2f}")


if __name__ == "__main__":
    sweep_balancer()
    run_contended()
