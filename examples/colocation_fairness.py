#!/usr/bin/env python3
"""Reproduce the cold-page dilemma, then watch Vulcan fix it.

Scenario (paper Fig. 1 / Fig. 10 condensed): Memcached, a latency-
critical KV store, co-located with Liblinear, a best-effort ML trainer
whose streaming scans monopolize absolute-count profilers.

The script runs the pair under every registered policy and reports, for
each: Memcached's hot-page ratio, its performance normalized to a solo
run, and the pairwise fairness index — the paper's two headline metrics.

Run:  python examples/colocation_fairness.py [--epochs 25]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.classify import ServiceClass
from repro.harness import ColocationExperiment
from repro.metrics.fairness import cfi
from repro.metrics.reporting import render_table
from repro.sim.config import SimulationConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.mixes import PAPER_RSS_BYTES, dilemma_pair

POLICIES = ("none", "uniform", "tpp", "memtis", "nomad", "vulcan")


def solo_memcached_baseline(sim: SimulationConfig, epochs: int, seed: int) -> float:
    spec = WorkloadSpec(
        name="memcached",
        service=ServiceClass.LC,
        rss_pages=sim.pages_for(PAPER_RSS_BYTES["memcached"]),
        accesses_per_thread=5000,
    )
    exp = ColocationExperiment("memtis", [MemcachedWorkload(spec, seed=0)], sim=sim, seed=seed)
    res = exp.run(epochs)
    return res.by_name("memcached").mean_ops(epochs // 2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    sim = SimulationConfig()
    print("measuring the standalone Memcached baseline ...")
    solo_ops = solo_memcached_baseline(sim, args.epochs, args.seed)

    rows = []
    for policy in POLICIES:
        print(f"co-locating under '{policy}' ...")
        pair = dilemma_pair(sim, accesses_per_thread=5000)
        exp = ColocationExperiment(policy, pair, sim=sim, seed=args.seed)
        res = exp.run(args.epochs)
        mc = res.by_name("memcached")
        window = 8
        alloc = {pid: np.asarray(ts.fast_pages[-window:], float) for pid, ts in res.workloads.items()}
        fthr = {pid: np.asarray(ts.fthr_true[-window:], float) for pid, ts in res.workloads.items()}
        rows.append([
            policy,
            float(np.mean(mc.hot_ratio[-window:])),
            mc.mean_ops(args.epochs // 2) / solo_ops,
            cfi(alloc, fthr),
        ])

    print()
    print(render_table(
        ["policy", "mc_hot_ratio", "mc_perf_vs_solo", "pair_CFI"],
        rows,
        title="Memcached (LC) + Liblinear (BE): who gets left behind?",
    ))
    print("\npaper anchors: under Memtis-style tiering, Memcached's normalized")
    print("performance drops to ≈0.8×; Vulcan restores it while posting the best CFI.")


if __name__ == "__main__":
    main()
