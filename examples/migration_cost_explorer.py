#!/usr/bin/env python3
"""Explore the calibrated migration cost model interactively.

Prints the paper's three migration-cost stories from the same model the
simulator charges:

1. Fig. 2 — single-page migration breakdown vs CPU count (preparation
   dominates at scale);
2. Fig. 3 — TLB coherence vs copy share in batched migration;
3. Fig. 7 — what Vulcan's two mechanism optimizations buy.

Run:  python examples/migration_cost_explorer.py [--cpus 2 4 8 16 32]
"""

from __future__ import annotations

import argparse

from repro.metrics.reporting import render_series, render_table
from repro.mm.migration_costs import MigrationCostModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", type=int, nargs="+", default=[2, 4, 8, 16, 32])
    parser.add_argument("--pages", type=int, nargs="+", default=[2, 8, 32, 128, 512])
    parser.add_argument("--threads", type=int, default=32)
    args = parser.parse_args()

    model = MigrationCostModel()

    rows = []
    for c in args.cpus:
        b = model.single_page_breakdown(c)
        rows.append(
            [c, b.prep, b.unmap, b.shootdown, b.copy, b.remap, b.total, f"{b.prep_share:.1%}"]
        )
    print(render_table(
        ["cpus", "prep", "unmap", "shootdown", "copy", "remap", "total", "prep%"],
        rows,
        title="Fig 2 — one 4 KiB page migration, cycles by phase",
        float_fmt="{:.0f}",
    ))

    rows = []
    for p in args.pages:
        s = model.batch_shares(p, args.threads)
        rows.append([p, s["tlb"], s["copy"], s["fixed"]])
    print()
    print(render_table(
        ["pages", "tlb_share", "copy_share", "fixed_share"],
        rows,
        title=f"Fig 3 — batched migration phase shares at {args.threads} threads",
    ))

    speedups = []
    for p in args.pages:
        base = model.batch_total_cycles(p, args.threads, max(args.cpus))
        both = model.batch_total_cycles(
            p, args.threads, max(args.cpus), opt_prep=True, opt_tlb_target_cpus=1
        )
        speedups.append(base / both)
    print()
    print(render_series(
        "Fig 7 — speedup of scoped-drain + scoped-shootdown vs batch size",
        args.pages, speedups, y_fmt="{:.2f}x",
    ))

    print("\nanchors: 50K→750K cycles and 38.3%→76.9% prep share across 2→32 CPUs;")
    print("TLB ops peak at 65% of migration time; 4.06× speedup for 2-page batches.")


if __name__ == "__main__":
    main()
