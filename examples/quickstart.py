#!/usr/bin/env python3
"""Quickstart: run Vulcan on the paper's three-application co-location.

Builds the paper's machine (32 cores, 32 GB fast / 256 GB CXL-like slow
at the DESIGN.md scale), admits Memcached (LC) at t=0, PageRank (BE) at
t=50 s and Liblinear (BE) at t=110 s, and prints each workload's
steady-state placement, hit ratio and throughput.

Run:  python examples/quickstart.py [--policy vulcan] [--epochs 60]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.harness import ColocationExperiment
from repro.metrics.fairness import cfi
from repro.metrics.reporting import render_table
from repro.policies import POLICY_REGISTRY
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import paper_colocation_mix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="vulcan", choices=sorted(POLICY_REGISTRY))
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    sim = SimulationConfig(epoch_seconds=2.0)
    workloads = paper_colocation_mix(sim, accesses_per_thread=5000)
    experiment = ColocationExperiment(args.policy, workloads, sim=sim, seed=args.seed)

    print(f"running {args.epochs} epochs of '{args.policy}' on the paper mix ...")
    result = experiment.run(args.epochs)

    rows = []
    window = 10
    for ts in result.workloads.values():
        rows.append([
            ts.name,
            ts.rss_pages[-1],
            ts.fast_pages[-1],
            float(np.mean(ts.fthr_true[-window:])),
            float(np.mean(ts.hot_ratio[-window:])),
            float(np.mean(ts.ops[-window:])),
        ])
    print(render_table(
        ["workload", "rss_pages", "fast_pages", "FTHR", "hot_ratio", "ops/epoch"],
        rows,
        title=f"\nsteady state under '{args.policy}' (last {window} epochs)",
        float_fmt="{:.3g}",
    ))

    alloc = {pid: np.asarray(ts.fast_pages[-window:], float) for pid, ts in result.workloads.items()}
    fthr = {pid: np.asarray(ts.fthr_true[-window:], float) for pid, ts in result.workloads.items()}
    print(f"\nFTHR-weighted fairness (CFI, Eq. 4): {cfi(alloc, fthr):.3f}")
    print("try:  --policy memtis   to watch the cold-page dilemma instead")


if __name__ == "__main__":
    main()
