"""Job execution: a normalized :class:`JobSpec` → a plain-data result.

Every runner calls the *same* recipe the CLI command calls
(``harness.recipes`` / ``scenario.run_scenario``), which is what makes
the determinism contract hold: a job's metrics are bit-identical to
the equivalent ``repro run`` / ``repro sweep`` / ``repro scenario``
invocation.  Results are returned strict-JSON-safe (non-finite floats
marker-encoded) so they can land in the shared result cache and cross
the HTTP boundary unchanged.

Runners execute inside a forked worker child (see ``scheduler``), so
they must not touch the queue, the journal, or any server state.
"""

from __future__ import annotations

import functools

from repro.harness.jsonsafe import encode_nonfinite
from repro.service.jobs import JobSpec


class JobExecutionError(RuntimeError):
    """A job ran but could not produce a complete result."""


def run_job(spec: JobSpec, *, cell_cache_dir: str | None = None) -> dict:
    """Execute one normalized spec and return its result payload."""
    spec = spec.normalized()
    runner = _RUNNERS[spec.kind]
    return encode_nonfinite(runner(spec.payload, cell_cache_dir))


def _run_run(payload: dict, cell_cache_dir: str | None) -> dict:
    from repro.harness.recipes import run_summary_json, standard_run

    res = standard_run(
        payload["policy"], payload["mix"], payload["epochs"],
        payload["accesses"], payload["seed"],
    )
    out = run_summary_json(res, mix=payload["mix"], seed=payload["seed"])
    # the full serialized result rides along so clients can reconstruct
    # an ExperimentResult (and the dedup test can compare bit-for-bit)
    out["result"] = res.to_dict()
    out["kind"] = "run"
    return out


def _run_sweep(payload: dict, cell_cache_dir: str | None) -> dict:
    from repro.harness.recipes import sweep_cell, sweep_cfi, sweep_mean_ops
    from repro.harness.sweeps import Sweep

    factory = functools.partial(
        sweep_cell,
        policy=payload["policy"], mix=payload["mix"],
        epochs=payload["epochs"], accesses=payload["accesses"],
    )
    sweep = Sweep(metrics={"mean_ops": sweep_mean_ops, "cfi": sweep_cfi})
    cells = sweep.run(
        factory,
        grid={"fast_gb": payload["fast_gb"]},
        seeds=payload["seeds"],
        workers=payload["workers"],
        cache_dir=cell_cache_dir,
        derived_seeds=payload["derived_seeds"],
        cache_extra={
            "policy": payload["policy"], "mix": payload["mix"],
            "epochs": payload["epochs"], "accesses": payload["accesses"],
        },
    )
    if sweep.errors:
        first = sweep.errors[0]
        raise JobExecutionError(
            f"{len(sweep.errors)} sweep cell(s) failed; first: "
            f"{dict(first.params)} seed={first.seed} [{first.kind}] {first.message}"
        )
    return {
        "kind": "sweep",
        "policy": payload["policy"],
        "mix": payload["mix"],
        "epochs": payload["epochs"],
        "seeds": payload["seeds"],
        "cells": [
            {
                "params": dict(c.params),
                "metrics": {m: {"mean": v[0], "ci95": v[1]} for m, v in c.metrics.items()},
            }
            for c in cells
        ],
    }


def _run_scenario(payload: dict, cell_cache_dir: str | None) -> dict:
    from repro.harness.recipes import scenario_summary_json
    from repro.scenario import ScenarioSpec, run_scenario

    if payload["name"] is not None:
        spec_or_name = payload["name"]
    else:
        spec_or_name = ScenarioSpec.from_dict(payload["spec"])
    sres = run_scenario(
        spec_or_name,
        seed=payload["seed"],
        policy=payload["policy"],
        epochs=payload["epochs"],
    )
    out = scenario_summary_json(sres, window=payload["window"])
    out["kind"] = "scenario"
    return out


def _run_fleet(payload: dict, cell_cache_dir: str | None) -> dict:
    from repro.harness.recipes import fleet_run, fleet_summary_json

    result = fleet_run(
        name=payload["name"],
        spec=payload["spec"],
        policy=payload["policy"],
        placer=payload["placer"],
        seed=payload["seed"],
        workers=payload["workers"],
    )
    out = fleet_summary_json(result)
    out["kind"] = "fleet"
    return out


_RUNNERS = {"run": _run_run, "sweep": _run_sweep, "scenario": _run_scenario,
            "fleet": _run_fleet}
