"""Synthetic load generator + ``repro bench --service``.

Hammers a live service with a mixed run/sweep/scenario workload from
many concurrent clients, each an open-loop submit→poll→result cycle,
and reports the honest numbers: jobs/sec end to end, p50/p99
submit→result latency, and how much of the fleet's work was absorbed
by dedup and the result cache.

A deliberate fraction of submissions are *duplicates* of specs other
clients already posted — the realistic multi-tenant case (everyone
sweeps the default grid) and the path that exercises the dedup
contract under concurrency.

``run_service_bench`` boots a private service on an ephemeral port,
runs the generator, and emits the ``BENCH_service.json`` payload the
CI smoke job gates on (same shape contract as ``BENCH_baseline.json``:
a pinned ``service`` scenario block plus a ``timing`` block).
"""

from __future__ import annotations

import platform
import tempfile
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.service.client import ServiceClient, ServiceError

#: pinned load scenario: full variant sustains >= 50 concurrent clients
CLIENTS = 50
JOBS_PER_CLIENT = 2
QUICK_CLIENTS = 8
QUICK_JOBS_PER_CLIENT = 2
#: fraction of submissions that duplicate an earlier spec
DUPLICATE_FRACTION = 0.5
#: kind weights for the mixed workload (run-heavy, like a real fleet)
KIND_WEIGHTS = (("run", 0.6), ("sweep", 0.2), ("scenario", 0.2))

#: deliberately tiny payloads — the bench measures the control plane,
#: not the simulator (the simulator has its own BENCH files)
RUN_PAYLOAD = {"epochs": 3, "accesses": 300}
SWEEP_PAYLOAD = {"epochs": 2, "accesses": 200, "fast_gb": [8.0], "seeds": [1]}
SCENARIO_PAYLOAD = {"name": "churn"}


def _payload_for(kind: str, variant: int) -> dict:
    """A unique spec of the given kind (seed-varied), JSON-plain."""
    if kind == "run":
        return {**RUN_PAYLOAD, "seed": variant}
    if kind == "sweep":
        return {**SWEEP_PAYLOAD, "seeds": [variant]}
    return {**SCENARIO_PAYLOAD, "seed": variant}


@dataclass
class LoadResult:
    """Everything one load run measured."""

    clients: int
    jobs_per_client: int
    wall_seconds: float = 0.0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    deduped: int = 0
    cache_hits: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    by_kind: dict = field(default_factory=dict)

    @property
    def jobs_per_sec(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_ms(self, pct: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), pct))

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "jobs_per_client": self.jobs_per_client,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "deduped": self.deduped,
            "cache_hits": self.cache_hits,
            "by_kind": dict(self.by_kind),
            "errors": self.errors[:10],
        }


def run_load(
    base_url: str,
    *,
    clients: int = CLIENTS,
    jobs_per_client: int = JOBS_PER_CLIENT,
    duplicate_fraction: float = DUPLICATE_FRACTION,
    seed: int = 1,
    timeout: float = 600.0,
) -> LoadResult:
    """Drive the mixed workload against a live service."""
    result = LoadResult(clients=clients, jobs_per_client=jobs_per_client)
    lock = threading.Lock()
    #: specs already submitted by anyone, for duplicate draws
    submitted_pool: list[tuple[str, dict]] = []

    def client_body(cid: int) -> None:
        rng = np.random.default_rng(seed * 10_000 + cid)
        client = ServiceClient(base_url)
        kinds, weights = zip(*KIND_WEIGHTS)
        for j in range(jobs_per_client):
            dup = None
            with lock:
                if submitted_pool and rng.random() < duplicate_fraction:
                    dup = submitted_pool[int(rng.integers(len(submitted_pool)))]
            if dup is not None:
                kind, payload = dup
            else:
                kind = str(rng.choice(kinds, p=np.asarray(weights) / sum(weights)))
                payload = _payload_for(kind, int(rng.integers(1, 1_000_000)))
                with lock:
                    submitted_pool.append((kind, payload))
            t0 = time.perf_counter()
            try:
                sub = client.submit(kind, payload)
                final = client.wait(sub["job"]["job_id"], timeout=timeout)
                latency_ms = (time.perf_counter() - t0) * 1e3
            except ServiceError as exc:
                with lock:
                    result.submitted += 1
                    result.failed += 1
                    result.errors.append(str(exc))
                continue
            with lock:
                result.submitted += 1
                result.by_kind[kind] = result.by_kind.get(kind, 0) + 1
                if sub["deduped"]:
                    result.deduped += 1
                if final["state"] == "done":
                    result.completed += 1
                    result.latencies_ms.append(latency_ms)
                    if final.get("cached"):
                        result.cache_hits += 1
                else:
                    result.failed += 1
                    result.errors.append(f"job {final['job_id']}: {final['state']}")

    threads = [
        threading.Thread(target=client_body, args=(cid,), name=f"loadgen-{cid}")
        for cid in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    result.wall_seconds = time.perf_counter() - t0
    return result


def run_service_bench(
    *,
    quick: bool = False,
    clients: int | None = None,
    jobs_per_client: int | None = None,
    workers: int = 4,
    data_dir: str | None = None,
) -> dict:
    """Boot a private service, run the pinned load, emit the bench payload."""
    from repro.service.server import TieringService

    n_clients = clients if clients is not None else (QUICK_CLIENTS if quick else CLIENTS)
    n_jobs = jobs_per_client if jobs_per_client is not None else (
        QUICK_JOBS_PER_CLIENT if quick else JOBS_PER_CLIENT)
    tmp = None
    if data_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-service-bench-")
        data_dir = tmp.name
    try:
        with TieringService(data_dir, workers=workers) as service:
            load = run_load(
                service.url, clients=n_clients, jobs_per_client=n_jobs,
            )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return {
        # the pinned-scenario block check_regression matches on; like
        # BENCH_baseline.json's "scenario", it must describe *what* ran,
        # never how fast
        "service": {
            "clients": n_clients,
            "jobs_per_client": n_jobs,
            "workers": workers,
            "duplicate_fraction": DUPLICATE_FRACTION,
            "mix": dict(KIND_WEIGHTS),
            "quick": quick,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "timing": {
            "wall_seconds": round(load.wall_seconds, 3),
            "jobs_per_sec": round(load.jobs_per_sec, 3),
            "submit_to_result_p50_ms": round(load.latency_ms(50), 1),
            "submit_to_result_p99_ms": round(load.latency_ms(99), 1),
        },
        "jobs": load.to_dict(),
    }
