"""HTTP API for the control plane (stdlib ``http.server`` only).

Endpoints (all JSON; non-finite floats are ``{"__float__": ...}``
marker-encoded, see ``harness.jsonsafe``)::

    GET  /healthz                  liveness + queue counts
    POST /jobs                     submit a JobSpec  -> {job, deduped}
    GET  /jobs[?state=...]         list jobs
    GET  /jobs/<id>                one job's status record
    GET  /jobs/<id>/result         result payload (409 until DONE)
    POST /jobs/<id>/cancel         cancel pending/running work
    GET  /jobs/<id>/trace          the job's journal records, JSONL
    GET  /metrics                  obs-registry snapshot + queue/cache stats

Error contract: 400 for malformed/invalid submissions, 404 for unknown
ids or routes, 405 for wrong methods, 409 for illegal state operations
(result-before-done, cancel-after-terminal).  Every error body is
``{"error": ..., "message": ...}``.

The handler is deliberately thin: it parses, dispatches to the
:class:`TieringService` facade on the server object, and serializes.
Threading comes from ``ThreadingHTTPServer``; per-request state stays
on the stack so no locks live here.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import IllegalTransition, JobError, JobSpec, JobState

#: request bodies above this are rejected (a spec is small; a DoS-sized
#: body never reaches the JSON parser)
MAX_BODY_BYTES = 4 * 1024 * 1024


class ApiError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, error: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error = error
        self.message = message


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-tiering-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self):
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload, allow_nan=False).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_jsonl(self, status: int, lines: list[str]) -> None:
        body = ("\n".join(lines) + ("\n" if lines else "")).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "bad_request", "request body required")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "too_large", f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, "bad_json", f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ApiError(400, "bad_request", "request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            self._route(method, parts, query)
        except ApiError as exc:
            self._send_json(exc.status, {"error": exc.error, "message": exc.message})
        except JobError as exc:  # includes IllegalTransition via _route mapping
            self._send_json(400, {"error": "invalid_job", "message": str(exc)})
        except KeyError:
            self._send_json(404, {"error": "not_found", "message": "no such job"})
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001 — surface, don't kill the thread
            self._send_json(500, {"error": "internal", "message": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    # -- routes ------------------------------------------------------------

    def _route(self, method: str, parts: list[str], query: dict) -> None:
        if parts == ["healthz"]:
            self._require(method, "GET")
            self._send_json(200, {"ok": True, "jobs": self.service.queue.counts()})
        elif parts == ["metrics"]:
            self._require(method, "GET")
            self._send_json(200, self.service.metrics_snapshot())
        elif parts == ["jobs"]:
            if method == "POST":
                self._submit()
            else:
                self._list_jobs(query)
        elif len(parts) == 2 and parts[0] == "jobs":
            self._require(method, "GET")
            self._send_json(200, self.service.queue.get(parts[1]).to_dict())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._require(method, "GET")
            self._job_result(parts[1])
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            self._require(method, "POST")
            self._cancel(parts[1])
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            self._require(method, "GET")
            self.service.queue.get(parts[1])  # 404 for unknown ids
            self._send_jsonl(200, self.service.queue.journal_lines(parts[1]))
        else:
            raise ApiError(404, "not_found", f"no route for {'/'.join(parts) or '/'}")

    def _require(self, method: str, expected: str) -> None:
        if method != expected:
            raise ApiError(405, "method_not_allowed", f"use {expected}")

    def _submit(self) -> None:
        data = self._read_json_body()
        try:
            spec = JobSpec.from_dict(data)
        except JobError as exc:
            raise ApiError(400, "invalid_job", str(exc))
        job, deduped = self.service.queue.submit(spec)
        self._send_json(200 if deduped else 202, {"job": job.to_dict(), "deduped": deduped})

    def _list_jobs(self, query: dict) -> None:
        state = query.get("state")
        if state is not None:
            try:
                state = JobState(state)
            except ValueError:
                raise ApiError(400, "bad_state",
                               f"unknown state {state!r} (pick from "
                               f"{[s.value for s in JobState]})")
        jobs = self.service.queue.list(state)
        self._send_json(200, {"jobs": [j.to_dict() for j in jobs]})

    def _job_result(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if job.state is not JobState.DONE:
            detail = {"error": "not_done", "message": f"job is {job.state.value}",
                      "job": job.to_dict()}
            self._send_json(409, detail)
            return
        payload = self.service.scheduler.result_for(job)
        if payload is None:
            raise ApiError(410, "result_evicted",
                           "result is no longer in the cache; resubmit to recompute")
        self._send_json(200, {"job": job.to_dict(), "result": payload})

    def _cancel(self, job_id: str) -> None:
        try:
            job = self.service.queue.cancel(job_id)
        except IllegalTransition as exc:
            raise ApiError(409, "illegal_transition", str(exc))
        self._send_json(202, {"job": job.to_dict()})
