"""Worker-pool scheduler: pending jobs → fork-isolated execution.

Each worker thread claims one job at a time and runs it through the
existing :func:`harness.parallel.execute_tasks` machinery — one forked
child per job — inheriting the per-job timeout, crash recovery
(:class:`CellFailure`), and the new cooperative-cancellation hook.  A
job that raises becomes ``FAILED`` with a structured error; a child
that segfaults or is OOM-killed becomes ``FAILED`` with ``kind:
"crash"``; a cancel lands as ``CANCELLED``; a clean shutdown re-queues
in-flight jobs (``RUNNING → PENDING``) so a restarted server picks
them back up — never lost, never duplicated.

Results are content-addressed: the cache key is the normalized spec's
content hash, shared with the dedup job id, so a resubmission of
completed work — even across a server restart, even from a different
client — is served from :class:`ResultCache` without recomputation.
Sweep jobs additionally share the per-*cell* cache directory, so two
different sweeps overlapping in grid cells dedupe at cell granularity.
"""

from __future__ import annotations

import functools
import threading
from pathlib import Path

from repro.harness.cache import ResultCache, content_hash
from repro.harness.parallel import CellTask, execute_tasks
from repro.obs.metrics import get_registry
from repro.service.jobs import JOB_SPEC_VERSION, Job, JobSpec
from repro.service.queue import JobQueue

#: how long a worker blocks waiting for work before re-checking shutdown
_CLAIM_WAIT_SECONDS = 0.2


def _job_factory(spec_data: dict, cell_cache_dir: str | None, *, job_id: str, seed: int) -> dict:
    """Forked-child entry point: module-level so any start method works."""
    from repro.service.runners import run_job

    return run_job(JobSpec.from_dict(spec_data), cell_cache_dir=cell_cache_dir)


def job_result_key(spec: JobSpec) -> str:
    """The content-addressed result-cache key for one normalized spec."""
    norm = spec.normalized()
    return content_hash({
        "v": JOB_SPEC_VERSION,
        "service_job": {"kind": norm.kind, "payload": norm.payload},
    })


class Scheduler:
    """Bounded pool of worker threads draining a :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        data_dir: str | Path,
        *,
        workers: int = 2,
        job_timeout: float | None = None,
        use_cache: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.queue = queue
        self.data_dir = Path(data_dir)
        self.workers = workers
        self.job_timeout = job_timeout
        self.use_cache = use_cache
        self.results = ResultCache(self.data_dir / "results")
        self.cell_cache_dir = self.data_dir / "cells"
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        for i in range(self.workers):
            t = threading.Thread(target=self._worker_loop, name=f"job-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop workers; in-flight jobs are terminated and re-queued."""
        self._stop.set()
        for t in self._threads:
            t.join(timeout)
        self._threads = []

    @property
    def running(self) -> bool:
        return bool(self._threads)

    # -- result access -----------------------------------------------------

    def result_for(self, job: Job) -> dict | None:
        """The stored result payload for a DONE job (None if evicted)."""
        if job.result_key is None:
            return None
        return self.results.get(job.result_key)

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim_next(timeout=_CLAIM_WAIT_SECONDS)
            if job is None:
                continue
            try:
                self._execute(job)
            except Exception as exc:  # noqa: BLE001 — a worker must survive
                try:
                    self.queue.fail(job.job_id, {
                        "kind": "scheduler",
                        "error": type(exc).__name__,
                        "message": str(exc),
                    })
                except Exception:
                    pass

    def _execute(self, job: Job) -> None:
        registry = get_registry()
        key = job_result_key(job.spec)

        if self.use_cache:
            cached = self.results.get(key)
            if cached is not None:
                registry.counter("service_jobs_cache_hit").inc()
                self.queue.finish(job.job_id, result_key=key, cached=True)
                return

        task = CellTask(
            index=0, cell_index=0,
            params=(("job_id", job.job_id),),
            seed=0, cell_seed=0,
        )
        factory = functools.partial(
            _job_factory, job.spec.to_dict(), str(self.cell_cache_dir),
        )

        def should_cancel(_task: CellTask) -> bool:
            return self._stop.is_set() or self.queue.cancel_requested(job.job_id)

        outcomes = execute_tasks(
            [task], factory,
            workers=1,
            timeout=self.job_timeout,
            should_cancel=should_cancel,
        )
        outcome = outcomes[0]

        if outcome.ok:
            payload = outcome.result["data"]
            self.results.put(key, payload)
            registry.counter("service_jobs_computed", kind=job.spec.kind).inc()
            self.queue.finish(job.job_id, result_key=key, cached=False)
            return

        failure = outcome.failure
        if failure.kind == "cancelled":
            if self.queue.cancel_requested(job.job_id):
                self.queue.mark_cancelled(job.job_id)
            else:
                # shutdown, not a client cancel: hand the job back so a
                # restarted server finishes it — zero lost jobs
                self.queue.requeue(job.job_id)
            return
        self.queue.fail(job.job_id, {
            "kind": failure.kind,
            "error": failure.error,
            "message": failure.message,
        })
