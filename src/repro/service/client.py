"""Stdlib HTTP client for the tiering service.

Wraps the API contract (see :mod:`repro.service.api`) in typed-ish
methods; non-finite floats in result payloads are decoded back from
their ``{"__float__": ...}`` marker form, so a round trip through the
service is lossless.  ``urllib`` only — the client must work anywhere
the repo's tier-1 tests run.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.harness.jsonsafe import decode_nonfinite

#: default per-request timeout (seconds)
REQUEST_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """An API error response (or transport failure talking to one)."""

    def __init__(self, status: int, error: str, message: str) -> None:
        super().__init__(f"[{status}] {error}: {message}")
        self.status = status
        self.error = error
        self.message = message


class ServiceClient:
    """One service endpoint, many requests."""

    def __init__(self, base_url: str, *, timeout: float = REQUEST_TIMEOUT) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body, allow_nan=False).encode()
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (ValueError, OSError):
                payload = {}
            raise ServiceError(
                exc.code,
                payload.get("error", "http_error"),
                payload.get("message", str(exc)),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, "unreachable", f"{self.base_url}: {exc.reason}") from None

    # -- API surface -------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, kind: str, payload: dict | None = None) -> dict:
        """Submit a job; returns ``{"job": ..., "deduped": bool}``."""
        return self._request("POST", "/jobs", {"kind": kind, "payload": payload or {}})

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, state: str | None = None) -> list[dict]:
        suffix = f"?state={state}" if state else ""
        return self._request("GET", f"/jobs{suffix}")["jobs"]

    def result(self, job_id: str) -> dict:
        """The decoded result payload of a DONE job (409 otherwise)."""
        out = self._request("GET", f"/jobs/{job_id}/result")
        return decode_nonfinite(out["result"])

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def metrics(self) -> dict:
        return decode_nonfinite(self._request("GET", "/metrics"))

    def trace(self, job_id: str) -> list[dict]:
        """The job's journal records (submit + every state change)."""
        req = urllib.request.Request(f"{self.base_url}/jobs/{job_id}/trace")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                text = resp.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, "trace_error", str(exc)) from None
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    # -- conveniences ------------------------------------------------------

    def wait(self, job_id: str, *, timeout: float = 300.0, poll: float = 0.05) -> dict:
        """Block until the job reaches a terminal state; returns the job."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(0, "timeout", f"job {job_id} still {job['state']}")
            time.sleep(poll)

    def run_to_completion(self, kind: str, payload: dict | None = None,
                          *, timeout: float = 300.0) -> dict:
        """Submit, wait, and return the result payload (raises on failure)."""
        job = self.submit(kind, payload)["job"]
        final = self.wait(job["job_id"], timeout=timeout)
        if final["state"] != "done":
            raise ServiceError(0, f"job_{final['state']}",
                               f"job {job['job_id']}: {final.get('error')}")
        return self.result(job["job_id"])
