"""Persistent, journaled job queue.

Every mutation appends one JSONL record to ``journal.jsonl`` before the
in-memory state changes are visible to callers, so a killed server
loses at most the record being written (a truncated trailing line is
tolerated and dropped on replay).  Replay rebuilds the full job table;
jobs that were ``RUNNING`` when the process died are re-queued
(``RUNNING → PENDING`` is a legal recovery transition) — the
zero-lost-jobs half of the restart contract.  The zero-*duplicated*
half comes from the job id being the spec's content hash: a client
re-submitting after a crash lands on the same record instead of a
second copy, and completed work is served from the result cache.

Journal record kinds::

    {"event": "submit",  "t": ..., "job_id": ..., "spec": {...}}
    {"event": "state",   "t": ..., "job_id": ..., "from": ..., "to": ...,
     ["error": {...}] ["result_key": ...] ["cached": bool] ["recovered": bool]}
    {"event": "cancel_requested", "t": ..., "job_id": ...}

The queue is thread-safe; workers block on :meth:`claim_next`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs.metrics import get_registry
from repro.service.jobs import IllegalTransition, Job, JobSpec, JobState


class JobQueue:
    """Journal-backed job table + pending FIFO."""

    def __init__(self, journal_path: str | Path) -> None:
        self.journal_path = Path(journal_path)
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self.jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()
        #: jobs found RUNNING in the journal and re-queued at startup
        self.recovered: list[str] = []
        self._submit_seq: dict[str, int] = {}
        if self.journal_path.exists():
            self._replay()
        self._journal = self.journal_path.open("a")

    # -- journal -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        self._journal.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal.flush()

    def _replay(self) -> None:
        """Rebuild the job table from the journal (crash-tolerant)."""
        seq = 0
        with self.journal_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    # a truncated trailing line from a killed writer;
                    # everything before it already replayed
                    continue
                self._replay_one(rec, seq)
                seq += 1
        # Rebuild the pending FIFO in submission order, then re-queue
        # whatever died mid-flight behind it.
        pending = [j for j in self.jobs.values() if j.state is JobState.PENDING]
        pending.sort(key=lambda j: self._submit_seq.get(j.job_id, 0))
        self._pending = deque(j.job_id for j in pending)
        crashed = [j for j in self.jobs.values() if j.state is JobState.RUNNING]
        crashed.sort(key=lambda j: self._submit_seq.get(j.job_id, 0))
        for job in crashed:
            job.transition(JobState.PENDING)
            self._pending.append(job.job_id)
            self.recovered.append(job.job_id)

    def _replay_one(self, rec: dict, seq: int) -> None:
        kind = rec.get("event")
        jid = rec.get("job_id")
        if kind == "submit":
            spec = JobSpec.from_dict(rec["spec"])
            self.jobs[jid] = Job(job_id=jid, spec=spec, submitted_at=rec.get("t", 0.0))
            self._submit_seq[jid] = seq
        elif kind == "state" and jid in self.jobs:
            job = self.jobs[jid]
            # The journal is the authority; force-apply rather than
            # re-litigate legality (it was checked when written).
            job.state = JobState(rec["to"])
            if job.state is JobState.RUNNING:
                job.started_at = rec.get("t")
                job.attempts += 1
            elif job.state.terminal:
                job.finished_at = rec.get("t")
            elif job.state is JobState.PENDING:
                job.started_at = job.finished_at = None
                job.error = None
                job.cancel_requested = False
            job.error = rec.get("error", job.error)
            job.result_key = rec.get("result_key", job.result_key)
            job.cached = rec.get("cached", job.cached)
        elif kind == "cancel_requested" and jid in self.jobs:
            self.jobs[jid].cancel_requested = True

    def _record_transition(self, job: Job, to: JobState, **extra) -> None:
        frm = job.state
        job.transition(to)
        rec = {"event": "state", "t": time.time(), "job_id": job.job_id,
               "from": frm.value, "to": to.value}
        rec.update(extra)
        for k, v in extra.items():
            if hasattr(job, k):
                setattr(job, k, v)
        self._append(rec)
        get_registry().counter("service_job_transitions", to=to.value).inc()
        self._update_gauges()

    def _update_gauges(self) -> None:
        registry = get_registry()
        registry.gauge("service_jobs_pending").set(len(self._pending))
        registry.gauge("service_jobs_running").set(
            sum(1 for j in self.jobs.values() if j.state is JobState.RUNNING))

    # -- write side --------------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Register a spec; returns ``(job, deduped)``.

        An identical spec already PENDING/RUNNING/DONE is returned
        as-is (``deduped=True``): the two clients share one job.  A
        FAILED or CANCELLED record is re-queued for another attempt.
        """
        spec = spec.normalized()
        jid = spec.job_id()
        with self._cond:
            existing = self.jobs.get(jid)
            if existing is not None:
                if existing.state in (JobState.PENDING, JobState.RUNNING, JobState.DONE):
                    get_registry().counter("service_jobs_deduped").inc()
                    return existing, True
                self._record_transition(existing, JobState.PENDING)
                self._pending.append(jid)
                self._cond.notify()
                return existing, False
            job = Job(job_id=jid, spec=spec, submitted_at=time.time())
            self.jobs[jid] = job
            self._submit_seq[jid] = len(self._submit_seq)
            self._append({"event": "submit", "t": job.submitted_at,
                          "job_id": jid, "spec": spec.to_dict()})
            self._pending.append(jid)
            get_registry().counter("service_jobs_submitted", kind=spec.kind).inc()
            self._update_gauges()
            self._cond.notify()
            return job, False

    def claim_next(self, timeout: float | None = None) -> Job | None:
        """Pop the oldest pending job and mark it RUNNING (blocking)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._pending:
                    jid = self._pending.popleft()
                    job = self.jobs[jid]
                    if job.state is not JobState.PENDING:
                        continue  # cancelled while queued
                    self._record_transition(job, JobState.RUNNING)
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def finish(self, job_id: str, *, result_key: str, cached: bool) -> Job:
        with self._cond:
            job = self.jobs[job_id]
            self._record_transition(job, JobState.DONE, result_key=result_key, cached=cached)
            return job

    def fail(self, job_id: str, error: dict) -> Job:
        with self._cond:
            job = self.jobs[job_id]
            self._record_transition(job, JobState.FAILED, error=error)
            return job

    def mark_cancelled(self, job_id: str) -> Job:
        """Terminal cancellation of a RUNNING job (scheduler-side)."""
        with self._cond:
            job = self.jobs[job_id]
            self._record_transition(job, JobState.CANCELLED)
            return job

    def requeue(self, job_id: str) -> Job:
        """RUNNING → PENDING (clean-shutdown recovery, not a cancel)."""
        with self._cond:
            job = self.jobs[job_id]
            self._record_transition(job, JobState.PENDING, recovered=True)
            self._pending.append(job_id)
            self._cond.notify()
            return job

    def cancel(self, job_id: str) -> Job:
        """Client-requested cancel.

        A PENDING job is cancelled immediately; a RUNNING job gets its
        flag set and the scheduler terminates it at the next poll; a
        terminal job raises :class:`IllegalTransition`.
        """
        with self._cond:
            job = self.jobs[job_id]
            if job.state is JobState.PENDING:
                self._record_transition(job, JobState.CANCELLED)
            elif job.state is JobState.RUNNING:
                job.cancel_requested = True
                self._append({"event": "cancel_requested", "t": time.time(), "job_id": job_id})
            else:
                raise IllegalTransition(
                    f"job {job_id} is already {job.state.value}; nothing to cancel"
                )
            return job

    # -- read side ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self.jobs[job_id]

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            job = self.jobs.get(job_id)
            return job is not None and job.cancel_requested

    def list(self, state: JobState | str | None = None) -> list[Job]:
        with self._lock:
            jobs = sorted(self.jobs.values(), key=lambda j: self._submit_seq.get(j.job_id, 0))
            if state is None:
                return jobs
            state = JobState(state)
            return [j for j in jobs if j.state is state]

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {s.value: 0 for s in JobState}
            for job in self.jobs.values():
                out[job.state.value] += 1
            out["total"] = len(self.jobs)
            return out

    def journal_lines(self, job_id: str | None = None) -> list[str]:
        """Raw journal records (optionally one job's), for the trace API."""
        with self._lock:
            self._journal.flush()
            lines = []
            with self.journal_path.open() as fh:
                for line in fh:
                    line = line.rstrip("\n")
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if job_id is not None and rec.get("job_id") != job_id:
                        continue
                    lines.append(line)
            return lines

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            self._journal.flush()
            self._journal.close()
