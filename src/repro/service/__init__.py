"""Tiering-as-a-service control plane.

Turns the repo from a CLI into a multi-client experiment service: a
typed, content-hashed job model (:mod:`jobs`), a JSONL-journaled
persistent queue (:mod:`queue`), a worker-pool scheduler feeding the
existing fork-isolated executor and result cache (:mod:`scheduler`,
:mod:`runners`), a stdlib-only threaded HTTP API (:mod:`api`,
:mod:`server`), a client (:mod:`client`) and a load generator
(:mod:`loadgen`).

The headline correctness claim is *dedup*: two clients submitting the
same spec share one job (same content-hashed id), and a re-submission
of completed work is served from the content-addressed result cache
without recomputation — while every job's metrics stay bit-identical
to the same spec run through the CLI.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    VALID_JOB_KINDS,
    IllegalTransition,
    Job,
    JobError,
    JobSpec,
    JobState,
)
from repro.service.queue import JobQueue
from repro.service.runners import run_job
from repro.service.scheduler import Scheduler
from repro.service.server import TieringService

__all__ = [
    "IllegalTransition",
    "Job",
    "JobError",
    "JobQueue",
    "JobSpec",
    "JobState",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "TieringService",
    "VALID_JOB_KINDS",
    "run_job",
]
