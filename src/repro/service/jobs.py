"""Typed job model for the control plane.

A :class:`JobSpec` is the unit of submission: a kind (``run`` /
``sweep`` / ``scenario``) plus a kind-specific payload.  Specs are
validated and *normalized* up front — defaults filled in, lists
coerced — so that two submissions meaning the same work produce the
same canonical form, and therefore the same content hash.  The hash
**is** the job id: dedup is structural, not cooperative.

A :class:`Job` is the queue's runtime record of one spec: a
:class:`JobState` machine (``PENDING → RUNNING → DONE/FAILED``, with
``CANCELLED`` reachable from the live states and ``PENDING`` reachable
again from every non-``DONE`` state for retry/recovery), wall-clock
timestamps for the service observability story, and bookkeeping for
where the result landed.  The *result* itself is always produced on
the deterministic simulated clock — wall time never leaks into
payloads.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.harness.cache import content_hash

VALID_JOB_KINDS = ("run", "sweep", "scenario", "fleet")

#: schema version folded into every job id; bump on payload layout changes
JOB_SPEC_VERSION = 1

#: kind → (payload defaults).  Values chosen light enough for a service
#: default (a submit with an empty payload completes in ~1s).
RUN_DEFAULTS: dict = {
    "policy": "vulcan", "mix": "paper", "epochs": 12, "accesses": 2000, "seed": 1,
}
SWEEP_DEFAULTS: dict = {
    "policy": "vulcan", "mix": "dilemma", "epochs": 8, "accesses": 1000,
    "fast_gb": [8.0, 16.0], "seeds": [1, 2], "workers": 1, "derived_seeds": False,
}
SCENARIO_DEFAULTS: dict = {
    "name": None, "spec": None, "policy": None, "seed": None, "epochs": None,
    "window": 10,
}
FLEET_DEFAULTS: dict = {
    "name": None, "spec": None, "policy": None, "placer": None, "seed": None,
    "workers": 1,
}

#: hard cap on nested sweep parallelism inside one job (the scheduler
#: already runs jobs concurrently; unbounded nesting would fork-bomb)
MAX_SWEEP_WORKERS = 4


class JobError(ValueError):
    """A job spec failed validation (HTTP 400 at the API boundary)."""


class IllegalTransition(JobError):
    """A state change the :class:`JobState` machine forbids (HTTP 409)."""


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: the full legal-transition relation.  ``FAILED/CANCELLED → PENDING``
#: is resubmission; ``RUNNING → PENDING`` is crash/shutdown recovery
#: (the journal replay re-queues work the dying server never finished).
LEGAL_TRANSITIONS: dict[JobState, tuple[JobState, ...]] = {
    JobState.PENDING: (JobState.RUNNING, JobState.CANCELLED),
    JobState.RUNNING: (JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.PENDING),
    JobState.DONE: (),
    JobState.FAILED: (JobState.PENDING,),
    JobState.CANCELLED: (JobState.PENDING,),
}


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise JobError(msg)


def _known_policies() -> tuple[str, ...]:
    from repro.policies import POLICY_REGISTRY

    return tuple(sorted(POLICY_REGISTRY))


@dataclass(frozen=True)
class JobSpec:
    """One submittable unit of work: kind + kind-specific payload."""

    kind: str
    payload: dict = field(default_factory=dict)

    # -- validation / normalization ---------------------------------------

    def normalized(self) -> "JobSpec":
        """Defaults filled, values coerced, everything validated.

        Normalization is what makes dedup structural: ``{"kind":
        "run"}`` and ``{"kind": "run", "payload": {"seed": 1}}`` mean
        the same work and must hash identically.
        """
        _require(self.kind in VALID_JOB_KINDS,
                 f"unknown job kind {self.kind!r} (pick from {VALID_JOB_KINDS})")
        norm = getattr(self, f"_normalize_{self.kind}")()
        return JobSpec(kind=self.kind, payload=norm)

    def _base(self, defaults: dict) -> dict:
        _require(isinstance(self.payload, dict), "payload must be an object")
        unknown = set(self.payload) - set(defaults)
        _require(not unknown, f"unknown {self.kind} payload keys: {sorted(unknown)}")
        merged = {**defaults, **self.payload}
        return merged

    def _normalize_run(self) -> dict:
        from repro.harness.recipes import MIX_NAMES

        p = self._base(RUN_DEFAULTS)
        _require(p["policy"] in _known_policies(),
                 f"unknown policy {p['policy']!r} (pick from {_known_policies()})")
        _require(p["mix"] in MIX_NAMES, f"unknown mix {p['mix']!r} (pick from {MIX_NAMES})")
        for k in ("epochs", "accesses", "seed"):
            _require(isinstance(p[k], int) and not isinstance(p[k], bool), f"{k} must be an int")
        _require(p["epochs"] > 0, "epochs must be positive")
        _require(p["accesses"] > 0, "accesses must be positive")
        return p

    def _normalize_sweep(self) -> dict:
        from repro.harness.recipes import MIX_NAMES

        p = self._base(SWEEP_DEFAULTS)
        _require(p["policy"] in _known_policies(),
                 f"unknown policy {p['policy']!r} (pick from {_known_policies()})")
        _require(p["mix"] in MIX_NAMES, f"unknown mix {p['mix']!r} (pick from {MIX_NAMES})")
        for k in ("epochs", "accesses", "workers"):
            _require(isinstance(p[k], int) and not isinstance(p[k], bool), f"{k} must be an int")
        _require(p["epochs"] > 0 and p["accesses"] > 0, "epochs/accesses must be positive")
        _require(1 <= p["workers"] <= MAX_SWEEP_WORKERS,
                 f"workers must lie in [1, {MAX_SWEEP_WORKERS}]")
        _require(isinstance(p["fast_gb"], (list, tuple)) and p["fast_gb"],
                 "fast_gb must be a non-empty list")
        _require(all(isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0
                     for v in p["fast_gb"]),
                 "fast_gb entries must be positive numbers")
        p["fast_gb"] = [float(v) for v in p["fast_gb"]]
        _require(isinstance(p["seeds"], (list, tuple)) and p["seeds"],
                 "seeds must be a non-empty list")
        _require(all(isinstance(s, int) and not isinstance(s, bool) for s in p["seeds"]),
                 "seeds entries must be ints")
        p["seeds"] = [int(s) for s in p["seeds"]]
        _require(isinstance(p["derived_seeds"], bool), "derived_seeds must be a bool")
        return p

    def _normalize_scenario(self) -> dict:
        p = self._base(SCENARIO_DEFAULTS)
        _require((p["name"] is None) != (p["spec"] is None),
                 "scenario payload needs exactly one of 'name' (canned) or 'spec' (inline)")
        if p["name"] is not None:
            from repro.scenario import scenario_names

            _require(p["name"] in scenario_names(),
                     f"unknown scenario {p['name']!r} (pick from {tuple(scenario_names())})")
        else:
            from repro.scenario import ScenarioSpec, ScenarioSpecError

            _require(isinstance(p["spec"], dict), "scenario spec must be an object")
            try:
                canon = ScenarioSpec.from_dict(p["spec"])
            except (ScenarioSpecError, KeyError, TypeError) as exc:
                raise JobError(f"invalid scenario spec: {exc}") from exc
            p["spec"] = canon.to_dict()
        if p["policy"] is not None:
            _require(p["policy"] in _known_policies(),
                     f"unknown policy {p['policy']!r} (pick from {_known_policies()})")
        for k in ("seed", "epochs"):
            if p[k] is not None:
                _require(isinstance(p[k], int) and not isinstance(p[k], bool), f"{k} must be an int")
        _require(isinstance(p["window"], int) and p["window"] > 0, "window must be a positive int")
        return p

    def _normalize_fleet(self) -> dict:
        p = self._base(FLEET_DEFAULTS)
        _require((p["name"] is None) != (p["spec"] is None),
                 "fleet payload needs exactly one of 'name' (canned) or 'spec' (inline)")
        if p["name"] is not None:
            from repro.fleet import fleet_scenario_names

            _require(p["name"] in fleet_scenario_names(),
                     f"unknown fleet scenario {p['name']!r} "
                     f"(pick from {tuple(fleet_scenario_names())})")
        else:
            from repro.fleet import FleetSpec, FleetSpecError

            _require(isinstance(p["spec"], dict), "fleet spec must be an object")
            try:
                canon = FleetSpec.from_dict(p["spec"])
            except (FleetSpecError, KeyError, TypeError) as exc:
                raise JobError(f"invalid fleet spec: {exc}") from exc
            p["spec"] = canon.to_dict()
        if p["policy"] is not None:
            _require(p["policy"] in _known_policies(),
                     f"unknown policy {p['policy']!r} (pick from {_known_policies()})")
        if p["placer"] is not None:
            from repro.fleet.spec import VALID_PLACERS

            _require(p["placer"] in VALID_PLACERS,
                     f"unknown placer {p['placer']!r} (pick from {VALID_PLACERS})")
        if p["seed"] is not None:
            _require(isinstance(p["seed"], int) and not isinstance(p["seed"], bool),
                     "seed must be an int")
        _require(isinstance(p["workers"], int) and not isinstance(p["workers"], bool),
                 "workers must be an int")
        _require(1 <= p["workers"] <= MAX_SWEEP_WORKERS,
                 f"workers must lie in [1, {MAX_SWEEP_WORKERS}]")
        return p

    # -- identity ----------------------------------------------------------

    def content_hash(self) -> str:
        """Stable sha256 of the *normalized* spec — the dedup key.

        Stable across processes and ``PYTHONHASHSEED`` values (see
        ``harness.cache.content_hash``); the spec version is folded in
        so a payload-layout change can never alias old results.
        """
        norm = self.normalized()
        return content_hash({"v": JOB_SPEC_VERSION, "kind": norm.kind, "payload": norm.payload})

    def job_id(self) -> str:
        """The job id *is* the content hash (truncated for ergonomics;
        64 bits of collision resistance is plenty for a job registry)."""
        return self.content_hash()[:16]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"kind": self.kind, "payload": dict(self.payload)}

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        _require(isinstance(data, dict), "job spec must be an object")
        unknown = set(data) - {"kind", "payload"}
        _require(not unknown, f"unknown job spec keys: {sorted(unknown)}")
        _require("kind" in data, "job spec needs a 'kind'")
        return cls(kind=data["kind"], payload=data.get("payload") or {}).normalized()


@dataclass
class Job:
    """The queue's runtime record of one submitted spec."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    cancel_requested: bool = False
    error: dict | None = None
    result_key: str | None = None
    cached: bool = False

    def transition(self, to: JobState, *, at: float | None = None) -> None:
        """Apply one state change; raises :class:`IllegalTransition`."""
        to = JobState(to)
        if to not in LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"job {self.job_id}: illegal transition {self.state.value} -> {to.value}"
            )
        now = time.time() if at is None else at
        if to is JobState.RUNNING:
            self.started_at = now
            self.attempts += 1
        elif to.terminal:
            self.finished_at = now
        elif to is JobState.PENDING:
            # retry / recovery: the record goes back to a clean slate
            self.started_at = None
            self.finished_at = None
            self.error = None
            self.cancel_requested = False
        self.state = to

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "payload": dict(self.spec.payload),
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "result_key": self.result_key,
            "cached": self.cached,
        }
