"""The long-running service: queue + scheduler + HTTP server in one box.

:class:`TieringService` owns the whole control plane for one data
directory::

    data_dir/
      journal.jsonl   # the queue's write-ahead journal (replayed on boot)
      results/        # content-addressed job results (ResultCache)
      cells/          # per-cell sweep cache, shared across sweep jobs

``start()`` replays the journal (re-queuing anything that was RUNNING
when the previous process died), starts the worker pool, and serves
HTTP on a background thread; ``stop()`` drains cleanly, re-queuing
in-flight jobs so nothing is lost.  The obs metrics registry is
enabled for the server's lifetime so ``/metrics`` has data, and
restored to its prior state on stop (tests share one process-wide
registry).
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer
from pathlib import Path

from repro.harness.jsonsafe import encode_nonfinite
from repro.obs.metrics import get_registry
from repro.service.api import ServiceRequestHandler
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class TieringService:
    """Facade tying the queue, scheduler, and HTTP API together."""

    def __init__(
        self,
        data_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        job_timeout: float | None = None,
        use_cache: bool = True,
        verbose: bool = False,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.data_dir / "journal.jsonl")
        self.scheduler = Scheduler(
            self.queue, self.data_dir,
            workers=workers, job_timeout=job_timeout, use_cache=use_cache,
        )
        self.httpd = _Server((host, port), ServiceRequestHandler)
        self.httpd.service = self  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._http_thread: threading.Thread | None = None
        self._registry_was_enabled: bool | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        registry = get_registry()
        self._registry_was_enabled = registry.enabled
        registry.enabled = True
        self.scheduler.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="service-http", daemon=True,
        )
        self._http_thread.start()

    def stop(self) -> None:
        """Clean shutdown: stop accepting, terminate + re-queue in-flight."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(5.0)
            self._http_thread = None
        self.scheduler.stop()
        self.queue.close()
        if self._registry_was_enabled is not None:
            get_registry().enabled = self._registry_was_enabled
            self._registry_was_enabled = None

    def __enter__(self) -> "TieringService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- observability -----------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload: queue, cache, and registry state."""
        return encode_nonfinite({
            "jobs": self.queue.counts(),
            "recovered_jobs": list(self.queue.recovered),
            "result_cache": {
                "hits": self.scheduler.results.hits,
                "misses": self.scheduler.results.misses,
                "corrupt": self.scheduler.results.corrupt,
            },
            "registry": get_registry().collect(),
        })
