"""Property-based scenario fuzzing (DESIGN.md §fuzz).

Submodules:

* :mod:`~repro.fuzz.oracle` — the shared invariant battery (also used
  by the scenario engine's teardown and ``--check`` paths);
* :mod:`~repro.fuzz.strategies` — seeded generation of arbitrary
  *valid* :class:`~repro.scenario.spec.ScenarioSpec` timelines plus
  machine/policy configs (hypothesis wrapper when available);
* :mod:`~repro.fuzz.runner` — the campaign driver behind
  ``repro fuzz`` (parallel execution, determinism replay, service
  parity, obs metrics);
* :mod:`~repro.fuzz.shrink` — greedy timeline minimization holding the
  failing check fixed;
* :mod:`~repro.fuzz.promote` — content-hashed crasher files under
  ``tests/golden/fuzz_regressions/`` the tier-1 suite replays.

Only the oracle is re-exported here: the scenario engine imports it at
module level, so pulling the runner (which imports the engine) into
package init would create a cycle.
"""

from repro.fuzz.oracle import InvariantOracle, InvariantViolation

__all__ = ["InvariantOracle", "InvariantViolation"]
