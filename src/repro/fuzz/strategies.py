"""Generation of arbitrary *valid* scenario timelines (DESIGN.md §fuzz).

The core generator is plain seeded numpy — :func:`generate_case` maps
``(master_seed, index)`` to one :class:`FuzzCase` through its own
``default_rng([master_seed, index])`` stream, so case *i* of a campaign
is always the same spec regardless of worker count or which other cases
run.  Validity is by construction: the generator walks the same
alive/departed state machine ``ScenarioSpec.validate`` checks, and every
emitted spec is passed through ``validate()`` before it leaves — a
generator bug fails the fuzzer, not the target.

When hypothesis is installed, :func:`spec_strategy` wraps the same
generator (drawing only the seed pair), so hypothesis shrinking over
seeds composes with our structural shrinker over timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenario.spec import (
    FAULT_KEYS,
    VALID_KINDS,
    ScenarioEvent,
    ScenarioSpec,
    WorkloadDef,
)

#: fast-tier sizes (GiB) the fuzzer samples — small enough that the
#: 80–400-page workloads below always contend for fast memory
FAST_GB_CHOICES = (4.0, 8.0, 16.0)

#: policies under test; vulcan is over-weighted because it is the only
#: policy with a daemon (credits, quotas) and so the only one the
#: CBFRP-specific checks exercise
POLICY_CHOICES = ("vulcan", "vulcan", "vulcan", "memtis", "nomad", "tpp", "uniform")

#: reshapeable attributes per workload kind, with safe sample ranges
_RESHAPE_ATTRS = {
    "microbench": (("zipf_skew", 0.5, 1.3), ("read_ratio", 0.1, 1.0)),
    "memcached": (("hot_frac", 0.05, 0.3), ("get_fraction", 0.5, 1.0)),
    "pagerank": (("degree_skew", 0.3, 1.2),),
    "liblinear": (("feature_skew", 0.3, 1.2),),
}


@dataclass(frozen=True)
class FuzzCase:
    """One generated run: a validated spec plus its machine sizing."""

    index: int
    master_seed: int
    spec: ScenarioSpec
    fast_gb: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "master_seed": self.master_seed,
            "fast_gb": self.fast_gb,
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            index=data["index"],
            master_seed=data["master_seed"],
            fast_gb=data["fast_gb"],
            spec=ScenarioSpec.from_dict(data["spec"]),
        )


def _gen_workload(rng: np.random.Generator, i: int, n_epochs: int) -> WorkloadDef:
    kind = VALID_KINDS[int(rng.integers(len(VALID_KINDS)))]
    params: dict = {}
    if rng.random() < 0.5:
        name, lo, hi = _RESHAPE_ATTRS[kind][int(rng.integers(len(_RESHAPE_ATTRS[kind])))]
        params[name] = round(float(rng.uniform(lo, hi)), 3)
    return WorkloadDef(
        key=f"w{i}",
        kind=kind,
        service="LC" if rng.random() < 0.4 else "BE",
        rss_pages=int(rng.integers(80, 401)),
        n_threads=int(rng.integers(1, 5)),
        start_epoch=int(rng.integers(0, max(n_epochs // 3, 1))),
        accesses_per_thread=int(rng.integers(400, 1201)),
        populate_tier=int(rng.integers(0, 2)),
        params=params,
    )


def _gen_event(
    rng: np.random.Generator,
    epoch: int,
    defs: list[WorkloadDef],
    departed: set[str],
    faults_armed: bool,
) -> ScenarioEvent | None:
    """One valid event at ``epoch`` given the timeline state so far.

    Mirrors the state machine in ``ScenarioSpec.validate``: targeted
    actions only hit workloads that have started and (except restart)
    not departed; restart only revives a departed key.
    """
    started = [d for d in defs if d.start_epoch <= epoch and d.key not in departed]
    menu: list[str] = []
    if len(started) > 1:  # never depart the last live workload
        menu += ["depart"]
    if departed:
        menu += ["restart", "restart"]
    if started:
        menu += ["phase_shift", "qos_change"]
    menu += ["tier_offline", "tier_online", "link_degrade", "link_restore"]
    menu += ["faults_clear"] if faults_armed else ["faults_set", "faults_set"]
    action = menu[int(rng.integers(len(menu)))]

    if action == "depart":
        target = started[int(rng.integers(len(started)))]
        return ScenarioEvent(epoch=epoch, action="depart", target=target.key)
    if action == "restart":
        key = sorted(departed)[int(rng.integers(len(departed)))]
        return ScenarioEvent(epoch=epoch, action="restart", target=key)
    if action == "phase_shift":
        d = started[int(rng.integers(len(started)))]
        params: dict = {"reseed": int(rng.integers(0, 2**31))}
        if rng.random() < 0.5:
            name, lo, hi = _RESHAPE_ATTRS[d.kind][int(rng.integers(len(_RESHAPE_ATTRS[d.kind])))]
            params["attrs"] = {name: round(float(rng.uniform(lo, hi)), 3)}
        return ScenarioEvent(epoch=epoch, action="phase_shift", target=d.key, params=params)
    if action == "qos_change":
        d = started[int(rng.integers(len(started)))]
        new = "BE" if d.service == "LC" else "LC"
        if rng.random() < 0.3:
            new = d.service  # no-op changes are legal; exercise them too
        return ScenarioEvent(epoch=epoch, action="qos_change", target=d.key,
                             params={"service": new})
    if action == "tier_offline":
        return ScenarioEvent(epoch=epoch, action="tier_offline",
                             params={"pages": int(rng.integers(20, 201))})
    if action == "tier_online":
        params = {} if rng.random() < 0.5 else {"pages": int(rng.integers(20, 201))}
        return ScenarioEvent(epoch=epoch, action="tier_online", params=params)
    if action == "link_degrade":
        return ScenarioEvent(
            epoch=epoch, action="link_degrade",
            params={
                "bandwidth_factor": round(float(rng.uniform(0.2, 1.0)), 3),
                "latency_factor": round(float(rng.uniform(1.0, 4.0)), 3),
            },
        )
    if action == "link_restore":
        return ScenarioEvent(epoch=epoch, action="link_restore")
    if action == "faults_set":
        n_kinds = int(rng.integers(1, len(FAULT_KEYS) + 1))
        picks = rng.permutation(len(FAULT_KEYS))[:n_kinds]
        probs = {FAULT_KEYS[int(i)]: round(float(rng.uniform(0.05, 0.5)), 3) for i in picks}
        return ScenarioEvent(epoch=epoch, action="faults_set", params=probs)
    if action == "faults_clear":
        return ScenarioEvent(epoch=epoch, action="faults_clear")
    return None


def generate_spec(
    rng: np.random.Generator,
    *,
    name: str,
    max_epochs: int = 24,
    event_rate: float = 0.45,
) -> ScenarioSpec:
    """One arbitrary valid timeline drawn from ``rng``."""
    n_epochs = int(rng.integers(6, max_epochs + 1))
    n_workloads = int(rng.integers(1, 5))
    defs = [_gen_workload(rng, i, n_epochs) for i in range(n_workloads)]

    events: list[ScenarioEvent] = []
    departed: set[str] = set()
    faults_armed = False
    for epoch in range(1, n_epochs):
        if rng.random() >= event_rate:
            continue
        ev = _gen_event(rng, epoch, defs, departed, faults_armed)
        if ev is None:
            continue
        events.append(ev)
        if ev.action == "depart":
            departed.add(ev.target)
        elif ev.action == "restart":
            departed.discard(ev.target)
        elif ev.action == "faults_set":
            faults_armed = True
        elif ev.action == "faults_clear":
            faults_armed = False

    return ScenarioSpec(
        name=name,
        n_epochs=n_epochs,
        workloads=tuple(defs),
        events=tuple(events),
        policy=POLICY_CHOICES[int(rng.integers(len(POLICY_CHOICES)))],
        seed=int(rng.integers(0, 2**31)),
        description="fuzz-generated timeline",
    ).validate()


def generate_case(master_seed: int, index: int, *, max_epochs: int = 24) -> FuzzCase:
    """Case ``index`` of campaign ``master_seed`` — a pure function."""
    rng = np.random.default_rng([master_seed, index])
    spec = generate_spec(rng, name=f"fuzz-{master_seed}-{index}", max_epochs=max_epochs)
    fast_gb = FAST_GB_CHOICES[int(rng.integers(len(FAST_GB_CHOICES)))]
    return FuzzCase(index=index, master_seed=master_seed, spec=spec, fast_gb=fast_gb)


# -- fleet cases -----------------------------------------------------------------

#: node fast-tier sizes (GiB) the fleet fuzzer samples — small so the
#: generated workloads always contend for fleet capacity
FLEET_FAST_GB_CHOICES = (2.0, 4.0)


@dataclass(frozen=True)
class FleetFuzzCase:
    """One generated fleet run: a validated FleetSpec."""

    index: int
    master_seed: int
    spec: "FleetSpec"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "master_seed": self.master_seed,
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetFuzzCase":
        from repro.fleet import FleetSpec

        return cls(
            index=data["index"],
            master_seed=data["master_seed"],
            spec=FleetSpec.from_dict(data["spec"]),
        )


def _gen_fleet_workload(rng: np.random.Generator, i: int) -> WorkloadDef:
    """A fleet workload: like :func:`_gen_workload` but pinned to
    ``start_epoch == 0`` (the fleet constraint) and sized cheaply —
    a fuzz fleet runs W workloads × R rounds of full experiments."""
    kind = VALID_KINDS[int(rng.integers(len(VALID_KINDS)))]
    params: dict = {}
    if rng.random() < 0.5:
        name, lo, hi = _RESHAPE_ATTRS[kind][int(rng.integers(len(_RESHAPE_ATTRS[kind])))]
        params[name] = round(float(rng.uniform(lo, hi)), 3)
    return WorkloadDef(
        key=f"w{i}",
        kind=kind,
        service="LC" if rng.random() < 0.4 else "BE",
        rss_pages=int(rng.integers(60, 261)),
        n_threads=int(rng.integers(1, 3)),
        start_epoch=0,
        accesses_per_thread=int(rng.integers(300, 801)),
        populate_tier=int(rng.integers(0, 2)),
        params=params,
    )


def generate_fleet_spec(rng: np.random.Generator, *, name: str) -> "FleetSpec":
    """One arbitrary valid fleet drawn from ``rng``.

    Validity is by construction — the event walk maintains the same
    active-node state machine ``validate_timeline`` replays: drains
    never empty the fleet, joins only bring in nodes held back from the
    initial active set, flash crowds only hit active nodes.
    """
    from repro.fleet import FleetEvent, FleetSpec, NodeDef
    from repro.fleet.node import node_workload_slots
    from repro.fleet.spec import VALID_PLACERS

    n_active = int(rng.integers(2, 4))
    n_pending = int(rng.integers(0, 2))
    nodes = tuple(
        NodeDef(
            node_id=f"n{i}",
            fast_gb=FLEET_FAST_GB_CHOICES[int(rng.integers(len(FLEET_FAST_GB_CHOICES)))],
        )
        for i in range(n_active + n_pending)
    )
    pending = [n.node_id for n in nodes[n_active:]]
    active = {n.node_id for n in nodes[:n_active]}

    n_workloads = int(rng.integers(2, 6))
    workloads = tuple(_gen_fleet_workload(rng, i) for i in range(n_workloads))

    n_rounds = int(rng.integers(3, 6))
    events: list[FleetEvent] = []
    # joins are mandatory for pending nodes (a node held out of the
    # initial set must join somewhere or validate_timeline's walk and
    # this generator would disagree about what "pending" means)
    for node_id in pending:
        rnd = int(rng.integers(1, n_rounds))
        events.append(FleetEvent(round=rnd, action="node_join", node=node_id))
        active_at = rnd  # noqa: F841 — joins apply in round order below
    joined_at = {e.node: e.round for e in events}
    for rnd in range(1, n_rounds):
        # same-round events apply sorted by action name, so a node_join
        # lands *after* any flash_crowd/node_drain in its round — only
        # treat joins from strictly earlier rounds as active here
        for node_id in [n for n, r in joined_at.items() if r < rnd]:
            active.add(node_id)
        if rng.random() >= 0.6:
            continue
        menu = ["flash_crowd"]
        # a drain is only on the menu when the survivors still have a
        # core-block slot for every workload (mirrors validate_timeline)
        if len(active) > 1 and (len(active) - 1) * node_workload_slots() >= n_workloads:
            menu += ["node_drain"]
        action = menu[int(rng.integers(len(menu)))]
        target = sorted(active)[int(rng.integers(len(active)))]
        if action == "node_drain":
            events.append(FleetEvent(round=rnd, action="node_drain", node=target))
            active.discard(target)
        else:
            events.append(FleetEvent(
                round=rnd, action="flash_crowd", node=target,
                params={
                    "factor": round(float(rng.uniform(1.2, 3.0)), 3),
                    "rounds": int(rng.integers(1, 3)),
                },
            ))

    return FleetSpec(
        name=name,
        n_rounds=n_rounds,
        epochs_per_round=int(rng.integers(2, 4)),
        nodes=nodes,
        workloads=workloads,
        events=tuple(events),
        policy=POLICY_CHOICES[int(rng.integers(len(POLICY_CHOICES)))],
        placer=VALID_PLACERS[int(rng.integers(len(VALID_PLACERS)))],
        seed=int(rng.integers(0, 2**31)),
        description="fuzz-generated fleet",
    ).validate()


def generate_fleet_case(master_seed: int, index: int) -> FleetFuzzCase:
    """Fleet case ``index`` of campaign ``master_seed`` — a pure function.

    Seeded with a distinct third stream component so a fleet campaign
    and a scenario campaign at the same master seed stay decorrelated.
    """
    rng = np.random.default_rng([master_seed, index, 2])
    spec = generate_fleet_spec(rng, name=f"fleet-fuzz-{master_seed}-{index}")
    return FleetFuzzCase(index=index, master_seed=master_seed, spec=spec)


def spec_strategy(max_epochs: int = 24):
    """A hypothesis strategy over valid specs (raises if hypothesis absent).

    Wraps the seeded generator: hypothesis draws the seed pair, the
    generator maps it to a spec.  Shrinking therefore minimizes seeds
    (toward small integers); structural minimization of a failing
    timeline is :mod:`repro.fuzz.shrink`'s job.
    """
    from hypothesis import strategies as st

    return st.builds(
        lambda ms, i: generate_case(ms, i, max_epochs=max_epochs).spec,
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=9999),
    )
