"""The invariant oracle (DESIGN.md §fuzz).

One shared implementation of every global-consistency check the system
promises, callable from three places:

* the **scenario engine** — final teardown checks after every run (the
  asserts that used to live inline in ``ScenarioExperiment._finish_run``)
  and, under ``--check``, after every epoch;
* the **fuzzer** — :class:`InvariantOracle` attached to each generated
  run, turning silent corruption into a typed, shrinkable failure;
* the **tests** — mutation tests corrupt state deliberately and assert
  each corruption is caught with a precise diagnostic.

Every check raises :class:`InvariantViolation` carrying a stable check
id (``frame_conservation``, ``leaked_frames``, ``credit_conservation``,
``capacity_cap``, ``heat_consistency``, ``store_rows``,
``metrics_range``, ``fleet_conservation``) so the shrinker can hold the failure kind fixed
while it minimizes, and the fuzz report can aggregate by kind.

The oracle is strictly read-only: no check consumes RNG state or
mutates anything it inspects, so attaching an oracle never perturbs a
run — oracle-on and oracle-off runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mm.frame_alloc import FrameAllocator
from repro.mm.page_store import STATE_FREE, PageStatsStore


class InvariantViolation(AssertionError):
    """A global invariant failed; carries a stable check id + context."""

    def __init__(
        self,
        check: str,
        message: str,
        *,
        epoch: int | None = None,
        context: dict | None = None,
    ) -> None:
        self.check = check
        self.epoch = epoch
        self.context = dict(context or {})
        self._bare_message = message
        where = f" @epoch {epoch}" if epoch is not None else ""
        super().__init__(f"[{check}]{where} {message}")

    def stamp_epoch(self, epoch: int) -> None:
        """Attach the epoch a per-epoch sweep caught this at (idempotent)."""
        if self.epoch is None:
            self.epoch = epoch
            self.args = (f"[{self.check}] @epoch {epoch} {self._bare_message}",)

    def to_dict(self) -> dict:
        """Plain-data form for fuzz reports and promoted crashers."""
        return {
            "check": self.check,
            "epoch": self.epoch,
            "message": str(self),
            "context": {k: v for k, v in sorted(self.context.items())},
        }


# -- individual checks (each usable standalone from tests) -----------------------


def check_frame_conservation(allocator: FrameAllocator) -> None:
    """Free lists, the free bitmap, and per-tier used counts all agree.

    Wraps the allocator's own cross-check and adds the store-vs-tier
    arithmetic it does not cover: the number of non-FREE frames in a
    tier's PFN span must equal that tier's ``used`` counter.
    """
    try:
        allocator.check_consistency()
    except RuntimeError as exc:
        raise InvariantViolation("frame_conservation", str(exc)) from exc
    st = allocator.store
    for tier in allocator.tiers:
        span = slice(tier.base_pfn, tier.base_pfn + tier.total)
        live = int((st.state[span] != STATE_FREE).sum())
        if live != tier.used:
            raise InvariantViolation(
                "frame_conservation",
                f"tier {tier.tier_id}: {live} non-free frames in store but "
                f"used counter says {tier.used}",
                context={"tier": tier.tier_id, "store_live": live, "used": tier.used},
            )


def check_store_rows(store: PageStatsStore) -> None:
    """Per-row internal consistency of the struct-of-arrays page store."""
    try:
        store.check_row_invariants()
    except AssertionError as exc:
        raise InvariantViolation("store_rows", str(exc)) from exc


def check_no_foreign_frames(store: PageStatsStore, live_pids: set[int]) -> None:
    """Every non-free frame belongs to a live pid (no leaked PFNs).

    This is the leak check teardown cannot make: ``free_pid`` proves the
    *departing* pid left nothing behind, but only a global sweep catches
    a frame still bound to a pid that is no longer running at all.
    """
    pfns = store.foreign_frames(live_pids)
    if pfns.size:
        owners = sorted(set(store.pid[pfns].tolist()))
        raise InvariantViolation(
            "leaked_frames",
            f"{pfns.size} frame(s) owned by departed pid(s) {owners}: "
            f"pfns {pfns[:8].tolist()}",
            context={"pids": owners, "n_frames": int(pfns.size), "first_pfns": pfns[:8].tolist()},
        )


def check_credit_conservation(policy) -> None:
    """CBFRP credits are zero-sum: Σ balances == endowment still banked.

    Applies to any policy exposing a ``daemon.credits`` ledger (Vulcan);
    a policy without one passes vacuously.
    """
    daemon = getattr(policy, "daemon", None)
    if daemon is None:
        return
    ledger = daemon.credits
    try:
        ledger.check_conservation()
    except RuntimeError as exc:
        raise InvariantViolation("credit_conservation", str(exc)) from exc
    missing = [pid for pid in daemon.workloads if pid not in ledger.credits]
    if missing:
        raise InvariantViolation(
            "credit_conservation",
            f"managed pid(s) {missing} have no credit account",
            context={"pids": missing},
        )


def check_capacity_caps(policy) -> None:
    """CBFRP quotas never overcommit the partitioned fast-tier capacity."""
    daemon = getattr(policy, "daemon", None)
    if daemon is None:
        return
    granted = sum(daemon.partition.quotas.values())
    capacity = daemon.partition.capacity_pages
    if granted > capacity:
        raise InvariantViolation(
            "capacity_cap",
            f"Σ quotas = {granted} pages exceeds partition capacity {capacity}",
            context={"granted": granted, "capacity": capacity},
        )


def check_heat_consistency(policy) -> None:
    """Every profiler heat book's key set matches its dense arrays."""
    for pid, rt in policy.workloads.items():
        for label, store in _profiler_heat_stores(rt.profiler):
            try:
                store.check_consistency()
            except RuntimeError as exc:
                raise InvariantViolation(
                    "heat_consistency",
                    f"pid {pid} {label}: {exc}",
                    context={"pid": pid, "store": label},
                ) from exc


def _profiler_heat_stores(profiler) -> list[tuple[str, object]]:
    """(label, HeatStore) pairs for a profiler, including nested ones."""
    stores: list[tuple[str, object]] = []
    seen: set[int] = set()

    def walk(prefix: str, prof) -> None:
        if id(prof) in seen:
            return
        seen.add(id(prof))
        for attr in ("_heat", "_write_heat"):
            store = getattr(prof, attr, None)
            if store is not None:
                stores.append((f"{prefix}{attr.lstrip('_')}", store))
        # hybrid profilers nest mechanism profilers with their own books
        for sub in ("pebs", "faults", "scan"):
            child = getattr(prof, sub, None)
            if child is not None and hasattr(child, "_heat"):
                walk(f"{prefix}{sub}.", child)

    walk("", profiler)
    return stores


def check_nonneg_metrics(result) -> None:
    """Recorded timeseries stay in range: no negative ops/pages/stalls,
    FTHR within [0, 1], epoch stamps strictly increasing and in-run."""
    n = result.n_epochs
    bounds = {
        "ops": (0.0, None),
        "fast_pages": (0, None),
        "rss_pages": (0, None),
        "stall_cycles": (0.0, None),
        "hot_pages": (0, None),
        "hot_in_fast": (0, None),
        "cold_in_fast": (0, None),
        "fthr_true": (0.0, 1.0),
    }
    for pid, ts in result.workloads.items():
        epochs = np.asarray(ts.epochs, dtype=np.int64)
        if epochs.size and (epochs[0] < 0 or epochs[-1] >= n or (np.diff(epochs) <= 0).any()):
            raise InvariantViolation(
                "metrics_range",
                f"pid {pid}: epoch stamps not strictly increasing within [0, {n})",
                context={"pid": pid, "first": int(epochs[0]), "last": int(epochs[-1])},
            )
        for name, (lo, hi) in bounds.items():
            vals = np.asarray(getattr(ts, name), dtype=np.float64)
            bad = ~np.isfinite(vals) | (vals < lo) | ((vals > hi) if hi is not None else False)
            if bool(bad.any()):
                i = int(np.flatnonzero(bad)[0])
                raise InvariantViolation(
                    "metrics_range",
                    f"pid {pid}: {name}[{i}] = {vals[i]!r} outside "
                    f"[{lo}, {'inf' if hi is None else hi}]",
                    context={"pid": pid, "series": name, "index": i, "value": float(vals[i])},
                )


def check_fleet_round(record: dict, workload_keys: set[str]) -> None:
    """Frame conservation *across* nodes for one fleet sync round.

    The single-box checks prove no frames leak inside a node; this is
    the fleet-level complement over a round record (see
    ``FleetExperiment``): every workload lives on exactly one active
    node, no workload vanishes or duplicates across a drain/join, each
    node's telemetry accounts for exactly its assigned residents, and
    the pages a node reports in use never exceed its capacity.
    """
    rnd = record.get("round")
    assignment = record["assignment"]
    active = set(record["active"])
    if set(assignment) != workload_keys:
        lost = sorted(workload_keys - set(assignment))
        extra = sorted(set(assignment) - workload_keys)
        raise InvariantViolation(
            "fleet_conservation",
            f"round {rnd}: workload set changed: lost={lost} extra={extra}",
            context={"round": rnd, "lost": lost, "extra": extra},
        )
    stray = sorted(k for k, n in assignment.items() if n not in active)
    if stray:
        raise InvariantViolation(
            "fleet_conservation",
            f"round {rnd}: workload(s) {stray} assigned to inactive nodes",
            context={"round": rnd, "keys": stray},
        )
    hosted: dict[str, set[str]] = {n: set() for n in active}
    for node in record["nodes"]:
        nid = node["node_id"]
        if nid not in active:
            raise InvariantViolation(
                "fleet_conservation",
                f"round {rnd}: telemetry from inactive node {nid}",
                context={"round": rnd, "node": nid},
            )
        hosted[nid] = {w["key"] for w in node["workloads"]}
        used = node["fast_capacity_pages"] - node["free_fast_pages"]
        if used < 0 or used > node["fast_capacity_pages"]:
            raise InvariantViolation(
                "fleet_conservation",
                f"round {rnd}: node {nid} reports {used} used pages outside "
                f"[0, {node['fast_capacity_pages']}]",
                context={"round": rnd, "node": nid, "used": used},
            )
    for nid in sorted(active):
        want = {k for k, n in assignment.items() if n == nid}
        if hosted.get(nid, set()) != want:
            raise InvariantViolation(
                "fleet_conservation",
                f"round {rnd}: node {nid} hosted {sorted(hosted.get(nid, set()))} "
                f"but the placer assigned {sorted(want)}",
                context={"round": rnd, "node": nid,
                         "hosted": sorted(hosted.get(nid, set())),
                         "assigned": sorted(want)},
            )


# -- the oracle object the engine / fuzzer attach --------------------------------


@dataclass
class InvariantOracle:
    """Runs the full check battery after epochs and at teardown.

    ``deep_every`` throttles the O(n_frames) sweeps (free-list
    cross-check, row invariants) to every k-th epoch; the cheap global
    checks (leaks, credits, caps, heat books) run every epoch.  The
    scenario engine's ``--check`` and the fuzzer both use the default
    (every epoch).
    """

    deep_every: int = 1
    epochs_checked: int = field(default=0, init=False)
    finals_checked: int = field(default=0, init=False)

    def check_epoch(self, exp, epoch: int) -> None:
        try:
            if self.deep_every > 0 and epoch % self.deep_every == 0:
                check_frame_conservation(exp.allocator)
                check_store_rows(exp.allocator.store)
            check_no_foreign_frames(exp.allocator.store, set(exp._active))
            check_credit_conservation(exp.policy)
            check_capacity_caps(exp.policy)
            check_heat_consistency(exp.policy)
        except InvariantViolation as exc:
            exc.stamp_epoch(epoch)
            raise
        self.epochs_checked += 1

    def check_final(self, exp, result) -> None:
        check_frame_conservation(exp.allocator)
        check_store_rows(exp.allocator.store)
        check_no_foreign_frames(exp.allocator.store, set(exp._active))
        check_credit_conservation(exp.policy)
        check_capacity_caps(exp.policy)
        check_heat_consistency(exp.policy)
        check_nonneg_metrics(result)
        self.finals_checked += 1
