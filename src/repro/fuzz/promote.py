"""Crasher-to-regression promotion (DESIGN.md §fuzz).

A minimized failing case is written as one content-hashed JSON file —
``crasher_<spec-hash-12>.json`` — carrying the spec, the machine
sizing, the finding it reproduced, and the seed pair that found it.
Files promoted under ``tests/golden/fuzz_regressions/`` become canned
scenarios the tier-1 suite replays forever: once the underlying bug is
fixed, the replay must stay green, so the regression can never return
silently.

Content-hash naming makes promotion idempotent (re-promoting the same
minimized spec overwrites the identical file) and collision-free
(different specs get different names).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fuzz.strategies import FleetFuzzCase, FuzzCase
from repro.scenario.spec import ScenarioSpec

CRASHER_FORMAT = "fuzz-crasher-v1"
FLEET_CRASHER_FORMAT = "fleet-crasher-v1"


def promote_crasher(case: FuzzCase, finding: dict, dest_dir) -> Path:
    """Write ``case`` as a regression file; returns the path."""
    dest = Path(dest_dir)
    dest.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": CRASHER_FORMAT,
        "found_by": {"master_seed": case.master_seed, "index": case.index},
        "fast_gb": case.fast_gb,
        "violation": dict(finding),
        "spec": case.spec.to_dict(),
    }
    path = dest / f"crasher_{case.spec.content_hash()[:12]}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_crasher(path) -> tuple[FuzzCase, dict]:
    """Read one regression file back as a runnable (case, violation)."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != CRASHER_FORMAT:
        raise ValueError(f"{path}: not a {CRASHER_FORMAT} file")
    case = FuzzCase(
        index=data["found_by"]["index"],
        master_seed=data["found_by"]["master_seed"],
        spec=ScenarioSpec.from_dict(data["spec"]),
        fast_gb=data["fast_gb"],
    )
    return case, data["violation"]


def iter_crashers(directory) -> list[Path]:
    """All regression files in ``directory``, name-sorted (stable)."""
    d = Path(directory)
    if not d.is_dir():
        return []
    return sorted(d.glob("crasher_*.json"))


# -- fleet crashers ---------------------------------------------------------------
#
# Fleet regressions live beside scenario ones but under a distinct
# prefix and format tag: ``fleet_crasher_*.json`` never matches the
# ``crasher_*.json`` glob (and vice versa), so the two replay paths can
# share a directory without ever feeding each other the wrong spec type.


def promote_fleet_crasher(case: FleetFuzzCase, finding: dict, dest_dir) -> Path:
    """Write a failing fleet case as a regression file; returns the path."""
    dest = Path(dest_dir)
    dest.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": FLEET_CRASHER_FORMAT,
        "found_by": {"master_seed": case.master_seed, "index": case.index},
        "violation": dict(finding),
        "spec": case.spec.to_dict(),
    }
    path = dest / f"fleet_crasher_{case.spec.content_hash()[:12]}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_fleet_crasher(path) -> tuple[FleetFuzzCase, dict]:
    """Read one fleet regression file back as (case, violation)."""
    from repro.fleet import FleetSpec

    data = json.loads(Path(path).read_text())
    if data.get("format") != FLEET_CRASHER_FORMAT:
        raise ValueError(f"{path}: not a {FLEET_CRASHER_FORMAT} file")
    case = FleetFuzzCase(
        index=data["found_by"]["index"],
        master_seed=data["found_by"]["master_seed"],
        spec=FleetSpec.from_dict(data["spec"]),
    )
    return case, data["violation"]


def iter_fleet_crashers(directory) -> list[Path]:
    """All fleet regression files in ``directory``, name-sorted."""
    d = Path(directory)
    if not d.is_dir():
        return []
    return sorted(d.glob("fleet_crasher_*.json"))
