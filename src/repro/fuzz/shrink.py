"""Greedy timeline minimization for failing fuzz cases (DESIGN.md §fuzz).

Given a case whose run fails with check ``X``, repeatedly try smaller
candidates — drop one event, truncate the epoch horizon to the last
scripted epoch, drop one workload (plus its targeted events), halve a
workload scalar — and keep any candidate that *still fails with the
same check id*.  Candidates that no longer validate are skipped, so the
shrinker can never emit an invalid spec, and every accepted step
strictly reduces the timeline, so the result is ≤ the original in
events and epochs by construction.

The run function is injected (``run_fn(case) -> finding | None``) so
this module stays import-cycle-free and the tests can shrink against a
stub target without running experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.fuzz.strategies import FuzzCase
from repro.scenario.spec import ScenarioSpec, ScenarioSpecError, WorkloadDef

#: hard cap on candidate executions per shrink (time box)
MAX_ATTEMPTS = 200


@dataclass(frozen=True)
class ShrinkResult:
    case: FuzzCase
    steps: int  # accepted reductions
    attempts: int  # candidate executions (incl. rejected)


def _valid(spec: ScenarioSpec) -> ScenarioSpec | None:
    try:
        return spec.validate()
    except ScenarioSpecError:
        return None


def _smaller_workload(d: WorkloadDef) -> WorkloadDef | None:
    """Halve the first still-reducible scalar; None when fully shrunk."""
    if d.rss_pages > 40:
        return replace(d, rss_pages=max(40, d.rss_pages // 2))
    if d.accesses_per_thread > 200:
        return replace(d, accesses_per_thread=max(200, d.accesses_per_thread // 2))
    if d.n_threads > 1:
        return replace(d, n_threads=max(1, d.n_threads // 2))
    return None


def _candidates(case: FuzzCase) -> Iterator[tuple[str, FuzzCase]]:
    """Strictly-smaller valid candidates, in deterministic order."""
    spec = case.spec

    # 1. drop one event (dropping a depart that feeds a restart fails
    #    validation and is skipped automatically)
    for i in range(len(spec.events)):
        cand = _valid(replace(spec, events=spec.events[:i] + spec.events[i + 1:]))
        if cand is not None:
            yield f"drop event {i}", replace(case, spec=cand)

    # 2. truncate the horizon to just past the last scripted epoch
    last = spec.last_scripted_epoch()
    if last + 1 < spec.n_epochs:
        cand = _valid(replace(spec, n_epochs=last + 1))
        if cand is not None:
            yield f"truncate to {last + 1} epochs", replace(case, spec=cand)

    # 3. drop one workload and every event that targets it
    if len(spec.workloads) > 1:
        for d in spec.workloads:
            keep_wl = tuple(w for w in spec.workloads if w.key != d.key)
            keep_ev = tuple(e for e in spec.events if e.target != d.key)
            cand = _valid(replace(spec, workloads=keep_wl, events=keep_ev))
            if cand is not None:
                yield f"drop workload {d.key}", replace(case, spec=cand)

    # 4. halve one workload scalar
    for d in spec.workloads:
        smaller = _smaller_workload(d)
        if smaller is None:
            continue
        wls = tuple(smaller if w.key == d.key else w for w in spec.workloads)
        cand = _valid(replace(spec, workloads=wls))
        if cand is not None:
            yield f"shrink workload {d.key}", replace(case, spec=cand)


def shrink_case(
    case: FuzzCase,
    check: str,
    run_fn: Callable[[FuzzCase], dict | None],
    *,
    max_attempts: int = MAX_ATTEMPTS,
) -> ShrinkResult:
    """Minimize ``case`` while ``run_fn`` keeps failing with ``check``.

    ``run_fn`` returns the finding dict (with a ``"check"`` key) when
    the candidate fails, or None when it passes.  Greedy first-accept:
    each accepted candidate restarts the candidate walk, and the loop
    ends at a fixpoint (a full walk with no acceptance) or at the
    attempt cap.
    """
    steps = 0
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for _desc, cand in _candidates(case):
            if attempts >= max_attempts:
                break
            attempts += 1
            finding = run_fn(cand)
            if finding is not None and finding.get("check") == check:
                case = cand
                steps += 1
                progress = True
                break
    return ShrinkResult(case=case, steps=steps, attempts=attempts)
