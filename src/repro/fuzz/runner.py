"""The fuzz campaign driver behind ``repro fuzz`` (DESIGN.md §fuzz).

A campaign is a deterministic function of ``(seed, runs, max_epochs)``:
the full case list is generated up front from per-case seed pairs, each
case runs with an attached :class:`~repro.fuzz.oracle.InvariantOracle`,
and the report is assembled in case order — so the same seed always
yields the same run list and the same report, serial or parallel
(``harness.parallel`` fans cases out exactly like sweep cells).

On top of the per-case oracle the campaign itself cross-checks:

* **replay determinism** — every ``replay_every``-th case is re-run
  in-process and its full record compared field-for-field (this is
  also what proves serial ≡ workers>1: worker records must match the
  in-parent replay bit-for-bit);
* **CLI ≡ service parity** — one ok case is run both through the CLI
  assembly path (``harness.recipes.scenario_summary_json``) and the
  service's ``run_job``, and the payloads compared canonically.

Failures are shrunk (:mod:`repro.fuzz.shrink`) and optionally promoted
(:mod:`repro.fuzz.promote`) to content-hashed regression files.

The report contains no wall-clock values — timing goes to stderr in the
CLI layer only — so reports themselves are replay-comparable.
"""

from __future__ import annotations

import hashlib
import json

from repro.fuzz.oracle import InvariantOracle, InvariantViolation
from repro.fuzz.promote import promote_crasher, promote_fleet_crasher
from repro.fuzz.shrink import shrink_case
from repro.fuzz.strategies import FleetFuzzCase, FuzzCase, generate_case, generate_fleet_case
from repro.harness.parallel import CellTask, execute_tasks
from repro.obs.metrics import get_registry

#: epoch-horizon default for generated timelines
DEFAULT_MAX_EPOCHS = 24

#: how many failures per campaign get the (expensive) shrink treatment
MAX_SHRINKS = 5

#: churn-fairness window used by the parity spot-check
PARITY_WINDOW = 10


def _machine_config(fast_gb: float):
    """The fuzz machine: default config with a resized fast tier
    (same construction as ``harness.recipes.sweep_cell``)."""
    from dataclasses import replace

    from repro.sim.config import MachineConfig, TierConfig
    from repro.sim.units import GiB

    mc = MachineConfig()
    return replace(mc, fast=TierConfig(
        name="fast",
        capacity_bytes=int(fast_gb * GiB),
        load_latency_ns=mc.fast.load_latency_ns,
        bandwidth_gbps=mc.fast.bandwidth_gbps,
    ))


def execute_case(case: FuzzCase):
    """Run one case under a fresh oracle; returns its ScenarioResult.

    Raises :class:`InvariantViolation` (or whatever the engine raises)
    on failure — callers classify.
    """
    from repro.scenario.engine import ScenarioExperiment

    exp = ScenarioExperiment(
        case.spec,
        oracle=InvariantOracle(),
        machine_config=_machine_config(case.fast_gb),
    )
    exp.run()
    assert exp.scenario_result is not None
    return exp.scenario_result


def _result_hash(sres) -> str:
    canon = json.dumps(sres.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def case_finding(case: FuzzCase) -> dict | None:
    """None when the case passes, else a finding dict with a stable
    ``check`` id (``crash:<Type>`` for non-oracle exceptions)."""
    try:
        execute_case(case)
    except InvariantViolation as exc:
        return exc.to_dict()
    except Exception as exc:  # noqa: BLE001 — every crash is a finding
        return {
            "check": f"crash:{type(exc).__name__}",
            "epoch": None,
            "message": str(exc),
            "context": {},
        }
    return None


def run_case_record(case: FuzzCase) -> dict:
    """One case → its plain-data campaign record (order-free)."""
    record = {
        "index": case.index,
        "policy": case.spec.policy,
        "fast_gb": case.fast_gb,
        "n_epochs": case.spec.n_epochs,
        "n_workloads": len(case.spec.workloads),
        "n_events": len(case.spec.events),
        "spec_hash": case.spec.content_hash(),
    }
    try:
        sres = execute_case(case)
    except InvariantViolation as exc:
        record.update(status="violation", finding=exc.to_dict(), result_hash=None)
    except Exception as exc:  # noqa: BLE001
        record.update(
            status="violation",
            finding={
                "check": f"crash:{type(exc).__name__}",
                "epoch": None,
                "message": str(exc),
                "context": {},
            },
            result_hash=None,
        )
    else:
        record.update(status="ok", finding=None, result_hash=_result_hash(sres))
    return record


def run_case(case: str = "", seed: int = 0) -> dict:
    """Worker-process entry: ``case`` is a FuzzCase as JSON.

    Module-level with a ``seed`` kwarg so it satisfies the
    ``harness.parallel`` factory contract (the seed is carried inside
    the case; the task-level one is ignored).
    """
    return run_case_record(FuzzCase.from_dict(json.loads(case)))


def _service_parity(case: FuzzCase) -> dict:
    """Run one spec through the CLI assembly path and the service's
    ``run_job`` and compare the payloads canonically (default machine
    on both sides — the service has no machine-sizing knob)."""
    from repro.harness.jsonsafe import encode_nonfinite
    from repro.harness.recipes import scenario_summary_json
    from repro.scenario.engine import run_scenario
    from repro.service.jobs import JobSpec
    from repro.service.runners import run_job

    sres = run_scenario(case.spec, oracle=InvariantOracle())
    cli = encode_nonfinite(scenario_summary_json(sres, window=PARITY_WINDOW))
    svc = run_job(JobSpec(
        kind="scenario",
        payload={"spec": case.spec.to_dict(), "window": PARITY_WINDOW},
    ))
    svc = {k: v for k, v in svc.items() if k != "kind"}
    ok = (json.dumps(cli, sort_keys=True) == json.dumps(svc, sort_keys=True))
    return {"ok": ok, "index": case.index, "spec_hash": case.spec.content_hash()}


# -- fleet campaigns --------------------------------------------------------------


def execute_fleet_case(case: FleetFuzzCase):
    """Run one fleet case with all checks armed; returns its FleetResult.

    ``check=True`` arms both layers of the oracle: every node cell runs
    its scenario under a fresh :class:`InvariantOracle`, and the fleet
    loop runs :func:`~repro.fuzz.oracle.check_fleet_round` — the
    cross-node frame-conservation check — after every sync round.
    """
    from repro.fleet import run_fleet

    return run_fleet(case.spec, workers=1, check=True)


def fleet_case_finding(case: FleetFuzzCase) -> dict | None:
    """None when the fleet case passes, else a finding dict."""
    try:
        execute_fleet_case(case)
    except InvariantViolation as exc:
        return exc.to_dict()
    except Exception as exc:  # noqa: BLE001 — every crash is a finding
        return {
            "check": f"crash:{type(exc).__name__}",
            "epoch": None,
            "message": str(exc),
            "context": {},
        }
    return None


def run_fleet_case_record(case: FleetFuzzCase) -> dict:
    """One fleet case → its plain-data campaign record (order-free)."""
    record = {
        "index": case.index,
        "policy": case.spec.policy,
        "placer": case.spec.placer,
        "n_rounds": case.spec.n_rounds,
        "n_nodes": len(case.spec.nodes),
        "n_workloads": len(case.spec.workloads),
        "n_events": len(case.spec.events),
        "spec_hash": case.spec.content_hash(),
    }
    try:
        fres = execute_fleet_case(case)
    except InvariantViolation as exc:
        record.update(status="violation", finding=exc.to_dict(), result_hash=None)
    except Exception as exc:  # noqa: BLE001
        record.update(
            status="violation",
            finding={
                "check": f"crash:{type(exc).__name__}",
                "epoch": None,
                "message": str(exc),
                "context": {},
            },
            result_hash=None,
        )
    else:
        canon = fres.canonical_json()
        record.update(
            status="ok",
            finding=None,
            result_hash=hashlib.sha256(canon.encode()).hexdigest(),
        )
    return record


def run_fleet_case(case: str = "", seed: int = 0) -> dict:
    """Worker-process entry: ``case`` is a FleetFuzzCase as JSON."""
    return run_fleet_case_record(FleetFuzzCase.from_dict(json.loads(case)))


def _fleet_service_parity(case: FleetFuzzCase) -> dict:
    """One fleet spec through the CLI assembly path and the service's
    ``run_job``, payloads compared canonically."""
    from repro.harness.jsonsafe import encode_nonfinite
    from repro.harness.recipes import fleet_run, fleet_summary_json
    from repro.service.jobs import JobSpec
    from repro.service.runners import run_job

    res = fleet_run(spec=case.spec.to_dict(), workers=1)
    cli = encode_nonfinite(fleet_summary_json(res))
    svc = run_job(JobSpec(kind="fleet", payload={"spec": case.spec.to_dict()}))
    svc = {k: v for k, v in svc.items() if k != "kind"}
    ok = (json.dumps(cli, sort_keys=True) == json.dumps(svc, sort_keys=True))
    return {"ok": ok, "index": case.index, "spec_hash": case.spec.content_hash()}


def fleet_campaign(
    *,
    seed: int,
    runs: int,
    workers: int = 1,
    promote_dir=None,
    replay_every: int = 10,
    parity_check: bool = True,
    log=None,
) -> dict:
    """One full fleet fuzz campaign; returns the deterministic report.

    Same shape and cross-checks as :func:`campaign` — replay
    determinism on every ``replay_every``-th case, one CLI ≡ service
    parity probe — but over generated fleets, with failures promoted
    whole (fleet timelines are round-granular; the epoch-level shrinker
    does not apply).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    registry = get_registry()
    say = log if log is not None else (lambda _msg: None)

    cases = [generate_fleet_case(seed, i) for i in range(runs)]

    # -- execute ----------------------------------------------------------
    if workers <= 1:
        records = [run_fleet_case_record(c) for c in cases]
    else:
        tasks = [
            CellTask(
                index=c.index, cell_index=c.index,
                params=(("case", json.dumps(c.to_dict(), sort_keys=True)),),
                seed=seed, cell_seed=seed,
            )
            for c in cases
        ]
        outcomes = execute_tasks(tasks, run_fleet_case, workers=workers)
        records = []
        for c in cases:
            out = outcomes[c.index]
            if out.ok:
                records.append(out.result["data"])
            else:
                records.append({
                    "index": c.index,
                    "policy": c.spec.policy,
                    "placer": c.spec.placer,
                    "n_rounds": c.spec.n_rounds,
                    "n_nodes": len(c.spec.nodes),
                    "n_workloads": len(c.spec.workloads),
                    "n_events": len(c.spec.events),
                    "spec_hash": c.spec.content_hash(),
                    "status": "violation",
                    "finding": {
                        "check": f"crash:{out.failure.error}",
                        "epoch": None,
                        "message": out.failure.message,
                        "context": {},
                    },
                    "result_hash": None,
                })
    for rec in records:
        registry.counter("fuzz_fleet_runs_total", status=rec["status"]).inc()
        if rec["finding"] is not None:
            registry.counter("fuzz_violations_total", check=rec["finding"]["check"]).inc()

    # -- replay determinism ----------------------------------------------
    replay = {"checked": [], "mismatches": []}
    for i in range(0, runs, max(replay_every, 1)):
        again = run_fleet_case_record(cases[i])
        replay["checked"].append(i)
        if again != records[i]:
            replay["mismatches"].append({"index": i, "first": records[i], "replay": again})
            registry.counter("fuzz_violations_total", check="determinism").inc()
    if replay["mismatches"]:
        say(f"replay determinism FAILED on {len(replay['mismatches'])} case(s)")

    # -- CLI ≡ service parity --------------------------------------------
    parity = None
    if parity_check:
        ok_cases = [c for c, r in zip(cases, records) if r["status"] == "ok"]
        if ok_cases:
            probe = min(
                ok_cases,
                key=lambda c: (c.spec.n_rounds * c.spec.epochs_per_round, c.index),
            )
            parity = _fleet_service_parity(probe)
            if not parity["ok"]:
                registry.counter("fuzz_violations_total", check="service_parity").inc()
                say(f"CLI/service parity FAILED on case {probe.index}")

    # -- promote ----------------------------------------------------------
    failures = []
    for rec in records:
        if rec["status"] != "violation":
            continue
        entry = {"index": rec["index"], "finding": rec["finding"]}
        case = cases[rec["index"]]
        entry["minimized"] = case.to_dict()
        if promote_dir is not None:
            path = promote_fleet_crasher(case, rec["finding"], promote_dir)
            entry["promoted"] = str(path)
            say(f"promoted fleet case {rec['index']} -> {path}")
        failures.append(entry)

    n_ok = sum(r["status"] == "ok" for r in records)
    return {
        "mode": "fleet",
        "seed": seed,
        "runs": runs,
        "workers": workers,
        "counts": {
            "ok": n_ok,
            "violations": runs - n_ok,
            "replay_checked": len(replay["checked"]),
            "replay_mismatches": len(replay["mismatches"]),
        },
        "cases": records,
        "failures": failures,
        "replay": replay,
        "service_parity": parity,
        "clean": (
            n_ok == runs
            and not replay["mismatches"]
            and (parity is None or parity["ok"])
        ),
    }


def campaign(
    *,
    seed: int,
    runs: int,
    max_epochs: int = DEFAULT_MAX_EPOCHS,
    workers: int = 1,
    shrink: bool = True,
    promote_dir=None,
    replay_every: int = 10,
    parity_check: bool = True,
    log=None,
) -> dict:
    """One full fuzz campaign; returns the deterministic report dict."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    registry = get_registry()
    say = log if log is not None else (lambda _msg: None)

    cases = [generate_case(seed, i, max_epochs=max_epochs) for i in range(runs)]

    # -- execute ----------------------------------------------------------
    if workers <= 1:
        records = [run_case_record(c) for c in cases]
    else:
        tasks = [
            CellTask(
                index=c.index, cell_index=c.index,
                params=(("case", json.dumps(c.to_dict(), sort_keys=True)),),
                seed=seed, cell_seed=seed,
            )
            for c in cases
        ]
        outcomes = execute_tasks(tasks, run_case, workers=workers)
        records = []
        for c in cases:
            out = outcomes[c.index]
            if out.ok:
                records.append(out.result["data"])
            else:
                # the worker process itself died — still a finding
                records.append({
                    "index": c.index,
                    "policy": c.spec.policy,
                    "fast_gb": c.fast_gb,
                    "n_epochs": c.spec.n_epochs,
                    "n_workloads": len(c.spec.workloads),
                    "n_events": len(c.spec.events),
                    "spec_hash": c.spec.content_hash(),
                    "status": "violation",
                    "finding": {
                        "check": f"crash:{out.failure.error}",
                        "epoch": None,
                        "message": out.failure.message,
                        "context": {},
                    },
                    "result_hash": None,
                })
    for rec in records:
        registry.counter("fuzz_runs_total", status=rec["status"]).inc()
        if rec["finding"] is not None:
            registry.counter("fuzz_violations_total", check=rec["finding"]["check"]).inc()

    # -- replay determinism ----------------------------------------------
    replay = {"checked": [], "mismatches": []}
    for i in range(0, runs, max(replay_every, 1)):
        again = run_case_record(cases[i])
        replay["checked"].append(i)
        if again != records[i]:
            replay["mismatches"].append({"index": i, "first": records[i], "replay": again})
            registry.counter("fuzz_violations_total", check="determinism").inc()
    if replay["mismatches"]:
        say(f"replay determinism FAILED on {len(replay['mismatches'])} case(s)")

    # -- CLI ≡ service parity --------------------------------------------
    parity = None
    if parity_check:
        ok_cases = [c for c, r in zip(cases, records) if r["status"] == "ok"]
        if ok_cases:
            probe = min(ok_cases, key=lambda c: (c.spec.n_epochs, c.index))
            parity = _service_parity(probe)
            if not parity["ok"]:
                registry.counter("fuzz_violations_total", check="service_parity").inc()
                say(f"CLI/service parity FAILED on case {probe.index}")

    # -- shrink + promote -------------------------------------------------
    failures = []
    shrunk = 0
    for rec in records:
        if rec["status"] != "violation":
            continue
        entry = {
            "index": rec["index"],
            "finding": rec["finding"],
            "original": {"n_epochs": rec["n_epochs"], "n_events": rec["n_events"]},
        }
        case = cases[rec["index"]]
        if shrink and shrunk < MAX_SHRINKS:
            shrunk += 1
            say(f"shrinking case {rec['index']} ({rec['finding']['check']}) ...")
            res = shrink_case(case, rec["finding"]["check"], case_finding)
            registry.counter("fuzz_shrink_steps_total").inc(res.steps)
            case = res.case
            entry["shrink"] = {
                "steps": res.steps,
                "attempts": res.attempts,
                "n_epochs": case.spec.n_epochs,
                "n_events": len(case.spec.events),
            }
        entry["minimized"] = case.to_dict()
        if promote_dir is not None:
            path = promote_crasher(case, rec["finding"], promote_dir)
            entry["promoted"] = str(path)
            say(f"promoted case {rec['index']} -> {path}")
        failures.append(entry)

    n_ok = sum(r["status"] == "ok" for r in records)
    return {
        "seed": seed,
        "runs": runs,
        "max_epochs": max_epochs,
        "workers": workers,
        "counts": {
            "ok": n_ok,
            "violations": runs - n_ok,
            "replay_checked": len(replay["checked"]),
            "replay_mismatches": len(replay["mismatches"]),
        },
        "cases": records,
        "failures": failures,
        "replay": replay,
        "service_parity": parity,
        "clean": (
            n_ok == runs
            and not replay["mismatches"]
            and (parity is None or parity["ok"])
        ),
    }
