"""Hardware substrate: cores, TLBs, memory tiers, interconnect.

These models are *structural plus cost-accounted*: the TLB really holds
translations and really gets invalidated by shootdowns (so the scope
reduction from per-thread page tables is observable), while latencies and
IPI costs come from the calibrated constants in
:mod:`repro.mm.migration_costs` and :mod:`repro.sim.config`.
"""

from repro.machine.cpu import Core, CpuComplex, IpiStats
from repro.machine.interconnect import Interconnect
from repro.machine.memtier import MemoryTier, TierStats
from repro.machine.platform import Machine, build_machine
from repro.machine.tlb import Tlb, TlbStats

__all__ = [
    "Core",
    "CpuComplex",
    "IpiStats",
    "Interconnect",
    "MemoryTier",
    "TierStats",
    "Machine",
    "build_machine",
    "Tlb",
    "TlbStats",
]
