"""Per-core TLB model.

Each core owns one TLB caching virtual→physical translations for the
thread currently running on it.  The model is structural: entries are
really inserted on walks and really removed by invalidations, so a
migration's TLB shootdown has an observable cost (subsequent misses) in
addition to its IPI cost.

Capacity eviction is random-candidate (an adequate stand-in for the
hardware's limited-associativity replacement) driven by a deterministic
stream so runs reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TlbStats:
    """Counters for one TLB."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    flushes: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class Tlb:
    """A single core's TLB.

    Parameters
    ----------
    entries:
        Capacity in translations.
    rng:
        Deterministic generator used for replacement victim choice.
    """

    entries: int
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    stats: TlbStats = field(default_factory=TlbStats)

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB needs positive capacity")
        # vpn -> pfn for the address space currently loaded on this core.
        self._map: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._map)

    def lookup(self, vpn: int) -> int | None:
        """Return the cached pfn for ``vpn``, counting hit/miss."""
        pfn = self._map.get(vpn)
        if pfn is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return pfn

    def contains(self, vpn: int) -> bool:
        """Non-counting membership probe (used by assertions/tests)."""
        return vpn in self._map

    def insert(self, vpn: int, pfn: int) -> None:
        """Install a translation, evicting a random victim when full."""
        if vpn not in self._map and len(self._map) >= self.entries:
            victim = self._pick_victim()
            del self._map[victim]
            self.stats.evictions += 1
        self._map[vpn] = pfn

    def _pick_victim(self) -> int:
        keys = list(self._map.keys())
        return keys[int(self.rng.integers(len(keys)))]

    def invalidate(self, vpn: int) -> bool:
        """Drop one translation (the per-page INVLPG of a shootdown)."""
        present = self._map.pop(vpn, None) is not None
        if present:
            self.stats.invalidations += 1
        return present

    def invalidate_many(self, vpns) -> int:
        """Drop a batch of translations; returns how many were present."""
        dropped = 0
        for vpn in vpns:
            if self._map.pop(vpn, None) is not None:
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def flush(self) -> int:
        """Full flush (CR3 reload without PCID); returns entries dropped."""
        n = len(self._map)
        self._map.clear()
        self.stats.flushes += 1
        return n
