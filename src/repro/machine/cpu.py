"""Cores and inter-processor interrupts.

A :class:`Core` tracks which thread is scheduled on it (migration-scope
computation needs core→thread mapping) and owns a TLB.  The
:class:`CpuComplex` delivers IPIs: the cost model follows the measured
behaviour that a shootdown's initiator waits for every targeted core to
acknowledge, so cost grows with the number of targets and a slow
(busy/deep-sleep) responder stretches the whole operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.tlb import Tlb
from repro.sim.units import ns_to_cycles


@dataclass
class IpiStats:
    """Aggregate IPI accounting for the whole complex."""

    broadcasts: int = 0
    unicast_targets: int = 0
    cycles_spent: int = 0


@dataclass
class Core:
    """One CPU core: an id, its TLB, and the thread it runs."""

    core_id: int
    tlb: Tlb
    thread_id: int | None = None  # simulator-global thread id, None = idle

    def schedule(self, thread_id: int | None) -> None:
        """Context-switch this core to ``thread_id`` (None parks it).

        The TLB is *not* flushed here: with per-thread page tables and
        PCID-style tagging the interesting flushes are the explicit
        shootdowns, which the mm layer issues.
        """
        self.thread_id = thread_id


class CpuComplex:
    """All cores of the (single-socket) machine plus IPI machinery."""

    def __init__(
        self,
        n_cores: int,
        tlb_entries: int,
        rng: np.random.Generator | None = None,
        ipi_deliver_ns: float = 1200.0,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("need at least one core")
        rng = rng if rng is not None else np.random.default_rng(0)
        # Give each core's TLB its own child stream for victim selection.
        self.cores: list[Core] = [
            Core(core_id=i, tlb=Tlb(entries=tlb_entries, rng=np.random.default_rng(rng.integers(2**63))))
            for i in range(n_cores)
        ]
        self.ipi_deliver_cycles = ns_to_cycles(ipi_deliver_ns)
        self.ipi_stats = IpiStats()

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def cores_running(self, thread_ids: set[int]) -> list[Core]:
        """Cores currently executing any of ``thread_ids``."""
        return [c for c in self.cores if c.thread_id is not None and c.thread_id in thread_ids]

    def schedule_thread(self, thread_id: int, core_id: int) -> None:
        """Pin ``thread_id`` onto ``core_id`` (the paper pins 8 threads/app)."""
        self.cores[core_id].schedule(thread_id)

    def deliver_ipis(self, target_core_ids: list[int]) -> int:
        """Deliver a synchronous IPI round to ``target_core_ids``.

        Returns the cycle cost charged to the initiating core.  Cost =
        a fixed send plus per-target acknowledgement latency; targets are
        interrupted in parallel but the initiator spin-waits for the last
        ack, which in practice grows roughly linearly with target count
        on the x2APIC unicast path Linux uses for small masks.
        """
        n = len(target_core_ids)
        if n == 0:
            return 0
        self.ipi_stats.broadcasts += 1
        self.ipi_stats.unicast_targets += n
        # Fixed initiation + per-target ack accumulation.
        cost = self.ipi_deliver_cycles + (n - 1) * (self.ipi_deliver_cycles // 4)
        self.ipi_stats.cycles_spent += cost
        return cost
