"""Cross-tier interconnect (UPI link standing in for CXL).

The paper emulates CXL memory over a remote NUMA node: 25 GB/s per
direction of UPI bandwidth and ~90 ns of added latency.  Cross-tier page
copies traverse this link, so migration bandwidth — not just migration
CPU cost — is a contended resource shared by every workload's migration
threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import ns_to_cycles


@dataclass
class Interconnect:
    """Point-to-point link between the fast and slow tiers."""

    bandwidth_gbps: float = 25.0
    added_latency_ns: float = 90.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.added_latency_ns < 0:
            raise ValueError("added latency cannot be negative")
        self.bytes_transferred = 0
        self._nominal = (self.bandwidth_gbps, self.added_latency_ns)

    @property
    def degraded(self) -> bool:
        return (self.bandwidth_gbps, self.added_latency_ns) != self._nominal

    def degrade(self, *, bandwidth_factor: float = 1.0, latency_factor: float = 1.0) -> None:
        """Capacity event: the link loses bandwidth and/or gains latency.

        Factors are applied to the *nominal* values, so repeated calls
        re-specify (rather than compound) the degradation.
        """
        if bandwidth_factor <= 0 or bandwidth_factor > 1:
            raise ValueError("bandwidth_factor must lie in (0, 1]")
        if latency_factor < 1:
            raise ValueError("latency_factor must be >= 1")
        self.bandwidth_gbps = self._nominal[0] * bandwidth_factor
        self.added_latency_ns = self._nominal[1] * latency_factor

    def restore(self) -> None:
        """Undo :meth:`degrade` — back to nominal link parameters."""
        self.bandwidth_gbps, self.added_latency_ns = self._nominal

    @property
    def added_latency_cycles(self) -> int:
        return ns_to_cycles(self.added_latency_ns)

    def transfer_cost_cycles(self, nbytes: int, concurrent_streams: int = 1) -> int:
        """Cycles to move ``nbytes`` across the link.

        ``concurrent_streams`` models other active migrations sharing the
        link; each stream sees its fair share of the bandwidth.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if concurrent_streams < 1:
            raise ValueError("at least one stream")
        self.bytes_transferred += nbytes
        effective = self.bandwidth_gbps / concurrent_streams
        ns = self.added_latency_ns + nbytes / effective
        return ns_to_cycles(ns)
