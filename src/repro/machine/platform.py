"""Machine assembly: cores + TLBs + tiers + interconnect."""

from __future__ import annotations

import numpy as np

from repro.machine.cpu import CpuComplex
from repro.machine.interconnect import Interconnect
from repro.machine.memtier import MemoryTier
from repro.sim.clock import Clock
from repro.sim.config import MachineConfig
from repro.sim.units import PAGE_SIZE

FAST_TIER = 0
SLOW_TIER = 1


class Machine:
    """The simulated platform every experiment runs on.

    Attributes
    ----------
    cpu:
        The core complex (scheduling + IPIs + per-core TLBs).
    tiers:
        ``tiers[0]`` is fast DRAM, ``tiers[1]`` the slow CXL-like tier.
    link:
        Cross-tier interconnect for page copies.
    clock:
        Global cycle clock.
    """

    def __init__(
        self,
        config: MachineConfig,
        page_size: int = PAGE_SIZE,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config
        self.page_size = page_size
        self.cpu = CpuComplex(
            n_cores=config.n_cores,
            tlb_entries=config.tlb_entries,
            rng=rng,
            ipi_deliver_ns=config.ipi_deliver_ns,
        )
        self.tiers = [
            MemoryTier(config.fast, tier_id=FAST_TIER, page_size=page_size),
            MemoryTier(config.slow, tier_id=SLOW_TIER, page_size=page_size),
        ]
        self.link = Interconnect(bandwidth_gbps=min(config.slow.bandwidth_gbps, 25.0))
        self.clock = Clock()

    @property
    def fast(self) -> MemoryTier:
        return self.tiers[FAST_TIER]

    @property
    def slow(self) -> MemoryTier:
        return self.tiers[SLOW_TIER]

    def tier(self, tier_id: int) -> MemoryTier:
        return self.tiers[tier_id]

    def cross_tier_copy_cycles(self, nbytes: int, concurrent_streams: int = 1) -> int:
        """Cost of copying ``nbytes`` between tiers: bounded by the link."""
        return self.link.transfer_cost_cycles(nbytes, concurrent_streams)


def build_machine(
    config: MachineConfig | None = None,
    page_size: int = PAGE_SIZE,
    seed: int = 0,
) -> Machine:
    """Construct a :class:`Machine` (paper defaults when no config given)."""
    cfg = config if config is not None else MachineConfig()
    return Machine(cfg, page_size=page_size, rng=np.random.default_rng(seed))
