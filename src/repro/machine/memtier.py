"""Memory tier model: capacity, latency, bandwidth.

Tiers hold *frames*; allocation policy lives in
:mod:`repro.mm.frame_alloc`.  Here we model the performance surface: an
unloaded access latency plus a simple loaded-latency ramp as consumed
bandwidth approaches the tier's peak, which is what makes a BE workload's
bandwidth hunger visible to co-runners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import TierConfig
from repro.sim.units import PAGE_SIZE, ns_to_cycles


@dataclass
class TierStats:
    """Counters for one tier."""

    reads: int = 0
    writes: int = 0
    bytes_copied_in: int = 0
    bytes_copied_out: int = 0


class MemoryTier:
    """One tier of the memory hierarchy.

    Parameters
    ----------
    config:
        Static tier description (capacity/latency/bandwidth).
    tier_id:
        0 = fast, 1 = slow by convention throughout the repo.
    page_size:
        Frame granularity; co-location experiments use a scaled page unit.
    """

    def __init__(self, config: TierConfig, tier_id: int, page_size: int = PAGE_SIZE) -> None:
        self.config = config
        self.tier_id = tier_id
        self.page_size = page_size
        self.total_frames = config.capacity_bytes // page_size
        if self.total_frames <= 0:
            raise ValueError(f"tier {config.name!r} smaller than one page")
        self.stats = TierStats()

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def load_latency_cycles(self) -> int:
        return self.config.load_latency_cycles

    def access_latency_cycles(self, utilization: float = 0.0) -> float:
        """Loaded access latency.

        ``utilization`` is consumed/peak bandwidth in [0, 1).  We use the
        standard closed-form M/M/1-style ramp ``unloaded / (1 - u)``
        capped at 4x unloaded, which matches the qualitative curves in
        tiered-memory measurement studies (latency roughly flat until
        ~60-70% utilization, then climbing steeply).
        """
        u = min(max(utilization, 0.0), 0.96)
        lat = self.load_latency_cycles / (1.0 - u)
        return min(lat, 4.0 * self.load_latency_cycles)

    def copy_cost_cycles(self, nbytes: int) -> int:
        """Cycles for a streaming copy of ``nbytes`` limited by this
        tier's bandwidth (the slower side bounds a cross-tier copy)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        ns = nbytes / self.config.bandwidth_gbps  # GB/s == bytes/ns
        return ns_to_cycles(ns)

    def record_access(self, is_write: bool, count: int = 1) -> None:
        if is_write:
            self.stats.writes += count
        else:
            self.stats.reads += count
