"""repro — a full reproduction of Vulcan (ICPP'25).

"Leave No One Behind: Towards Fair and Efficient Tiered Memory
Management for Multi-Applications", Tang, Wang, Wang & Wu, ICPP 2025.

The package layers:

* :mod:`repro.sim` — units, clocks, RNG streams, event loop;
* :mod:`repro.machine` — cores, TLBs, memory tiers, interconnect;
* :mod:`repro.mm` — PTEs, 4-level page tables, per-thread replication,
  frame allocation, LRU pagevecs, the 5-phase migration engine and its
  paper-calibrated cost model, THP, page shadowing;
* :mod:`repro.profiling` — PEBS / PT-scan / hint-fault / hybrid
  profilers and the Memtis hotness histogram;
* :mod:`repro.core` — Vulcan: QoS (GPT/FTHR/demand), CBFRP, Table 1
  page classes, priority queues, biased migration, the daemon;
* :mod:`repro.policies` — TPP, Memtis, Nomad, static baselines, and
  Vulcan behind one policy interface;
* :mod:`repro.workloads` — Memcached/PageRank/Liblinear-shaped
  generators and the Nomad-style microbenchmark;
* :mod:`repro.metrics` — Jain / CFI fairness, perf normalization;
* :mod:`repro.obs` — structured tracing, metrics registry, and trace
  exporters (cycle-clocked, deterministic, off by default);
* :mod:`repro.harness` — the epoch-driven co-location simulator.

Quickstart::

    from repro.harness import ColocationExperiment
    from repro.workloads.mixes import paper_colocation_mix

    exp = ColocationExperiment("vulcan", paper_colocation_mix())
    result = exp.run(n_epochs=60)
    print(result.by_name("memcached").mean_ops())
"""

from repro.harness import ColocationExperiment, ExperimentResult
from repro.metrics.fairness import cfi, jain_index
from repro.policies import POLICY_REGISTRY
from repro.sim.config import MachineConfig, SimulationConfig, paper_machine_config

__version__ = "1.0.0"

__all__ = [
    "ColocationExperiment",
    "ExperimentResult",
    "POLICY_REGISTRY",
    "MachineConfig",
    "SimulationConfig",
    "paper_machine_config",
    "cfi",
    "jain_index",
    "__version__",
]
