"""Multiprocessing sweep execution: fan grid cells × seeds out to workers.

Design constraints (see DESIGN.md §"Parallel sweeps"):

* **Determinism** — the full task list (cell params × seed, plus the
  derived per-cell seed when enabled) is built up front, before any
  worker starts, so what each factory invocation computes can never
  depend on worker count or completion order.  Results are keyed by
  task index and re-assembled in task order, making serial and parallel
  sweeps aggregate bit-identical numbers.
* **Isolation** — one forked process per cell.  A cell that raises,
  exceeds its timeout, or kills its interpreter outright records a
  structured :class:`CellFailure` instead of taking down the sweep.
* **Cheap transport** — children ship the :meth:`ExperimentResult.to_dict`
  plain-data form over a pipe; metric extraction stays in the parent so
  metric callables never need to survive a process boundary.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.harness.experiment import ExperimentResult
from repro.obs.metrics import get_registry

#: Seconds between scheduler polls while workers are busy.
_POLL_SECONDS = 0.02


class SweepCellError(RuntimeError):
    """A sweep cell failed; carries the cell's params and seed.

    Raised from serial (``workers=1``) sweeps; parallel sweeps record
    the equivalent :class:`CellFailure` structurally instead.
    """

    def __init__(self, message: str, *, params: tuple[tuple[str, Any], ...], seed: int) -> None:
        super().__init__(f"sweep cell {dict(params)} seed={seed}: {message}")
        self.params = params
        self.seed = seed


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one failed (cell, seed) evaluation."""

    params: tuple[tuple[str, Any], ...]
    seed: int
    kind: str  # "exception" | "timeout" | "crash" | "cancelled"
    error: str  # exception type name, or the kind for non-exceptions
    message: str
    traceback: str = ""


@dataclass(frozen=True)
class CellTask:
    """One factory invocation: a grid cell at one seed."""

    index: int  # position in the deterministic task list
    cell_index: int  # which grid cell this seed belongs to
    params: tuple[tuple[str, Any], ...]
    seed: int  # the user-visible seed
    cell_seed: int  # what the factory actually receives


@dataclass
class CellOutcome:
    """What one task produced: a result payload or a failure."""

    task: CellTask
    result: dict | None = None  # ExperimentResult.to_dict() form
    failure: CellFailure | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


def derive_cell_seed(params: dict[str, Any] | tuple[tuple[str, Any], ...], seed: int) -> int:
    """Stable per-cell seed: a hash of (params, seed), worker-order free.

    Decorrelates the RNG streams of neighbouring grid cells that would
    otherwise all run the same handful of raw seeds.  Both the serial
    and the parallel path call this same function (when enabled), so
    derived-seed sweeps stay differentially identical too.
    """
    items = sorted(params.items()) if isinstance(params, dict) else sorted(params)
    blob = repr((items, int(seed))).encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def build_tasks(
    grid_names: list[str],
    combos: list[tuple[Any, ...]],
    seeds: list[int],
    *,
    derived_seeds: bool = False,
) -> list[CellTask]:
    """The deterministic task list: cells in grid order × seeds in order."""
    tasks: list[CellTask] = []
    for cell_index, combo in enumerate(combos):
        params = dict(zip(grid_names, combo))
        key = tuple(sorted(params.items()))
        for seed in seeds:
            cell_seed = derive_cell_seed(params, seed) if derived_seeds else seed
            tasks.append(CellTask(len(tasks), cell_index, key, seed, cell_seed))
    return tasks


def _serialize(result: Any) -> dict:
    if isinstance(result, ExperimentResult):
        return {"type": "experiment_result", "data": result.to_dict()}
    if isinstance(result, dict):
        # Plain-data payloads (the service's job results) ride the same
        # pipe; sweeps still require experiment results at deserialize.
        return {"type": "json", "data": result}
    raise TypeError(
        f"parallel sweeps need factories returning ExperimentResult or a "
        f"plain dict (got {type(result).__name__}); run with workers=1 or "
        f"add to_dict support"
    )


def deserialize_result(payload: dict) -> ExperimentResult:
    if payload.get("type") != "experiment_result":
        raise ValueError(f"unknown result payload type {payload.get('type')!r}")
    return ExperimentResult.from_dict(payload["data"])


def _child_main(conn, factory: Callable[..., Any], task: CellTask) -> None:
    """Worker body: run the factory, ship the serialized result back."""
    try:
        result = factory(**dict(task.params), seed=task.cell_seed)
        conn.send({"ok": True, "result": _serialize(result)})
    except BaseException as exc:  # noqa: BLE001 — everything becomes a record
        conn.send({
            "ok": False,
            "error": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        })
    finally:
        conn.close()


@dataclass
class _Running:
    task: CellTask
    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    started: float


def _context() -> multiprocessing.context.BaseContext:
    """Prefer fork (closures and lambdas work); fall back to default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _cancelled_outcome(task: CellTask) -> CellOutcome:
    return CellOutcome(
        task=task,
        failure=CellFailure(
            params=task.params,
            seed=task.seed,
            kind="cancelled",
            error="CellCancelled",
            message="task cancelled before completion",
        ),
    )


def execute_tasks(
    tasks: list[CellTask],
    factory: Callable[..., Any],
    *,
    workers: int,
    timeout: float | None = None,
    on_done: Callable[[CellOutcome], None] | None = None,
    should_cancel: Callable[[CellTask], bool] | None = None,
) -> dict[int, CellOutcome]:
    """Run ``tasks`` on a bounded pool of single-shot worker processes.

    Returns outcomes keyed by task index.  Worker completion order never
    leaks into the outcome contents: each child's result depends only on
    its task, and the caller re-assembles by index.

    ``should_cancel`` is polled once per scheduler tick for every task
    still in flight (and for queued tasks before they launch); a task
    it returns True for is terminated and recorded as a ``"cancelled"``
    failure — the cooperative-cancellation hook the service's job
    scheduler uses for both client cancels and clean shutdown.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ctx = _context()
    registry = get_registry()
    outcomes: dict[int, CellOutcome] = {}
    pending = list(tasks)
    pending.reverse()  # pop() from the front of the original order
    running: dict[int, _Running] = {}

    def finish(outcome: CellOutcome) -> None:
        outcomes[outcome.task.index] = outcome
        status = "ok" if outcome.ok else outcome.failure.kind
        registry.counter("sweep_cells_done", status=status).inc()
        registry.gauge("sweep_cells_inflight").set(len(running))
        if on_done is not None:
            on_done(outcome)

    while pending or running:
        while pending and len(running) < workers:
            task = pending.pop()
            if should_cancel is not None and should_cancel(task):
                finish(_cancelled_outcome(task))
                continue
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_main, args=(child_conn, factory, task), daemon=True)
            proc.start()
            child_conn.close()
            running[task.index] = _Running(task, proc, parent_conn, time.monotonic())
            registry.gauge("sweep_cells_inflight").set(len(running))

        conn_to_index = {r.conn: idx for idx, r in running.items()}
        ready = multiprocessing.connection.wait(list(conn_to_index), timeout=_POLL_SECONDS)
        for conn in ready:
            idx = conn_to_index[conn]
            run = running.pop(idx)
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # The child died before sending anything (segfault,
                # os._exit, OOM kill): record a crash, keep sweeping.
                run.process.join()
                finish(CellOutcome(
                    task=run.task,
                    failure=CellFailure(
                        params=run.task.params,
                        seed=run.task.seed,
                        kind="crash",
                        error="WorkerCrash",
                        message=f"worker exited with code {run.process.exitcode} before reporting a result",
                    ),
                ))
                continue
            finally:
                conn.close()
            run.process.join()
            if message["ok"]:
                finish(CellOutcome(task=run.task, result=message["result"]))
            else:
                finish(CellOutcome(
                    task=run.task,
                    failure=CellFailure(
                        params=run.task.params,
                        seed=run.task.seed,
                        kind="exception",
                        error=message["error"],
                        message=message["message"],
                        traceback=message["traceback"],
                    ),
                ))

        if should_cancel is not None:
            for idx, run in list(running.items()):
                if not should_cancel(run.task):
                    continue
                running.pop(idx)
                run.process.terminate()
                run.process.join()
                run.conn.close()
                finish(_cancelled_outcome(run.task))

        if timeout is not None:
            now = time.monotonic()
            for idx, run in list(running.items()):
                if now - run.started <= timeout:
                    continue
                running.pop(idx)
                run.process.terminate()
                run.process.join()
                run.conn.close()
                finish(CellOutcome(
                    task=run.task,
                    failure=CellFailure(
                        params=run.task.params,
                        seed=run.task.seed,
                        kind="timeout",
                        error="CellTimeout",
                        message=f"cell exceeded {timeout:g}s timeout and was terminated",
                    ),
                ))
    registry.gauge("sweep_cells_inflight").set(0)
    return outcomes
