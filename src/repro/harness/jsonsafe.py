"""Strict-JSON-safe transport of float payloads.

Python's ``json`` module happily *emits* ``NaN``/``Infinity`` literals,
but they are not JSON: a strict parser (``json.loads`` is lenient, most
HTTP clients are not) rejects them, and ``json.dumps(allow_nan=False)``
raises.  Any payload that crosses the service's HTTP boundary — or
lands in the on-disk result cache, which the service shares with
non-Python consumers — must therefore carry non-finite floats in an
encoded form.

The encoding is a single-key marker object, ``{"__float__": "NaN"}``
(likewise ``"Infinity"`` / ``"-Infinity"``), chosen over bare sentinel
strings so a legitimate string value ``"NaN"`` can never be corrupted
by the decode pass.  Finite floats, ints, strings and containers pass
through untouched, so payloads with no non-finite values are
byte-identical before and after — the golden suites that pin
serialized results bit-for-bit are unaffected.
"""

from __future__ import annotations

import math
from typing import Any

#: marker key for encoded non-finite floats
FLOAT_KEY = "__float__"

_ENCODE = {math.inf: "Infinity", -math.inf: "-Infinity"}
_DECODE = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}


def encode_nonfinite(obj: Any) -> Any:
    """Recursively replace non-finite floats with marker objects.

    The result round-trips through ``json.dumps(..., allow_nan=False)``.
    Containers are rebuilt only on the path to a non-finite value in
    the dict/tuple case; lists are always rebuilt (cheap, and the
    common case for timeseries payloads).
    """
    if isinstance(obj, float):
        if math.isnan(obj):
            return {FLOAT_KEY: "NaN"}
        if math.isinf(obj):
            return {FLOAT_KEY: _ENCODE[obj]}
        return obj
    if isinstance(obj, dict):
        return {k: encode_nonfinite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode_nonfinite(v) for v in obj]
    return obj


def decode_nonfinite(obj: Any) -> Any:
    """Inverse of :func:`encode_nonfinite`."""
    if isinstance(obj, dict):
        if len(obj) == 1 and FLOAT_KEY in obj:
            try:
                return _DECODE[obj[FLOAT_KEY]]
            except (KeyError, TypeError):
                raise ValueError(f"unknown {FLOAT_KEY} marker: {obj[FLOAT_KEY]!r}") from None
        return {k: decode_nonfinite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [decode_nonfinite(v) for v in obj]
    return obj
