"""Experiment harness: the epoch-driven co-location simulator and the
per-figure experiment entry points."""

from repro.harness.experiment import (
    ColocationExperiment,
    ExperimentResult,
    WorkloadTimeseries,
)

from repro.harness.export import to_json, to_rows, write_csv, write_json
from repro.harness.sweeps import Sweep, SweepCell

__all__ = [
    "ColocationExperiment",
    "ExperimentResult",
    "WorkloadTimeseries",
    "Sweep",
    "SweepCell",
    "to_rows",
    "to_json",
    "write_csv",
    "write_json",
]
