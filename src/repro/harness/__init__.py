"""Experiment harness: the epoch-driven co-location simulator and the
per-figure experiment entry points."""

from repro.harness.experiment import (
    ColocationExperiment,
    ExperimentResult,
    WorkloadTimeseries,
)

from repro.harness.cache import ResultCache
from repro.harness.export import to_json, to_rows, write_csv, write_json
from repro.harness.parallel import CellFailure, SweepCellError, derive_cell_seed
from repro.harness.sweeps import Sweep, SweepCell

__all__ = [
    "ColocationExperiment",
    "ExperimentResult",
    "WorkloadTimeseries",
    "Sweep",
    "SweepCell",
    "SweepCellError",
    "CellFailure",
    "ResultCache",
    "derive_cell_seed",
    "to_rows",
    "to_json",
    "write_csv",
    "write_json",
]
