"""On-disk result cache for parameter sweeps.

One sweep cell × seed = one JSON file under ``cache_dir``, named by a
**content hash** of everything that determines the cell's result:

* the cell parameters and the seed actually passed to the factory;
* a fingerprint of the factory callable (module-qualified name plus a
  hash of its source text, so editing the factory invalidates entries);
* any caller-supplied ``extra`` material — the CLI passes the policy,
  mix, epoch count and machine knobs here so two sweeps over different
  configurations never share entries.

The payload is the :meth:`ExperimentResult.to_dict` form, which
round-trips exactly through JSON (shortest-round-trip float encoding),
so a cache hit reproduces the cold-run metrics bit for bit.

Corrupt or truncated entries are treated as misses — a poisoned cache
recomputes the cell instead of crashing the sweep — and writes are
atomic (tmp file + ``os.replace``) so a killed sweep never leaves a
half-written entry behind for ``--resume`` to trip over.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import os
import re
from pathlib import Path
from typing import Any

from repro.obs.metrics import get_registry

#: Bumped whenever the payload layout changes; part of every key.
CACHE_FORMAT_VERSION = 1

#: CPython's default ``object.__repr__`` embeds the instance address —
#: a per-process value that would silently break cache dedup.
_ADDR_REPR = re.compile(r" at 0x[0-9a-fA-F]+>")


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON types with a process-independent form.

    Sets are sorted by their canonical JSON encoding (plain ``sorted``
    would depend on ``PYTHONHASHSEED``-driven iteration order for
    unorderable element types), tuples become lists, bytes become hex,
    and dict keys are stringified.  Anything else falls back to
    ``repr`` — but a repr that embeds a memory address is rejected
    outright, because hashing it would produce a different key in every
    process and two clients submitting identical work would never
    dedupe.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonicalize(v) for v in obj]
        return sorted(items, key=lambda x: json.dumps(x, sort_keys=True))
    if isinstance(obj, (bytes, bytearray)):
        return bytes(obj).hex()
    r = repr(obj)
    if _ADDR_REPR.search(r):
        raise TypeError(
            f"cannot build a stable content hash from {type(obj).__name__}: "
            f"its repr embeds a memory address ({r}); pass plain data instead"
        )
    return r


def content_hash(obj: Any) -> str:
    """Stable sha256 of (nearly) any plain-data object.

    Stable across processes and ``PYTHONHASHSEED`` values: the object
    is canonicalized first (set ordering, tuple/list unification, repr
    address rejection — see :func:`canonicalize`), then serialized with
    sorted keys.
    """
    blob = json.dumps(canonicalize(obj), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def factory_fingerprint(fn: Any) -> dict[str, str]:
    """Identify a factory callable for cache-key purposes.

    ``functools.partial`` is unwrapped so the bound arguments join the
    key material alongside the underlying function's identity.
    """
    if isinstance(fn, functools.partial):
        inner = factory_fingerprint(fn.func)
        inner["partial_args"] = repr(fn.args)
        inner["partial_kwargs"] = repr(sorted(fn.keywords.items()) if fn.keywords else [])
        return inner
    qualname = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = ""
    return {
        "callable": qualname,
        "source_sha": hashlib.sha256(source.encode()).hexdigest(),
    }


class ResultCache:
    """Content-addressed store of serialized per-(cell, seed) results."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.dir = Path(cache_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def key_for(
        factory: Any,
        params: dict[str, Any],
        seed: int,
        extra: dict[str, Any] | None = None,
    ) -> str:
        material = {
            "v": CACHE_FORMAT_VERSION,
            "factory": factory_fingerprint(factory),
            "params": sorted(params.items()),
            "seed": seed,
            "extra": sorted((extra or {}).items()),
        }
        return content_hash(material)

    def path_for(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    # -- read/write ----------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The stored result payload, or None on miss/corruption."""
        path = self.path_for(key)
        registry = get_registry()
        try:
            payload = json.loads(path.read_text())
            if payload.get("v") != CACHE_FORMAT_VERSION or "result" not in payload:
                raise ValueError("unrecognized cache entry layout")
        except FileNotFoundError:
            self.misses += 1
            registry.counter("sweep_cache_misses").inc()
            return None
        except (OSError, ValueError, AttributeError, json.JSONDecodeError):
            # Poisoned entry: recompute rather than crash; the rewrite
            # after recomputation heals the cache.
            self.corrupt += 1
            self.misses += 1
            registry.counter("sweep_cache_corrupt").inc()
            registry.counter("sweep_cache_misses").inc()
            return None
        self.hits += 1
        registry.counter("sweep_cache_hits").inc()
        return payload["result"]

    def put(self, key: str, result: dict) -> None:
        """Atomically persist one result payload."""
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({"v": CACHE_FORMAT_VERSION, "result": result}))
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.dir.glob("*.json"))
