"""Programmatic per-figure experiment entry points.

The benchmark suite (`benchmarks/test_fig*.py`) asserts shapes and
persists text tables; these functions are the *library* API behind
them, so downstream code can regenerate any paper figure's data as
plain Python objects:

    from repro.harness.figures import fig2_breakdown, fig10_comparison
    rows = fig2_breakdown()                # list of dataclasses
    perf, fairness = fig10_comparison(trials=3)

Heavy figures accept scale knobs so callers choose their budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harness.experiment import ColocationExperiment, ExperimentResult
from repro.metrics.fairness import cfi
from repro.mm.migration_costs import MigrationCostModel
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import dilemma_pair, paper_colocation_mix

DEFAULT_SIM = SimulationConfig(epoch_seconds=2.0)
POLICIES = ("tpp", "memtis", "nomad", "vulcan")


@dataclass(frozen=True)
class BreakdownRow:
    """One Fig. 2 bar."""

    cpus: int
    prep: float
    unmap: float
    shootdown: float
    copy: float
    remap: float

    @property
    def total(self) -> float:
        return self.prep + self.unmap + self.shootdown + self.copy + self.remap


def fig1_dilemma(
    *, epochs: int = 25, accesses_per_thread: int = 5000, seed: int = 1
) -> tuple[ExperimentResult, ExperimentResult]:
    """(solo-Memcached, co-located) results under Memtis."""
    from repro.core.classify import ServiceClass
    from repro.workloads.base import WorkloadSpec
    from repro.workloads.memcached import MemcachedWorkload
    from repro.workloads.mixes import PAPER_RSS_BYTES

    sim = SimulationConfig()
    solo_wl = MemcachedWorkload(
        WorkloadSpec(
            name="memcached",
            service=ServiceClass.LC,
            rss_pages=sim.pages_for(PAPER_RSS_BYTES["memcached"]),
            accesses_per_thread=accesses_per_thread,
        ),
        seed=0,
    )
    solo = ColocationExperiment("memtis", [solo_wl], sim=sim, seed=seed).run(epochs)
    co = ColocationExperiment(
        "memtis", dilemma_pair(sim, accesses_per_thread=accesses_per_thread), sim=sim, seed=seed
    ).run(epochs)
    return solo, co


def fig2_breakdown(cpu_counts: tuple[int, ...] = (2, 4, 8, 16, 32)) -> list[BreakdownRow]:
    model = MigrationCostModel()
    out = []
    for c in cpu_counts:
        b = model.single_page_breakdown(c)
        out.append(BreakdownRow(cpus=c, prep=b.prep, unmap=b.unmap, shootdown=b.shootdown, copy=b.copy, remap=b.remap))
    return out


def fig3_shares(
    pages: tuple[int, ...] = (2, 8, 32, 128, 512),
    threads: tuple[int, ...] = (2, 8, 32),
) -> dict[tuple[int, int], dict[str, float]]:
    """(threads, pages) → {tlb, copy, fixed} shares."""
    model = MigrationCostModel()
    return {(t, p): model.batch_shares(p, t) for t in threads for p in pages}


def fig7_speedups(
    page_counts: tuple[int, ...] = (2, 8, 32, 128, 512), n_cpus: int = 32
) -> dict[int, tuple[float, float]]:
    """pages → (prep-opt speedup, prep+tlb-opt speedup)."""
    model = MigrationCostModel()
    out = {}
    for p in page_counts:
        base = model.batch_total_cycles(p, n_cpus, n_cpus)
        s1 = base / model.batch_total_cycles(p, n_cpus, n_cpus, opt_prep=True)
        s2 = base / model.batch_total_cycles(p, n_cpus, n_cpus, opt_prep=True, opt_tlb_target_cpus=1)
        out[p] = (s1, s2)
    return out


def fig9_timeline(
    *, epochs: int = 80, accesses_per_thread: int = 5000, seed: int = 1
) -> ExperimentResult:
    """The three-app Vulcan timeline behind panels (a)-(c)."""
    wls = paper_colocation_mix(DEFAULT_SIM, accesses_per_thread=accesses_per_thread)
    return ColocationExperiment("vulcan", wls, sim=DEFAULT_SIM, seed=seed).run(epochs)


def fig10_comparison(
    *,
    trials: int = 2,
    epochs: int = 80,
    accesses_per_thread: int = 5000,
    policies: tuple[str, ...] = POLICIES,
    steady_window: int = 15,
) -> tuple[dict[str, dict[str, list[float]]], dict[str, list[float]]]:
    """(perf[workload][policy] -> per-trial ops, fairness[policy] -> per-trial CFI)."""
    names = ("memcached", "pagerank", "liblinear")
    perf: dict[str, dict[str, list[float]]] = {n: {p: [] for p in policies} for n in names}
    fairness: dict[str, list[float]] = {p: [] for p in policies}
    for trial in range(trials):
        for policy in policies:
            wls = paper_colocation_mix(DEFAULT_SIM, seed=trial * 10, accesses_per_thread=accesses_per_thread)
            res = ColocationExperiment(policy, wls, sim=DEFAULT_SIM, seed=trial + 1).run(epochs)
            for name in names:
                try:
                    ts = res.by_name(name)
                except KeyError:
                    # Too few epochs for this workload's start time.
                    perf[name][policy].append(float("nan"))
                    continue
                perf[name][policy].append(float(np.mean(ts.ops[-steady_window:])))
            alloc = {pid: np.asarray(ts.fast_pages[-steady_window:], float) for pid, ts in res.workloads.items()}
            fthr = {pid: np.asarray(ts.fthr_true[-steady_window:], float) for pid, ts in res.workloads.items()}
            fairness[policy].append(cfi(alloc, fthr))
    return perf, fairness
