"""Export experiment results to CSV / JSON for external analysis.

``ExperimentResult`` holds per-workload timeseries; plotting or
notebook analysis wants flat tables.  Two exporters:

* :func:`to_rows` / :func:`write_csv` — long-format rows, one per
  (workload, epoch), every recorded metric as a column;
* :func:`to_json` — a nested dict (JSON-serializable) preserving the
  per-workload structure plus experiment-level series.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.harness.experiment import ExperimentResult

_COLUMNS = (
    "epoch",
    "ops",
    "avg_access_cycles",
    "fast_pages",
    "rss_pages",
    "fthr_true",
    "hot_pages",
    "hot_in_fast",
    "cold_in_fast",
    "promotions",
    "demotions",
    "stall_cycles",
    "fthr_policy",
    "gpt",
    "quota",
)


def to_rows(result: ExperimentResult) -> list[dict[str, Any]]:
    """Long-format rows: one per (workload, active epoch)."""
    rows: list[dict[str, Any]] = []
    for ts in result.workloads.values():
        series = {
            "epoch": ts.epochs,
            "ops": ts.ops,
            "avg_access_cycles": ts.avg_access_cycles,
            "fast_pages": ts.fast_pages,
            "rss_pages": ts.rss_pages,
            "fthr_true": ts.fthr_true,
            "hot_pages": ts.hot_pages,
            "hot_in_fast": ts.hot_in_fast,
            "cold_in_fast": ts.cold_in_fast,
            "promotions": ts.promotions,
            "demotions": ts.demotions,
            "stall_cycles": ts.stall_cycles,
            "fthr_policy": ts.fthr_policy,
            "gpt": ts.gpt,
            "quota": ts.quota,
        }
        n = len(ts.epochs)
        for lengths in series.values():
            if len(lengths) != n:
                raise ValueError(f"ragged timeseries for workload {ts.name!r}")
        for i in range(n):
            row: dict[str, Any] = {"policy": result.policy_name, "workload": ts.name, "pid": ts.pid}
            for col in _COLUMNS:
                row[col] = series[col][i]
            rows.append(row)
    return rows


def write_csv(result: ExperimentResult, path: str | Path) -> int:
    """Write long-format CSV; returns the number of data rows."""
    rows = to_rows(result)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=["policy", "workload", "pid", *_COLUMNS])
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def to_json(result: ExperimentResult) -> dict[str, Any]:
    """Nested JSON-serializable structure of the full result."""
    return {
        "policy": result.policy_name,
        "n_epochs": result.n_epochs,
        "free_fast_pages": list(result.free_fast_pages),
        "migration_cycles": list(result.migration_cycles),
        "workloads": {
            ts.name: {
                "pid": ts.pid,
                **{col: list(getattr(ts, col if col != "epoch" else "epochs")) for col in _COLUMNS},
            }
            for ts in result.workloads.values()
        },
    }


def write_json(result: ExperimentResult, path: str | Path) -> None:
    Path(path).write_text(json.dumps(to_json(result), indent=2))
