"""Parameter sweep utilities.

A sweep runs the same experiment factory across a parameter grid and/or
several seeds and collects scalar metrics per cell — the machinery
behind sensitivity studies (fast-tier size, intensity ratios, promotion
budgets, ...).

Sweeps can fan out across processes (``workers=N``) and memoize cell
results on disk (``cache_dir=...``); both paths aggregate bit-identical
numbers for the same seeds — see :mod:`repro.harness.parallel` and
:mod:`repro.harness.cache`.

Example
-------
::

    def factory(fast_gb, seed):
        cfg = MachineConfig(fast=TierConfig("fast", fast_gb * GiB, 70.0, 205.0), ...)
        exp = ColocationExperiment("vulcan", paper_colocation_mix(), machine_config=cfg, seed=seed)
        return exp.run(60)

    sweep = Sweep(metrics={"mc_ops": lambda r: r.by_name("memcached").mean_ops(30)})
    table = sweep.run(factory, grid={"fast_gb": [16, 32, 64]}, seeds=[1, 2, 3],
                      workers=4, cache_dir=".sweep-cache")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.harness.cache import ResultCache
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import (
    CellFailure,
    CellOutcome,
    CellTask,
    SweepCellError,
    build_tasks,
    deserialize_result,
    execute_tasks,
)
from repro.metrics.stats import mean_ci95
from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class SweepCell:
    """One grid point's aggregated results."""

    params: tuple[tuple[str, Any], ...]
    metrics: dict[str, tuple[float, float]]  # name -> (mean, ci95)
    failures: tuple[CellFailure, ...] = ()

    def param(self, name: str) -> Any:
        for k, v in self.params:
            if k == name:
                return v
        raise KeyError(name)

    def mean(self, metric: str) -> float:
        return self.metrics[metric][0]


@dataclass
class Sweep:
    """Grid × seeds sweep with scalar metric extraction."""

    metrics: dict[str, Callable[[ExperimentResult], float]]
    progress: Callable[[str], None] | None = None
    cells: list[SweepCell] = field(default_factory=list)
    errors: list[CellFailure] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def run(
        self,
        factory: Callable[..., ExperimentResult],
        grid: dict[str, list[Any]],
        seeds: list[int] | None = None,
        *,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
        derived_seeds: bool = False,
        cache_extra: dict[str, Any] | None = None,
    ) -> list[SweepCell]:
        """Run ``factory(**params, seed=s)`` over the full grid.

        Parameters
        ----------
        workers:
            ``1`` (default) runs every cell in-process, serially, and a
            failing cell **raises** :class:`SweepCellError`.  ``N > 1``
            fans cells out across ``N`` forked workers; failing cells
            are recorded in :attr:`errors` (and on their cell's
            ``failures``) instead of aborting the sweep.  Aggregated
            metrics are bit-identical across worker counts.
        cache_dir:
            Directory for the on-disk result cache.  Completed (cell,
            seed) results are reused on the next run — a repeated or
            resumed sweep re-runs zero cells.  ``None`` disables
            caching.
        use_cache:
            With ``cache_dir`` set, ``False`` skips cache *reads* but
            still writes fresh results (forced recompute that reheals
            the cache).
        timeout:
            Per-cell wall-clock budget in seconds (parallel mode only);
            a cell exceeding it is terminated and recorded as a
            ``"timeout"`` failure.
        derived_seeds:
            Pass the factory a stable hash of (params, seed) instead of
            the raw seed, decorrelating RNG streams across grid cells.
            Identical in serial and parallel modes.
        cache_extra:
            Extra JSON-serializable key material (policy, mix, machine
            knobs...) distinguishing sweeps that share a factory.

        Returns (and stores) one :class:`SweepCell` per grid point, each
        aggregating all seeds with mean ± CI95.
        """
        if not self.metrics:
            raise ValueError("a sweep needs at least one metric")
        if not grid:
            raise ValueError("empty parameter grid")
        seeds = seeds if seeds is not None else [0]
        if not seeds:
            raise ValueError("need at least one seed")
        if workers < 1:
            raise ValueError("workers must be >= 1")

        names = sorted(grid)
        combos = list(itertools.product(*(grid[n] for n in names)))
        tasks = build_tasks(names, combos, seeds, derived_seeds=derived_seeds)
        registry = get_registry()
        registry.gauge("sweep_cells_total").set(len(tasks))

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        outcomes: dict[int, CellOutcome] = {}

        # 1. warm-cache pass: restore every completed (cell, seed).
        to_run: list[CellTask] = []
        for task in tasks:
            payload = None
            if cache is not None and use_cache:
                payload = cache.get(self._cache_key(cache, factory, task, cache_extra))
            if payload is not None:
                outcomes[task.index] = CellOutcome(task=task, result=payload, cached=True)
                self._progress(task, "cached")
            else:
                to_run.append(task)
        if cache is not None:
            self.cache_hits += cache.hits
            self.cache_misses += cache.misses

        # 2. compute the rest.
        if workers == 1:
            for task in to_run:
                self._progress(task, "run")
                outcome = self._run_serial(factory, task)
                outcomes[task.index] = outcome
                registry.counter("sweep_cells_done", status="ok").inc()
                self._store(cache, factory, task, outcome, cache_extra)
        else:
            def on_done(outcome: CellOutcome) -> None:
                status = "ok" if outcome.ok else outcome.failure.kind
                self._progress(outcome.task, status)
                self._store(cache, factory, outcome.task, outcome, cache_extra)

            outcomes.update(execute_tasks(
                to_run, factory, workers=workers, timeout=timeout, on_done=on_done,
            ))

        # 3. aggregate in task order — completion order never matters.
        self.cells = []
        self.errors = []
        for cell_index in range(len(combos)):
            cell_tasks = [t for t in tasks if t.cell_index == cell_index]
            samples: dict[str, list[float]] = {m: [] for m in self.metrics}
            failures: list[CellFailure] = []
            for task in cell_tasks:
                outcome = outcomes[task.index]
                if not outcome.ok:
                    failures.append(outcome.failure)
                    continue
                result = deserialize_result(outcome.result)
                for m, fn in self.metrics.items():
                    samples[m].append(self._extract(fn, m, result, task))
            self.errors.extend(failures)
            self.cells.append(SweepCell(
                params=cell_tasks[0].params,
                metrics={
                    m: mean_ci95(v) if v else (float("nan"), float("nan"))
                    for m, v in samples.items()
                },
                failures=tuple(failures),
            ))
        return self.cells

    # -- internals ---------------------------------------------------------------

    def _run_serial(self, factory: Callable[..., ExperimentResult], task: CellTask) -> CellOutcome:
        """The workers=1 degenerate case: in-process, failures raise."""
        from repro.harness.parallel import _serialize

        try:
            result = factory(**dict(task.params), seed=task.cell_seed)
        except Exception as exc:
            raise SweepCellError(
                f"{type(exc).__name__}: {exc}", params=task.params, seed=task.seed
            ) from exc
        return CellOutcome(task=task, result=_serialize(result))

    def _extract(
        self,
        fn: Callable[[ExperimentResult], float],
        metric: str,
        result: ExperimentResult,
        task: CellTask,
    ) -> float:
        try:
            return float(fn(result))
        except Exception as exc:
            raise SweepCellError(
                f"metric {metric!r} failed: {type(exc).__name__}: {exc}",
                params=task.params,
                seed=task.seed,
            ) from exc

    def _cache_key(self, cache, factory, task: CellTask, extra: dict | None) -> str:
        return cache.key_for(factory, dict(task.params), task.cell_seed, extra=extra)

    def _store(self, cache, factory, task: CellTask, outcome: CellOutcome, extra: dict | None) -> None:
        if cache is not None and outcome.ok and not outcome.cached:
            cache.put(self._cache_key(cache, factory, task, extra), outcome.result)

    def _progress(self, task: CellTask, status: str) -> None:
        if self.progress is not None:
            self.progress(f"{dict(task.params)} seed={task.seed} [{status}]")

    # -- read side ---------------------------------------------------------------

    def best(self, metric: str, maximize: bool = True) -> SweepCell:
        """The grid point optimizing ``metric``."""
        if not self.cells:
            raise RuntimeError("run() the sweep first")
        key = lambda c: c.mean(metric)
        return max(self.cells, key=key) if maximize else min(self.cells, key=key)

    def series(self, param: str, metric: str) -> tuple[list[Any], list[float]]:
        """(x, y) pairs for plotting ``metric`` against one parameter,
        averaging over the other parameters."""
        if not self.cells:
            raise RuntimeError("run() the sweep first")
        buckets: dict[Any, list[float]] = {}
        for cell in self.cells:
            buckets.setdefault(cell.param(param), []).append(cell.mean(metric))
        xs = sorted(buckets)
        return xs, [float(np.mean(buckets[x])) for x in xs]
