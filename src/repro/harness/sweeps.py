"""Parameter sweep utilities.

A sweep runs the same experiment factory across a parameter grid and/or
several seeds and collects scalar metrics per cell — the machinery
behind sensitivity studies (fast-tier size, intensity ratios, promotion
budgets, ...).

Example
-------
::

    def factory(fast_gb, seed):
        cfg = MachineConfig(fast=TierConfig("fast", fast_gb * GiB, 70.0, 205.0), ...)
        exp = ColocationExperiment("vulcan", paper_colocation_mix(), machine_config=cfg, seed=seed)
        return exp.run(60)

    sweep = Sweep(metrics={"mc_ops": lambda r: r.by_name("memcached").mean_ops(30)})
    table = sweep.run(factory, grid={"fast_gb": [16, 32, 64]}, seeds=[1, 2, 3])
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.harness.experiment import ExperimentResult
from repro.metrics.stats import mean_ci95


@dataclass(frozen=True)
class SweepCell:
    """One grid point's aggregated results."""

    params: tuple[tuple[str, Any], ...]
    metrics: dict[str, tuple[float, float]]  # name -> (mean, ci95)

    def param(self, name: str) -> Any:
        for k, v in self.params:
            if k == name:
                return v
        raise KeyError(name)

    def mean(self, metric: str) -> float:
        return self.metrics[metric][0]


@dataclass
class Sweep:
    """Grid × seeds sweep with scalar metric extraction."""

    metrics: dict[str, Callable[[ExperimentResult], float]]
    progress: Callable[[str], None] | None = None
    cells: list[SweepCell] = field(default_factory=list)

    def run(
        self,
        factory: Callable[..., ExperimentResult],
        grid: dict[str, list[Any]],
        seeds: list[int] | None = None,
    ) -> list[SweepCell]:
        """Run ``factory(**params, seed=s)`` over the full grid.

        Returns (and stores) one :class:`SweepCell` per grid point, each
        aggregating all seeds with mean ± CI95.
        """
        if not self.metrics:
            raise ValueError("a sweep needs at least one metric")
        if not grid:
            raise ValueError("empty parameter grid")
        seeds = seeds if seeds is not None else [0]
        if not seeds:
            raise ValueError("need at least one seed")
        names = sorted(grid)
        self.cells = []
        for combo in itertools.product(*(grid[n] for n in names)):
            params = dict(zip(names, combo))
            samples: dict[str, list[float]] = {m: [] for m in self.metrics}
            for seed in seeds:
                if self.progress is not None:
                    self.progress(f"{params} seed={seed}")
                result = factory(**params, seed=seed)
                for m, fn in self.metrics.items():
                    samples[m].append(float(fn(result)))
            cell = SweepCell(
                params=tuple(sorted(params.items())),
                metrics={m: mean_ci95(v) for m, v in samples.items()},
            )
            self.cells.append(cell)
        return self.cells

    def best(self, metric: str, maximize: bool = True) -> SweepCell:
        """The grid point optimizing ``metric``."""
        if not self.cells:
            raise RuntimeError("run() the sweep first")
        key = lambda c: c.mean(metric)
        return max(self.cells, key=key) if maximize else min(self.cells, key=key)

    def series(self, param: str, metric: str) -> tuple[list[Any], list[float]]:
        """(x, y) pairs for plotting ``metric`` against one parameter,
        averaging over the other parameters."""
        if not self.cells:
            raise RuntimeError("run() the sweep first")
        buckets: dict[Any, list[float]] = {}
        for cell in self.cells:
            buckets.setdefault(cell.param(param), []).append(cell.mean(metric))
        xs = sorted(buckets)
        return xs, [float(np.mean(buckets[x])) for x in xs]
