"""``repro bench`` — wall-clock benchmark of the simulator hot path.

Runs the fixed Fig. 9 co-location scenario (vulcan policy, paper mix,
seed 1) and reports *host-side* performance — wall time, epochs/sec,
peak RSS — alongside a few simulated metrics so a result file also
documents what the run computed.  The scenario is pinned so numbers are
comparable across commits; ``BENCH_baseline.json`` at the repo root
records the reference epochs/sec the CI smoke job regresses against.

The simulated metrics are deterministic for a given (scenario, seed);
only the timing fields vary run to run.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.harness.experiment import ColocationExperiment, ExperimentResult
from repro.metrics.fairness import cfi
from repro.sim.config import SimulationConfig
from repro.workloads.mixes import hugeheap_mix, paper_colocation_mix

#: the pinned Fig. 9 scenario
POLICY = "vulcan"
MIX = "paper"
SEED = 1
EPOCHS = 80
ACCESSES_PER_THREAD = 5000
#: ``--quick`` variant for CI smoke runs (same shape, ~10× cheaper)
QUICK_EPOCHS = 12
QUICK_ACCESSES_PER_THREAD = 2000
#: steady-state window for the simulated metrics
WINDOW = 10

#: ``--hugeheap`` variant: the same Table 2 mix at ~150 kB per simulated
#: page instead of 10 MB, so the three RSS values fault in >1M frames —
#: the scale the chunked stores are sized against.  The quick cell keeps
#: the full heap (the store size *is* the scenario) and trims epochs.
HUGE_PAGE_UNIT_BYTES = 150_000
HUGE_EPOCHS = 24
HUGE_QUICK_EPOCHS = 6
HUGE_ACCESSES_PER_THREAD = 2000
HUGE_QUICK_ACCESSES_PER_THREAD = 1000


def _normalize_maxrss(maxrss: int, platform_name: str) -> int:
    """``getrusage().ru_maxrss`` in kB regardless of platform.

    POSIX leaves the unit unspecified: Linux reports kilobytes but
    macOS reports *bytes*, so raw values are 1024× off between the two
    — the unit bug this helper exists to pin down.  Pure function of
    its inputs so the conversion is unit-testable without faking
    ``resource``.
    """
    if platform_name == "darwin":
        return maxrss // 1024
    return maxrss


def peak_rss_kb() -> int:
    """Current process's peak RSS in kB (platform-normalized)."""
    return _normalize_maxrss(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss, sys.platform
    )


@dataclass(frozen=True)
class BenchResult:
    """One benchmark run, ready to serialize."""

    epochs: int
    accesses_per_thread: int
    wall_seconds: float
    epochs_per_sec: float
    peak_rss_kb: int
    result: ExperimentResult
    #: replaces the default Fig. 9 scenario block (dynamic-scenario runs)
    scenario_info: dict | None = None
    #: extra deterministic metrics merged into "simulated"
    extra_simulated: dict | None = None

    def to_dict(self) -> dict:
        alloc = {
            p: np.asarray(t.fast_pages[-WINDOW:], float)
            for p, t in self.result.workloads.items()
        }
        fthr = {
            p: np.asarray(t.fthr_true[-WINDOW:], float)
            for p, t in self.result.workloads.items()
        }
        simulated = {
            "cfi": cfi(alloc, fthr),
            "workloads": {
                ts.name: {
                    "mean_ops": float(np.mean(ts.ops[-WINDOW:])),
                    "mean_fthr": float(np.mean(ts.fthr_true[-WINDOW:])),
                    "fast_pages": ts.fast_pages[-1],
                }
                for ts in self.result.workloads.values()
            },
        }
        if self.extra_simulated:
            simulated.update(self.extra_simulated)
        return {
            "scenario": self.scenario_info or {
                "policy": POLICY,
                "mix": MIX,
                "seed": SEED,
                "epochs": self.epochs,
                "accesses_per_thread": self.accesses_per_thread,
            },
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "kernels": kernels.BACKEND,
            },
            "timing": {
                "wall_seconds": round(self.wall_seconds, 3),
                "epochs_per_sec": round(self.epochs_per_sec, 3),
                "peak_rss_kb": self.peak_rss_kb,
            },
            "simulated": simulated,
        }


def run_bench(*, quick: bool = False, scenario: str | None = None) -> BenchResult:
    """Run the pinned scenario once and time it.

    With ``scenario`` set, a canned dynamic scenario (``repro scenario
    list``) is timed instead of the static Fig. 9 mix; the result file
    then also records fairness-under-churn and the event tallies.
    """
    if scenario is not None:
        return _run_scenario_bench(scenario)
    epochs = QUICK_EPOCHS if quick else EPOCHS
    apt = QUICK_ACCESSES_PER_THREAD if quick else ACCESSES_PER_THREAD
    sim = SimulationConfig(epoch_seconds=2.0)
    exp = ColocationExperiment(
        POLICY, paper_colocation_mix(sim, seed=SEED, accesses_per_thread=apt),
        sim=sim, seed=SEED,
    )
    t0 = time.perf_counter()
    res = exp.run(epochs)
    wall = time.perf_counter() - t0
    return BenchResult(
        epochs=epochs,
        accesses_per_thread=apt,
        wall_seconds=wall,
        epochs_per_sec=epochs / wall,
        peak_rss_kb=peak_rss_kb(),
        result=res,
    )


def run_hugeheap_bench(*, quick: bool = False) -> BenchResult:
    """Time the Table 2 mix at million-frame scale.

    Exercises exactly what the chunked stores exist for: a frame store
    whose machine spans >1M frames and whose workloads fault in >1M of
    them, while peak RSS stays in the hundreds of megabytes.  The
    result file records the machine/materialized frame counts so the CI
    gate can assert the scale along with the throughput.
    """
    epochs = HUGE_QUICK_EPOCHS if quick else HUGE_EPOCHS
    apt = HUGE_QUICK_ACCESSES_PER_THREAD if quick else HUGE_ACCESSES_PER_THREAD
    sim = SimulationConfig(epoch_seconds=2.0, page_unit_bytes=HUGE_PAGE_UNIT_BYTES)
    exp = ColocationExperiment(
        POLICY, hugeheap_mix(sim, seed=SEED, accesses_per_thread=apt),
        sim=sim, seed=SEED,
    )
    store = exp.allocator.store
    t0 = time.perf_counter()
    res = exp.run(epochs)
    wall = time.perf_counter() - t0
    return BenchResult(
        epochs=epochs,
        accesses_per_thread=apt,
        wall_seconds=wall,
        epochs_per_sec=epochs / wall,
        peak_rss_kb=peak_rss_kb(),
        result=res,
        scenario_info={
            "scenario": "hugeheap",
            "policy": POLICY,
            "mix": "hugeheap",
            "seed": SEED,
            "epochs": epochs,
            "accesses_per_thread": apt,
            "page_unit_bytes": HUGE_PAGE_UNIT_BYTES,
        },
        extra_simulated={
            "hugeheap": {
                "machine_frames": store.n_frames,
                "materialized_frames": store.capacity,
                "mapped_pages": sum(
                    t.used for t in exp.allocator.tiers
                ),
            },
        },
    )


def _run_scenario_bench(name: str) -> BenchResult:
    from repro.metrics.fairness import churn_fairness
    from repro.scenario import get_scenario, run_scenario

    spec = get_scenario(name)
    t0 = time.perf_counter()
    sres = run_scenario(spec)
    wall = time.perf_counter() - t0
    fairness = churn_fairness(sres.result, window=WINDOW)
    apt = spec.workloads[0].accesses_per_thread
    return BenchResult(
        epochs=spec.n_epochs,
        accesses_per_thread=apt,
        wall_seconds=wall,
        epochs_per_sec=spec.n_epochs / wall,
        peak_rss_kb=peak_rss_kb(),
        result=sres.result,
        scenario_info={
            "scenario": name,
            "spec_hash": sres.spec_hash,
            "policy": sres.policy,
            "seed": sres.seed,
            "epochs": spec.n_epochs,
            "accesses_per_thread": apt,
        },
        extra_simulated={
            "fairness_under_churn": {
                "mean_cfi": fairness["mean_cfi"],
                "min_cfi": fairness["min_cfi"],
                "window": fairness["window"],
            },
            "events": {
                "departures": len(sres.departures),
                "restarts": len(sres.restarts),
                "faults_fired": len(sres.faults),
                "leak_checks_passed": len(sres.leak_checks),
            },
        },
    )


#: the pinned ``--fleet`` scenario (drain_rebalance: the only canned
#: fleet with evacuations, so the p99 evacuation latency is exercised)
FLEET_SCENARIO = "drain_rebalance"
FLEET_QUICK_EPOCHS_PER_ROUND = 2


def run_fleet_bench(*, quick: bool = False, workers: int = 1) -> dict:
    """Time the pinned fleet scenario; returns the bench payload.

    The payload carries a ``fleet`` block (the third
    :func:`check_regression` family) and regresses on
    ``node_epochs_per_sec`` — total node-rounds × epochs executed per
    wall second, the fleet analogue of ``epochs_per_sec``.  The
    simulated metrics (fleet CFI, vs-oracle quality, evacuation p99
    cycles) are deterministic; only timing varies run to run.
    """
    from repro.fleet import get_fleet_scenario, run_fleet

    spec = get_fleet_scenario(FLEET_SCENARIO)
    if quick:
        spec = spec.with_overrides(epochs_per_round=FLEET_QUICK_EPOCHS_PER_ROUND)
    t0 = time.perf_counter()
    result = run_fleet(spec, workers=workers)
    wall = time.perf_counter() - t0
    summary = result.summary()
    evac = [float(c) for c in result.evacuation_cycles()]
    from repro.fleet.metrics import percentile

    return {
        "fleet": {
            "scenario": FLEET_SCENARIO,
            "spec_hash": spec.content_hash(),
            "policy": spec.policy,
            "placer": spec.placer,
            "seed": spec.seed,
            "n_rounds": spec.n_rounds,
            "epochs_per_round": spec.epochs_per_round,
            "n_nodes": len(spec.nodes),
            "n_workloads": len(spec.workloads),
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "kernels": kernels.BACKEND,
            "workers": workers,
        },
        "timing": {
            "wall_seconds": round(wall, 3),
            "node_epochs_per_sec": round(result.node_epochs / wall, 3),
            "peak_rss_kb": peak_rss_kb(),
        },
        "simulated": {
            "node_epochs": result.node_epochs,
            "fleet_cfi": summary["fleet_cfi"],
            "node_cfi_spread": summary["node_cfi_spread"],
            "placement_score": summary["placement_score"],
            "vs_oracle": summary["vs_oracle"],
            "placements": summary["placements"],
            "migrations": summary["migrations"],
            "evacuations": summary["evacuations"],
            "evacuation_p50_cycles": percentile(evac, 50.0),
            "evacuation_p99_cycles": percentile(evac, 99.0),
        },
    }


def check_regression(payload: dict, baseline_path: str, *, tolerance: float = 0.30) -> str | None:
    """Compare a bench payload against a committed baseline file.

    Three payload families share the contract: simulator benches carry
    a ``scenario`` block and regress on ``epochs_per_sec``; service
    benches (``repro bench --service``) carry a ``service`` block and
    regress on ``jobs_per_sec``; fleet benches (``repro bench
    --fleet``) carry a ``fleet`` block and regress on
    ``node_epochs_per_sec``.  In every case the pinned-scenario block
    must match exactly (a quick baseline only compares against a quick
    run, a 50-client baseline against a 50-client run), and the
    throughput metric may not drop more than ``tolerance`` below the
    baseline.

    Returns an error message on regression or mismatch, ``None`` when
    within bounds.  A missing or malformed baseline is reported as an
    error too — a CI job silently skipping its own check is worse than
    a red run.
    """
    if "service" in payload:
        scenario_key, metric = "service", "jobs_per_sec"
    elif "fleet" in payload:
        scenario_key, metric = "fleet", "node_epochs_per_sec"
    else:
        scenario_key, metric = "scenario", "epochs_per_sec"
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
        ref = float(baseline["timing"][metric])
        ref_scenario = baseline[scenario_key]
    except (OSError, KeyError, TypeError, ValueError) as exc:
        return f"cannot read baseline {baseline_path}: {exc}"
    if ref_scenario != payload[scenario_key]:
        return (
            f"baseline {scenario_key} mismatch: {ref_scenario} vs {payload[scenario_key]} "
            "(quick baselines only compare against --quick runs)"
        )
    got = float(payload["timing"][metric])
    floor = ref * (1.0 - tolerance)
    if got < floor:
        return (
            f"{metric} regressed: {got:.3f} < {floor:.3f} "
            f"(baseline {ref:.3f} - {tolerance:.0%})"
        )
    print(
        f"{metric} {got:.3f} vs baseline {ref:.3f} (floor {floor:.3f}): ok",
        file=sys.stderr,
    )
    return None
