"""Canonical experiment recipes shared by the CLI and the service.

The determinism contract for the control plane is that a job submitted
over HTTP computes *the same function* as the equivalent ``repro``
command — bit-identical metrics, not "close enough".  The only robust
way to guarantee that is for both entry points to call one shared
recipe, so the standard run / sweep-cell / summary builders live here
rather than in ``cli.py``.

Everything in this module is importable from a forked worker process:
no closures, no argparse, no stdout.
"""

from __future__ import annotations

import numpy as np

from repro.harness.experiment import ColocationExperiment, ExperimentResult
from repro.metrics.fairness import cfi
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig
from repro.sim.units import GiB
from repro.workloads.mixes import dilemma_pair, paper_colocation_mix

#: steady-state window (epochs) every summary metric reads over
STEADY_WINDOW = 10

#: colocation mixes a run/sweep payload may name
MIX_NAMES = ("paper", "dilemma")


def make_mix(name: str, sim: SimulationConfig, accesses_per_thread: int, seed: int):
    """The named workload mix; raises ``ValueError`` for unknown names."""
    if name == "paper":
        return paper_colocation_mix(sim, seed=seed, accesses_per_thread=accesses_per_thread)
    if name == "dilemma":
        return dilemma_pair(sim, seed=seed, accesses_per_thread=accesses_per_thread)
    raise ValueError(f"unknown mix {name!r}: pick from {MIX_NAMES}")


def standard_run(policy: str, mix: str, epochs: int, accesses: int, seed: int) -> ExperimentResult:
    """The canonical single run: what ``repro run`` executes."""
    sim = SimulationConfig(epoch_seconds=2.0)
    exp = ColocationExperiment(policy, make_mix(mix, sim, accesses, seed), sim=sim, seed=seed)
    return exp.run(epochs)


def steady_cfi(result: ExperimentResult, window: int = STEADY_WINDOW) -> float:
    """FTHR-weighted CFI (Eq. 4) over the steady-state window."""
    alloc = {p: np.asarray(t.fast_pages[-window:], float) for p, t in result.workloads.items()}
    fthr = {p: np.asarray(t.fthr_true[-window:], float) for p, t in result.workloads.items()}
    return cfi(alloc, fthr)


def run_summary_json(result: ExperimentResult, *, mix: str, seed: int) -> dict:
    """The ``repro run --json`` payload (and a run job's result body)."""
    from repro.harness.export import to_json

    payload = to_json(result)
    payload["mix"] = mix
    payload["seed"] = seed
    payload["cfi"] = steady_cfi(result)
    return payload


# -- scenarios -------------------------------------------------------------------

def scenario_summary_json(sres, *, window: int) -> dict:
    """The canonical scenario payload: full result + churn fairness.

    Shared by ``repro scenario run --json``, the service's scenario
    runner, and the fuzzer's CLI≡service parity check — one assembly
    function is what makes the three outputs comparable byte-for-byte.
    """
    from repro.metrics.fairness import churn_fairness

    out = sres.to_dict()
    out["fairness_under_churn"] = churn_fairness(sres.result, window=window)
    return out


# -- fleet -----------------------------------------------------------------------

def fleet_run(
    *,
    name: str | None = None,
    spec: dict | None = None,
    policy: str | None = None,
    placer: str | None = None,
    seed: int | None = None,
    workers: int = 1,
    check: bool = False,
):
    """The canonical fleet run: what ``repro fleet run`` executes.

    ``name`` picks a canned fleet scenario, ``spec`` an inline
    ``FleetSpec.to_dict`` form (exactly one must be given); the
    remaining arguments override the spec's fields.  Shared with the
    service's fleet job runner so service ≡ CLI holds bit-for-bit.
    """
    from repro.fleet import FleetSpec, get_fleet_scenario, run_fleet

    if (name is None) == (spec is None):
        raise ValueError("fleet_run needs exactly one of name= or spec=")
    fspec = get_fleet_scenario(name) if name is not None else FleetSpec.from_dict(spec)
    overrides = {
        k: v for k, v in (("policy", policy), ("placer", placer), ("seed", seed))
        if v is not None
    }
    if overrides:
        fspec = fspec.with_overrides(**overrides)
    return run_fleet(fspec, workers=workers, check=check)


def fleet_summary_json(result) -> dict:
    """The ``repro fleet run --json`` payload (and a fleet job's body).

    The full :meth:`FleetResult.to_dict` minus the informational
    ``workers_used`` field — the payload is the bit-identity surface
    shared by the CLI, the service, and the determinism tests.
    """
    payload = result.to_dict()
    payload.pop("workers_used", None)
    return payload


# -- sweep cells -----------------------------------------------------------------

def sweep_cell(fast_gb: float, *, policy: str, mix: str, epochs: int, accesses: int, seed: int):
    """One fast-tier-size sweep cell: the chosen mix on a machine with
    ``fast_gb`` of fast memory.  Module-level (not a closure) so worker
    processes can import it under any multiprocessing start method."""
    from dataclasses import replace

    sim = SimulationConfig(epoch_seconds=2.0)
    mc = MachineConfig()
    mc = replace(mc, fast=TierConfig(
        name="fast",
        capacity_bytes=int(fast_gb * GiB),
        load_latency_ns=mc.fast.load_latency_ns,
        bandwidth_gbps=mc.fast.bandwidth_gbps,
    ))
    exp = ColocationExperiment(
        policy, make_mix(mix, sim, accesses, seed), machine_config=mc, sim=sim, seed=seed,
    )
    return exp.run(epochs)


def sweep_mean_ops(result: ExperimentResult) -> float:
    """Steady-window ops/epoch averaged across the co-located workloads."""
    return float(np.mean([np.mean(ts.ops[-STEADY_WINDOW:]) for ts in result.workloads.values()]))


def sweep_cfi(result: ExperimentResult) -> float:
    """Steady-window FTHR-weighted CFI (Eq. 4)."""
    return steady_cfi(result)
