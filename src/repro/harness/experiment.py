"""The epoch-driven co-location simulator (DESIGN.md §4).

Each epoch (default 1 simulated second):

1. workloads whose start epoch arrived are admitted: a process is
   created (with or without page-table replication, per the policy),
   its threads pinned to a dedicated 8-core block, its RSS faulted in
   fast-first-with-fallback (Linux allocation order);
2. every active workload generates per-thread access batches; the
   batches update frame counters (ground truth), feed the policy's
   profiler, and produce FTHR samples;
3. the policy runs its end-of-epoch pass (profiler rollover + planned
   migrations through each workload's engine);
4. per-workload performance is computed from achieved memory latency:
   ``ops = Σ_threads usable_budget / cost_per_access`` where the cost
   folds tier latencies (bandwidth-loaded), a TLB-reach miss estimate,
   and the epoch's migration stalls / profiling faults charged to that
   workload.

Everything recorded lands in :class:`ExperimentResult` timeseries so
the figure benches can print exactly the series the paper plots.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import MISSING, dataclass, field, fields

import numpy as np

from repro.harness.jsonsafe import decode_nonfinite, encode_nonfinite
from repro.machine.platform import Machine
from repro.mm.address_space import AddressSpace, Process
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer
from repro.policies import POLICY_REGISTRY
from repro.policies.base import TieringPolicy
from repro.sim.config import MachineConfig, SimulationConfig
from repro.sim.units import seconds_to_cycles
from repro.workloads.base import Workload

#: CPU work per access outside the memory system (address gen, compute).
CPU_WORK_PER_ACCESS_CYCLES = 60.0
#: Bytes touched per access for bandwidth-utilization purposes.
BYTES_PER_ACCESS = 64
#: Ground-truth hotness cut: accesses/epoch for a page to count "hot"
#: in the Fig. 1-style hot/cold accounting.
HOT_ACCESS_CUT = 8


@dataclass
class WorkloadTimeseries:
    """Everything recorded for one workload, one value per active epoch."""

    pid: int
    name: str
    epochs: list[int] = field(default_factory=list)
    ops: list[float] = field(default_factory=list)
    avg_access_cycles: list[float] = field(default_factory=list)
    fast_pages: list[int] = field(default_factory=list)
    rss_pages: list[int] = field(default_factory=list)
    fthr_true: list[float] = field(default_factory=list)
    hot_pages: list[int] = field(default_factory=list)
    hot_in_fast: list[int] = field(default_factory=list)
    cold_in_fast: list[int] = field(default_factory=list)
    promotions: list[int] = field(default_factory=list)
    demotions: list[int] = field(default_factory=list)
    stall_cycles: list[float] = field(default_factory=list)
    # Vulcan-only introspection (zeros elsewhere):
    fthr_policy: list[float] = field(default_factory=list)
    gpt: list[float] = field(default_factory=list)
    quota: list[int] = field(default_factory=list)

    @property
    def first_epoch(self) -> int:
        """First epoch this workload was active (late arrivals start late)."""
        return self.epochs[0] if self.epochs else -1

    @property
    def last_epoch(self) -> int:
        """Last active epoch (a departed workload's series ends early)."""
        return self.epochs[-1] if self.epochs else -1

    def active_mask(self, n_epochs: int) -> np.ndarray:
        """Boolean per-epoch presence over ``[0, n_epochs)``.

        The recorded epochs need not be contiguous: a workload may
        arrive late, depart early, or (in principle) skip epochs, and
        every consumer that aligns series across workloads must go
        through this mask rather than assume ``epochs == range(n)``.
        """
        mask = np.zeros(n_epochs, dtype=bool)
        idx = np.asarray(self.epochs, dtype=np.int64)
        mask[idx[(idx >= 0) & (idx < n_epochs)]] = True
        return mask

    def aligned(self, name: str, n_epochs: int, fill: float = np.nan) -> np.ndarray:
        """One recorded series re-indexed onto the global epoch axis.

        Returns a float array of length ``n_epochs`` holding ``fill``
        (NaN by default) at epochs where this workload was absent —
        the gap-tolerant view the fairness metrics consume.
        """
        out = np.full(n_epochs, fill, dtype=np.float64)
        idx = np.asarray(self.epochs, dtype=np.int64)
        vals = np.asarray(getattr(self, name), dtype=np.float64)
        keep = (idx >= 0) & (idx < n_epochs)
        out[idx[keep]] = vals[keep]
        return out

    @property
    def hot_ratio(self) -> np.ndarray:
        """Fraction of this workload's hot pages resident in fast memory."""
        hot = np.asarray(self.hot_pages, dtype=np.float64)
        fast = np.asarray(self.hot_in_fast, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(hot > 0, fast / hot, 0.0)
        return r

    def mean_ops(self, skip: int = 0) -> float:
        """Average achieved ops/epoch, optionally skipping warmup."""
        vals = self.ops[skip:]
        return float(np.mean(vals)) if vals else 0.0

    def to_dict(self) -> dict:
        """Lossless plain-data form (cross-process transport, caching).

        Every field is an int/float/str or a flat list thereof, so the
        round trip through pickle *or* JSON is exact: Python's JSON
        encoder emits ``repr``-style shortest-round-trip floats.
        Non-finite floats (a NaN CI on a single sample, an inf latency)
        are carried as ``{"__float__": ...}`` markers so the payload
        survives strict-JSON transport — the service's HTTP boundary
        refuses the non-standard ``NaN``/``Infinity`` literals.
        """
        return {
            f.name: encode_nonfinite(v) if isinstance(v := getattr(self, f.name), list) else v
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTimeseries":
        """Tolerant inverse of :meth:`to_dict`.

        A departed pid's payload may omit series (or whole fields, when
        produced by an older writer); anything missing falls back to the
        field default so short / gappy timeseries round-trip instead of
        raising.  ``pid`` and ``name`` stay mandatory.
        """
        kwargs = {}
        for f in fields(cls):
            if f.name in data:
                v = data[f.name]
                kwargs[f.name] = decode_nonfinite(v) if isinstance(v, list) else v
            elif f.default_factory is not MISSING:
                kwargs[f.name] = f.default_factory()
            elif f.default is not MISSING:
                kwargs[f.name] = f.default
            else:
                raise KeyError(f"timeseries payload missing required field {f.name!r}")
        return cls(**kwargs)


@dataclass
class ExperimentResult:
    """Output of one :class:`ColocationExperiment` run."""

    policy_name: str
    n_epochs: int
    workloads: dict[int, WorkloadTimeseries] = field(default_factory=dict)
    free_fast_pages: list[int] = field(default_factory=list)
    migration_cycles: list[float] = field(default_factory=list)

    def by_name(self, name: str) -> WorkloadTimeseries:
        for ts in self.workloads.values():
            if ts.name == name:
                return ts
        raise KeyError(f"no workload named {name!r}")

    def alloc_series(self) -> dict[int, np.ndarray]:
        """pid → fast-page allocation per active epoch (CFI's x_i(t))."""
        return {pid: np.asarray(ts.fast_pages, dtype=np.float64) for pid, ts in self.workloads.items()}

    def fthr_series(self) -> dict[int, np.ndarray]:
        """pid → ground-truth FTHR per active epoch (CFI's FTHR_i(t))."""
        return {pid: np.asarray(ts.fthr_true, dtype=np.float64) for pid, ts in self.workloads.items()}

    def to_dict(self) -> dict:
        """Lossless plain-data form for cross-process transport / caching.

        Workloads are keyed by stringified pid (JSON object keys are
        strings); :meth:`from_dict` restores the int keys.
        """
        return {
            "policy_name": self.policy_name,
            "n_epochs": self.n_epochs,
            "free_fast_pages": list(self.free_fast_pages),
            "migration_cycles": encode_nonfinite([float(c) for c in self.migration_cycles]),
            "workloads": {str(pid): ts.to_dict() for pid, ts in self.workloads.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        return cls(
            policy_name=data["policy_name"],
            n_epochs=data["n_epochs"],
            workloads={
                int(pid): WorkloadTimeseries.from_dict(ts)
                for pid, ts in data.get("workloads", {}).items()
            },
            free_fast_pages=list(data.get("free_fast_pages", [])),
            migration_cycles=decode_nonfinite(list(data.get("migration_cycles", []))),
        )


class ColocationExperiment:
    """Build a machine + policy + workloads and run the epoch loop."""

    #: epochs of traffic plans each workload prefetches per burst (see
    #: :meth:`Workload.planned_epoch`).  Safe for static runs because
    #: plans are pure functions of (seed, epoch, spec) and the one
    #: persistent RNG stream (issue-rate jitter) is drawn in the same
    #: order a non-prefetching run draws it.  The scenario engine
    #: overrides this to 1: scripted reshape/reseed events would
    #: invalidate prefetched plans after their RNG draws were consumed.
    plan_horizon = 4

    def __init__(
        self,
        policy: str | TieringPolicy,
        workloads: list[Workload],
        *,
        machine_config: MachineConfig | None = None,
        sim: SimulationConfig | None = None,
        seed: int = 0,
        cores_per_workload: int = 8,
        policy_kwargs: dict | None = None,
    ) -> None:
        self.sim = sim if sim is not None else SimulationConfig()
        mc = machine_config if machine_config is not None else MachineConfig()
        self.machine = Machine(mc, page_size=self.sim.page_unit_bytes, rng=np.random.default_rng(seed))
        self.allocator = FrameAllocator(
            fast_frames=self.machine.fast.total_frames,
            slow_frames=self.machine.slow.total_frames,
        )
        self.lru = LruSubsystem(n_cpus=mc.n_cores)
        if isinstance(policy, str):
            cls = POLICY_REGISTRY[policy]
            self.policy: TieringPolicy = cls(
                self.machine, self.allocator, self.lru, seed=seed, **(policy_kwargs or {})
            )
        else:
            self.policy = policy
        self.workload_defs = list(workloads)
        self.seed = seed
        self.cores_per_workload = cores_per_workload
        self._next_pid = 100
        self._active: dict[int, Workload] = {}
        self._spaces: dict[int, AddressSpace] = {}
        self._core_cursor = 0
        #: core blocks returned by departed workloads, lowest first
        self._free_core_blocks: list[int] = []
        #: pid -> base core of its dedicated block (for teardown return)
        self._core_base: dict[int, int] = {}
        self._pending: list[Workload] = []
        self.epoch_cycles = seconds_to_cycles(self.sim.epoch_seconds)

    # -- admission ---------------------------------------------------------------

    def _admit(self, wl: Workload, epoch: int) -> int:
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(pid=pid, name=wl.name, replication_enabled=self.policy.replication_enabled)
        n_threads = wl.spec.n_threads
        if self._free_core_blocks:
            # Reuse the lowest departed block before growing the cursor.
            base_core = heapq.heappop(self._free_core_blocks)
        else:
            base_core = self._core_cursor
            if base_core + self.cores_per_workload > self.machine.cpu.n_cores:
                raise RuntimeError("out of dedicated core blocks for new workloads")
            self._core_cursor += self.cores_per_workload
        self._core_base[pid] = base_core
        core_map: dict[int, int] = {}
        for tid in range(n_threads):
            proc.spawn_thread(tid)
            core = base_core + (tid % self.cores_per_workload)
            self.machine.cpu.schedule_thread(tid, core)  # local tid on its core
            core_map[tid] = core

        vma = proc.mmap(wl.spec.rss_pages, name=f"{wl.name}-rss")
        wl.plan_horizon = self.plan_horizon
        wl.bind(pid, vma)  # bind first: first_touch_tid may need region layout
        space = AddressSpace(proc, self.allocator)
        # First touch sets PTE ownership (§3.4): the workload says which
        # thread faults each page in (its own shard vs shared structures).
        for i, vpn in enumerate(range(vma.start_vpn, vma.end_vpn)):
            tid = wl.first_touch_tid(i) % n_threads
            space.fault(vpn, tid=tid, prefer_tier=wl.spec.populate_tier)
            page_pfn = space.translate(vpn)
            assert page_pfn is not None
            self.lru.add_page(page_pfn, self.allocator.tier_of_pfn(page_pfn), core_map[tid])
        self.lru.drain(None)  # initial bulk drain, not charged to anyone

        # Rough per-page access rate for the transactional dirty model.
        total_rate = wl.spec.n_threads * wl.spec.accesses_per_thread
        rate_per_kcycle = total_rate / self.epoch_cycles * 1_000.0
        per_page_rate = rate_per_kcycle / max(wl.wss_pages(), 1)
        self.policy.register_workload(
            pid,
            wl.name,
            space,
            wl.service,
            core_map,
            access_rate_per_kcycle=per_page_rate * 1_000.0,  # hot pages are ~1000x mean
        )
        self._active[pid] = wl
        self._spaces[pid] = space
        return pid

    # -- teardown ----------------------------------------------------------------

    def _retire(self, pid: int, epoch: int, reason: str = "depart") -> dict[str, int]:
        """Full mid-run teardown of one workload (process exit).

        Order matters: the policy unregisters first (Vulcan detaches the
        pid from the daemon, so CBFRP re-partitions the freed credits on
        the very next epoch's pass), then every frame reference leaves
        the LRU machinery, then the allocator bulk-frees all frames the
        pid owns — mapped, mid-migration, and retained shadows alike —
        with its own no-leak/no-double-free invariant, and finally the
        dedicated core block returns to the reuse pool.

        Returns the allocator's per-state release counts.
        """
        if pid not in self._active:
            raise KeyError(f"pid {pid} is not active")
        wl = self._active.pop(pid)
        self._spaces.pop(pid)
        self.policy.unregister_workload(pid)
        pfns = self.allocator.store.owned_frames(pid)
        self.lru.forget_pages(pfns)
        counts = self.allocator.free_pid(pid)
        self.allocator.check_consistency()
        base_core = self._core_base.pop(pid)
        heapq.heappush(self._free_core_blocks, base_core)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                EventKind.WORKLOAD_DEPART,
                wl.name,
                pid=pid,
                args={"epoch": epoch, "reason": reason, "freed": counts},
            )
        tracer.metrics.counter("workload_departures", workload=pid).inc()
        return counts

    # -- the loop ----------------------------------------------------------------

    def run(self, n_epochs: int) -> ExperimentResult:
        result = ExperimentResult(policy_name=self.policy.name, n_epochs=n_epochs)
        self._pending = sorted(self.workload_defs, key=lambda w: w.spec.start_epoch)
        tracer = get_tracer()
        for epoch in range(n_epochs):
            self._step_epoch(result, epoch, tracer)
        self._finish_run(result)
        return result

    def _step_epoch(self, result: ExperimentResult, epoch: int, tracer) -> None:
        """One full epoch: admissions → events → traffic → policy → record."""
        # 1. admissions
        while self._pending and self._pending[0].spec.start_epoch <= epoch:
            self._admit(self._pending.pop(0), epoch)

        # 1b. scripted mid-run events (scenario engine hook; no-op here)
        self._apply_epoch_events(epoch)

        # Anchor the trace clock to the epoch boundary: migration
        # charges advance it within the epoch, deterministically.
        if tracer.enabled:
            tracer.set_time(epoch * self.epoch_cycles)
            tracer.emit(
                EventKind.EPOCH,
                "epoch",
                args={
                    "epoch": epoch,
                    "policy": self.policy.name,
                    "free_fast_pages": self.allocator.free_frames(0),
                    "workloads": {
                        str(pid): wl.name for pid, wl in self._active.items()
                    },
                },
            )

        # 2. traffic
        epoch_hits, epoch_issue = self._generate_traffic(epoch)

        # 3. policy pass (migrations), informed of loaded latencies
        utilization = self._tier_utilization(epoch_hits)
        self.policy.note_tier_latency(
            self.machine.fast.access_latency_cycles(utilization[0]),
            self.machine.slow.access_latency_cycles(utilization[1]) + self.machine.link.added_latency_cycles,
        )
        with tracer.span("policy_epoch", epoch=epoch):
            policy_result = self.policy.end_epoch()
        result.migration_cycles.append(policy_result.migration_cycles)

        # 4. record + performance
        for pid, wl in self._active.items():
            self._record_epoch(
                result, pid, wl, epoch, epoch_hits[pid], epoch_issue[pid],
                policy_result, utilization,
            )
        result.free_fast_pages.append(self.allocator.free_frames(0))
        self._reset_page_epoch_counters()

    def _generate_traffic(self, epoch: int) -> tuple[dict[int, tuple[int, int]], dict[int, float]]:
        """Drive every active workload's epoch traffic through the system.

        The batched kernel path (default) hands one fused
        :class:`~repro.profiling.base.EpochPlan` per workload to
        ``AddressSpace.record_plan`` and the policy's batched hooks;
        ``REPRO_LEGACY_EPOCH=1`` replays the original per-batch loop.
        Both are bit-identical (enforced by the differential e2e tests).
        """
        legacy = os.environ.get("REPRO_LEGACY_EPOCH") == "1"
        epoch_hits: dict[int, tuple[int, int]] = {}
        epoch_issue: dict[int, float] = {}
        for pid, wl in self._active.items():
            space = self._spaces[pid]
            if legacy:
                epoch_issue[pid] = wl.issue_rate(epoch)
                fast_total = 0
                slow_total = 0
                for batch in wl.generate(epoch):
                    f, s = space.record_batch(batch.vpns, batch.is_write, batch.tid, cycle=epoch)
                    fast_total += f
                    slow_total += s
                    self.policy.observe(batch)
                    self.policy.record_tier_sample(pid, f, s)
                epoch_hits[pid] = (fast_total, slow_total)
            else:
                issue, plan = wl.planned_epoch(epoch)
                epoch_issue[pid] = issue
                fast_seg, slow_seg = space.record_plan(plan, cycle=epoch)
                self.policy.observe_plan(plan)
                self.policy.record_tier_samples(pid, fast_seg, slow_seg)
                epoch_hits[pid] = (int(fast_seg.sum()), int(slow_seg.sum()))
        return epoch_hits, epoch_issue

    def _apply_epoch_events(self, epoch: int) -> None:
        """Scenario hook: scripted mid-run events land here (default none)."""

    def _finish_run(self, result: ExperimentResult) -> None:
        """End-of-run hook (scenario engine adds final invariant checks)."""

    # -- helpers -------------------------------------------------------------------

    def _tier_utilization(self, epoch_hits: dict[int, tuple[int, int]]) -> tuple[float, float]:
        """Consumed/peak bandwidth per tier from this epoch's traffic."""
        fast_bytes = sum(f for f, _ in epoch_hits.values()) * BYTES_PER_ACCESS
        slow_bytes = sum(s for _, s in epoch_hits.values()) * BYTES_PER_ACCESS
        epoch_ns = self.sim.epoch_seconds * 1e9
        u_fast = (fast_bytes / epoch_ns) / self.machine.fast.config.bandwidth_gbps
        u_slow = (slow_bytes / epoch_ns) / self.machine.slow.config.bandwidth_gbps
        return (min(u_fast, 0.95), min(u_slow, 0.95))

    def _record_epoch(
        self,
        result: ExperimentResult,
        pid: int,
        wl: Workload,
        epoch: int,
        hits: tuple[int, int],
        issue_rate: float,
        policy_result,
        utilization: tuple[float, float],
    ) -> None:
        ts = result.workloads.get(pid)
        if ts is None:
            ts = WorkloadTimeseries(pid=pid, name=wl.name)
            result.workloads[pid] = ts

        fast_hits, slow_hits = hits
        total = fast_hits + slow_hits
        fthr = fast_hits / total if total else 0.0

        lat_fast = self.machine.fast.access_latency_cycles(utilization[0])
        lat_slow = self.machine.slow.access_latency_cycles(utilization[1]) + self.machine.link.added_latency_cycles
        avg_mem = (fast_hits * lat_fast + slow_hits * lat_slow) / total if total else lat_fast

        # TLB-reach miss estimate: WSS beyond reach pays a walk.
        reach = self.machine.config.tlb_entries
        wss = max(wl.wss_pages(), 1)
        tlb_miss_rate = max(0.0, 1.0 - reach / wss)
        tlb_pen = tlb_miss_rate * (self.machine.config.tlb_miss_penalty_ns * 3.0)

        cost = CPU_WORK_PER_ACCESS_CYCLES + avg_mem + tlb_pen

        n_threads = wl.spec.n_threads
        budget = self.epoch_cycles * issue_rate * n_threads
        stall = policy_result.stall_cycles.get(pid, 0.0)
        prof = policy_result.profiling_app_cycles.get(pid, 0.0)
        usable = max(budget - stall - prof, 0.0)
        ops = usable / cost if cost > 0 else 0.0

        hot_pages, hot_in_fast, cold_in_fast, fast_pages = self._ground_truth_hotness(pid)

        ts.epochs.append(epoch)
        ts.ops.append(ops)
        ts.avg_access_cycles.append(cost)
        ts.fast_pages.append(fast_pages)
        ts.rss_pages.append(self._spaces[pid].process.rss_pages)
        ts.fthr_true.append(fthr)
        ts.hot_pages.append(hot_pages)
        ts.hot_in_fast.append(hot_in_fast)
        ts.cold_in_fast.append(cold_in_fast)
        ts.promotions.append(policy_result.promotions.get(pid, 0))
        ts.demotions.append(policy_result.demotions.get(pid, 0))
        ts.stall_cycles.append(stall)

        # Vulcan introspection when available.
        fthr_p = getattr(self.policy, "fthr", None)
        ts.fthr_policy.append(float(fthr_p(pid)) if callable(fthr_p) else 0.0)
        gpt_p = getattr(self.policy, "gpt", None)
        ts.gpt.append(float(gpt_p(pid)) if callable(gpt_p) else 0.0)
        quota_p = getattr(self.policy, "quota", None)
        ts.quota.append(int(quota_p(pid)) if callable(quota_p) else 0)

    def _ground_truth_hotness(self, pid: int) -> tuple[int, int, int, int]:
        """(hot pages, hot∧fast, cold∧fast, fast pages) from frame counters."""
        return self.allocator.store.ground_truth_hotness(pid, HOT_ACCESS_CUT)

    def _reset_page_epoch_counters(self) -> None:
        # Touched-pfn reset: only frames accessed (or written to by a
        # migration) since the last reset are visited; idle pages cost
        # nothing.
        self.allocator.store.reset_epoch_counters()
