"""Process-wide registry of named, labelled metrics.

Three instrument types:

* :class:`Counter` — monotonically increasing (pages moved, IPIs sent);
* :class:`Gauge` — last-written value (quota, queue depth);
* :class:`Histogram` — bucketed distribution (shootdown scope sizes).

Each ``(name, labels)`` pair is one time series, like Prometheus:
``registry.counter("pages_moved", workload="memcached", tier="fast")``.
Label values are stringified so ``tier=0`` and ``tier="0"`` collide
deliberately.

**Zero-cost when disabled:** a disabled registry hands every caller the
same no-op instruments, so instrumented hot paths pay one attribute
check and no allocation.  The registry is process-wide via
:func:`get_registry`, mirroring how real exporters (statsd, Prometheus
client) are wired.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus +Inf overflow)."""

    __slots__ = ("name", "labels", "bounds", "counts", "total", "sum")

    DEFAULT_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

    def __init__(self, name: str, labels: LabelKey, bounds: Iterable[float] | None = None) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds)) if bounds is not None else self.DEFAULT_BOUNDS
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value


class _NullInstrument:
    """Shared no-op standing in for every instrument when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """Name + labels → instrument, with cross-label aggregation."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter | _NullInstrument:
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge | _NullInstrument:
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self, name: str, *, bounds: Iterable[float] | None = None, **labels: Any
    ) -> Histogram | _NullInstrument:
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, key[1], bounds)
        return inst

    # -- read side -----------------------------------------------------------

    def series(self, name: str) -> dict[LabelKey, float]:
        """Every label combination of a counter/gauge ``name`` → value."""
        out: dict[LabelKey, float] = {}
        for store in (self._counters, self._gauges):
            for (n, labels), inst in store.items():
                if n == name:
                    out[labels] = inst.value
        return out

    def aggregate(self, name: str, *group_by: str) -> dict[LabelKey, float]:
        """Sum a counter/gauge across all labels *not* in ``group_by``.

        ``aggregate("pages_moved")`` collapses everything to one number
        under the empty key; ``aggregate("pages_moved", "tier")`` keeps
        one sum per tier.
        """
        out: dict[LabelKey, float] = {}
        for labels, value in self.series(name).items():
            kept = tuple((k, v) for k, v in labels if k in group_by)
            out[kept] = out.get(kept, 0.0) + value
        return out

    def collect(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-friendly dump of every live series."""
        out: dict[str, list[dict[str, Any]]] = {"counters": [], "gauges": [], "histograms": []}
        for (name, labels), c in sorted(self._counters.items()):
            out["counters"].append({"name": name, "labels": dict(labels), "value": c.value})
        for (name, labels), g in sorted(self._gauges.items()):
            out["gauges"].append({"name": name, "labels": dict(labels), "value": g.value})
        for (name, labels), h in sorted(self._histograms.items()):
            out["histograms"].append({
                "name": name,
                "labels": dict(labels),
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "total": h.total,
                "sum": h.sum,
            })
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry instrumented code talks to.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    return _REGISTRY
