"""repro.obs — structured tracing and metrics for the simulation stack.

Three cooperating pieces:

* :mod:`repro.obs.events` — typed trace events in a bounded ring buffer
  stamped with the deterministic simulation *cycle* clock (never wall
  clock, so traced runs replay bit-identically);
* :mod:`repro.obs.metrics` — a process-wide registry of labelled
  counters / gauges / histograms, zero-cost when disabled;
* :mod:`repro.obs.trace` — the span/instant tracer API instrumented
  through ``mm.migration``, ``mm.tlb_coherence``, ``core.daemon``,
  ``core.cbfrp``, ``core.queues`` and ``harness.experiment``;
* :mod:`repro.obs.export` — JSONL, Chrome ``trace_event``
  (chrome://tracing / Perfetto loadable) and human-readable summary
  exporters, plus the reader that powers ``python -m repro trace``.

Tracing is **off by default**; instrumented call sites guard on
``tracer.enabled`` so disabled runs pay one attribute read per site.

Quickstart::

    from repro.obs import get_tracer
    from repro.obs.export import write_chrome_trace

    tracer = get_tracer()
    tracer.enable()
    ...  # run an experiment
    write_chrome_trace(tracer.events(), "trace.json")
    tracer.disable()
"""

from repro.obs.events import EventKind, RingBuffer, TraceEvent
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, get_tracer

__all__ = [
    "EventKind",
    "MetricsRegistry",
    "RingBuffer",
    "TraceEvent",
    "Tracer",
    "get_registry",
    "get_tracer",
]
