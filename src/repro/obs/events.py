"""Typed trace events and the bounded ring buffer that holds them.

Events are stamped with the *simulation* cycle clock (see
:class:`repro.obs.trace.Tracer`), never wall clock, so the stream from a
seeded run is deterministic.  The buffer is bounded: when full, the
oldest events are overwritten and counted in :attr:`RingBuffer.dropped`
— tracing a long run degrades to "most recent window" instead of
unbounded memory growth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class EventKind(str, enum.Enum):
    """What a :class:`TraceEvent` describes."""

    #: one migration phase charged (prep/trap/unmap/shootdown/copy/remap)
    MIGRATION_PHASE = "migration_phase"
    #: a TLB shootdown delivered, with its resolved scope
    TLB_SHOOTDOWN = "tlb_shootdown"
    #: CBFRP moved units from a donor's surplus to a borrower
    CREDIT_GRANT = "credit_grant"
    #: CBFRP expropriated units back from an over-GFMC BE task for an LC
    CREDIT_RECLAIM = "credit_reclaim"
    #: end-of-round CBFRP credit balance snapshot for one workload
    CREDIT_BALANCE = "credit_balance"
    #: a page served from the promotion queues (about to be promoted)
    QUEUE_PROMOTION = "queue_promotion"
    #: a page selected for demotion by the daemon
    QUEUE_DEMOTION = "queue_demotion"
    #: an epoch boundary in the harness loop
    EPOCH = "epoch"
    #: a workload was torn down mid-run (scenario departure)
    WORKLOAD_DEPART = "workload_depart"
    #: a departed workload was re-admitted under a fresh pid
    WORKLOAD_RESTART = "workload_restart"
    #: a live workload's service class / GPT changed
    QOS_CHANGE = "qos_change"
    #: fast-tier frames went offline/online or the interconnect degraded
    CAPACITY_CHANGE = "capacity_change"
    #: a live workload's access pattern was reshaped (scenario phase shift)
    PHASE_SHIFT = "phase_shift"
    #: a migration fault was injected (aborted-sync / lost-async / poisoned-shadow)
    FAULT_INJECTED = "fault_injected"
    #: one fleet sync round completed (all active nodes advanced)
    FLEET_ROUND = "fleet_round"
    #: the global placer assigned a previously unplaced workload to a node
    FLEET_PLACEMENT = "fleet_placement"
    #: the global placer live-migrated a workload between nodes
    FLEET_MIGRATION = "fleet_migration"
    #: a workload was evacuated off a draining node
    FLEET_EVACUATION = "fleet_evacuation"
    #: a fleet node changed membership (drain out / join in)
    FLEET_NODE_CHANGE = "fleet_node_change"
    #: a named duration (``tracer.span``)
    SPAN = "span"
    #: a named point event (``tracer.instant``)
    INSTANT = "instant"


@dataclass(frozen=True)
class TraceEvent:
    """One observation.

    ``ts`` is simulation cycles; ``dur`` (cycles) is non-zero only for
    spans and phase charges.  ``pid`` is the owning workload when the
    site knows it, ``args`` carries kind-specific detail (phase name,
    shootdown scope, credit balances, ...).
    """

    kind: EventKind
    name: str
    ts: float
    dur: float = 0.0
    pid: int | None = None
    args: dict[str, Any] = field(default_factory=dict)


class RingBuffer:
    """Fixed-capacity append-only event store with drop-oldest overflow."""

    def __init__(self, capacity: int = 262_144) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: list[TraceEvent | None] = [None] * capacity
        self._head = 0  # next write index
        self._count = 0  # live events (<= capacity)
        self.appended = 0  # lifetime appends
        self.dropped = 0  # events overwritten by overflow

    def __len__(self) -> int:
        return self._count

    def append(self, event: TraceEvent) -> None:
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self._slots[self._head] = event
        self._head = (self._head + 1) % self.capacity
        self.appended += 1

    def __iter__(self) -> Iterator[TraceEvent]:
        """Oldest → newest."""
        start = (self._head - self._count) % self.capacity
        for i in range(self._count):
            ev = self._slots[(start + i) % self.capacity]
            assert ev is not None
            yield ev

    def snapshot(self) -> list[TraceEvent]:
        """The current contents as a list, oldest first."""
        return list(self)

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._head = 0
        self._count = 0
        self.appended = 0
        self.dropped = 0
