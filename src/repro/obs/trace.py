"""The tracer: spans, instants, and the deterministic cycle clock.

One process-wide :class:`Tracer` (via :func:`get_tracer`) feeds the
bounded ring buffer in :mod:`repro.obs.events`.  Its clock is *simulated
cycles*, advanced by the components that charge cycle costs (migration
phase charges) and re-anchored by the harness at each epoch boundary —
never wall clock, so two same-seed traced runs emit identical streams.

Instrumented sites follow one pattern::

    tracer = get_tracer()
    ...
    if tracer.enabled:
        tracer.emit(EventKind.TLB_SHOOTDOWN, "shootdown", args={...})

or, for durations::

    with tracer.span("migrate_batch", pid=pid, pages=len(requests)):
        ...

Disabled tracing costs one attribute read per site (``span`` returns a
shared no-op context manager), keeping figure benchmarks untouched.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import EventKind, RingBuffer, TraceEvent
from repro.obs.metrics import MetricsRegistry, get_registry


class _NullSpan:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records start time on entry, emits on exit."""

    __slots__ = ("tracer", "name", "pid", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, pid: int | None, args: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.pid = pid
        self.args = args
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = self.tracer.now
        return self

    def __exit__(self, *exc: object) -> None:
        self.tracer._append(
            TraceEvent(
                kind=EventKind.SPAN,
                name=self.name,
                ts=self.start,
                dur=self.tracer.now - self.start,
                pid=self.pid,
                args=self.args,
            )
        )


class Tracer:
    """Cycle-clocked event recorder with a paired metrics registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.enabled = False
        self.buffer = RingBuffer()
        self.metrics = registry if registry is not None else get_registry()
        self._now = 0.0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated cycle time."""
        return self._now

    def set_time(self, cycles: float) -> None:
        """Re-anchor the clock (epoch boundaries); never moves backwards."""
        if cycles > self._now:
            self._now = float(cycles)

    def advance(self, cycles: float) -> None:
        """Move time forward by a charged cycle cost."""
        if cycles > 0:
            self._now += float(cycles)

    # -- lifecycle -------------------------------------------------------------

    def enable(self, capacity: int | None = None) -> None:
        """Turn tracing (and the metrics registry) on, starting fresh."""
        if capacity is not None:
            self.buffer = RingBuffer(capacity)
        else:
            self.buffer.clear()
        self._now = 0.0
        self.enabled = True
        self.metrics.enabled = True
        self.metrics.reset()

    def disable(self) -> None:
        self.enabled = False
        self.metrics.enabled = False

    def reset(self) -> None:
        """Drop recorded events/metrics but keep the enabled state."""
        self.buffer.clear()
        self.metrics.reset()
        self._now = 0.0

    def events(self) -> list[TraceEvent]:
        """Snapshot of the recorded stream, oldest first."""
        return self.buffer.snapshot()

    # -- recording -------------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        if self.enabled:
            self.buffer.append(event)

    def emit(
        self,
        kind: EventKind,
        name: str,
        *,
        pid: int | None = None,
        dur: float = 0.0,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record one event at the current cycle time."""
        if not self.enabled:
            return
        self.buffer.append(
            TraceEvent(kind=kind, name=name, ts=self._now, dur=dur, pid=pid,
                       args=args if args is not None else {})
        )

    def instant(self, name: str, *, pid: int | None = None, **args: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self.buffer.append(
            TraceEvent(kind=EventKind.INSTANT, name=name, ts=self._now, pid=pid, args=args)
        )

    def span(self, name: str, *, pid: int | None = None, **args: Any):
        """Context manager timing a region in simulated cycles."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, pid, args)


#: The process-wide tracer instrumented code talks to.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER
