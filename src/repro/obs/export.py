"""Trace exporters and the summary reader behind ``python -m repro trace``.

Three output shapes:

* :func:`write_jsonl` — one event per line, the lossless archival form;
* :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (loadable in chrome://tracing and Perfetto); spans become
  complete (``"X"``) events, everything else instants (``"i"``), with
  the event kind in ``cat`` and timestamps in simulated cycles;
* :func:`summarize` — the human-readable digest (per-phase migration
  cycles, shootdown-scope histogram, CBFRP credit timeline, queue
  activity) printed by the ``trace`` CLI subcommand.

:func:`read_trace` round-trips both file formats back into
:class:`~repro.obs.events.TraceEvent` streams.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import defaultdict
from pathlib import Path
from typing import Any, Iterable

from repro.metrics.reporting import render_table
from repro.obs.events import EventKind, TraceEvent

#: Workload pids start at 100 in the harness; 0 encodes "no pid".
_NO_PID = 0


def _event_dict(ev: TraceEvent) -> dict[str, Any]:
    return {
        "kind": ev.kind.value,
        "name": ev.name,
        "ts": ev.ts,
        "dur": ev.dur,
        "pid": ev.pid,
        "args": ev.args,
    }


def _event_from_dict(d: dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        kind=EventKind(d["kind"]),
        name=d["name"],
        ts=float(d["ts"]),
        dur=float(d.get("dur", 0.0)),
        pid=d.get("pid"),
        args=dict(d.get("args", {})),
    )


# -- JSONL ---------------------------------------------------------------------


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> int:
    """One JSON object per line; returns the number of events written."""
    n = 0
    with Path(path).open("w") as fh:
        for ev in events:
            fh.write(json.dumps(_event_dict(ev)) + "\n")
            n += 1
    return n


# -- Chrome trace_event --------------------------------------------------------


def to_chrome_trace(
    events: Iterable[TraceEvent],
    *,
    process_names: dict[int, str] | None = None,
) -> dict[str, Any]:
    """Build the Chrome JSON-object-format trace.

    ``ts``/``dur`` stay in simulated cycles (the viewer's microsecond
    label reads as cycles); ``traceEvents`` is sorted so timestamps are
    monotonically non-decreasing, metadata first.
    """
    names = dict(process_names or {})
    trace_events: list[dict[str, Any]] = []
    seen_pids: set[int] = set()
    for ev in sorted(events, key=lambda e: e.ts):
        pid = ev.pid if ev.pid is not None else _NO_PID
        seen_pids.add(pid)
        record: dict[str, Any] = {
            "name": ev.name,
            "cat": ev.kind.value,
            "ph": "X" if ev.kind is EventKind.SPAN else "i",
            "ts": ev.ts,
            "pid": pid,
            "tid": 0,
            "args": ev.args,
        }
        if ev.kind is EventKind.SPAN:
            record["dur"] = ev.dur
        else:
            record["s"] = "p"  # process-scoped instant
            if ev.dur:
                record["args"] = {**ev.args, "dur_cycles": ev.dur}
        trace_events.append(record)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": names.get(pid, "sim" if pid == _NO_PID else f"pid {pid}")},
        }
        for pid in sorted(seen_pids)
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "cycles", "producer": "repro.obs"},
    }


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: str | Path,
    *,
    process_names: dict[int, str] | None = None,
) -> int:
    """Write the Chrome-format trace; returns the number of trace events."""
    doc = to_chrome_trace(events, process_names=process_names)
    Path(path).write_text(json.dumps(doc))
    return sum(1 for e in doc["traceEvents"] if e["ph"] != "M")


# -- reading back --------------------------------------------------------------


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Load a trace written by either exporter back into events."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{") and '"traceEvents"' in stripped[:2000]:
        doc = json.loads(text)
        events: list[TraceEvent] = []
        for rec in doc.get("traceEvents", []):
            if rec.get("ph") == "M":
                continue
            pid = rec.get("pid", _NO_PID)
            args = dict(rec.get("args", {}))
            dur = float(rec.get("dur", args.pop("dur_cycles", 0.0)))
            try:
                kind = EventKind(rec.get("cat", ""))
            except ValueError:
                kind = EventKind.SPAN if rec.get("ph") == "X" else EventKind.INSTANT
            events.append(
                TraceEvent(
                    kind=kind,
                    name=rec.get("name", ""),
                    ts=float(rec.get("ts", 0.0)),
                    dur=dur,
                    pid=None if pid == _NO_PID else int(pid),
                    args=args,
                )
            )
        return events
    return [_event_from_dict(json.loads(line)) for line in text.splitlines() if line.strip()]


# -- human-readable summary ----------------------------------------------------


def _workload_label(pid: int | None, names: dict[int, str]) -> str:
    if pid is None:
        return "-"
    return names.get(pid, str(pid))


def _sparkline(values: list[float], width: int = 12) -> str:
    """Downsample a series to ≤ ``width`` arrow-joined points."""
    if not values:
        return "-"
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width - 1)] + [values[-1]]
    return " → ".join(f"{v:g}" for v in values)


def summarize(events: list[TraceEvent]) -> str:
    """Render the digest the acceptance criteria ask for."""
    names: dict[int, str] = {}
    epochs: set[int] = set()
    phase_cycles: dict[str, float] = defaultdict(float)
    phase_counts: dict[str, int] = defaultdict(int)
    batches: list[TraceEvent] = []
    scope_hist: TallyCounter = TallyCounter()
    scope_wide = 0
    scope_total = 0
    credit_series: dict[int, list[tuple[float, float]]] = defaultdict(list)
    granted: dict[int, float] = defaultdict(float)
    borrowed: dict[int, float] = defaultdict(float)
    reclaimed = 0
    promo_by_class: TallyCounter = TallyCounter()
    promos: dict[int, int] = defaultdict(int)
    demos: dict[int, int] = defaultdict(int)
    fleet_rounds: set[int] = set()
    fleet_moves: TallyCounter = TallyCounter()
    fleet_move_pages: dict[str, int] = defaultdict(int)
    fleet_move_cycles: dict[str, float] = defaultdict(float)
    fleet_node_changes: list[TraceEvent] = []

    for ev in events:
        if ev.kind is EventKind.EPOCH:
            epochs.add(int(ev.args.get("epoch", -1)))
            for pid_s, name in ev.args.get("workloads", {}).items():
                names[int(pid_s)] = str(name)
        elif ev.kind is EventKind.MIGRATION_PHASE:
            phase = str(ev.args.get("phase", ev.name))
            phase_cycles[phase] += ev.dur or float(ev.args.get("cycles", 0.0))
            phase_counts[phase] += 1
        elif ev.kind is EventKind.SPAN and ev.name == "migrate_batch":
            batches.append(ev)
        elif ev.kind is EventKind.TLB_SHOOTDOWN:
            scope_hist[int(ev.args.get("n_targets", 0))] += 1
            scope_total += 1
            if ev.args.get("process_wide"):
                scope_wide += 1
        elif ev.kind is EventKind.CREDIT_BALANCE and ev.pid is not None:
            credit_series[ev.pid].append((ev.ts, float(ev.args.get("credits", 0.0))))
        elif ev.kind is EventKind.CREDIT_GRANT:
            granted[int(ev.args.get("donor", -1))] += float(ev.args.get("units", 0))
            borrowed[int(ev.args.get("borrower", -1))] += float(ev.args.get("units", 0))
        elif ev.kind is EventKind.CREDIT_RECLAIM:
            reclaimed += int(ev.args.get("units", 1))
        elif ev.kind is EventKind.QUEUE_PROMOTION:
            promo_by_class[str(ev.args.get("page_class", "?"))] += 1
            if ev.pid is not None:
                promos[ev.pid] += 1
        elif ev.kind is EventKind.QUEUE_DEMOTION:
            if ev.pid is not None:
                demos[ev.pid] += 1
        elif ev.kind is EventKind.FLEET_ROUND:
            fleet_rounds.add(int(ev.args.get("round", -1)))
        elif ev.kind in (EventKind.FLEET_PLACEMENT, EventKind.FLEET_MIGRATION,
                         EventKind.FLEET_EVACUATION):
            reason = ev.name
            fleet_moves[reason] += 1
            fleet_move_pages[reason] += int(ev.args.get("pages", 0))
            fleet_move_cycles[reason] += float(ev.args.get("cycles", 0.0))
        elif ev.kind is EventKind.FLEET_NODE_CHANGE:
            fleet_node_changes.append(ev)

    sections: list[str] = []
    n_epochs = len(epochs)
    sections.append(
        f"trace: {len(events)} events, {n_epochs} epochs, "
        f"{len(names) or len(credit_series)} workloads"
    )

    if phase_cycles:
        total = sum(phase_cycles.values())
        rows = [
            [phase, phase_counts[phase], cyc, f"{cyc / total:.1%}"]
            for phase, cyc in sorted(phase_cycles.items(), key=lambda kv: -kv[1])
        ]
        sections.append(render_table(
            ["phase", "events", "cycles", "share"], rows,
            title="migration cycles by phase", float_fmt="{:.3g}",
        ))

    if batches:
        top = sorted(batches, key=lambda e: -e.dur)[:10]
        rows = [
            [_workload_label(ev.pid, names), int(ev.args.get("pages", 0)), ev.dur]
            for ev in top
        ]
        sections.append(render_table(
            ["workload", "pages", "cycles"], rows,
            title=f"top migration batches by cost (of {len(batches)})", float_fmt="{:.3g}",
        ))

    if scope_total:
        rows = [
            [targets, count, f"{count / scope_total:.1%}"]
            for targets, count in sorted(scope_hist.items())
        ]
        sections.append(render_table(
            ["target cores", "shootdowns", "share"], rows,
            title=(
                f"TLB shootdown scope histogram "
                f"({scope_wide} process-wide, {scope_total - scope_wide} scoped)"
            ),
        ))

    if credit_series:
        rows = []
        for pid in sorted(credit_series):
            series = [v for _, v in credit_series[pid]]
            rows.append([
                _workload_label(pid, names),
                granted.get(pid, 0.0),
                borrowed.get(pid, 0.0),
                _sparkline(series),
            ])
        title = "CBFRP credit timeline (units donated / borrowed, balance over epochs)"
        if reclaimed:
            title += f" [{reclaimed} units expropriated BE→LC]"
        sections.append(render_table(
            ["workload", "donated", "borrowed", "credit balance"], rows,
            title=title, float_fmt="{:.0f}",
        ))

    if promos or demos or promo_by_class:
        rows = [
            [_workload_label(pid, names), promos.get(pid, 0), demos.get(pid, 0)]
            for pid in sorted(set(promos) | set(demos))
        ]
        sections.append(render_table(
            ["workload", "promotions", "demotions"], rows,
            title="queue activity (pages served / demoted)",
        ))
        if promo_by_class:
            rows = [[cls, n] for cls, n in sorted(promo_by_class.items(), key=lambda kv: -kv[1])]
            sections.append(render_table(
                ["page class", "promotions"], rows, title="promotions by Table-1 class",
            ))

    if fleet_rounds or fleet_moves or fleet_node_changes:
        rows = [
            [reason, fleet_moves[reason], fleet_move_pages[reason], fleet_move_cycles[reason]]
            for reason in sorted(fleet_moves)
        ]
        joins = sum(1 for ev in fleet_node_changes if ev.name == "node_join")
        drains = sum(1 for ev in fleet_node_changes if ev.name == "node_drain")
        crowds = sum(1 for ev in fleet_node_changes if ev.name == "flash_crowd")
        sections.append(render_table(
            ["move", "count", "pages", "cycles"], rows,
            title=(
                f"fleet activity ({len(fleet_rounds)} sync rounds, {drains} drains, "
                f"{joins} joins, {crowds} flash crowds)"
            ),
            float_fmt="{:.3g}",
        ))

    return "\n\n".join(sections)
