"""Paper-style plain-text rendering of tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot, so a reader can diff shapes against the paper without a plotting
stack.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Monospace table with right-aligned numeric columns."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def render_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    width: int = 48,
    y_fmt: str = "{:.3f}",
) -> str:
    """A labelled series with a proportional ASCII bar per point."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys lengths differ")
    out = [name]
    if not ys:
        return name + " (empty)"
    top = max(max(ys), 1e-12)
    xw = max(len(str(x)) for x in xs)
    for x, y in zip(xs, ys):
        bar = "#" * max(int(round(width * y / top)), 0)
        out.append(f"  {str(x).rjust(xw)}  {y_fmt.format(y).rjust(10)}  {bar}")
    return "\n".join(out)
