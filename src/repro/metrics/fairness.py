"""Fairness metrics: Jain's index and the paper's CFI (Eq. 4).

The paper evaluates fairness with the *FTHR-weighted Cumulative Jain's
Fairness Index*: each workload's cumulative efficiency-adjusted
allocation is::

    X_i = Σ_t  x_i(t) · FTHR_i(t)

(allocation at time t, discounted by how effectively it was used), and

    CFI = (Σ X_i)² / (N · Σ X_i²)

CFI = 1 means perfectly equal *effective* service; 1/N means one
workload received everything.
"""

from __future__ import annotations

import numpy as np


def jain_index(values) -> float:
    """Jain's fairness index over non-negative per-entity totals.

    Returns 1.0 for an empty or all-zero input (vacuously fair).
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("Jain's index requires non-negative values")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom


def cfi(alloc_timeseries: dict[int, np.ndarray], fthr_timeseries: dict[int, np.ndarray]) -> float:
    """Eq. 4: FTHR-weighted cumulative Jain index.

    Parameters
    ----------
    alloc_timeseries:
        pid → array of fast-memory allocations x_i(t) per epoch.
    fthr_timeseries:
        pid → array of FTHR_i(t) per epoch, same lengths per pid.

    Workloads active for different spans simply contribute their own
    epochs (arrays may have different lengths across pids).
    """
    if set(alloc_timeseries) != set(fthr_timeseries):
        raise ValueError("alloc and FTHR series must cover the same pids")
    totals = []
    for pid, alloc in alloc_timeseries.items():
        fthr = fthr_timeseries[pid]
        a = np.asarray(alloc, dtype=np.float64)
        f = np.asarray(fthr, dtype=np.float64)
        if a.shape != f.shape:
            raise ValueError(f"pid {pid}: alloc and FTHR lengths differ")
        totals.append(float(np.sum(a * f)))
    return jain_index(totals)
