"""Fairness metrics: Jain's index and the paper's CFI (Eq. 4).

The paper evaluates fairness with the *FTHR-weighted Cumulative Jain's
Fairness Index*: each workload's cumulative efficiency-adjusted
allocation is::

    X_i = Σ_t  x_i(t) · FTHR_i(t)

(allocation at time t, discounted by how effectively it was used), and

    CFI = (Σ X_i)² / (N · Σ X_i²)

CFI = 1 means perfectly equal *effective* service; 1/N means one
workload received everything.
"""

from __future__ import annotations

import numpy as np


def jain_index(values) -> float:
    """Jain's fairness index over non-negative per-entity totals.

    Returns 1.0 for an empty or all-zero input (vacuously fair).
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("Jain's index requires non-negative values")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom


def cfi(alloc_timeseries: dict[int, np.ndarray], fthr_timeseries: dict[int, np.ndarray]) -> float:
    """Eq. 4: FTHR-weighted cumulative Jain index.

    Parameters
    ----------
    alloc_timeseries:
        pid → array of fast-memory allocations x_i(t) per epoch.
    fthr_timeseries:
        pid → array of FTHR_i(t) per epoch, same lengths per pid.

    Workloads active for different spans simply contribute their own
    epochs (arrays may have different lengths across pids).
    """
    if set(alloc_timeseries) != set(fthr_timeseries):
        raise ValueError("alloc and FTHR series must cover the same pids")
    totals = []
    for pid, alloc in alloc_timeseries.items():
        fthr = fthr_timeseries[pid]
        a = np.asarray(alloc, dtype=np.float64)
        f = np.asarray(fthr, dtype=np.float64)
        if a.shape != f.shape:
            raise ValueError(f"pid {pid}: alloc and FTHR lengths differ")
        totals.append(float(np.sum(a * f)))
    return jain_index(totals)


def windowed_cfi(result, window: int = 10) -> list[dict]:
    """Eq. 4 computed per time window, tolerating churn.

    Under a dynamic scenario the set of live workloads changes mid-run,
    so a single whole-run CFI conflates "unfair" with "absent".  This
    slices the run into ``[start, start+window)`` windows and scores
    each over only the workloads active *in that window* (a pid
    contributes the epochs it was actually present for, via the
    gap-tolerant :meth:`WorkloadTimeseries.aligned` view).

    ``result`` is duck-typed: anything with ``n_epochs`` and a
    ``workloads`` mapping of timeseries exposing ``aligned(name, n)``.
    Windows where fewer than one workload was active are skipped.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = result.n_epochs
    out: list[dict] = []
    for start in range(0, n, window):
        end = min(start + window, n)
        totals: list[float] = []
        pids: list[int] = []
        for pid, ts in result.workloads.items():
            alloc = ts.aligned("fast_pages", n)[start:end]
            fthr = ts.aligned("fthr_true", n)[start:end]
            present = ~np.isnan(alloc)
            if not present.any():
                continue
            pids.append(pid)
            totals.append(float(np.nansum(alloc * fthr)))
        if not pids:
            continue
        out.append({
            "start": start,
            "end": end,
            "pids": pids,
            "n_active": len(pids),
            "cfi": jain_index(totals),
        })
    return out


def churn_fairness(result, window: int = 10) -> dict:
    """Fairness-under-churn summary: windowed CFI plus headline stats.

    ``min_cfi`` is the interesting number — a scheduler can look fair
    on average while starving someone during the reshuffle right after
    a departure or capacity event.
    """
    windows = windowed_cfi(result, window=window)
    values = [w["cfi"] for w in windows]
    return {
        "window": window,
        "windows": windows,
        "mean_cfi": float(np.mean(values)) if values else 1.0,
        "min_cfi": float(np.min(values)) if values else 1.0,
    }
