"""Performance normalization helpers used by the Fig. 10 benches."""

from __future__ import annotations

import numpy as np


def normalize_to_min(perf_by_system: dict[str, float]) -> dict[str, float]:
    """Paper Fig. 10(a): performance "normalized to the lowest-performing
    approach" — every value divided by the minimum."""
    if not perf_by_system:
        return {}
    floor = min(perf_by_system.values())
    if floor <= 0:
        raise ValueError("performance values must be positive")
    return {k: v / floor for k, v in perf_by_system.items()}


def slowdown(colocated: float, standalone: float) -> float:
    """Normalized performance under co-location (Fig. 1(d)'s 0.8×)."""
    if standalone <= 0:
        raise ValueError("standalone performance must be positive")
    return colocated / standalone


def geometric_mean(values) -> float:
    """Geomean, the right average for normalized performance ratios."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("geomean of nothing")
    if np.any(x <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(x))))


def average_improvement(perf_by_system: dict[str, dict[str, float]], ours: str = "vulcan") -> float:
    """Mean relative improvement of ``ours`` over the per-workload best
    baseline — the paper's "12.4% on average" style summary.

    Parameters
    ----------
    perf_by_system:
        workload → {system → performance}.
    """
    if not perf_by_system:
        raise ValueError("no workloads")
    gains = []
    for wl, by_sys in perf_by_system.items():
        if ours not in by_sys:
            raise KeyError(f"{ours} missing for workload {wl}")
        others = [v for k, v in by_sys.items() if k != ours]
        if not others:
            raise ValueError(f"no baselines for workload {wl}")
        baseline = max(others)
        gains.append(by_sys[ours] / baseline - 1.0)
    return float(np.mean(gains))
