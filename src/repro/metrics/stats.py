"""Small statistics helpers: EMA, trial means with confidence intervals."""

from __future__ import annotations

import math

import numpy as np

#: two-sided 97.5% normal quantile for CI95 with many samples
_Z975 = 1.959963984540054
#: t-distribution 97.5% quantiles for tiny trial counts (df 1..30)
_T975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def ema(values, alpha: float) -> np.ndarray:
    """Exponential moving average series (Eq. 2's smoother).

    ``out[0] = values[0]``; ``out[t] = α·values[t] + (1-α)·out[t-1]``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0,1]")
    x = np.asarray(values, dtype=np.float64)
    out = np.empty_like(x)
    if x.size == 0:
        return out
    out[0] = x[0]
    for i in range(1, x.size):
        out[i] = alpha * x[i] + (1.0 - alpha) * out[i - 1]
    return out


def mean_ci95(samples) -> tuple[float, float]:
    """Mean and 95% confidence half-width over independent trials.

    Uses Student's t for n ≤ 31 (the paper runs 10 trials), the normal
    approximation beyond.  A single sample yields a zero half-width.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise ValueError("no samples")
    mean = float(np.mean(x))
    if x.size == 1:
        return (mean, 0.0)
    sem = float(np.std(x, ddof=1)) / math.sqrt(x.size)
    df = x.size - 1
    q = _T975[df - 1] if df <= len(_T975) else _Z975
    return (mean, q * sem)


def coefficient_of_variation(values) -> float:
    """CV = std/mean; the burstiness signal for LC/BE classification."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 0.0
    m = float(np.mean(x))
    if m == 0.0:
        return 0.0
    return float(np.std(x)) / m
