"""Latency percentile tracking for latency-critical workloads.

The paper's LC/BE distinction is about *tail latency*: an LC service
cares about p99, a BE job about throughput.  The harness models a
request's memory cost as a mixture over tier hits; this module turns
per-epoch (fast, slow, latencies) observations into the percentile
estimates an SLO would be written against.

Per-request latency model: a Memcached-style request touches ``k``
pages (key lookup + value); each lands fast or slow with the epoch's
hit ratio.  Request latency = base + Σ page costs.  The mixture's exact
quantiles come from the binomial over slow touches — no sampling needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from math import comb


@dataclass(frozen=True)
class LatencyProfile:
    """Exact request-latency distribution for one epoch's tier mix."""

    fthr: float
    fast_cycles: float
    slow_cycles: float
    pages_per_request: int = 2
    base_cycles: float = 500.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fthr <= 1.0:
            raise ValueError("fthr must be in [0,1]")
        if self.pages_per_request < 1:
            raise ValueError("a request touches at least one page")

    def _pmf(self) -> list[tuple[float, float]]:
        """(latency, probability) over the number of slow touches."""
        k = self.pages_per_request
        p_slow = 1.0 - self.fthr
        out = []
        for j in range(k + 1):
            prob = comb(k, j) * (p_slow**j) * ((1 - p_slow) ** (k - j))
            lat = self.base_cycles + (k - j) * self.fast_cycles + j * self.slow_cycles
            out.append((lat, prob))
        return out

    def mean(self) -> float:
        return sum(l * p for l, p in self._pmf())

    def percentile(self, q: float) -> float:
        """Smallest latency whose CDF reaches ``q`` (q in (0, 1])."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        acc = 0.0
        for lat, prob in sorted(self._pmf()):
            acc += prob
            if acc >= q - 1e-12:
                return lat
        return sorted(self._pmf())[-1][0]


@dataclass
class LatencyTracker:
    """Epoch-by-epoch percentile series for one LC workload."""

    pages_per_request: int = 2
    base_cycles: float = 500.0
    p50: list[float] = field(default_factory=list)
    p99: list[float] = field(default_factory=list)
    means: list[float] = field(default_factory=list)

    def record_epoch(self, fthr: float, fast_cycles: float, slow_cycles: float) -> None:
        prof = LatencyProfile(
            fthr=fthr,
            fast_cycles=fast_cycles,
            slow_cycles=slow_cycles,
            pages_per_request=self.pages_per_request,
            base_cycles=self.base_cycles,
        )
        self.p50.append(prof.percentile(0.50))
        self.p99.append(prof.percentile(0.99))
        self.means.append(prof.mean())

    def slo_violations(self, slo_cycles: float) -> int:
        """Epochs whose p99 exceeded the SLO."""
        return int(np.sum(np.asarray(self.p99) > slo_cycles))

    def worst_p99(self) -> float:
        if not self.p99:
            raise RuntimeError("no epochs recorded")
        return float(max(self.p99))
