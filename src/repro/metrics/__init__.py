"""Metrics: fairness (Jain / CFI), performance, and trial statistics."""

from repro.metrics.fairness import cfi, jain_index
from repro.metrics.latency import LatencyProfile, LatencyTracker
from repro.metrics.perf import normalize_to_min, slowdown
from repro.metrics.stats import ema, mean_ci95
from repro.metrics.reporting import render_series, render_table

__all__ = [
    "cfi",
    "jain_index",
    "normalize_to_min",
    "slowdown",
    "ema",
    "mean_ci95",
    "render_series",
    "render_table",
    "LatencyProfile",
    "LatencyTracker",
]
