"""Compiled kernel tier: import-time backend dispatch (DESIGN.md §6).

The measured hot loops of the epoch pipeline — Zipf LUT inversion,
``PageStatsStore`` row updates and touched-set resets, ``HeatStore``
accumulate/decay/gather/top-k, ``EpochPlan`` execution, and the
promotion-candidate gather — are routed through this module.  Two
backends implement the same function set:

* :mod:`repro.kernels.np_backend` — pure numpy, always available, and
  the *reference*: its bodies are the exact array programs the goldens
  pinned before the kernel tier existed.
* :mod:`repro.kernels.nb_backend` — ``@njit(cache=True)`` mirrors,
  used when numba is importable (the optional ``repro[fast]`` extra;
  never a hard dependency).

Selection happens once, at import, from ``REPRO_KERNELS``:

* ``auto`` (default) — numba if importable, else numpy;
* ``python`` — force the numpy reference backend;
* ``numba`` — require the numba backend; raise if it cannot load.

``BACKEND`` names the backend in effect ("python" or "numba");
``NUMBA_ERROR`` holds the import failure when numba was tried and
unavailable.  Both backends are differentially pinned bit-identical by
tests/kernels/; see DESIGN.md §6 for the contract a new kernel pair
must satisfy.
"""

from __future__ import annotations

import os

VALID_MODES = ("auto", "python", "numba")

REQUESTED = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"
if REQUESTED not in VALID_MODES:
    raise RuntimeError(
        f"REPRO_KERNELS={REQUESTED!r} is not one of {'/'.join(VALID_MODES)}"
    )

from repro.kernels import np_backend as _np_backend  # noqa: E402

_impl = _np_backend
BACKEND = "python"
#: why the numba backend is not active (None when it is, or never tried)
NUMBA_ERROR: str | None = None

if REQUESTED in ("auto", "numba"):
    try:
        from repro.kernels import nb_backend as _nb_backend
    except Exception as exc:  # numba absent or broken — never a hard dep
        NUMBA_ERROR = f"{type(exc).__name__}: {exc}"
        if REQUESTED == "numba":
            raise RuntimeError(
                "REPRO_KERNELS=numba but the numba backend failed to load "
                f"({NUMBA_ERROR}); install the repro[fast] extra or use "
                "REPRO_KERNELS=auto|python"
            ) from exc
    else:
        _impl = _nb_backend
        BACKEND = "numba"

#: the dispatched kernel set — one name per differentially-pinned pair
KERNEL_NAMES = (
    "zipf_invert",
    "page_record_rows",
    "page_reset_epoch",
    "pid_fast_usage",
    "pid_ground_truth",
    "heat_accumulate",
    "heat_add_scaled",
    "heat_decay",
    "heat_compact",
    "heat_min_live",
    "heat_gather",
    "topk_live",
    "accumulate_unique",
    "member_sorted",
    "write_fractions",
    "plan_span_stats",
    "plan_segment_unique",
    "hot_slow_candidates",
)

zipf_invert = _impl.zipf_invert
page_record_rows = _impl.page_record_rows
page_reset_epoch = _impl.page_reset_epoch
pid_fast_usage = _impl.pid_fast_usage
pid_ground_truth = _impl.pid_ground_truth
heat_accumulate = _impl.heat_accumulate
heat_add_scaled = _impl.heat_add_scaled
heat_decay = _impl.heat_decay
heat_compact = _impl.heat_compact
heat_min_live = _impl.heat_min_live
heat_gather = _impl.heat_gather
topk_live = _impl.topk_live
accumulate_unique = _impl.accumulate_unique
member_sorted = _impl.member_sorted
write_fractions = _impl.write_fractions
plan_span_stats = _impl.plan_span_stats
plan_segment_unique = _impl.plan_segment_unique
hot_slow_candidates = _impl.hot_slow_candidates

# Compile (or load the on-disk cache of) every numba kernel now, outside
# any timed region; a no-op on the numpy backend.
_impl.warmup()

__all__ = ["BACKEND", "REQUESTED", "NUMBA_ERROR", "VALID_MODES", "KERNEL_NAMES", *KERNEL_NAMES]


def backend_info() -> dict:
    """Diagnostic summary for bench artifacts and the CLI."""
    return {
        "backend": BACKEND,
        "requested": REQUESTED,
        "numba_error": NUMBA_ERROR,
        "kernels": len(KERNEL_NAMES),
    }
