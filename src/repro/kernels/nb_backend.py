"""Numba mirrors of the reference kernels (DESIGN.md §6).

Each ``@njit(cache=True)`` function reimplements the matching
:mod:`repro.kernels.np_backend` array program as an explicit loop.  The
contract is bit-identity: integer kernels are free to reorder (integer
adds commute), float kernels perform the same elementwise operations in
the same per-slot order (one add per unique key in array order, one
multiply per decay), and no kernel touches RNG state.  The differential
backend suite (tests/kernels/) runs the golden matrix and a fuzz
campaign under both backends and asserts identical JSON.

Only the conservative numba subset is used — plain loops, scalar
``np.searchsorted``, ``np.sort`` — so the module compiles on any
reasonably recent numba.  Importing this module without numba installed
raises ImportError; the dispatcher in ``repro.kernels`` catches that and
falls back to the numpy backend.
"""

from __future__ import annotations

import numpy as np
from numba import njit

_STATE_MAPPED = 1
_STATE_MIGRATING = 2


# -- Zipf LUT inversion ----------------------------------------------------------


@njit(cache=True)
def zipf_invert(cdf, lut, m, u):
    n = u.size
    out = np.empty(n, dtype=np.int64)
    csize = cdf.size
    for i in range(n):
        ui = u[i]
        b = np.int64(ui * m)
        if ui < b / m:
            b -= 1
        if ui >= (b + 1) / m:
            b += 1
        lo = lut[b]
        hi = lut[b + 1]
        while lo < hi:
            mid = (lo + hi) >> 1
            j = mid if mid < csize else csize - 1
            if cdf[j] <= ui:
                lo = mid + 1
            else:
                hi = mid
        out[i] = lo
    return out


# -- PageStatsStore hot updates --------------------------------------------------


@njit(cache=True)
def page_record_rows(
    reads, writes, epoch_reads, epoch_writes, last_access_cycle,
    touched, state, dirty_since_copy, pfns, n_reads, n_writes, cycle,
):
    for i in range(pfns.size):
        p = pfns[i]
        r = n_reads[i]
        w = n_writes[i]
        reads[p] += r
        writes[p] += w
        epoch_reads[p] += r
        epoch_writes[p] += w
        last_access_cycle[p] = cycle
        touched[p] = True
        if state[p] == _STATE_MIGRATING and w > 0:
            dirty_since_copy[p] = True


@njit(cache=True)
def page_reset_epoch(touched, state, epoch_reads, epoch_writes):
    for p in range(touched.size):
        if touched[p]:
            s = state[p]
            if s == _STATE_MAPPED or s == _STATE_MIGRATING:
                epoch_reads[p] = 0
                epoch_writes[p] = 0
                touched[p] = False


@njit(cache=True)
def pid_fast_usage(state, pid_col, pid, fast_frames):
    n = state.size if state.size < fast_frames else fast_frames
    count = 0
    for p in range(n):
        s = state[p]
        if (s == _STATE_MAPPED or s == _STATE_MIGRATING) and pid_col[p] == pid:
            count += 1
    return count


@njit(cache=True)
def pid_ground_truth(state, pid_col, epoch_reads, epoch_writes, pid, fast_frames, cut):
    hot = 0
    hot_fast = 0
    fast = 0
    for p in range(state.size):
        s = state[p]
        if (s == _STATE_MAPPED or s == _STATE_MIGRATING) and pid_col[p] == pid:
            in_fast = p < fast_frames
            if in_fast:
                fast += 1
            if epoch_reads[p] + epoch_writes[p] >= cut:
                hot += 1
                if in_fast:
                    hot_fast += 1
    return (hot, hot_fast, fast - hot_fast, fast)


# -- HeatStore accumulate / decay / gather / top-k -------------------------------


@njit(cache=True)
def heat_accumulate(heat, live, idx, sums):
    n = idx.size
    new = np.empty(n, dtype=np.bool_)
    m = np.inf
    for i in range(n):
        j = idx[i]
        heat[j] += sums[i]
    for i in range(n):
        j = idx[i]
        new[i] = not live[j]
        live[j] = True
        if heat[j] < m:
            m = heat[j]
    return new, m


@njit(cache=True)
def heat_add_scaled(heat, live, idx, heats, scale):
    n = idx.size
    new = np.empty(n, dtype=np.bool_)
    m = np.inf
    for i in range(n):
        j = idx[i]
        heat[j] += heats[i] * scale
    for i in range(n):
        j = idx[i]
        new[i] = not live[j]
        live[j] = True
        if heat[j] < m:
            m = heat[j]
    return new, m


@njit(cache=True)
def heat_decay(heat, decay):
    for i in range(heat.size):
        heat[i] *= decay


@njit(cache=True)
def heat_compact(heat, live, floor):
    count = 0
    for i in range(heat.size):
        if live[i] and heat[i] < floor:
            count += 1
    dead_idx = np.empty(count, dtype=np.int64)
    if count:
        j = 0
        for i in range(heat.size):
            if live[i] and heat[i] < floor:
                dead_idx[j] = i
                j += 1
                heat[i] = 0.0
                live[i] = False
    return dead_idx


@njit(cache=True)
def heat_min_live(heat, live):
    m = np.inf
    for i in range(heat.size):
        if live[i] and heat[i] < m:
            m = heat[i]
    return m


@njit(cache=True)
def heat_gather(heat, base, vpns):
    out = np.zeros(vpns.size, dtype=np.float64)
    size = heat.size
    for i in range(vpns.size):
        j = vpns[i] - base
        if 0 <= j < size:
            out[i] = heat[j]
    return out


@njit(cache=True)
def topk_live(heat, live, base, n):
    count = 0
    for i in range(live.size):
        if live[i]:
            count += 1
    vpns = np.empty(count, dtype=np.int64)
    heats = np.empty(count, dtype=np.float64)
    j = 0
    for i in range(live.size):
        if live[i]:
            vpns[j] = i + base
            heats[j] = heat[i]
            j += 1
    if n < count:
        # k-th largest by order statistic; identical to np.partition's
        # pivot value in the reference backend.
        kth = np.sort(heats)[count - n]
        keep = 0
        for i in range(count):
            if heats[i] >= kth:
                keep += 1
        kv = np.empty(keep, dtype=np.int64)
        kh = np.empty(keep, dtype=np.float64)
        j = 0
        for i in range(count):
            if heats[i] >= kth:
                kv[j] = vpns[i]
                kh[j] = heats[i]
                j += 1
        return kv, kh
    return vpns, heats


# -- profiler helpers ------------------------------------------------------------


@njit(cache=True)
def accumulate_unique(vpns, weights, write_weights):
    n = vpns.size
    sv = np.sort(vpns)
    m = 1
    for i in range(1, n):
        if sv[i] != sv[i - 1]:
            m += 1
    uniq = np.empty(m, dtype=np.int64)
    uniq[0] = sv[0]
    j = 0
    for i in range(1, n):
        if sv[i] != sv[i - 1]:
            j += 1
            uniq[j] = sv[i]
    sums = np.zeros(m, dtype=np.float64)
    wsums = np.zeros(m, dtype=np.float64)
    # adds land in array order per slot — the bincount association
    for i in range(n):
        s = np.searchsorted(uniq, vpns[i])
        sums[s] += weights[i]
        wsums[s] += write_weights[i]
    return uniq, sums, wsums


@njit(cache=True)
def member_sorted(values, sorted_ref):
    out = np.zeros(values.size, dtype=np.bool_)
    rs = sorted_ref.size
    if rs == 0:
        return out
    for i in range(values.size):
        v = values[i]
        pos = np.searchsorted(sorted_ref, v)
        if pos < rs and sorted_ref[pos] == v:
            out[i] = True
    return out


@njit(cache=True)
def write_fractions(h, w):
    out = np.zeros(h.size, dtype=np.float64)
    for i in range(h.size):
        hi = h[i]
        if hi > 0.0:
            f = w[i] / hi
            out[i] = f if f < 1.0 else 1.0
    return out


# -- EpochPlan execution ---------------------------------------------------------


@njit(cache=True)
def plan_span_stats(off_all, is_write, pfn_all, fast_frames, offsets, span):
    n = off_all.size
    total_counts = np.zeros(span, dtype=np.int64)
    write_counts = np.zeros(span, dtype=np.int64)
    pfn_span = np.zeros(span, dtype=np.int64)
    for i in range(n):
        o = off_all[i]
        total_counts[o] += 1
        if is_write[i]:
            write_counts[o] += 1
        pfn_span[o] = pfn_all[i]
    n_seg = offsets.size - 1
    fast_seg = np.zeros(n_seg, dtype=np.int64)
    for k in range(n_seg):
        c = 0
        for i in range(offsets[k], offsets[k + 1]):
            if pfn_all[i] < fast_frames:
                c += 1
        fast_seg[k] = c
    return total_counts, write_counts, pfn_span, fast_seg


@njit(cache=True)
def plan_segment_unique(off_all, offsets, scratch):
    n_seg = offsets.size - 1
    out = np.empty(off_all.size, dtype=np.int64)
    bounds = np.zeros(n_seg + 1, dtype=np.int64)
    pos = 0
    for k in range(n_seg):
        cnt = 0
        for i in range(offsets[k], offsets[k + 1]):
            o = off_all[i]
            if not scratch[o]:
                scratch[o] = True
                out[pos + cnt] = o
                cnt += 1
        # first-occurrence order -> ascending (the flatnonzero order)
        seg = np.sort(out[pos:pos + cnt])
        for i in range(cnt):
            out[pos + i] = seg[i]
            scratch[seg[i]] = False
        pos += cnt
        bounds[k + 1] = pos
    return out[:pos], bounds


# -- candidate gathering (bias / policies) ---------------------------------------


@njit(cache=True)
def hot_slow_candidates(
    vpns, heats, hot_threshold, pfn_tab, owner_tab, base, fast_frames, shared_tid
):
    n = vpns.size
    tab = pfn_tab.size
    count = 0
    for i in range(n):
        if heats[i] >= hot_threshold:
            j = vpns[i] - base
            if 0 <= j < tab:
                p = pfn_tab[j]
                if p >= 0 and p >= fast_frames:
                    count += 1
    sel_vpns = np.empty(count, dtype=np.int64)
    sel_heats = np.empty(count, dtype=np.float64)
    priv = np.empty(count, dtype=np.bool_)
    k = 0
    for i in range(n):
        if heats[i] >= hot_threshold:
            j = vpns[i] - base
            if 0 <= j < tab:
                p = pfn_tab[j]
                if p >= 0 and p >= fast_frames:
                    sel_vpns[k] = vpns[i]
                    sel_heats[k] = heats[i]
                    priv[k] = owner_tab[j] != shared_tid
                    k += 1
    return sel_vpns, sel_heats, priv


# -- compile warm-up -------------------------------------------------------------


def warmup() -> None:
    """Force one compilation per kernel at the production signatures.

    Runs at import (dispatcher) so ``cache=True`` artifacts are built —
    or loaded — before any timed region; without it the first bench
    epoch would pay the JIT cost.
    """
    i64 = np.arange(2, dtype=np.int64)
    f64 = np.ones(2, dtype=np.float64)
    b = np.zeros(2, dtype=np.bool_)
    i8 = np.zeros(2, dtype=np.int8)
    i16 = np.zeros(2, dtype=np.int16)
    u = np.array([0.1, 0.9])
    cdf = np.array([0.5, 1.0])
    lut = np.searchsorted(cdf, np.arange(65537) / 65536.0, side="right").astype(np.int64)
    zipf_invert(cdf, lut, 65536, u)
    page_record_rows(
        i64.copy(), i64.copy(), i64.copy(), i64.copy(), i64.copy(),
        b.copy(), i8, b.copy(), np.array([0, 1], dtype=np.int64), i64, i64, 1,
    )
    page_reset_epoch(b.copy(), i8, i64.copy(), i64.copy())
    pid_fast_usage(i8, i64, 0, 1)
    pid_ground_truth(i8, i64, i64, i64, 0, 1, 1)
    heat_accumulate(f64.copy(), b.copy(), i64, f64)
    heat_add_scaled(f64.copy(), b.copy(), i64, f64, 0.5)
    heat_decay(f64.copy(), 0.5)
    heat_compact(f64.copy(), b.copy(), 1e-6)
    heat_min_live(f64, b)
    heat_gather(f64, 0, i64)
    topk_live(f64, np.ones(2, dtype=np.bool_), 0, 1)
    accumulate_unique(i64, f64, f64)
    member_sorted(i64, i64)
    write_fractions(f64, f64)
    plan_span_stats(i64, b, i64, 1, np.array([0, 2], dtype=np.int64), 2)
    plan_segment_unique(i64, np.array([0, 2], dtype=np.int64), np.zeros(2, dtype=np.bool_))
    hot_slow_candidates(i64, f64, 0.5, i64, i16, 0, 1, -1)
