"""Pure-numpy reference kernels (DESIGN.md §6).

Every function here is the *specification*: the bodies are the exact
array programs the hot paths ran before the kernel tier existed, moved
verbatim so the numba mirrors in :mod:`repro.kernels.nb_backend` have a
bit-identical reference to be differentially pinned against.  Keep them
boring — no behavioural cleverness belongs in this file, only the
arithmetic the goldens froze.

Shared contract (both backends):

* integer kernels may reorder freely (integer adds commute);
* float kernels must perform the same elementwise operations in the
  same per-slot order the dict/object era used (one add per unique key
  per batch, one multiply per decay);
* no kernel consumes RNG state — draws stay in the callers so stream
  order is backend-independent.
"""

from __future__ import annotations

import numpy as np

#: lifecycle codes, mirrored from repro.mm.page_store (no import cycle)
_STATE_MAPPED = 1
_STATE_MIGRATING = 2


def warmup() -> None:
    """No-op (the numba backend compiles its kernels here)."""


# -- Zipf LUT inversion ----------------------------------------------------------


def zipf_invert(cdf: np.ndarray, lut: np.ndarray, m: int, u: np.ndarray) -> np.ndarray:
    """Exactly ``np.searchsorted(cdf, u, side='right')``.

    The LUT narrows each sample to a short index range in O(1); the few
    samples whose bucket straddles a CDF step finish with a vectorized
    bisection over that (tiny) range.
    """
    b = (u * m).astype(np.int64)
    # Float rounding in u*m can land one bucket off; nudge back so
    # b/m <= u < (b+1)/m holds exactly (b/m is exact: m is 2**16).
    b[u < b / m] -= 1
    b[u >= (b + 1) / m] += 1
    lo = lut[b]
    hi = lut[b + 1]
    need = lo < hi
    if need.any():
        lo_r, hi_r, u_r = lo[need], hi[need], u[need]
        open_ = lo_r < hi_r
        while open_.any():
            mid = (lo_r + hi_r) >> 1
            right = (cdf[np.minimum(mid, cdf.size - 1)] <= u_r) & open_
            shrink = ~right & open_
            lo_r[right] = mid[right] + 1
            hi_r[shrink] = mid[shrink]
            open_ = lo_r < hi_r
        lo[need] = lo_r
    return lo


# -- PageStatsStore hot updates --------------------------------------------------


def page_record_rows(
    reads: np.ndarray,
    writes: np.ndarray,
    epoch_reads: np.ndarray,
    epoch_writes: np.ndarray,
    last_access_cycle: np.ndarray,
    touched: np.ndarray,
    state: np.ndarray,
    dirty_since_copy: np.ndarray,
    pfns: np.ndarray,
    n_reads: np.ndarray,
    n_writes: np.ndarray,
    cycle: int,
) -> None:
    """Account per-frame access counts for unique ``pfns`` rows."""
    reads[pfns] += n_reads
    writes[pfns] += n_writes
    epoch_reads[pfns] += n_reads
    epoch_writes[pfns] += n_writes
    last_access_cycle[pfns] = cycle
    touched[pfns] = True
    # Writes landing while a transactional copy is in flight dirty the
    # source frame (same rule as PhysPage.record_access).
    migrating = (state[pfns] == _STATE_MIGRATING) & (n_writes > 0)
    if migrating.any():
        dirty_since_copy[pfns[migrating]] = True


def page_reset_epoch(
    touched: np.ndarray,
    state: np.ndarray,
    epoch_reads: np.ndarray,
    epoch_writes: np.ndarray,
) -> None:
    """Zero epoch counters on touched MAPPED/MIGRATING frames."""
    idx = np.flatnonzero(touched)
    if idx.size == 0:
        return
    st = state[idx]
    clearable = idx[(st == _STATE_MAPPED) | (st == _STATE_MIGRATING)]
    epoch_reads[clearable] = 0
    epoch_writes[clearable] = 0
    touched[clearable] = False


def pid_fast_usage(state: np.ndarray, pid_col: np.ndarray, pid: int, fast_frames: int) -> int:
    """How many fast-tier frames ``pid`` maps (PTE-walk equivalent)."""
    live = (state == _STATE_MAPPED) | (state == _STATE_MIGRATING)
    pfns = np.flatnonzero(live & (pid_col == pid))
    return int((pfns < fast_frames).sum())


def pid_ground_truth(
    state: np.ndarray,
    pid_col: np.ndarray,
    epoch_reads: np.ndarray,
    epoch_writes: np.ndarray,
    pid: int,
    fast_frames: int,
    cut: int,
) -> tuple[int, int, int, int]:
    """(hot, hot∧fast, cold∧fast, fast) page counts for ``pid``."""
    live = (state == _STATE_MAPPED) | (state == _STATE_MIGRATING)
    pfns = np.flatnonzero(live & (pid_col == pid))
    in_fast = pfns < fast_frames
    is_hot = (epoch_reads[pfns] + epoch_writes[pfns]) >= cut
    fast = int(in_fast.sum())
    hot = int(is_hot.sum())
    hot_fast = int((is_hot & in_fast).sum())
    return (hot, hot_fast, fast - hot_fast, fast)


# -- HeatStore accumulate / decay / gather / top-k -------------------------------


def heat_accumulate(
    heat: np.ndarray, live: np.ndarray, idx: np.ndarray, sums: np.ndarray
) -> tuple[np.ndarray, float]:
    """``heat[idx] += sums`` (unique slots); returns (new-slot mask,
    min written heat) for the caller's order-set / min-live bookkeeping."""
    heat[idx] += sums
    new = ~live[idx]
    live[idx] = True
    return new, float(heat[idx].min())


def heat_add_scaled(
    heat: np.ndarray, live: np.ndarray, idx: np.ndarray, heats: np.ndarray, scale: float
) -> tuple[np.ndarray, float]:
    """``heat[idx] += heats * scale`` (unique slots, any order)."""
    heat[idx] += heats * scale
    new = ~live[idx]
    live[idx] = True
    return new, float(heat[idx].min())


def heat_decay(heat: np.ndarray, decay: float) -> None:
    """One epoch of exponential decay (non-live entries are exactly 0.0)."""
    heat *= decay


def heat_compact(heat: np.ndarray, live: np.ndarray, floor: float) -> np.ndarray:
    """Drop live entries whose heat fell below ``floor``; returns their
    slot indices (ascending) so the caller can fix the order set."""
    dead_idx = np.flatnonzero(live & (heat < floor))
    if dead_idx.size:
        heat[dead_idx] = 0.0
        live[dead_idx] = False
    return dead_idx


def heat_min_live(heat: np.ndarray, live: np.ndarray) -> float:
    """Exact minimum live heat (inf when nothing is live)."""
    h = heat[live]
    if h.size == 0:
        return float(np.inf)
    return float(h.min())


def heat_gather(heat: np.ndarray, base: int, vpns: np.ndarray) -> np.ndarray:
    """``heat.get(vpn, 0.0)`` vectorized over ``vpns``."""
    out = np.zeros(vpns.size, dtype=np.float64)
    idx = vpns - base
    ok = (idx >= 0) & (idx < heat.size)
    out[ok] = heat[idx[ok]]
    return out


def topk_live(
    heat: np.ndarray, live: np.ndarray, base: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Prune the live set to everything tied with the ``n``-th largest
    heat (ascending vpn); the caller applies the exact (-heat, vpn)
    lexsort on the survivors."""
    vpns = np.flatnonzero(live) + base  # ascending
    heats = heat[vpns - base]
    if n < vpns.size:
        # Keep everything tied with the k-th largest heat so the vpn
        # tiebreak stays exact, then order the survivors.
        kth = np.partition(heats, vpns.size - n)[vpns.size - n]
        keep = heats >= kth
        vpns, heats = vpns[keep], heats[keep]
    return vpns, heats


# -- profiler helpers ------------------------------------------------------------


def accumulate_unique(
    vpns: np.ndarray, weights: np.ndarray, write_weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(unique vpns ascending, per-vpn weight sums, write-weight sums).

    Accumulation order per slot is array order, exactly what
    ``np.bincount`` does — the float-add association the goldens pin.
    """
    uniq, inverse = np.unique(vpns, return_inverse=True)
    sums = np.bincount(inverse, weights=weights)
    wsums = np.bincount(inverse, weights=write_weights)
    return uniq, sums, wsums


def member_sorted(values: np.ndarray, sorted_ref: np.ndarray) -> np.ndarray:
    """``np.isin(values, sorted_ref)`` for an already-sorted reference."""
    if sorted_ref.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(sorted_ref, values)
    in_range = pos < sorted_ref.size
    out = np.zeros(values.shape, dtype=bool)
    out[in_range] = sorted_ref[pos[in_range]] == values[in_range]
    return out


def write_fractions(h: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``min(w/h, 1)`` where ``h > 0`` else 0, elementwise."""
    out = np.zeros(h.size, dtype=np.float64)
    pos = h > 0.0
    out[pos] = np.minimum(w[pos] / h[pos], 1.0)
    return out


# -- EpochPlan execution ---------------------------------------------------------


def plan_span_stats(
    off_all: np.ndarray,
    is_write: np.ndarray,
    pfn_all: np.ndarray,
    fast_frames: int,
    offsets: np.ndarray,
    span: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-span access/write counts, pfn scatter, per-segment fast counts.

    ``pfn_span`` is only defined at occupied offsets (the caller reads
    it through ``occ``/unique-offset index sets).
    """
    total_counts = np.bincount(off_all, minlength=span)
    write_counts = np.bincount(off_all[is_write], minlength=span)
    pfn_span = np.zeros(span, dtype=np.int64)
    pfn_span[off_all] = pfn_all
    # Per-segment fast/slow splits from per-access tier membership.
    in_fast = pfn_all < fast_frames
    csum = np.zeros(off_all.size + 1, dtype=np.int64)
    np.cumsum(in_fast, out=csum[1:])
    fast_seg = csum[offsets[1:]] - csum[offsets[:-1]]
    return total_counts, write_counts, pfn_span, fast_seg


def plan_segment_unique(
    off_all: np.ndarray, offsets: np.ndarray, scratch: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique offsets of each segment, concatenated.

    Returns ``(ucat, bounds)``: segment ``k``'s unique offsets (ascending)
    are ``ucat[bounds[k]:bounds[k+1]]``.  ``scratch`` is a caller-owned
    all-False bool array over the span; it is returned all-False.
    """
    n_seg = offsets.size - 1
    out = np.empty(off_all.size, dtype=np.int64)
    bounds = np.zeros(n_seg + 1, dtype=np.int64)
    pos = 0
    for k in range(n_seg):
        s, e = int(offsets[k]), int(offsets[k + 1])
        if s < e:
            scratch[off_all[s:e]] = True
            uoff = np.flatnonzero(scratch)
            scratch[uoff] = False
            out[pos:pos + uoff.size] = uoff
            pos += uoff.size
        bounds[k + 1] = pos
    return out[:pos], bounds


# -- candidate gathering (bias / policies) ---------------------------------------


def hot_slow_candidates(
    vpns: np.ndarray,
    heats: np.ndarray,
    hot_threshold: float,
    pfn_tab: np.ndarray,
    owner_tab: np.ndarray,
    base: int,
    fast_frames: int,
    shared_tid: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hot slow-tier promotion candidates, in the given (heat-insertion)
    order: (vpns, heats, privately-owned mask)."""
    hot = heats >= hot_threshold
    vpns, heats = vpns[hot], heats[hot]
    if vpns.size == 0:
        return vpns, heats, np.zeros(0, dtype=bool)
    idx = vpns - base
    in_range = (idx >= 0) & (idx < pfn_tab.size)
    pfns = np.full(vpns.size, -1, dtype=np.int64)
    owners = np.full(vpns.size, -1, dtype=np.int16)
    pfns[in_range] = pfn_tab[idx[in_range]]
    owners[in_range] = owner_tab[idx[in_range]]
    slow = (pfns >= 0) & (pfns >= fast_frames)
    sel = np.flatnonzero(slow)
    return vpns[sel], heats[sel], owners[sel] != shared_tid
