"""Nomad (Xiang et al., OSDI'24) — transactional tiering with shadowing.

Re-implemented from the paper's description:

* **Placement logic**: TPP-like hint-fault promotion criteria and
  watermark demotion — Nomad's contribution is the *mechanism*, not the
  policy ("it fails to adapt policies based on page access
  characteristics", paper §2.1).
* **Transactional migration**: pages stay mapped during the copy; a
  concurrent write aborts the transaction (our engine's transactional
  discipline).  Migration is thus fully asynchronous — but
  write-intensive pages thrash with repeated aborts, the weakness
  Vulcan's Table 1 bias addresses.
* **Page shadowing**: a promoted page's slow-tier copy is retained;
  clean pages demote by remap.  Non-exclusive tiering means shadows
  consume slow-tier capacity.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from repro.mm.migration import MigrationRequest, OptimizationFlags
from repro.policies.base import TieringPolicy, WorkloadRuntime
from repro.profiling.base import Profiler
from repro.profiling.hintfault import HintFaultProfiler


class NomadPolicy(TieringPolicy):
    """TPP-shaped policy over a transactional, shadowed mechanism."""

    name = "nomad"
    replication_enabled = False
    engine_flags = OptimizationFlags(opt_prep=False, opt_tlb=False, async_retry_limit=3)

    def __init__(
        self,
        *args,
        promote_threshold: float = 0.4,
        promotion_budget: int = 256,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.promote_threshold = promote_threshold
        self.promotion_budget = promotion_budget

    def _make_profiler(self, pid: int) -> Profiler:
        return HintFaultProfiler(window_fraction=0.25, decay=0.5)

    def _uses_shadowing(self) -> bool:
        return True

    def _on_register(self, rt: WorkloadRuntime) -> None:
        assert isinstance(rt.profiler, HintFaultProfiler)
        rt.profiler.register_pages(rt.pid, rt.space.process.repl.flat.present_vpns())

    def _plan_and_migrate(self) -> None:
        self._demote_to_watermark()
        self._promote_hot()

    def _demote_to_watermark(self) -> None:
        fast = self.allocator.tiers[0]
        if not fast.below_low_watermark():
            return
        need = fast.frames_to_reclaim()
        if need <= 0:
            return
        # Kernel-style reclaim: inactive-LRU order, i.e. pages whose
        # accessed bit has been clear longest go first; hint heat only
        # breaks ties.  This is what lets a broad scanner keep its pages
        # resident (always recently referenced) while an LC service's
        # zipf tail ages out -- no workload awareness at all.
        victims: list[tuple[int, float, int, int]] = []  # (last_access, heat, pid, vpn)
        store = self.allocator.store
        for pid, rt in self.workloads.items():
            flat = rt.space.process.repl.flat
            vpns = flat.present_vpns()
            if vpns.size == 0:
                continue
            pfns = flat.pfn[flat.indices(vpns)]
            fastm = pfns < store.fast_frames
            if not fastm.any():
                continue
            v = vpns[fastm]
            ages = store.last_access_cycle[pfns[fastm]]
            heats = rt.profiler.heat_of(pid, v)
            victims.extend(zip(ages.tolist(), heats.tolist(), repeat(pid), v.tolist()))
        # Oldest accessed-bit age first; among equally-recent pages the
        # kernel has no meaningful order, so quantize the hint heat and
        # jitter -- otherwise float residue from fault history would
        # deterministically evict the youngest process's pages.
        victims.sort(key=lambda t: (t[0], round(t[1], 1), self.rng.random()))
        by_pid: dict[int, list[MigrationRequest]] = {}
        for _age, _h, pid, vpn in victims[:need]:
            by_pid.setdefault(pid, []).append(
                # Demotion benefits from the shadow remap fast path.
                MigrationRequest(pid=pid, vpn=vpn, dest_tier=1, sync=True)
            )
        for pid, reqs in by_pid.items():
            self.workloads[pid].engine.migrate_batch(reqs)

    def _promote_hot(self) -> None:
        candidates: list[tuple[float, int, int]] = []
        for pid, rt in self.workloads.items():
            flat = rt.space.process.repl.flat
            # Heat-insertion order — the order the old dict walk saw.
            vpns, heats = rt.profiler.heat_view(pid)
            if vpns.size == 0:
                continue
            hot = heats >= self.promote_threshold
            vpns, heats = vpns[hot], heats[hot]
            if vpns.size == 0:
                continue
            idx = vpns - flat.base
            in_range = (idx >= 0) & (idx < flat.pfn.size)
            pfns = np.full(vpns.size, -1, dtype=np.int64)
            pfns[in_range] = flat.pfn[idx[in_range]]
            slow = pfns >= self.allocator.store.fast_frames
            candidates.extend(zip(heats[slow].tolist(), repeat(pid), vpns[slow].tolist()))
        # Hint faults are a binary-per-rotation signal, so candidate
        # heats tie en masse (up to float residue from fault history);
        # real promotion order is fault arrival, which has no workload
        # preference.  Shuffle, then stable-sort by *quantized* heat so
        # effective ties resolve randomly instead of by process age.
        self.rng.shuffle(candidates)
        candidates.sort(key=lambda t: -round(t[0], 1))
        free = self.allocator.free_frames(0)
        n = min(self.promotion_budget, free, len(candidates))
        by_pid: dict[int, list[MigrationRequest]] = {}
        for heat, pid, vpn in candidates[:n]:
            rt = self.workloads[pid]
            by_pid.setdefault(pid, []).append(
                MigrationRequest(
                    pid=pid,
                    vpn=vpn,
                    dest_tier=0,
                    sync=False,  # transactional, fully off the critical path
                    write_fraction=rt.profiler.write_fraction(pid, vpn),
                    access_rate_per_kcycle=rt.access_rate_per_kcycle,
                )
            )
        for pid, reqs in by_pid.items():
            self.workloads[pid].engine.migrate_batch(reqs)
