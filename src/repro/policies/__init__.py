"""Tiering policies: the paper's baselines and Vulcan, on one substrate.

All policies implement :class:`TieringPolicy` so the co-location harness
can swap them freely:

* :class:`NoMigrationPolicy` — first-touch placement, never migrates.
* :class:`UniformStaticPolicy` — the §3.3 straw-man: fast memory split
  evenly, per-workload hotness tiering inside the static share.
* :class:`TppPolicy` — TPP: hint-fault promotion (sync), watermark-based
  proactive demotion, no workload awareness.
* :class:`MemtisPolicy` — Memtis: PEBS + global hotness threshold sized
  to fast capacity, async migration; the cold-page-dilemma exemplar.
* :class:`NomadPolicy` — Nomad: transactional async migration with page
  shadowing, TPP-like placement logic.
* :class:`VulcanPolicy` — the paper's system, wiring the
  :class:`repro.core.daemon.VulcanDaemon`.
"""

from repro.policies.base import EpochResult, TieringPolicy, WorkloadRuntime
from repro.policies.memtis import MemtisPolicy
from repro.policies.nomad import NomadPolicy
from repro.policies.static import NoMigrationPolicy, UniformStaticPolicy
from repro.policies.tpp import TppPolicy
from repro.policies.vulcan import VulcanPolicy

POLICY_REGISTRY = {
    "none": NoMigrationPolicy,
    "uniform": UniformStaticPolicy,
    "tpp": TppPolicy,
    "memtis": MemtisPolicy,
    "nomad": NomadPolicy,
    "vulcan": VulcanPolicy,
}

__all__ = [
    "EpochResult",
    "TieringPolicy",
    "WorkloadRuntime",
    "NoMigrationPolicy",
    "UniformStaticPolicy",
    "TppPolicy",
    "MemtisPolicy",
    "NomadPolicy",
    "VulcanPolicy",
    "POLICY_REGISTRY",
]
