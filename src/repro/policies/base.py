"""The policy interface the co-location harness drives.

Lifecycle per experiment::

    policy = SomePolicy(machine, allocator, lru, seed=...)
    rt = policy.register_workload(pid, name, space, service, core_map, ...)
    # each epoch:
    policy.observe(batch)            # for every thread's access batch
    policy.record_tier_sample(...)   # N times per epoch (FTHR sampling)
    result = policy.end_epoch()      # policy migrates; harness reads result

Each workload gets its *own* :class:`MigrationEngine` so stall cycles
are attributable per workload; whether that engine runs with Vulcan's
mechanism optimizations is a class attribute each policy sets
(baselines pay the global-drain / process-wide-shootdown costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ServiceClass
from repro.machine.platform import Machine
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import MigrationEngine, OptimizationFlags
from repro.mm.shadow import ShadowTracker
from repro.profiling.base import AccessBatch, EpochPlan, Profiler


@dataclass
class WorkloadRuntime:
    """Per-workload state a policy holds."""

    pid: int
    name: str
    service: ServiceClass
    space: AddressSpace
    engine: MigrationEngine
    profiler: Profiler
    thread_core_map: dict[int, int]
    shadow: ShadowTracker | None = None
    access_rate_per_kcycle: float = 0.0
    #: harness-visible per-epoch counters (reset by end_epoch)
    epoch_fast_hits: int = 0
    epoch_slow_hits: int = 0


@dataclass
class EpochResult:
    """What a policy did during one epoch."""

    promotions: dict[int, int] = field(default_factory=dict)
    demotions: dict[int, int] = field(default_factory=dict)
    #: stall cycles newly charged to each workload this epoch
    stall_cycles: dict[int, float] = field(default_factory=dict)
    #: total migration CPU cycles spent this epoch (system-wide)
    migration_cycles: float = 0.0
    #: app-side profiling overhead charged this epoch (hint faults)
    profiling_app_cycles: dict[int, float] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)


class TieringPolicy:
    """Base class; subclasses override the hooks marked below."""

    #: registry/reporting name
    name = "abstract"
    #: whether processes run with per-thread page-table replication
    replication_enabled = False
    #: migration-engine optimization flags for this policy's engines
    engine_flags = OptimizationFlags(opt_prep=False, opt_tlb=False)

    def __init__(
        self,
        machine: Machine,
        allocator: FrameAllocator,
        lru: LruSubsystem,
        *,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.allocator = allocator
        self.lru = lru
        self.rng = np.random.default_rng(seed)
        self.workloads: dict[int, WorkloadRuntime] = {}
        self._prev_stall: dict[int, float] = {}
        self._prev_migration_cycles: dict[int, float] = {}
        self._prev_app_overhead: dict[int, float] = {}

    # -- hooks subclasses implement ----------------------------------------

    def _make_profiler(self, pid: int) -> Profiler:
        """Profiling mechanism for a new workload (policy-specific)."""
        raise NotImplementedError

    def _uses_shadowing(self) -> bool:
        return False

    def _plan_and_migrate(self) -> None:
        """Select and execute this epoch's migrations."""
        raise NotImplementedError

    # -- common lifecycle -----------------------------------------------------

    def register_workload(
        self,
        pid: int,
        name: str,
        space: AddressSpace,
        service: ServiceClass,
        thread_core_map: dict[int, int],
        *,
        access_rate_per_kcycle: float = 0.0,
    ) -> WorkloadRuntime:
        if pid in self.workloads:
            raise ValueError(f"pid {pid} already registered")
        shadow = ShadowTracker() if self._uses_shadowing() else None
        engine = MigrationEngine(
            self.machine,
            self.allocator,
            space,
            self.lru,
            flags=self.engine_flags,
            thread_core_map=thread_core_map,
            shadow=shadow,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        )
        rt = WorkloadRuntime(
            pid=pid,
            name=name,
            service=service,
            space=space,
            engine=engine,
            profiler=self._make_profiler(pid),
            thread_core_map=thread_core_map,
            shadow=shadow,
            access_rate_per_kcycle=access_rate_per_kcycle,
        )
        self.workloads[pid] = rt
        self._prev_stall[pid] = 0.0
        self._prev_migration_cycles[pid] = 0.0
        self._prev_app_overhead[pid] = 0.0
        self._on_register(rt)
        return rt

    def _on_register(self, rt: WorkloadRuntime) -> None:
        """Extra registration work (subclass hook, default none)."""

    def unregister_workload(self, pid: int) -> None:
        rt = self.workloads.pop(pid, None)
        if rt is not None:
            rt.profiler.forget(pid)
            self._prev_stall.pop(pid, None)
            self._prev_migration_cycles.pop(pid, None)
            self._prev_app_overhead.pop(pid, None)
            self._on_unregister(rt)

    def _on_unregister(self, rt: WorkloadRuntime) -> None:
        """Subclass hook."""

    def update_service(self, pid: int, service: ServiceClass) -> ServiceClass:
        """QoS change on a live workload; returns the old class."""
        rt = self.workloads.get(pid)
        if rt is None:
            raise KeyError(f"pid {pid} not registered")
        old = rt.service
        rt.service = service
        self._on_service_change(rt, old)
        return old

    def _on_service_change(self, rt: WorkloadRuntime, old: ServiceClass) -> None:
        """Subclass hook: propagate a service-class change inward."""

    def note_fast_capacity(self, online_pages: int) -> None:
        """Capacity event: online fast-tier pages changed (harness hook).

        Base policies need nothing — they allocate against free-frame
        watermarks, which already reflect offlined frames.  Vulcan
        re-derives GPTs and the CBFRP partition base.
        """

    def observe(self, batch: AccessBatch) -> None:
        """Feed one thread's epoch accesses to the workload's profiler."""
        rt = self.workloads.get(batch.pid)
        if rt is None:
            return
        rt.profiler.observe(batch)

    def observe_plan(self, plan: EpochPlan) -> None:
        """Feed one process's whole epoch (batched :meth:`observe`)."""
        rt = self.workloads.get(plan.pid)
        if rt is None:
            return
        rt.profiler.observe_plan(plan)

    def note_tier_latency(self, fast_loaded_cycles: float, slow_loaded_cycles: float) -> None:
        """Observed loaded latencies this epoch (harness hook).

        Base policies ignore it; latency-aware extensions (the Colloid
        integration in :class:`VulcanPolicy`) use it to suspend
        migration when the fast tier stops being meaningfully faster.
        """

    def record_tier_sample(self, pid: int, fast: int, slow: int) -> None:
        """One FTHR sample (harness calls N times per epoch).

        Base policies ignore it; Vulcan feeds its QoS tracker.  The
        counters are still kept so any policy can report hit ratios.
        """
        rt = self.workloads.get(pid)
        if rt is None:
            return
        rt.epoch_fast_hits += fast
        rt.epoch_slow_hits += slow

    def record_tier_samples(self, pid: int, fast: np.ndarray, slow: np.ndarray) -> None:
        """Per-segment FTHR samples for one epoch (batched counterpart).

        Sample windows are per-segment state (Vulcan's QoS tracker keeps
        the raw pairs), so this dispatches one :meth:`record_tier_sample`
        per segment — exactly the legacy call sequence.
        """
        for f, s in zip(fast.tolist(), slow.tolist()):
            self.record_tier_sample(pid, f, s)

    def end_epoch(self) -> EpochResult:
        """Close the epoch: profilers roll over, migrations run."""
        result = EpochResult()
        promos_before = {pid: rt.engine.stats.promotions for pid, rt in self.workloads.items()}
        demos_before = {pid: rt.engine.stats.demotions for pid, rt in self.workloads.items()}

        for rt in self.workloads.values():
            rt.profiler.end_epoch()
        self._plan_and_migrate()

        for pid, rt in self.workloads.items():
            result.promotions[pid] = rt.engine.stats.promotions - promos_before.get(pid, 0)
            result.demotions[pid] = rt.engine.stats.demotions - demos_before.get(pid, 0)
            stall = rt.engine.stats.stall_cycles
            result.stall_cycles[pid] = stall - self._prev_stall.get(pid, 0.0)
            self._prev_stall[pid] = stall
            total = rt.engine.stats.total_cycles
            result.migration_cycles += total - self._prev_migration_cycles.get(pid, 0.0)
            self._prev_migration_cycles[pid] = total
            app_ov = rt.profiler.stats.app_overhead_cycles
            result.profiling_app_cycles[pid] = app_ov - self._prev_app_overhead.get(pid, 0.0)
            self._prev_app_overhead[pid] = app_ov
            rt.epoch_fast_hits = 0
            rt.epoch_slow_hits = 0
        return result

    # -- shared helpers -----------------------------------------------------------

    def _fast_usage(self, pid: int) -> int:
        """Ground-truth fast-tier pages of one workload."""
        return self.allocator.store.fast_usage(pid)
