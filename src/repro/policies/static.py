"""Static baselines: no migration, and the uniform-partition straw-man."""

from __future__ import annotations

import numpy as np

from repro.mm.migration import MigrationRequest
from repro.policies.base import TieringPolicy, WorkloadRuntime
from repro.profiling.base import Profiler
from repro.profiling.pebs import PebsProfiler


class NoMigrationPolicy(TieringPolicy):
    """First-touch placement forever.  The floor every tiering system
    should beat; also the 'standalone all-fast' reference when the fast
    tier is large enough to hold a workload."""

    name = "none"

    def _make_profiler(self, pid: int) -> Profiler:
        # Still profile (cheaply) so hit-ratio reporting works.
        return PebsProfiler(period=512, rng=self.rng)

    def _plan_and_migrate(self) -> None:
        return  # never migrates


class UniformStaticPolicy(TieringPolicy):
    """The §3.3 straw-man: fast memory split evenly across workloads,
    hotness-based promotion/demotion confined to each static share.

    Fair by construction but inefficient: shares never follow demand, so
    a tiering-sensitive workload starves while a scan-heavy one wastes
    its slice."""

    name = "uniform"

    def __init__(self, *args, promotion_budget: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.promotion_budget = promotion_budget

    def _make_profiler(self, pid: int) -> Profiler:
        return PebsProfiler(period=64, rng=self.rng)

    def _plan_and_migrate(self) -> None:
        n = len(self.workloads)
        if n == 0:
            return
        share = self.allocator.tiers[0].total // n
        for pid, rt in self.workloads.items():
            self._rebalance_workload(pid, rt, share)

    def _rebalance_workload(self, pid: int, rt: WorkloadRuntime, share: int) -> None:
        flat = rt.space.process.repl.flat
        vpns = flat.present_vpns()
        if vpns.size == 0:
            return
        pfns = flat.pfn[flat.indices(vpns)]
        h = rt.profiler.heat_of(pid, vpns)
        fastm = pfns < self.allocator.store.fast_frames
        fvpns, fh = vpns[fastm], h[fastm]
        svpns, sh = vpns[~fastm], h[~fastm]

        requests: list[MigrationRequest] = []
        # Shrink to the static share first.
        overage = fvpns.size - share
        if overage > 0:
            # Coldest first — ascending (heat, vpn), the old tuple sort.
            for i in np.lexsort((fvpns, fh))[:overage].tolist():
                requests.append(
                    MigrationRequest(pid=pid, vpn=int(fvpns[i]), dest_tier=1, sync=True)
                )

        # Promote hottest slow pages into remaining headroom.
        headroom = share - (fvpns.size - max(overage, 0))
        headroom = min(headroom, self.promotion_budget)
        if headroom > 0 and svpns.size:
            # Hottest first — descending (heat, vpn), the old reverse sort.
            for i in np.lexsort((-svpns, -sh))[:headroom].tolist():
                if sh[i] <= 0.0:
                    break
                requests.append(
                    MigrationRequest(pid=pid, vpn=int(svpns[i]), dest_tier=0, sync=True)
                )
        if requests:
            rt.engine.migrate_batch(requests)
