"""Static baselines: no migration, and the uniform-partition straw-man."""

from __future__ import annotations

from repro.mm import pte as pte_mod
from repro.mm.migration import MigrationRequest
from repro.policies.base import TieringPolicy, WorkloadRuntime
from repro.profiling.base import Profiler
from repro.profiling.pebs import PebsProfiler


class NoMigrationPolicy(TieringPolicy):
    """First-touch placement forever.  The floor every tiering system
    should beat; also the 'standalone all-fast' reference when the fast
    tier is large enough to hold a workload."""

    name = "none"

    def _make_profiler(self, pid: int) -> Profiler:
        # Still profile (cheaply) so hit-ratio reporting works.
        return PebsProfiler(period=512, rng=self.rng)

    def _plan_and_migrate(self) -> None:
        return  # never migrates


class UniformStaticPolicy(TieringPolicy):
    """The §3.3 straw-man: fast memory split evenly across workloads,
    hotness-based promotion/demotion confined to each static share.

    Fair by construction but inefficient: shares never follow demand, so
    a tiering-sensitive workload starves while a scan-heavy one wastes
    its slice."""

    name = "uniform"

    def __init__(self, *args, promotion_budget: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.promotion_budget = promotion_budget

    def _make_profiler(self, pid: int) -> Profiler:
        return PebsProfiler(period=64, rng=self.rng)

    def _plan_and_migrate(self) -> None:
        n = len(self.workloads)
        if n == 0:
            return
        share = self.allocator.tiers[0].total // n
        for pid, rt in self.workloads.items():
            self._rebalance_workload(pid, rt, share)

    def _rebalance_workload(self, pid: int, rt: WorkloadRuntime, share: int) -> None:
        heat = rt.profiler.hotness(pid)
        repl = rt.space.process.repl

        fast_pages: list[tuple[float, int]] = []  # (heat, vpn)
        slow_pages: list[tuple[float, int]] = []
        for vpn, value in repl.process_table.iter_ptes():
            h = heat.get(vpn, 0.0)
            if self.allocator.tier_of_pfn(pte_mod.pte_pfn(value)) == 0:
                fast_pages.append((h, vpn))
            else:
                slow_pages.append((h, vpn))

        requests: list[MigrationRequest] = []
        # Shrink to the static share first.
        overage = len(fast_pages) - share
        if overage > 0:
            fast_pages.sort()  # coldest first
            for h, vpn in fast_pages[:overage]:
                requests.append(MigrationRequest(pid=pid, vpn=vpn, dest_tier=1, sync=True))
            fast_pages = fast_pages[overage:]

        # Promote hottest slow pages into remaining headroom.
        headroom = share - len(fast_pages)
        headroom = min(headroom, self.promotion_budget)
        if headroom > 0 and slow_pages:
            slow_pages.sort(reverse=True)  # hottest first
            for h, vpn in slow_pages[:headroom]:
                if h <= 0.0:
                    break
                requests.append(MigrationRequest(pid=pid, vpn=vpn, dest_tier=0, sync=True))
        if requests:
            rt.engine.migrate_batch(requests)
