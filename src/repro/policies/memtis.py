"""Memtis (Lee et al., SOSP'23) — the cold-page-dilemma exemplar.

Re-implemented from the paper's description:

* **Profiling**: PEBS sampling with per-page access counts and periodic
  halving (our decay), feeding a global hotness histogram.
* **Placement**: capacity-based — "ranks memory pages based on their
  absolute access frequency and promotes them to fast memory in
  descending order of heat until the fast memory capacity is fully
  utilized" (paper §2.2).  The hot threshold is global across all
  managed processes: no normalization per workload, so a high-intensity
  co-runner monopolizes the fast tier.
* **Migration**: asynchronous background threads (kmigrated-style), off
  the critical path; we model it with the transactional engine so dirty
  retries behave realistically, with a modest reserved headroom kept
  free for new allocations.
"""

from __future__ import annotations

from repro.mm import pte as pte_mod
from repro.mm.migration import MigrationRequest, OptimizationFlags
from repro.policies.base import TieringPolicy
from repro.profiling.base import Profiler
from repro.profiling.histogram import HotnessHistogram
from repro.profiling.pebs import PebsProfiler


class MemtisPolicy(TieringPolicy):
    """Global-threshold capacity tiering with async migration."""

    name = "memtis"
    replication_enabled = False
    engine_flags = OptimizationFlags(opt_prep=False, opt_tlb=False)

    def __init__(
        self,
        *args,
        sampling_period: int = 64,
        migration_budget: int = 512,
        reserve_frac: float = 0.01,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.histogram = HotnessHistogram()
        self.sampling_period = sampling_period
        self.migration_budget = migration_budget
        self.reserve_frac = reserve_frac

    def _make_profiler(self, pid: int) -> Profiler:
        import numpy as np

        return PebsProfiler(
            period=self.sampling_period,
            decay=0.5,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        )

    def _plan_and_migrate(self) -> None:
        """One kmigrated pass: compute the global hot set, converge."""
        if not self.workloads:
            return
        capacity = int(self.allocator.tiers[0].total * (1.0 - self.reserve_frac))

        # Build the global heat table (pid, vpn) -> heat.
        entries: list[tuple[float, int, int, int]] = []  # (heat, pid, vpn, tier)
        for pid, rt in self.workloads.items():
            heat = rt.profiler.hotness(pid)
            for vpn, value in rt.space.process.repl.process_table.iter_ptes():
                tier = self.allocator.tier_of_pfn(pte_mod.pte_pfn(value))
                entries.append((heat.get(vpn, 0.0), pid, vpn, tier))
        if not entries:
            return

        # The capacity-sized global hot set: hottest pages first, raw
        # absolute counts, no per-workload normalization (Observation #1).
        entries.sort(key=lambda e: (-e[0], e[1], e[2]))
        hot_entries = [e for e in entries[:capacity] if e[0] > 0.0]
        n_hot = len(hot_entries)

        # Promote hot pages stuck in the slow tier, hottest first.
        promotions = [(h, pid, vpn) for h, pid, vpn, tier in hot_entries if tier == 1]
        # Demotion victims: fast pages outside the hot set, coldest first.
        demotions = [
            (h, pid, vpn)
            for h, pid, vpn, tier in entries[n_hot:]
            if tier == 0
        ]
        demotions.sort()
        free = self.allocator.free_frames(0)
        budget = self.migration_budget

        n_promote = min(len(promotions), budget)
        # Demote enough to make room for the promotions.
        room_needed = max(n_promote - free, 0)
        n_demote = min(room_needed, len(demotions), budget)

        by_pid: dict[int, list[MigrationRequest]] = {}
        for heat, pid, vpn in demotions[:n_demote]:
            by_pid.setdefault(pid, []).append(
                MigrationRequest(pid=pid, vpn=vpn, dest_tier=1, sync=False)
            )
        n_promote = min(n_promote, free + n_demote)
        for heat, pid, vpn in promotions[:n_promote]:
            rt = self.workloads[pid]
            by_pid.setdefault(pid, []).append(
                MigrationRequest(
                    pid=pid,
                    vpn=vpn,
                    dest_tier=0,
                    sync=False,
                    write_fraction=rt.profiler.write_fraction(pid, vpn),
                    access_rate_per_kcycle=rt.access_rate_per_kcycle,
                )
            )
        for pid, reqs in by_pid.items():
            self.workloads[pid].engine.migrate_batch(reqs)
