"""Memtis (Lee et al., SOSP'23) — the cold-page-dilemma exemplar.

Re-implemented from the paper's description:

* **Profiling**: PEBS sampling with per-page access counts and periodic
  halving (our decay), feeding a global hotness histogram.
* **Placement**: capacity-based — "ranks memory pages based on their
  absolute access frequency and promotes them to fast memory in
  descending order of heat until the fast memory capacity is fully
  utilized" (paper §2.2).  The hot threshold is global across all
  managed processes: no normalization per workload, so a high-intensity
  co-runner monopolizes the fast tier.
* **Migration**: asynchronous background threads (kmigrated-style), off
  the critical path; we model it with the transactional engine so dirty
  retries behave realistically, with a modest reserved headroom kept
  free for new allocations.
"""

from __future__ import annotations

import numpy as np

from repro.mm.migration import MigrationRequest, OptimizationFlags
from repro.policies.base import TieringPolicy
from repro.profiling.base import Profiler
from repro.profiling.histogram import HotnessHistogram
from repro.profiling.pebs import PebsProfiler


class MemtisPolicy(TieringPolicy):
    """Global-threshold capacity tiering with async migration."""

    name = "memtis"
    replication_enabled = False
    engine_flags = OptimizationFlags(opt_prep=False, opt_tlb=False)

    def __init__(
        self,
        *args,
        sampling_period: int = 64,
        migration_budget: int = 512,
        reserve_frac: float = 0.01,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.histogram = HotnessHistogram()
        self.sampling_period = sampling_period
        self.migration_budget = migration_budget
        self.reserve_frac = reserve_frac

    def _make_profiler(self, pid: int) -> Profiler:
        return PebsProfiler(
            period=self.sampling_period,
            decay=0.5,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        )

    def _plan_and_migrate(self) -> None:
        """One kmigrated pass: compute the global hot set, converge."""
        if not self.workloads:
            return
        capacity = int(self.allocator.tiers[0].total * (1.0 - self.reserve_frac))

        # Build the global heat table as parallel columns (heat, pid, vpn, tier).
        cols: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for pid, rt in self.workloads.items():
            flat = rt.space.process.repl.flat
            pvpns = flat.present_vpns()
            if pvpns.size == 0:
                continue
            pfns = flat.pfn[flat.indices(pvpns)]
            cols.append(
                (
                    rt.profiler.heat_of(pid, pvpns),
                    np.full(pvpns.size, pid, dtype=np.int64),
                    pvpns,
                    (pfns >= self.allocator.store.fast_frames).astype(np.int8),
                )
            )
        if not cols:
            return
        h = np.concatenate([c[0] for c in cols])
        pids = np.concatenate([c[1] for c in cols])
        vpns = np.concatenate([c[2] for c in cols])
        tiers = np.concatenate([c[3] for c in cols])

        # The capacity-sized global hot set: hottest pages first, raw
        # absolute counts, no per-workload normalization (Observation #1).
        # Same total order as sorting tuples by (-heat, pid, vpn).
        order = np.lexsort((vpns, pids, -h))
        h, pids, vpns, tiers = h[order], pids[order], vpns[order], tiers[order]
        # The descending sort puts zero-heat rows at the back of the
        # capacity window, so the hot set is the h>0 prefix.
        n_hot = int((h[:capacity] > 0.0).sum())

        # Promote hot pages stuck in the slow tier, hottest first.
        promo_idx = np.flatnonzero(tiers[:n_hot] == 1)
        # Demotion victims: fast pages outside the hot set, coldest first
        # (ascending (heat, pid, vpn), matching the old tuple sort).
        demo_idx = n_hot + np.flatnonzero(tiers[n_hot:] == 0)
        demo_idx = demo_idx[np.lexsort((vpns[demo_idx], pids[demo_idx], h[demo_idx]))]
        free = self.allocator.free_frames(0)
        budget = self.migration_budget

        n_promote = min(promo_idx.size, budget)
        # Demote enough to make room for the promotions.
        room_needed = max(n_promote - free, 0)
        n_demote = min(room_needed, demo_idx.size, budget)

        by_pid: dict[int, list[MigrationRequest]] = {}
        for i in demo_idx[:n_demote].tolist():
            pid, vpn = int(pids[i]), int(vpns[i])
            by_pid.setdefault(pid, []).append(
                MigrationRequest(pid=pid, vpn=vpn, dest_tier=1, sync=False)
            )
        n_promote = min(n_promote, free + n_demote)
        for i in promo_idx[:n_promote].tolist():
            pid, vpn = int(pids[i]), int(vpns[i])
            rt = self.workloads[pid]
            by_pid.setdefault(pid, []).append(
                MigrationRequest(
                    pid=pid,
                    vpn=vpn,
                    dest_tier=0,
                    sync=False,
                    write_fraction=rt.profiler.write_fraction(pid, vpn),
                    access_rate_per_kcycle=rt.access_rate_per_kcycle,
                )
            )
        for pid, reqs in by_pid.items():
            self.workloads[pid].engine.migrate_batch(reqs)
