"""TPP — Transparent Page Placement (Maruf et al., ASPLOS'23).

Re-implemented from the paper's description of TPP's mechanisms:

* **Profiling**: NUMA-hinting faults on slow-tier pages; a page that
  faults twice within the promotion window is deemed hot ("promote on
  second touch" — TPP's fault-frequency filter).
* **Promotion**: synchronous, on the faulting path — the application
  eats the whole migration latency (this is what Fig. 4/8 punish for
  write-heavy, and what Nomad was built to fix).
* **Demotion**: proactive watermark-based reclaim — when fast-tier free
  memory drops below the low watermark, the coldest inactive-LRU pages
  are demoted until the high watermark is restored, keeping allocation
  headroom for new pages and promotions.
* No workload awareness: one global promotion loop, raw access counts —
  the cold-page dilemma applies in full.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from repro.mm.migration import MigrationRequest, OptimizationFlags
from repro.policies.base import TieringPolicy, WorkloadRuntime
from repro.profiling.base import Profiler
from repro.profiling.hintfault import HintFaultProfiler


class TppPolicy(TieringPolicy):
    """Hint-fault promotion + watermark demotion, all synchronous."""

    name = "tpp"
    replication_enabled = False
    engine_flags = OptimizationFlags(opt_prep=False, opt_tlb=False)

    def __init__(
        self,
        *args,
        promote_threshold: float = 0.4,
        promotion_budget: int = 256,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        #: heat (≈ hint faults within the decay horizon) to promote
        self.promote_threshold = promote_threshold
        self.promotion_budget = promotion_budget

    def _make_profiler(self, pid: int) -> Profiler:
        # Aggressive poisoning of a wide window: TPP instruments every
        # slow-tier page; cost lands on the application as fault latency.
        return HintFaultProfiler(window_fraction=0.25, decay=0.5)

    def _on_register(self, rt: WorkloadRuntime) -> None:
        assert isinstance(rt.profiler, HintFaultProfiler)
        rt.profiler.register_pages(rt.pid, rt.space.process.repl.flat.present_vpns())

    def _plan_and_migrate(self) -> None:
        self._demote_to_watermark()
        self._promote_hot()

    # -- demotion: watermark reclaim ------------------------------------------

    def _demote_to_watermark(self) -> None:
        fast = self.allocator.tiers[0]
        if not fast.below_low_watermark():
            return
        need = fast.frames_to_reclaim()
        if need <= 0:
            return
        # Kernel-style reclaim: inactive-LRU order, i.e. pages whose
        # accessed bit has been clear longest go first; hint heat only
        # breaks ties.  This is what lets a broad scanner keep its pages
        # resident (always recently referenced) while an LC service's
        # zipf tail ages out -- no workload awareness at all.
        victims: list[tuple[int, float, int, int]] = []  # (last_access, heat, pid, vpn)
        store = self.allocator.store
        for pid, rt in self.workloads.items():
            flat = rt.space.process.repl.flat
            vpns = flat.present_vpns()
            if vpns.size == 0:
                continue
            pfns = flat.pfn[flat.indices(vpns)]
            fastm = pfns < store.fast_frames
            if not fastm.any():
                continue
            v = vpns[fastm]
            ages = store.last_access_cycle[pfns[fastm]]
            heats = rt.profiler.heat_of(pid, v)
            victims.extend(zip(ages.tolist(), heats.tolist(), repeat(pid), v.tolist()))
        # Oldest accessed-bit age first; among equally-recent pages the
        # kernel has no meaningful order, so quantize the hint heat and
        # jitter -- otherwise float residue from fault history would
        # deterministically evict the youngest process's pages.
        victims.sort(key=lambda t: (t[0], round(t[1], 1), self.rng.random()))
        by_pid: dict[int, list[MigrationRequest]] = {}
        for _age, _h, pid, vpn in victims[:need]:
            by_pid.setdefault(pid, []).append(
                MigrationRequest(pid=pid, vpn=vpn, dest_tier=1, sync=True)
            )
        for pid, reqs in by_pid.items():
            self.workloads[pid].engine.migrate_batch(reqs)

    # -- promotion: second-touch hint faults ------------------------------------

    def _promote_hot(self) -> None:
        budget = self.promotion_budget
        # Global hottest-first ordering across workloads — raw counts,
        # exactly the behaviour Observation #1 criticizes.
        candidates: list[tuple[float, int, int]] = []
        for pid, rt in self.workloads.items():
            flat = rt.space.process.repl.flat
            # Heat-insertion order — the order the old dict walk saw.
            vpns, heats = rt.profiler.heat_view(pid)
            if vpns.size == 0:
                continue
            hot = heats >= self.promote_threshold
            vpns, heats = vpns[hot], heats[hot]
            if vpns.size == 0:
                continue
            idx = vpns - flat.base
            in_range = (idx >= 0) & (idx < flat.pfn.size)
            pfns = np.full(vpns.size, -1, dtype=np.int64)
            pfns[in_range] = flat.pfn[idx[in_range]]
            slow = pfns >= self.allocator.store.fast_frames
            candidates.extend(zip(heats[slow].tolist(), repeat(pid), vpns[slow].tolist()))
        # Hint faults are a binary-per-rotation signal, so candidate
        # heats tie en masse (up to float residue from fault history);
        # real promotion order is fault arrival, which has no workload
        # preference.  Shuffle, then stable-sort by *quantized* heat so
        # effective ties resolve randomly instead of by process age.
        self.rng.shuffle(candidates)
        candidates.sort(key=lambda t: -round(t[0], 1))
        free = self.allocator.free_frames(0)
        n = min(budget, free, len(candidates))
        by_pid: dict[int, list[MigrationRequest]] = {}
        for heat, pid, vpn in candidates[:n]:
            by_pid.setdefault(pid, []).append(
                MigrationRequest(pid=pid, vpn=vpn, dest_tier=0, sync=True)
            )
        for pid, reqs in by_pid.items():
            self.workloads[pid].engine.migrate_batch(reqs)
