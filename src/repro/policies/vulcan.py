"""Vulcan as a harness-pluggable policy.

Wires the :class:`repro.core.daemon.VulcanDaemon` behind the common
:class:`TieringPolicy` interface:

* processes run with per-thread page-table replication;
* engines run with both mechanism optimizations (scoped drain, scoped
  shootdown) and shadowing;
* profiling is the FlexMem-style hybrid (§3.2 default);
* FTHR samples from the harness feed the QoS tracker (Eq. 1-2);
* each epoch's tick runs CBFRP and the biased migration policy.
"""

from __future__ import annotations

import numpy as np

from repro.core.daemon import VulcanDaemon, WorkloadHandle
from repro.mm.migration import OptimizationFlags
from repro.policies.base import TieringPolicy, WorkloadRuntime
from repro.profiling.base import Profiler
from repro.profiling.hybrid import HybridProfiler


class VulcanPolicy(TieringPolicy):
    """The paper's system, end to end."""

    name = "vulcan"
    replication_enabled = True
    engine_flags = OptimizationFlags(opt_prep=True, opt_tlb=True, prep_scope_cpus=2)

    def __init__(
        self,
        *args,
        unit_pages: int = 16,
        promotion_budget: int = 256,
        sampling_period: int = 64,
        colloid: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.daemon = VulcanDaemon(
            self.allocator,
            fast_capacity_pages=self.allocator.tiers[0].total,
            unit_pages=unit_pages,
            promotion_budget_per_epoch=promotion_budget,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        )
        self.sampling_period = sampling_period
        self.last_report = None
        #: Colloid-style latency balancing (§3.6): suspend migration when
        #: the loaded fast tier stops being meaningfully faster.
        from repro.core.colloid import LatencyBalancer
        from repro.core.replication_advisor import ReplicationAdvisor

        self.balancer = LatencyBalancer(enabled=colloid)
        self._migrate_this_epoch = True
        #: §3.6 auto-enable/disable advisor for per-thread page tables;
        #: fed each epoch, queryable via `replication_advice(pid)`.
        self.advisor = ReplicationAdvisor()
        self._prev_moved: dict[int, int] = {}
        self._prev_links: dict[int, int] = {}

    def _make_profiler(self, pid: int) -> Profiler:
        return HybridProfiler(
            period=self.sampling_period,
            window_fraction=0.0625,  # light poisoning: app pays for faults
            decay=0.5,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        )

    def _uses_shadowing(self) -> bool:
        return True

    def _on_register(self, rt: WorkloadRuntime) -> None:
        vpns = np.fromiter(
            (vpn for vpn, _ in rt.space.process.repl.process_table.iter_ptes()),
            dtype=np.int64,
        )
        assert isinstance(rt.profiler, HybridProfiler)
        rt.profiler.register_pages(rt.pid, vpns)
        self.daemon.attach(
            WorkloadHandle(
                pid=rt.pid,
                name=rt.name,
                service=rt.service,
                space=rt.space,
                engine=rt.engine,
                profiler=rt.profiler,
                shadow=rt.shadow,
                access_rate_per_kcycle=rt.access_rate_per_kcycle,
            )
        )

    def _on_unregister(self, rt: WorkloadRuntime) -> None:
        self.daemon.detach(rt.pid)
        self._prev_moved.pop(rt.pid, None)
        self._prev_links.pop(rt.pid, None)

    def _on_service_change(self, rt: WorkloadRuntime, old) -> None:
        # The daemon holds its own handle object; both views must agree
        # or CBFRP would keep partitioning under the stale class.
        handle = self.daemon.workloads.get(rt.pid)
        if handle is not None:
            handle.service = rt.service

    def note_fast_capacity(self, online_pages: int) -> None:
        self.daemon.set_fast_capacity(online_pages)

    def record_tier_sample(self, pid: int, fast: int, slow: int) -> None:
        super().record_tier_sample(pid, fast, slow)
        qos = self.daemon.qos.workloads.get(pid)
        if qos is not None:
            qos.add_sample(fast, slow)

    def note_tier_latency(self, fast_loaded_cycles: float, slow_loaded_cycles: float) -> None:
        self._migrate_this_epoch = self.balancer.update(fast_loaded_cycles, slow_loaded_cycles)

    def _plan_and_migrate(self) -> None:
        self.last_report = self.daemon.tick(migrate=self._migrate_this_epoch)
        self._migrate_this_epoch = True  # default until next latency note
        self._feed_advisor()

    def _feed_advisor(self) -> None:
        """Per-epoch replication cost/benefit evidence (§3.6 advisor)."""
        for pid, rt in self.workloads.items():
            repl = rt.space.process.repl
            moved_total = rt.engine.stats.pages_moved
            moved = moved_total - self._prev_moved.get(pid, 0)
            self._prev_moved[pid] = moved_total
            links_total = repl.stats.leaf_links
            links = links_total - self._prev_links.get(pid, 0)
            self._prev_links[pid] = links_total
            n_threads = max(len(repl.tids), 1)
            # Sharing degree among live pages approximates migrated-page
            # scope (exact per-move tracking would be per-page logging).
            shared = repl.stats.shared_promotions
            private = max(repl.stats.private_faults - shared, 1)
            avg_sharers = (private * 1.0 + shared * n_threads) / (private + shared)
            self.advisor.note_epoch(
                pid,
                migrations=moved,
                avg_sharers=min(avg_sharers, n_threads),
                n_threads=n_threads,
                new_leaf_links=links,
                replica_upper_pages=repl.upper_table_overhead(),
            )

    def replication_advice(self, pid: int):
        """Current §3.6 enable/disable verdict for one workload."""
        return self.advisor.advise(pid)

    # -- introspection for the Fig. 9 benches -------------------------------

    def fthr(self, pid: int) -> float:
        qos = self.daemon.qos.workloads.get(pid)
        return qos.fthr if qos is not None else 0.0

    def gpt(self, pid: int) -> float:
        qos = self.daemon.qos.workloads.get(pid)
        return qos.gpt if qos is not None else 0.0

    def quota(self, pid: int) -> int:
        return self.daemon.partition.quotas.get(pid, 0)
