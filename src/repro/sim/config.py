"""Configuration dataclasses with the paper's hardware defaults.

The evaluation testbed (paper §5.1):

* Intel Xeon Platinum 8378A, one socket used: 32 cores, 48 MB LLC.
* Fast tier: locally-attached DRAM, 32 GB, 70 ns unloaded latency.
* Slow tier: emulated CXL via remote NUMA node, 256 GB, 162 ns.
* 205 GB/s local memory bandwidth, 25 GB/s UPI per direction.

The co-location experiments run at a scaled granularity (1 simulated page
≙ 10 MB, see DESIGN.md §4) so working sets stay tractable in Python while
all capacity ratios are preserved.  The microscopic migration experiments
(Figures 2/3/4/7) run at true 4 KiB granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.units import GiB, MiB, ns_to_cycles


@dataclass(frozen=True)
class TierConfig:
    """Static description of one memory tier."""

    name: str
    capacity_bytes: int
    load_latency_ns: float
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name!r}: capacity must be positive")
        if self.load_latency_ns <= 0:
            raise ValueError(f"tier {self.name!r}: latency must be positive")
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"tier {self.name!r}: bandwidth must be positive")

    @property
    def load_latency_cycles(self) -> int:
        """Unloaded access latency in cycles."""
        return ns_to_cycles(self.load_latency_ns)


@dataclass(frozen=True)
class MachineConfig:
    """Hardware description used to build a :class:`repro.machine.Machine`."""

    n_cores: int = 32
    llc_bytes: int = 48 * MiB
    tlb_entries: int = 1536  # combined L2 dTLB reach of a modern Xeon core
    tlb_miss_penalty_ns: float = 25.0  # page-walk latency on a miss
    ipi_deliver_ns: float = 1200.0  # IPI delivery + ack round trip (~3.6K cycles)
    fast: TierConfig = field(
        default_factory=lambda: TierConfig(
            name="fast", capacity_bytes=32 * GiB, load_latency_ns=70.0, bandwidth_gbps=205.0
        )
    )
    slow: TierConfig = field(
        default_factory=lambda: TierConfig(
            name="slow", capacity_bytes=256 * GiB, load_latency_ns=162.0, bandwidth_gbps=25.0
        )
    )

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("machine needs at least one core")
        if self.tlb_entries <= 0:
            raise ValueError("TLB must have at least one entry")

    @property
    def tiers(self) -> tuple[TierConfig, TierConfig]:
        return (self.fast, self.slow)

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """Copy of this config with a different core count."""
        return replace(self, n_cores=n_cores)


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the epoch-driven co-location simulator."""

    #: Bytes of real memory represented by one simulated page in the
    #: co-location experiments (DESIGN.md §4).  10 MB keeps the paper's
    #: 32 GB fast tier at 3 200 simulated pages.
    page_unit_bytes: int = 10 * 1000 * 1000
    #: Simulated wall-clock per epoch, in seconds.
    epoch_seconds: float = 1.0
    #: Memory accesses each workload thread attempts per epoch at full speed.
    accesses_per_thread_epoch: int = 50_000
    #: Number of FTHR samples collected per epoch (Eq. 1's N).
    fthr_samples_per_epoch: int = 5
    #: Random seed for the experiment's RNG stream family.
    seed: int = 2025

    def __post_init__(self) -> None:
        if self.page_unit_bytes <= 0:
            raise ValueError("page_unit_bytes must be positive")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.accesses_per_thread_epoch <= 0:
            raise ValueError("accesses_per_thread_epoch must be positive")
        if self.fthr_samples_per_epoch <= 0:
            raise ValueError("fthr_samples_per_epoch must be positive")

    def pages_for(self, nbytes: int) -> int:
        """Simulated page count representing ``nbytes`` of real memory."""
        return -(-nbytes // self.page_unit_bytes)


def paper_machine_config(n_cores: int = 32) -> MachineConfig:
    """The paper's single-socket testbed (§5.1) with ``n_cores`` cores."""
    return MachineConfig(n_cores=n_cores)
