"""Size and time units shared across the simulator.

All simulator time is denominated in *CPU cycles* of the modeled machine.
The paper's testbed runs Xeon Platinum 8378A cores at 3.0 GHz, so we fix
3 cycles per nanosecond; every latency in the paper (70 ns fast tier,
162 ns slow tier, ...) converts through this constant.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Base page size, matching x86-64 4 KiB pages.
PAGE_SIZE: int = 4 * KiB
PAGE_SHIFT: int = 12

#: Transparent huge page size (x86-64 2 MiB) and the split factor used when
#: Vulcan/Memtis split a huge page into base pages on promotion.
HUGE_PAGE_SIZE: int = 2 * MiB
BASE_PAGES_PER_HUGE_PAGE: int = HUGE_PAGE_SIZE // PAGE_SIZE  # 512

#: Modeled core frequency: 3.0 GHz => 3 cycles per nanosecond.
CPU_FREQ_GHZ: float = 3.0
CYCLES_PER_NS: float = CPU_FREQ_GHZ


def ns_to_cycles(ns: float) -> int:
    """Convert nanoseconds to (integer) cycles at the modeled frequency."""
    return int(round(ns * CYCLES_PER_NS))


def cycles_to_ns(cycles: float) -> float:
    """Convert cycles to nanoseconds at the modeled frequency."""
    return cycles / CYCLES_PER_NS


def seconds_to_cycles(seconds: float) -> int:
    """Convert seconds of simulated wall-clock to cycles."""
    return int(round(seconds * 1e9 * CYCLES_PER_NS))


def cycles_to_seconds(cycles: float) -> float:
    """Convert cycles to seconds of simulated wall-clock."""
    return cycles / (1e9 * CYCLES_PER_NS)


def pages_for_bytes(nbytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages needed to back ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return -(-nbytes // page_size)
