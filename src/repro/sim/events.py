"""Minimal discrete-event loop.

The co-location harness is epoch-driven, but several mechanisms are most
naturally expressed as events with completion times: asynchronous page
copies, deferred TLB flush batches, profiler sampling ticks.  This module
provides a small, deterministic priority-queue event loop those pieces
share.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(when, sequence)`` so same-cycle events fire in
    scheduling order, which keeps runs deterministic.
    """

    when: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event queue over a shared cycle clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0

    @property
    def now(self) -> int:
        """Cycle time of the most recently dispatched event."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule event in the past ({when} < {self._now})")
        ev = Event(when=int(when), seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def run_until(self, cycle: int) -> int:
        """Dispatch every event scheduled at or before ``cycle``.

        Returns the number of events dispatched.  The loop's ``now``
        advances to each event's time, then to ``cycle``.
        """
        dispatched = 0
        while self._heap and self._heap[0].when <= cycle:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.when
            ev.callback(*ev.args)
            dispatched += 1
        if cycle > self._now:
            self._now = cycle
        return dispatched

    def run_all(self, limit: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded by ``limit`` dispatches)."""
        dispatched = 0
        while self._heap and dispatched < limit:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.when
            ev.callback(*ev.args)
            dispatched += 1
        if self._heap and dispatched >= limit:
            raise RuntimeError(f"event loop exceeded {limit} dispatches; runaway feedback?")
        return dispatched
