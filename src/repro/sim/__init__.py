"""Discrete simulation substrate: units, clocks, RNG streams, event loop.

This package provides the low-level scaffolding every other subsystem is
built on.  Nothing here knows about memory tiering; it is generic
discrete-event machinery with cycle-denominated time.
"""

from repro.sim.clock import Clock
from repro.sim.config import (
    MachineConfig,
    SimulationConfig,
    TierConfig,
    paper_machine_config,
)
from repro.sim.events import Event, EventLoop
from repro.sim.rng import RngStreams
from repro.sim.units import (
    CYCLES_PER_NS,
    GiB,
    KiB,
    MiB,
    PAGE_SHIFT,
    PAGE_SIZE,
    HUGE_PAGE_SIZE,
    BASE_PAGES_PER_HUGE_PAGE,
    cycles_to_ns,
    cycles_to_seconds,
    ns_to_cycles,
    pages_for_bytes,
    seconds_to_cycles,
)

__all__ = [
    "Clock",
    "Event",
    "EventLoop",
    "RngStreams",
    "MachineConfig",
    "SimulationConfig",
    "TierConfig",
    "paper_machine_config",
    "CYCLES_PER_NS",
    "KiB",
    "MiB",
    "GiB",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "HUGE_PAGE_SIZE",
    "BASE_PAGES_PER_HUGE_PAGE",
    "ns_to_cycles",
    "cycles_to_ns",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "pages_for_bytes",
]
