"""Cycle-denominated simulation clock."""

from __future__ import annotations

from repro.sim.units import cycles_to_seconds, seconds_to_cycles


class Clock:
    """Monotonic cycle counter for the simulated machine.

    The clock only moves forward; components ``advance`` it by the cost of
    the work they model.  Helpers expose the time in seconds for
    epoch-level bookkeeping (FTHR sampling windows, workload start times).
    """

    __slots__ = ("_cycles",)

    def __init__(self, start_cycles: int = 0) -> None:
        if start_cycles < 0:
            raise ValueError("clock cannot start in the past")
        self._cycles = int(start_cycles)

    @property
    def cycles(self) -> int:
        """Current simulated time in cycles."""
        return self._cycles

    @property
    def seconds(self) -> float:
        """Current simulated time in seconds."""
        return cycles_to_seconds(self._cycles)

    def advance(self, cycles: int) -> int:
        """Move time forward by ``cycles`` and return the new time."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        self._cycles += int(cycles)
        return self._cycles

    def advance_seconds(self, seconds: float) -> int:
        """Move time forward by ``seconds`` of simulated wall-clock."""
        return self.advance(seconds_to_cycles(seconds))

    def advance_to(self, cycles: int) -> int:
        """Jump forward to an absolute cycle count (no-op if in the past)."""
        if cycles > self._cycles:
            self._cycles = int(cycles)
        return self._cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(cycles={self._cycles}, seconds={self.seconds:.6f})"
