"""Deterministic per-component random number streams.

Every stochastic component of the simulator (workload access generators,
profiler sampling, policy tie-breaking, ...) draws from its own named
stream derived from a single experiment seed.  This keeps experiments
reproducible and lets components be added or removed without perturbing
each other's sequences — the standard trick for simulation variance
control.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; the same ``(seed, name)`` pair always yields
    an identically-seeded generator.  Child seeds are derived with
    ``SeedSequence.spawn``-style key mixing so streams are statistically
    independent.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("workload:memcached")
    >>> b = streams.get("profiler:pebs")
    >>> a is streams.get("workload:memcached")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def _child_seed(self, name: str) -> np.random.SeedSequence:
        # Stable 32-bit hash of the stream name mixed into the seed entropy.
        tag = zlib.crc32(name.encode("utf-8"))
        return np.random.SeedSequence(entropy=self.seed, spawn_key=(tag,))

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._child_seed(name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngStreams":
        """Derive a new independent stream family, e.g. per trial."""
        tag = zlib.crc32(name.encode("utf-8"))
        return RngStreams(seed=(self.seed * 1_000_003 + tag) & 0x7FFF_FFFF_FFFF_FFFF)

    def reset(self) -> None:
        """Drop all materialized streams so each is re-created from seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, active={sorted(self._streams)})"
