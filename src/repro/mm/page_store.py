"""Struct-of-arrays store for per-frame state (DESIGN.md §3).

All per-page truth — tier, lifecycle state, reverse map, access
counters, migration bookkeeping — lives here as parallel numpy arrays
indexed by PFN.  :class:`~repro.mm.page.PhysPage` objects are thin
*views* over one row; the arrays are authoritative.  That inversion is
what lets the hot path (per-epoch counter updates, ground-truth hot/cold
accounting, candidate gathering) run as vectorized reductions instead of
object-at-a-time Python loops.

Bit-for-bit equivalence with the old object layout is part of the
contract: every scalar read through a view returns exactly the value the
old dataclass would have held, and all vectorized updates perform the
same elementwise arithmetic the old per-page loops did.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

# Integer lifecycle codes (mirrors repro.mm.page.PageState; kept as raw
# ints here so the store has no import cycle with the view class).
STATE_FREE = 0
STATE_MAPPED = 1
STATE_MIGRATING = 2
STATE_SHADOW = 3

#: pid/vpn/shadow "absent" sentinel (real pids/vpns are non-negative).
NONE_SENTINEL = -1


#: Frames per growth segment.  Heaps at or below one chunk (every
#: pre-existing test/bench scenario) materialize fully at construction,
#: so chunking is invisible to them; larger heaps grow on demand.
CHUNK_FRAMES = 1 << 16


class PageStatsStore:
    """Parallel per-frame arrays indexed by PFN.

    Columns are materialized in power-of-two growth segments
    (:data:`CHUNK_FRAMES`-aligned) rather than one dense preallocation:
    ``capacity`` tracks the materialized prefix ``[0, capacity)`` and
    :meth:`ensure` doubles it on demand.  Every frame at or above
    ``capacity`` is virgin — never allocated, implicitly FREE with all
    counters zero and its free-list bit equal to ``free_fill`` — so
    column scans over the materialized prefix see exactly the state a
    dense layout would hold.

    Parameters
    ----------
    n_frames:
        Total number of physical frames (fast + slow).
    fast_frames:
        Size of the fast tier; PFNs ``[0, fast_frames)`` are tier 0 and
        the rest tier 1 (the allocator's contiguous partitioning).
    chunk_frames:
        Growth segment size (tests shrink it to cover boundaries).
    """

    def __init__(self, n_frames: int, fast_frames: int, *, chunk_frames: int = CHUNK_FRAMES) -> None:
        if n_frames <= 0:
            raise ValueError("store needs at least one frame")
        if chunk_frames <= 0 or chunk_frames & (chunk_frames - 1):
            raise ValueError("chunk_frames must be a positive power of two")
        self.n_frames = n_frames
        self.fast_frames = fast_frames
        self.chunk_frames = chunk_frames
        #: fill value for ``in_free_list`` rows materialized by growth
        #: (the allocator flips this to True: its frames start free).
        self.free_fill = False
        self.capacity = 0
        self._alloc_columns(0)
        self.ensure(min(n_frames, chunk_frames))

    def _alloc_columns(self, n: int) -> None:
        self.tier_id = np.empty(n, dtype=np.int8)
        self.state = np.empty(n, dtype=np.int8)
        self.pid = np.empty(n, dtype=np.int64)
        self.vpn = np.empty(n, dtype=np.int64)
        self.reads = np.empty(n, dtype=np.int64)
        self.writes = np.empty(n, dtype=np.int64)
        self.epoch_reads = np.empty(n, dtype=np.int64)
        self.epoch_writes = np.empty(n, dtype=np.int64)
        self.heat = np.empty(n, dtype=np.float64)
        self.last_access_cycle = np.empty(n, dtype=np.int64)
        self.shadow_pfn = np.empty(n, dtype=np.int64)
        self.dirty_since_copy = np.empty(n, dtype=bool)
        # accessing-tid bitmask: word 0 covers tids 0..63, word 1 covers
        # 64..127 (PTE tid space is 7 bits).
        self.tids_lo = np.empty(n, dtype=np.uint64)
        self.tids_hi = np.empty(n, dtype=np.uint64)
        #: frames whose epoch counters may be nonzero (touched-set reset)
        self.touched = np.empty(n, dtype=bool)
        #: O(1) double-free detection (replaces deque membership scans)
        self.in_free_list = np.empty(n, dtype=bool)

    _COLUMNS = (
        "tier_id", "state", "pid", "vpn", "reads", "writes",
        "epoch_reads", "epoch_writes", "heat", "last_access_cycle",
        "shadow_pfn", "dirty_since_copy", "tids_lo", "tids_hi",
        "touched", "in_free_list",
    )

    def ensure(self, limit: int) -> None:
        """Materialize columns covering PFNs ``[0, limit)``.

        Growth doubles the capacity (chunk-aligned) so repeated
        single-frame extensions stay amortized O(1); new rows are
        initialized to the virgin-frame defaults.
        """
        if limit <= self.capacity:
            return
        if limit > self.n_frames:
            raise ValueError(f"ensure({limit}) exceeds {self.n_frames} frames")
        chunk = self.chunk_frames
        new_cap = max(self.capacity * 2, ((limit + chunk - 1) // chunk) * chunk)
        new_cap = min(new_cap, self.n_frames)
        old = {name: getattr(self, name) for name in self._COLUMNS}
        lo = self.capacity
        self._alloc_columns(new_cap)
        for name, arr in old.items():
            getattr(self, name)[:lo] = arr
        self.tier_id[lo:] = np.where(
            np.arange(lo, new_cap, dtype=np.int64) < self.fast_frames, 0, 1
        ).astype(np.int8)
        self.state[lo:] = STATE_FREE
        self.pid[lo:] = NONE_SENTINEL
        self.vpn[lo:] = NONE_SENTINEL
        self.reads[lo:] = 0
        self.writes[lo:] = 0
        self.epoch_reads[lo:] = 0
        self.epoch_writes[lo:] = 0
        self.heat[lo:] = 0.0
        self.last_access_cycle[lo:] = 0
        self.shadow_pfn[lo:] = NONE_SENTINEL
        self.dirty_since_copy[lo:] = False
        self.tids_lo[lo:] = 0
        self.tids_hi[lo:] = 0
        self.touched[lo:] = False
        self.in_free_list[lo:] = self.free_fill
        self.capacity = new_cap

    # -- vectorized hot-path updates -------------------------------------

    def record_batch(
        self,
        pfns: np.ndarray,
        n_reads: np.ndarray,
        n_writes: np.ndarray,
        tid: int,
        cycle: int,
    ) -> None:
        """Account per-frame access counts for one thread's batch.

        ``pfns`` must be unique (one row per frame); counts are added
        one-per-row (exact for unique rows).
        """
        kernels.page_record_rows(
            self.reads, self.writes, self.epoch_reads, self.epoch_writes,
            self.last_access_cycle, self.touched, self.state,
            self.dirty_since_copy, pfns, n_reads, n_writes, cycle,
        )
        self.or_tid_bit(pfns, tid)

    def or_tid_bit(self, pfns: np.ndarray, tid: int) -> None:
        """OR one thread's bit into the accessing-tid masks of ``pfns``."""
        if tid < 64:
            self.tids_lo[pfns] |= np.uint64(1 << tid)
        else:
            self.tids_hi[pfns] |= np.uint64(1 << (tid - 64))

    def record_epoch_rows(
        self,
        pfns: np.ndarray,
        n_reads: np.ndarray,
        n_writes: np.ndarray,
        cycle: int,
    ) -> None:
        """Fused-epoch counterpart of :meth:`record_batch`.

        ``pfns`` are the epoch's unique frames with counts already
        summed across threads; the per-thread tid-bit ORs happen
        separately (:meth:`or_tid_bit`).  Integer adds commute, states
        are constant while traffic runs, and ``cycle`` is the same for
        every batch of an epoch, so one fused pass lands bit-identical
        to the per-batch path.
        """
        kernels.page_record_rows(
            self.reads, self.writes, self.epoch_reads, self.epoch_writes,
            self.last_access_cycle, self.touched, self.state,
            self.dirty_since_copy, pfns, n_reads, n_writes, cycle,
        )

    def reset_epoch_counters(self) -> None:
        """Zero epoch counters on touched live frames (idle frames free).

        Matches the old full-table walk exactly: only MAPPED/MIGRATING
        frames are cleared — SHADOW frames keep their counters (they are
        invisible to the PTE walk until remapped) and stay in the
        touched set so a later remap still gets them reset.
        """
        kernels.page_reset_epoch(
            self.touched, self.state, self.epoch_reads, self.epoch_writes
        )

    # -- vectorized queries ----------------------------------------------

    def frames_of_pid(self, pid: int) -> np.ndarray:
        """PFNs mapped (or mid-migration) by ``pid``, ascending.

        Equivalent to walking the process page table: SHADOW frames keep
        their (pid, vpn) reverse map but their PTEs point at the
        promoted copy, so they are excluded here.
        """
        live = (self.state == STATE_MAPPED) | (self.state == STATE_MIGRATING)
        return np.flatnonzero(live & (self.pid == pid))

    def owned_frames(self, pid: int) -> np.ndarray:
        """Every non-free frame bound to ``pid``, ascending.

        Unlike :meth:`frames_of_pid` this *includes* SHADOW frames: a
        retained slow-tier twin still belongs to the process that
        promoted it, and teardown must reclaim it too (otherwise stale
        shadows leak when their owner exits).
        """
        return np.flatnonzero((self.pid == pid) & (self.state != STATE_FREE))

    def foreign_frames(self, live_pids) -> np.ndarray:
        """Non-free frames whose owner is not in ``live_pids``, ascending.

        The global leak sweep: after teardown no frame may remain bound
        to a pid that is no longer running.  Complements
        :meth:`owned_frames`, which only audits one (known) pid.
        """
        bound = self.state != STATE_FREE
        if not bound.any():
            return np.empty(0, dtype=np.int64)
        live = np.asarray(sorted(live_pids), dtype=np.int64)
        return np.flatnonzero(bound & ~np.isin(self.pid, live))

    def fast_usage(self, pid: int) -> int:
        """How many fast-tier frames ``pid`` maps (PTE-walk equivalent)."""
        return int(kernels.pid_fast_usage(self.state, self.pid, pid, self.fast_frames))

    def ground_truth_hotness(self, pid: int, cut: int) -> tuple[int, int, int, int]:
        """(hot, hot∧fast, cold∧fast, fast) page counts for ``pid``."""
        hot, hot_fast, cold_fast, fast = kernels.pid_ground_truth(
            self.state, self.pid, self.epoch_reads, self.epoch_writes,
            pid, self.fast_frames, cut,
        )
        return (int(hot), int(hot_fast), int(cold_fast), int(fast))

    # -- row lifecycle (attach/detach mirror PhysPage semantics) ---------

    def move_row(self, src: int, dest: int, pid: int, vpn: int) -> None:
        """Bind ``dest`` (a fresh FREE frame) and copy migration-carried
        state from ``src`` — the fused equivalent of PhysPage attach +
        the per-field copies the migration engine used to do one property
        at a time.  ``last_access_cycle``, ``shadow_pfn`` and
        ``dirty_since_copy`` deliberately do not transfer (they never
        did).
        """
        self.pid[dest] = pid
        self.vpn[dest] = vpn
        self.state[dest] = STATE_MAPPED
        self.heat[dest] = self.heat[src]
        self.reads[dest] = self.reads[src]
        self.writes[dest] = self.writes[src]
        er = int(self.epoch_reads[src])
        ew = int(self.epoch_writes[src])
        self.epoch_reads[dest] = er
        self.epoch_writes[dest] = ew
        if er or ew:
            self.touched[dest] = True
        self.tids_lo[dest] = self.tids_lo[src]
        self.tids_hi[dest] = self.tids_hi[src]

    def detach_row(self, pfn: int) -> None:
        """Unbind a frame and reset per-mapping statistics."""
        self.pid[pfn] = NONE_SENTINEL
        self.vpn[pfn] = NONE_SENTINEL
        self.state[pfn] = STATE_FREE
        self.reads[pfn] = 0
        self.writes[pfn] = 0
        self.heat[pfn] = 0.0
        self.epoch_reads[pfn] = 0
        self.epoch_writes[pfn] = 0
        self.shadow_pfn[pfn] = NONE_SENTINEL
        self.dirty_since_copy[pfn] = False
        self.tids_lo[pfn] = 0
        self.tids_hi[pfn] = 0
        self.touched[pfn] = False

    # -- consistency checks (exercised by the property tests) ------------

    def check_row_invariants(self) -> None:
        """Raise AssertionError if any row is internally inconsistent."""
        free = self.state == STATE_FREE
        assert (self.pid[free] == NONE_SENTINEL).all(), "free frame with pid"
        assert (self.vpn[free] == NONE_SENTINEL).all(), "free frame with vpn"
        assert (self.reads[free] == 0).all(), "free frame with read count"
        assert (self.writes[free] == 0).all(), "free frame with write count"
        assert (self.heat[free] == 0.0).all(), "free frame with heat"
        mapped = (self.state == STATE_MAPPED) | (self.state == STATE_MIGRATING)
        assert (self.pid[mapped] != NONE_SENTINEL).all(), "mapped frame without pid"
        assert (self.vpn[mapped] != NONE_SENTINEL).all(), "mapped frame without vpn"
        nonzero = (self.epoch_reads > 0) | (self.epoch_writes > 0)
        assert (self.touched[nonzero]).all(), "epoch counters outside touched set"
