"""Per-thread page-table replication (paper §3.4).

Vulcan replicates the *upper* levels (PGD/PUD/PMD) per thread while
sharing the *last-level* (PT) pages across all threads of a process —
last-level tables are the bulk of page-table memory, so replicas stay
small.  Ownership is tracked in the PTE itself (bits 52-58): a page
first touched by thread *t* is owned by *t*; when a second thread
touches it the entry is flipped to the shared sentinel ``0x7F``.

Because leaf tables are shared by reference, a PTE update made through
any thread's tree (or the process-wide tree) is instantly visible in all
of them — exactly the single-store semantics of the real design, where
there is only one physical leaf entry.

The payoff computed here is the *shootdown scope*: for a private page
only the owner thread's core needs an IPI; for a shared page only the
threads whose trees link the covering leaf table do.  The process-wide
fallback (no replication) must IPI every core running any thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mm import pte as pte_mod
from repro.mm.page_table import LEVEL_BITS, PageTable, PageTableNode
from repro.mm.pte import PTE_MAX_TID, PTE_SHARED_TID


@dataclass
class ReplicationStats:
    """Counters describing replication behaviour."""

    private_faults: int = 0
    shared_promotions: int = 0
    leaf_links: int = 0
    replica_upper_pages: int = 0  # refreshed by `upper_table_overhead`


class ReplicatedPageTables:
    """The process-wide table plus per-thread replicas sharing leaves.

    Threads are identified by a small per-process ``tid`` (0..0x7E);
    ``0x7F`` is reserved for the shared sentinel, matching the 7-bit PTE
    field of the paper's kernel patch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.process_table = PageTable()
        self.thread_tables: dict[int, PageTable] = {}
        #: leaf_base (vpn >> 9) -> set of tids whose trees link that leaf.
        self._leaf_tids: dict[int, set[int]] = {}
        self.stats = ReplicationStats()

    # -- thread lifecycle ---------------------------------------------------

    def register_thread(self, tid: int) -> None:
        """Create the (initially empty) replica for a new thread."""
        if not 0 <= tid <= PTE_MAX_TID:
            raise ValueError(f"tid {tid} outside the 7-bit ownership field (0x7F reserved)")
        if tid in self.thread_tables:
            raise ValueError(f"tid {tid} already registered")
        self.thread_tables[tid] = PageTable()

    @property
    def tids(self) -> set[int]:
        return set(self.thread_tables)

    def table_for(self, tid: int) -> PageTable:
        """The tree loaded into CR3 while ``tid`` runs (process-wide when
        replication is disabled)."""
        if not self.enabled:
            return self.process_table
        return self.thread_tables[tid]

    # -- fault handling -------------------------------------------------------

    def _leaf_base(self, vpn: int) -> int:
        return vpn >> LEVEL_BITS

    def _shared_leaf(self, vpn: int) -> PageTableNode:
        """Get-or-create the canonical leaf for ``vpn`` in the process tree."""
        leaf = self.process_table.leaf_for(vpn)
        if leaf is None:
            created: list[PageTableNode] = []

            def factory() -> PageTableNode:
                node = PageTableNode(level=0)
                created.append(node)
                return node

            leaf = self.process_table._walk_to_leaf(vpn, create=True, leaf_factory=factory)
            assert leaf is not None
            if created:
                self.process_table.node_count_by_level[0] += 1
        return leaf

    def _link_leaf(self, vpn: int, tid: int) -> None:
        """Make ``tid``'s tree reference the canonical leaf for ``vpn``."""
        base = self._leaf_base(vpn)
        linked = self._leaf_tids.setdefault(base, set())
        if tid in linked:
            return
        leaf = self._shared_leaf(vpn)
        self.thread_tables[tid].install_leaf(vpn, leaf)
        linked.add(tid)
        self.stats.leaf_links += 1

    def handle_fault(self, vpn: int, tid: int, pfn: int, *, writable: bool = True) -> int:
        """Install a new mapping on a demand fault by ``tid``.

        Returns the PTE value installed.  With replication enabled the
        entry is stamped with ``tid`` as owner and the covering shared
        leaf is linked into ``tid``'s replica.
        """
        if self.enabled and tid not in self.thread_tables:
            raise KeyError(f"tid {tid} not registered")
        owner = tid if self.enabled else PTE_SHARED_TID
        value = pte_mod.pte_make(pfn=pfn, tid=owner, writable=writable, accessed=True)
        self.process_table.map(vpn, value)
        if self.enabled:
            self._link_leaf(vpn, tid)
            self.stats.private_faults += 1
        return value

    def note_access(self, vpn: int, tid: int) -> bool:
        """Record that ``tid`` touched ``vpn``; promote to shared if a
        non-owner touches a private page.

        Returns ``True`` when the ownership transitioned private→shared
        (the caller should charge a minor-fault cost: the second thread
        faults on its replica, finds the process entry, links the leaf).
        """
        if not self.enabled:
            return False
        value = self.process_table.lookup(vpn)
        if value is None:
            raise KeyError(f"vpn {vpn} not mapped")
        owner = pte_mod.pte_tid(value)
        if owner == tid:
            return False
        if tid not in self.thread_tables:
            raise KeyError(f"tid {tid} not registered")
        self._link_leaf(vpn, tid)
        if owner != PTE_SHARED_TID:
            self.process_table.update(vpn, pte_mod.pte_with_tid(value, PTE_SHARED_TID))
            self.stats.shared_promotions += 1
            return True
        return False

    # -- queries the migration engine needs ---------------------------------

    def lookup(self, vpn: int) -> int | None:
        return self.process_table.lookup(vpn)

    def update(self, vpn: int, new_value: int) -> None:
        """Single-store PTE update, visible through every replica."""
        self.process_table.update(vpn, new_value)

    def unmap(self, vpn: int) -> int:
        """Clear the (shared) PTE; replicas see it vanish simultaneously."""
        return self.process_table.unmap(vpn)

    def sharing_tids(self, vpn: int) -> set[int]:
        """Threads that may cache a translation for ``vpn``.

        Private page → exactly the owner.  Shared page → every thread
        whose replica links the covering leaf table.  Replication
        disabled → every registered thread (process-wide coherence).
        """
        value = self.process_table.lookup(vpn)
        if value is None:
            return set()
        if not self.enabled:
            return set(self.thread_tables) if self.thread_tables else set()
        owner = pte_mod.pte_tid(value)
        if owner != PTE_SHARED_TID:
            return {owner}
        return set(self._leaf_tids.get(self._leaf_base(vpn), set()))

    def is_private(self, vpn: int) -> bool:
        """True when the page is owned by a single thread."""
        value = self.process_table.lookup(vpn)
        if value is None:
            raise KeyError(f"vpn {vpn} not mapped")
        return pte_mod.pte_tid(value) != PTE_SHARED_TID

    # -- overhead accounting -------------------------------------------------

    def upper_table_overhead(self) -> int:
        """Extra table pages paid for replication (paper §3.6 trade-off):
        the per-thread upper-level pages beyond the process-wide tree."""
        extra = sum(t.table_pages(include_leaves=False) for t in self.thread_tables.values())
        self.stats.replica_upper_pages = extra
        return extra
