"""Per-thread page-table replication (paper §3.4).

Vulcan replicates the *upper* levels (PGD/PUD/PMD) per thread while
sharing the *last-level* (PT) pages across all threads of a process —
last-level tables are the bulk of page-table memory, so replicas stay
small.  Ownership is tracked in the PTE itself (bits 52-58): a page
first touched by thread *t* is owned by *t*; when a second thread
touches it the entry is flipped to the shared sentinel ``0x7F``.

Because leaf tables are shared by reference, a PTE update made through
any thread's tree (or the process-wide tree) is instantly visible in all
of them — exactly the single-store semantics of the real design, where
there is only one physical leaf entry.

The payoff computed here is the *shootdown scope*: for a private page
only the owner thread's core needs an IPI; for a shared page only the
threads whose trees link the covering leaf table do.  The process-wide
fallback (no replication) must IPI every core running any thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mm import pte as pte_mod
from repro.mm.page_table import LEVEL_BITS, PageTable, PageTableNode
from repro.mm.pte import PTE_MAX_TID, PTE_SHARED_TID


class FlatPteMirror:
    """Dense vpn-indexed mirror of the process table's leaf entries.

    The radix tree stays authoritative for structural queries (walks,
    table-page accounting); this mirror exists so the per-epoch hot path
    can translate and classify whole batches with numpy gathers instead
    of per-vpn tree walks.  Every PTE mutation in
    :class:`ReplicatedPageTables` updates the mirror in lock-step.
    """

    _GROW_PAD = 4096  # grow in 16 MiB-of-address-space steps

    def __init__(self) -> None:
        self.base = 0
        self.pfn = np.empty(0, dtype=np.int64)
        self.owner = np.empty(0, dtype=np.int16)
        self.dirty = np.zeros(0, dtype=bool)
        #: raw 64-bit PTE value (0 = absent); lets the migration engine
        #: read entries O(1) instead of walking the radix tree
        self.value = np.zeros(0, dtype=np.int64)
        self._present_cache: np.ndarray | None = None

    def _ensure(self, vpn: int) -> None:
        """Grow the arrays to cover ``vpn`` (amortized, pad on both sides)."""
        if self.pfn.size and self.base <= vpn < self.base + self.pfn.size:
            return
        if self.pfn.size == 0:
            new_base = max(vpn - 64, 0)
            new_size = self._GROW_PAD
            while vpn >= new_base + new_size:
                new_size *= 2
            old = None
        else:
            lo = min(self.base, vpn)
            hi = max(self.base + self.pfn.size, vpn + 1)
            new_base = max(lo - 64, 0)
            new_size = max(hi - new_base + self._GROW_PAD, 2 * self.pfn.size)
            old = (self.base, self.pfn, self.owner, self.dirty, self.value)
        pfn = np.full(new_size, -1, dtype=np.int64)
        owner = np.full(new_size, -1, dtype=np.int16)
        dirty = np.zeros(new_size, dtype=bool)
        value = np.zeros(new_size, dtype=np.int64)
        if old is not None:
            ob, opfn, oowner, odirty, ovalue = old
            off = ob - new_base
            pfn[off:off + opfn.size] = opfn
            owner[off:off + opfn.size] = oowner
            dirty[off:off + opfn.size] = odirty
            value[off:off + opfn.size] = ovalue
        self.base, self.pfn, self.owner, self.dirty, self.value = new_base, pfn, owner, dirty, value
        self._present_cache = None

    def set(self, vpn: int, pfn: int, owner: int, dirty: bool, raw: int = 0) -> None:
        self._ensure(vpn)
        i = vpn - self.base
        if self.pfn[i] < 0:
            self._present_cache = None
        self.pfn[i] = pfn
        self.owner[i] = owner
        self.dirty[i] = dirty
        self.value[i] = raw

    def set_owner(self, vpn: int, owner: int) -> None:
        i = vpn - self.base
        self.owner[i] = owner
        self.value[i] = pte_mod.pte_with_tid(int(self.value[i]), owner)

    def clear(self, vpn: int) -> None:
        i = vpn - self.base
        if 0 <= i < self.pfn.size and self.pfn[i] >= 0:
            self.pfn[i] = -1
            self.owner[i] = -1
            self.dirty[i] = False
            self.value[i] = 0
            self._present_cache = None

    def present_vpns(self) -> np.ndarray:
        """Mapped VPNs in ascending order (cached between mutations)."""
        if self._present_cache is None:
            self._present_cache = np.flatnonzero(self.pfn >= 0) + self.base
        return self._present_cache

    def indices(self, vpns: np.ndarray) -> np.ndarray:
        """Array indices for ``vpns`` (callers guarantee coverage)."""
        return vpns - self.base


@dataclass
class ReplicationStats:
    """Counters describing replication behaviour."""

    private_faults: int = 0
    shared_promotions: int = 0
    leaf_links: int = 0
    replica_upper_pages: int = 0  # refreshed by `upper_table_overhead`


class ReplicatedPageTables:
    """The process-wide table plus per-thread replicas sharing leaves.

    Threads are identified by a small per-process ``tid`` (0..0x7E);
    ``0x7F`` is reserved for the shared sentinel, matching the 7-bit PTE
    field of the paper's kernel patch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.process_table = PageTable()
        self.thread_tables: dict[int, PageTable] = {}
        #: leaf_base (vpn >> 9) -> set of tids whose trees link that leaf.
        self._leaf_tids: dict[int, set[int]] = {}
        #: vpn-indexed numpy mirror of the leaf entries (hot-path gathers)
        self.flat = FlatPteMirror()
        self.stats = ReplicationStats()

    # -- thread lifecycle ---------------------------------------------------

    def register_thread(self, tid: int) -> None:
        """Create the (initially empty) replica for a new thread."""
        if not 0 <= tid <= PTE_MAX_TID:
            raise ValueError(f"tid {tid} outside the 7-bit ownership field (0x7F reserved)")
        if tid in self.thread_tables:
            raise ValueError(f"tid {tid} already registered")
        self.thread_tables[tid] = PageTable()

    @property
    def tids(self) -> set[int]:
        return set(self.thread_tables)

    def table_for(self, tid: int) -> PageTable:
        """The tree loaded into CR3 while ``tid`` runs (process-wide when
        replication is disabled)."""
        if not self.enabled:
            return self.process_table
        return self.thread_tables[tid]

    # -- fault handling -------------------------------------------------------

    def _leaf_base(self, vpn: int) -> int:
        return vpn >> LEVEL_BITS

    def _shared_leaf(self, vpn: int) -> PageTableNode:
        """Get-or-create the canonical leaf for ``vpn`` in the process tree."""
        leaf = self.process_table.leaf_for(vpn)
        if leaf is None:
            created: list[PageTableNode] = []

            def factory() -> PageTableNode:
                node = PageTableNode(level=0)
                created.append(node)
                return node

            leaf = self.process_table._walk_to_leaf(vpn, create=True, leaf_factory=factory)
            assert leaf is not None
            if created:
                self.process_table.node_count_by_level[0] += 1
        return leaf

    def _link_leaf(self, vpn: int, tid: int) -> None:
        """Make ``tid``'s tree reference the canonical leaf for ``vpn``."""
        base = self._leaf_base(vpn)
        linked = self._leaf_tids.setdefault(base, set())
        if tid in linked:
            return
        leaf = self._shared_leaf(vpn)
        self.thread_tables[tid].install_leaf(vpn, leaf)
        linked.add(tid)
        self.stats.leaf_links += 1

    def handle_fault(self, vpn: int, tid: int, pfn: int, *, writable: bool = True) -> int:
        """Install a new mapping on a demand fault by ``tid``.

        Returns the PTE value installed.  With replication enabled the
        entry is stamped with ``tid`` as owner and the covering shared
        leaf is linked into ``tid``'s replica.
        """
        if self.enabled and tid not in self.thread_tables:
            raise KeyError(f"tid {tid} not registered")
        owner = tid if self.enabled else PTE_SHARED_TID
        value = pte_mod.pte_make(pfn=pfn, tid=owner, writable=writable, accessed=True)
        self.process_table.map(vpn, value)
        self.flat.set(vpn, pfn, owner, dirty=False, raw=value)
        if self.enabled:
            self._link_leaf(vpn, tid)
            self.stats.private_faults += 1
        return value

    def note_access(self, vpn: int, tid: int) -> bool:
        """Record that ``tid`` touched ``vpn``; promote to shared if a
        non-owner touches a private page.

        Returns ``True`` when the ownership transitioned private→shared
        (the caller should charge a minor-fault cost: the second thread
        faults on its replica, finds the process entry, links the leaf).
        """
        if not self.enabled:
            return False
        value = self.process_table.lookup(vpn)
        if value is None:
            raise KeyError(f"vpn {vpn} not mapped")
        owner = pte_mod.pte_tid(value)
        if owner == tid:
            return False
        if tid not in self.thread_tables:
            raise KeyError(f"tid {tid} not registered")
        self._link_leaf(vpn, tid)
        if owner != PTE_SHARED_TID:
            self.process_table.update(vpn, pte_mod.pte_with_tid(value, PTE_SHARED_TID))
            self.flat.set_owner(vpn, PTE_SHARED_TID)
            self.stats.shared_promotions += 1
            return True
        return False

    def bulk_note_access(self, vpns: np.ndarray, tid: int) -> int:
        """Vectorized :meth:`note_access` over unique, mapped ``vpns``.

        Performs exactly the per-vpn transitions and leaf links the
        scalar path would (private→shared flips go through
        :meth:`note_access` itself), but detects the — rare after
        warm-up — pages needing work with numpy gathers.  Returns the
        number of private→shared transitions (minor faults to charge).
        """
        if not self.enabled or vpns.size == 0:
            return 0
        owners = self.flat.owner[self.flat.indices(vpns)]
        # Pages owned by another thread: full scalar transition path.
        transition = (owners != tid) & (owners != PTE_SHARED_TID)
        n_transitions = 0
        if transition.any():
            if tid not in self.thread_tables:
                raise KeyError(f"tid {tid} not registered")
            for vpn in vpns[transition].tolist():
                if self.note_access(vpn, tid):
                    n_transitions += 1
        # Already-shared pages only need the covering leaf linked once
        # per (leaf, tid); the candidate leaves are few (512 vpns each).
        shared = owners == PTE_SHARED_TID
        if shared.any():
            if tid not in self.thread_tables:
                raise KeyError(f"tid {tid} not registered")
            shared_vpns = vpns[shared]
            if shared_vpns.size == 1 or bool((shared_vpns[1:] >= shared_vpns[:-1]).all()):
                # Ascending input (the hot-path callers pass np.unique /
                # flatnonzero output): the covering bases form a short
                # contiguous range, so scan it instead of paying a
                # per-call np.unique sort.  Any vpn of a base is a valid
                # link representative — _link_leaf only uses vpn >> 9 —
                # and after warm-up every base is already linked, making
                # this a handful of dict probes.
                leaf_tids = self._leaf_tids
                first_base = int(shared_vpns[0]) >> LEVEL_BITS
                last_base = int(shared_vpns[-1]) >> LEVEL_BITS
                for base in range(first_base, last_base + 1):
                    linked = leaf_tids.get(base)
                    if linked is not None and tid in linked:
                        continue
                    j = int(np.searchsorted(shared_vpns, base << LEVEL_BITS))
                    if j < shared_vpns.size and int(shared_vpns[j]) >> LEVEL_BITS == base:
                        self._link_leaf(int(shared_vpns[j]), tid)
            else:
                bases, first = np.unique(shared_vpns >> LEVEL_BITS, return_index=True)
                for base, vpn in zip(bases.tolist(), shared_vpns[first].tolist()):
                    if tid not in self._leaf_tids.get(base, ()):
                        self._link_leaf(vpn, tid)
        return n_transitions

    # -- queries the migration engine needs ---------------------------------

    def lookup(self, vpn: int) -> int | None:
        return self.process_table.lookup(vpn)

    def value_of(self, vpn: int) -> int | None:
        """O(1) :meth:`lookup` through the flat mirror.

        The mirror is updated in lock-step with every PTE mutation, so
        this returns exactly what the radix walk would.
        """
        flat = self.flat
        i = vpn - flat.base
        if i < 0 or i >= flat.pfn.size or flat.pfn[i] < 0:
            return None
        return int(flat.value[i])

    def update(self, vpn: int, new_value: int) -> None:
        """Single-store PTE update, visible through every replica."""
        self.process_table.update(vpn, new_value)
        self.flat.set(
            vpn,
            pte_mod.pte_pfn(new_value),
            pte_mod.pte_tid(new_value),
            pte_mod.pte_is_dirty(new_value),
            raw=new_value,
        )

    def unmap(self, vpn: int) -> int:
        """Clear the (shared) PTE; replicas see it vanish simultaneously."""
        value = self.process_table.unmap(vpn)
        self.flat.clear(vpn)
        return value

    def sharing_tids(self, vpn: int) -> set[int]:
        """Threads that may cache a translation for ``vpn``.

        Private page → exactly the owner.  Shared page → every thread
        whose replica links the covering leaf table.  Replication
        disabled → every registered thread (process-wide coherence).
        """
        value = self.process_table.lookup(vpn)
        if value is None:
            return set()
        if not self.enabled:
            return set(self.thread_tables) if self.thread_tables else set()
        owner = pte_mod.pte_tid(value)
        if owner != PTE_SHARED_TID:
            return {owner}
        return set(self._leaf_tids.get(self._leaf_base(vpn), set()))

    def is_private(self, vpn: int) -> bool:
        """True when the page is owned by a single thread."""
        value = self.process_table.lookup(vpn)
        if value is None:
            raise KeyError(f"vpn {vpn} not mapped")
        return pte_mod.pte_tid(value) != PTE_SHARED_TID

    # -- overhead accounting -------------------------------------------------

    def upper_table_overhead(self) -> int:
        """Extra table pages paid for replication (paper §3.6 trade-off):
        the per-thread upper-level pages beyond the process-wide tree."""
        extra = sum(t.table_pages(include_leaves=False) for t in self.thread_tables.values())
        self.stats.replica_upper_pages = extra
        return extra
