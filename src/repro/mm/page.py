"""Physical frame metadata.

One :class:`PhysPage` exists per physical frame the simulator has handed
out.  It carries the reverse mapping (which process/vpn maps it), access
statistics the profilers summarize, and migration bookkeeping (shadow
links, in-flight transactional copies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PageState(enum.Enum):
    """Lifecycle of a physical frame."""

    FREE = "free"
    MAPPED = "mapped"
    MIGRATING = "migrating"  # transactional copy in flight
    SHADOW = "shadow"  # retained slow-tier copy of a promoted page


@dataclass
class PhysPage:
    """Metadata for one physical frame.

    Attributes
    ----------
    pfn:
        Global physical frame number (tier encoded by the allocator).
    tier_id:
        0 = fast, 1 = slow.
    pid / vpn:
        Reverse map: the single process mapping this frame.  The
        simulator models private anonymous memory (the paper's
        workloads), so one frame has at most one (pid, vpn) mapping;
        *thread-level* sharing within the process is tracked in the PTE
        ownership bits, not here.
    reads / writes:
        Cumulative access counts since last profiler epoch reset.
    heat:
        Exponentially-decayed hotness maintained by the profiling layer.
    last_access_cycle:
        For recency-based policies and idle-time estimation.
    shadow_pfn:
        If this is a promoted fast-tier frame, the retained slow-tier
        shadow copy (Nomad-style), else ``None``.
    dirty_since_copy:
        Set when a write lands while a transactional copy is in flight;
        the async engine uses it to detect failed transactions.
    """

    pfn: int
    tier_id: int
    state: PageState = PageState.FREE
    pid: int | None = None
    vpn: int | None = None
    reads: int = 0
    writes: int = 0
    heat: float = 0.0
    last_access_cycle: int = 0
    shadow_pfn: int | None = None
    dirty_since_copy: bool = False
    epoch_reads: int = 0
    epoch_writes: int = 0
    accessing_tids: set[int] = field(default_factory=set)

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that were writes (0 when untouched)."""
        total = self.total_accesses
        return self.writes / total if total else 0.0

    def record_access(self, is_write: bool, tid: int, cycle: int, count: int = 1) -> None:
        """Account ``count`` accesses by thread ``tid`` at ``cycle``."""
        if is_write:
            self.writes += count
            self.epoch_writes += count
            if self.state is PageState.MIGRATING:
                self.dirty_since_copy = True
        else:
            self.reads += count
            self.epoch_reads += count
        self.last_access_cycle = cycle
        self.accessing_tids.add(tid)

    def reset_epoch_counters(self) -> None:
        """Start a fresh profiling epoch (heat is decayed elsewhere)."""
        self.epoch_reads = 0
        self.epoch_writes = 0

    def attach(self, pid: int, vpn: int) -> None:
        """Bind this frame to a virtual page (allocator → address space)."""
        if self.state not in (PageState.FREE, PageState.SHADOW):
            raise ValueError(f"frame {self.pfn} already {self.state.value}")
        self.pid = pid
        self.vpn = vpn
        self.state = PageState.MAPPED

    def detach(self) -> None:
        """Unbind and reset per-mapping statistics."""
        self.pid = None
        self.vpn = None
        self.state = PageState.FREE
        self.reads = 0
        self.writes = 0
        self.heat = 0.0
        self.epoch_reads = 0
        self.epoch_writes = 0
        self.shadow_pfn = None
        self.dirty_since_copy = False
        self.accessing_tids.clear()
