"""Physical frame metadata.

One :class:`PhysPage` exists per physical frame the simulator has handed
out.  It carries the reverse mapping (which process/vpn maps it), access
statistics the profilers summarize, and migration bookkeeping (shadow
links, in-flight transactional copies).

Since the struct-of-arrays refactor the *data* lives in
:class:`repro.mm.page_store.PageStatsStore`; a PhysPage is a thin view
over one store row ("objects are views, arrays are truth").  Scalar
reads and writes go through properties so existing object-at-a-time
code — tests, the migration engine's per-page bookkeeping — keeps
working unchanged, while hot paths bypass the views entirely and
operate on the arrays.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.mm.page_store import NONE_SENTINEL, PageStatsStore


class PageState(enum.Enum):
    """Lifecycle of a physical frame."""

    FREE = "free"
    MAPPED = "mapped"
    MIGRATING = "migrating"  # transactional copy in flight
    SHADOW = "shadow"  # retained slow-tier copy of a promoted page


#: enum ↔ int8 store code (index == code, see page_store.STATE_*)
_STATE_BY_CODE = (PageState.FREE, PageState.MAPPED, PageState.MIGRATING, PageState.SHADOW)
_CODE_BY_STATE = {s: i for i, s in enumerate(_STATE_BY_CODE)}


class PhysPage:
    """View over one :class:`PageStatsStore` row.

    Attributes (all backed by store arrays)
    ---------------------------------------
    pfn:
        Global physical frame number (tier encoded by the allocator).
    tier_id:
        0 = fast, 1 = slow.
    pid / vpn:
        Reverse map: the single process mapping this frame.  The
        simulator models private anonymous memory (the paper's
        workloads), so one frame has at most one (pid, vpn) mapping;
        *thread-level* sharing within the process is tracked in the PTE
        ownership bits, not here.
    reads / writes:
        Cumulative access counts since last profiler epoch reset.
    heat:
        Exponentially-decayed hotness maintained by the profiling layer.
    last_access_cycle:
        For recency-based policies and idle-time estimation.
    shadow_pfn:
        If this is a promoted fast-tier frame, the retained slow-tier
        shadow copy (Nomad-style), else ``None``.
    dirty_since_copy:
        Set when a write lands while a transactional copy is in flight;
        the async engine uses it to detect failed transactions.
    """

    __slots__ = ("_store", "_row", "pfn")

    def __init__(
        self,
        pfn: int,
        tier_id: int | None = None,
        state: PageState = PageState.FREE,
        *,
        store: PageStatsStore | None = None,
        row: int | None = None,
    ) -> None:
        if store is None:
            # Standalone page (unit tests, ad-hoc construction): a
            # private single-row store keeps the view semantics intact.
            store = PageStatsStore(n_frames=1, fast_frames=1)
            row = 0
            if tier_id is not None:
                store.tier_id[0] = tier_id
        elif row is None:
            row = pfn
        self._store = store
        self._row = row
        self.pfn = pfn
        if tier_id is not None:
            store.tier_id[row] = tier_id
        if state is not PageState.FREE:
            store.state[row] = _CODE_BY_STATE[state]

    # -- store-backed attributes -----------------------------------------

    @property
    def tier_id(self) -> int:
        return int(self._store.tier_id[self._row])

    @tier_id.setter
    def tier_id(self, value: int) -> None:
        self._store.tier_id[self._row] = value

    @property
    def state(self) -> PageState:
        return _STATE_BY_CODE[int(self._store.state[self._row])]

    @state.setter
    def state(self, value: PageState) -> None:
        self._store.state[self._row] = _CODE_BY_STATE[value]

    @property
    def pid(self) -> int | None:
        v = int(self._store.pid[self._row])
        return None if v == NONE_SENTINEL else v

    @pid.setter
    def pid(self, value: int | None) -> None:
        self._store.pid[self._row] = NONE_SENTINEL if value is None else value

    @property
    def vpn(self) -> int | None:
        v = int(self._store.vpn[self._row])
        return None if v == NONE_SENTINEL else v

    @vpn.setter
    def vpn(self, value: int | None) -> None:
        self._store.vpn[self._row] = NONE_SENTINEL if value is None else value

    @property
    def reads(self) -> int:
        return int(self._store.reads[self._row])

    @reads.setter
    def reads(self, value: int) -> None:
        self._store.reads[self._row] = value

    @property
    def writes(self) -> int:
        return int(self._store.writes[self._row])

    @writes.setter
    def writes(self, value: int) -> None:
        self._store.writes[self._row] = value

    @property
    def heat(self) -> float:
        return float(self._store.heat[self._row])

    @heat.setter
    def heat(self, value: float) -> None:
        self._store.heat[self._row] = value

    @property
    def last_access_cycle(self) -> int:
        return int(self._store.last_access_cycle[self._row])

    @last_access_cycle.setter
    def last_access_cycle(self, value: int) -> None:
        self._store.last_access_cycle[self._row] = value

    @property
    def shadow_pfn(self) -> int | None:
        v = int(self._store.shadow_pfn[self._row])
        return None if v == NONE_SENTINEL else v

    @shadow_pfn.setter
    def shadow_pfn(self, value: int | None) -> None:
        self._store.shadow_pfn[self._row] = NONE_SENTINEL if value is None else value

    @property
    def dirty_since_copy(self) -> bool:
        return bool(self._store.dirty_since_copy[self._row])

    @dirty_since_copy.setter
    def dirty_since_copy(self, value: bool) -> None:
        self._store.dirty_since_copy[self._row] = value

    @property
    def epoch_reads(self) -> int:
        return int(self._store.epoch_reads[self._row])

    @epoch_reads.setter
    def epoch_reads(self, value: int) -> None:
        self._store.epoch_reads[self._row] = value
        if value:
            self._store.touched[self._row] = True

    @property
    def epoch_writes(self) -> int:
        return int(self._store.epoch_writes[self._row])

    @epoch_writes.setter
    def epoch_writes(self, value: int) -> None:
        self._store.epoch_writes[self._row] = value
        if value:
            self._store.touched[self._row] = True

    @property
    def accessing_tids(self) -> set[int]:
        """Threads that touched this frame (reconstructed from bitmask)."""
        tids: set[int] = set()
        lo = int(self._store.tids_lo[self._row])
        hi = int(self._store.tids_hi[self._row])
        while lo:
            bit = lo & -lo
            tids.add(bit.bit_length() - 1)
            lo ^= bit
        while hi:
            bit = hi & -hi
            tids.add(64 + bit.bit_length() - 1)
            hi ^= bit
        return tids

    @accessing_tids.setter
    def accessing_tids(self, tids: set[int]) -> None:
        lo = hi = 0
        for tid in tids:
            if tid < 64:
                lo |= 1 << tid
            else:
                hi |= 1 << (tid - 64)
        self._store.tids_lo[self._row] = lo
        self._store.tids_hi[self._row] = hi

    # -- derived ---------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that were writes (0 when untouched)."""
        total = self.total_accesses
        return self.writes / total if total else 0.0

    # -- mutations -------------------------------------------------------

    def record_access(self, is_write: bool, tid: int, cycle: int, count: int = 1) -> None:
        """Account ``count`` accesses by thread ``tid`` at ``cycle``."""
        s, r = self._store, self._row
        if is_write:
            s.writes[r] += count
            s.epoch_writes[r] += count
            if s.state[r] == _CODE_BY_STATE[PageState.MIGRATING]:
                s.dirty_since_copy[r] = True
        else:
            s.reads[r] += count
            s.epoch_reads[r] += count
        s.last_access_cycle[r] = cycle
        if tid < 64:
            s.tids_lo[r] |= np.uint64(1 << tid)
        else:
            s.tids_hi[r] |= np.uint64(1 << (tid - 64))
        s.touched[r] = True

    def reset_epoch_counters(self) -> None:
        """Start a fresh profiling epoch (heat is decayed elsewhere)."""
        s, r = self._store, self._row
        s.epoch_reads[r] = 0
        s.epoch_writes[r] = 0
        s.touched[r] = False

    def attach(self, pid: int, vpn: int) -> None:
        """Bind this frame to a virtual page (allocator → address space)."""
        if self.state not in (PageState.FREE, PageState.SHADOW):
            raise ValueError(f"frame {self.pfn} already {self.state.value}")
        self.pid = pid
        self.vpn = vpn
        self.state = PageState.MAPPED

    def detach(self) -> None:
        """Unbind and reset per-mapping statistics."""
        self._store.detach_row(self._row)

    def __eq__(self, other: object) -> bool:
        """Views are interchangeable: equal iff they alias one store row.

        The allocator builds views on demand instead of caching one per
        frame, so two views of the same frame are distinct objects but
        must compare (and hash) as the same page.
        """
        if not isinstance(other, PhysPage):
            return NotImplemented
        return (
            self._store is other._store
            and self._row == other._row
            and self.pfn == other.pfn
        )

    def __hash__(self) -> int:
        return hash((id(self._store), self._row, self.pfn))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhysPage(pfn={self.pfn}, tier={self.tier_id}, state={self.state.value}, "
            f"pid={self.pid}, vpn={self.vpn}, reads={self.reads}, writes={self.writes})"
        )

