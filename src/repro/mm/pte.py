"""64-bit page-table-entry bitfield codec.

Layout follows x86-64 with the paper's extension (§4): previously-ignored
bits 52-58 carry a 7-bit thread id.  ``0x7F`` (all ones) marks a page
shared by more than one thread; any other value is the owning thread's
id, so a migration can scope its TLB shootdown to exactly the cores that
may cache the translation.

Bit layout::

    bit  0      P    present
    bit  1      RW   writable
    bit  5      A    accessed (hardware-set on access)
    bit  6      D    dirty    (hardware-set on write)
    bits 12-51  PFN  physical frame number (40 bits)
    bits 52-58  TID  thread ownership (paper's addition; 0x7F = shared)
    bit  61     HINT software: NUMA-hinting poisoned (prot_none style)
    bit  62     SHDW software: shadow copy retained on slow tier (Nomad)
    bit  63     NX   no-execute (unused by the simulator)

Everything here is pure integer arithmetic on Python ints so PTEs can be
stored compactly and compared for exact equality across replicated
tables.
"""

from __future__ import annotations

from typing import NamedTuple

PTE_PRESENT = 1 << 0
PTE_WRITE = 1 << 1
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
PTE_HINT = 1 << 61
PTE_SHADOW = 1 << 62
PTE_NX = 1 << 63

_PFN_SHIFT = 12
_PFN_BITS = 40
_PFN_MASK = ((1 << _PFN_BITS) - 1) << _PFN_SHIFT

_TID_SHIFT = 52
_TID_BITS = 7
_TID_MASK = ((1 << _TID_BITS) - 1) << _TID_SHIFT

#: Sentinel thread id: page-table entry shared by multiple threads.
PTE_SHARED_TID = (1 << _TID_BITS) - 1  # 0x7F

#: Maximum encodable *owning* thread id (0x7F is reserved for "shared").
PTE_MAX_TID = PTE_SHARED_TID - 1


class Pte(NamedTuple):
    """Decoded view of a PTE (see :func:`pte_decode`)."""

    present: bool
    writable: bool
    accessed: bool
    dirty: bool
    hint_poisoned: bool
    shadowed: bool
    pfn: int
    tid: int

    @property
    def shared(self) -> bool:
        return self.tid == PTE_SHARED_TID


def pte_make(
    pfn: int,
    tid: int,
    *,
    present: bool = True,
    writable: bool = True,
    accessed: bool = False,
    dirty: bool = False,
    hint_poisoned: bool = False,
    shadowed: bool = False,
) -> int:
    """Encode a PTE integer.

    Raises
    ------
    ValueError
        If ``pfn`` or ``tid`` does not fit its field.
    """
    if not 0 <= pfn < (1 << _PFN_BITS):
        raise ValueError(f"pfn {pfn} out of range for {_PFN_BITS}-bit field")
    if not 0 <= tid <= PTE_SHARED_TID:
        raise ValueError(f"tid {tid} out of range for {_TID_BITS}-bit field")
    value = (pfn << _PFN_SHIFT) | (tid << _TID_SHIFT)
    if present:
        value |= PTE_PRESENT
    if writable:
        value |= PTE_WRITE
    if accessed:
        value |= PTE_ACCESSED
    if dirty:
        value |= PTE_DIRTY
    if hint_poisoned:
        value |= PTE_HINT
    if shadowed:
        value |= PTE_SHADOW
    return value


def pte_decode(value: int) -> Pte:
    """Decode an integer PTE into a :class:`Pte` view."""
    return Pte(
        present=bool(value & PTE_PRESENT),
        writable=bool(value & PTE_WRITE),
        accessed=bool(value & PTE_ACCESSED),
        dirty=bool(value & PTE_DIRTY),
        hint_poisoned=bool(value & PTE_HINT),
        shadowed=bool(value & PTE_SHADOW),
        pfn=(value & _PFN_MASK) >> _PFN_SHIFT,
        tid=(value & _TID_MASK) >> _TID_SHIFT,
    )


def pte_pfn(value: int) -> int:
    """Extract the PFN field."""
    return (value & _PFN_MASK) >> _PFN_SHIFT


def pte_tid(value: int) -> int:
    """Extract the thread-ownership field."""
    return (value & _TID_MASK) >> _TID_SHIFT


def pte_with_pfn(value: int, pfn: int) -> int:
    """Return ``value`` re-pointed at ``pfn`` (remap step of migration)."""
    if not 0 <= pfn < (1 << _PFN_BITS):
        raise ValueError(f"pfn {pfn} out of range")
    return (value & ~_PFN_MASK) | (pfn << _PFN_SHIFT)


def pte_with_tid(value: int, tid: int) -> int:
    """Return ``value`` with the ownership field set to ``tid``."""
    if not 0 <= tid <= PTE_SHARED_TID:
        raise ValueError(f"tid {tid} out of range")
    return (value & ~_TID_MASK) | (tid << _TID_SHIFT)


def pte_set_flag(value: int, flag: int) -> int:
    """Set a flag bit (one of the ``PTE_*`` constants)."""
    return value | flag


def pte_clear_flag(value: int, flag: int) -> int:
    """Clear a flag bit (one of the ``PTE_*`` constants)."""
    return value & ~flag


def pte_is_present(value: int) -> bool:
    return bool(value & PTE_PRESENT)


def pte_is_dirty(value: int) -> bool:
    return bool(value & PTE_DIRTY)


def pte_is_accessed(value: int) -> bool:
    return bool(value & PTE_ACCESSED)


def pte_is_shared(value: int) -> bool:
    return pte_tid(value) == PTE_SHARED_TID
