"""Per-tier physical frame allocation with watermarks.

Global PFN space is partitioned contiguously: the fast tier owns
``[0, fast_frames)``, the slow tier ``[fast_frames, fast+slow)``, so a
PFN alone identifies its tier — mirroring how zone membership works in
the kernel and letting PTEs stay a single integer.

Watermarks drive proactive demotion exactly as in TPP/Linux: when a
tier's free frames drop below ``low_watermark`` the reclaim path (a
tiering policy) is expected to demote until ``high_watermark`` is
restored.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.mm.page import PageState, PhysPage
from repro.mm.page_store import (
    STATE_FREE,
    STATE_MAPPED,
    STATE_MIGRATING,
    STATE_SHADOW,
    PageStatsStore,
)


class OutOfFramesError(RuntimeError):
    """A tier has no free frames and the caller did not allow fallback."""


class FreeFrameList:
    """One tier's free PFNs without materializing a million-int deque.

    Represents exactly the dense ``deque(range(base, base + total))``
    the allocator used to build: a *virgin* range of never-allocated
    frames ``[virgin_next, virgin_end)`` plus recycled frames in FIFO
    order.  Because frames are only ever appended after the virgin
    range existed at construction, the dense deque would always hold
    ``[virgin..., recycled...]`` — so popping virgin-ascending first,
    then recycled FIFO, reproduces its pop order bit-for-bit while
    keeping construction O(1) and memory proportional to *recycled*
    frames only.
    """

    __slots__ = ("_virgin_next", "_virgin_end", "_recycled")

    def __init__(self, base: int, total: int) -> None:
        self._virgin_next = base
        self._virgin_end = base + total
        self._recycled: deque[int] = deque()

    def __len__(self) -> int:
        return (self._virgin_end - self._virgin_next) + len(self._recycled)

    def __bool__(self) -> bool:
        return self._virgin_next < self._virgin_end or bool(self._recycled)

    def __iter__(self):
        yield from range(self._virgin_next, self._virgin_end)
        yield from self._recycled

    def __contains__(self, pfn: int) -> bool:
        return self._virgin_next <= pfn < self._virgin_end or pfn in self._recycled

    def __getitem__(self, idx: int) -> int:
        """Index into the virtual dense sequence [virgin..., recycled...]."""
        n_virgin = self._virgin_end - self._virgin_next
        n = n_virgin + len(self._recycled)
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError("free list index out of range")
        if idx < n_virgin:
            return self._virgin_next + idx
        return self._recycled[idx - n_virgin]

    def popleft(self) -> int:
        if self._virgin_next < self._virgin_end:
            pfn = self._virgin_next
            self._virgin_next += 1
            return pfn
        return self._recycled.popleft()

    def pop(self) -> int:
        """Pop from the tail (the dense deque's highest-priority-last end)."""
        if self._recycled:
            return self._recycled.pop()
        if self._virgin_next < self._virgin_end:
            self._virgin_end -= 1
            return self._virgin_end
        raise IndexError("pop from an empty free list")

    def append(self, pfn: int) -> None:
        self._recycled.append(pfn)

    @property
    def virgin_range(self) -> tuple[int, int]:
        """The never-allocated span (for O(1) consistency checks)."""
        return (self._virgin_next, self._virgin_end)

    def recycled_array(self) -> np.ndarray:
        """Recycled frames as an int64 array (consistency checks)."""
        return np.fromiter(self._recycled, dtype=np.int64, count=len(self._recycled))


@dataclass
class TierFrames:
    """Allocation bookkeeping for one tier."""

    tier_id: int
    base_pfn: int
    total: int
    low_watermark_frac: float = 0.02
    high_watermark_frac: float = 0.05
    #: frames administratively removed from service (capacity events)
    offline: int = 0

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError("tier needs at least one frame")
        if not 0 <= self.low_watermark_frac <= self.high_watermark_frac <= 1:
            raise ValueError("need 0 <= low <= high <= 1 watermark fractions")
        self.free_list = FreeFrameList(self.base_pfn, self.total)

    @property
    def free(self) -> int:
        return len(self.free_list)

    @property
    def online(self) -> int:
        """Frames currently in service (installed minus offlined)."""
        return self.total - self.offline

    @property
    def used(self) -> int:
        return self.online - self.free

    @property
    def low_watermark(self) -> int:
        return int(self.online * self.low_watermark_frac)

    @property
    def high_watermark(self) -> int:
        return int(self.online * self.high_watermark_frac)

    def below_low_watermark(self) -> bool:
        return self.free < self.low_watermark

    def frames_to_reclaim(self) -> int:
        """How many frames demotion must free to restore the high mark."""
        deficit = self.high_watermark - self.free
        return max(deficit, 0)


class FrameAllocator:
    """Allocator over both tiers plus the frame metadata table."""

    def __init__(
        self,
        fast_frames: int,
        slow_frames: int,
        low_watermark_frac: float = 0.02,
        high_watermark_frac: float = 0.05,
        *,
        chunk_frames: int | None = None,
    ) -> None:
        self.tiers = [
            TierFrames(0, base_pfn=0, total=fast_frames,
                       low_watermark_frac=low_watermark_frac,
                       high_watermark_frac=high_watermark_frac),
            TierFrames(1, base_pfn=fast_frames, total=slow_frames,
                       low_watermark_frac=low_watermark_frac,
                       high_watermark_frac=high_watermark_frac),
        ]
        self._fast_frames = fast_frames
        #: authoritative per-frame state (PhysPage objects are views)
        store_kwargs = {} if chunk_frames is None else {"chunk_frames": chunk_frames}
        self.store = PageStatsStore(fast_frames + slow_frames, fast_frames, **store_kwargs)
        # Every frame starts on a free list: flag the materialized
        # prefix and make growth segments inherit the same default.
        self.store.free_fill = True
        self.store.in_free_list[:] = True
        #: frames taken out of service by capacity events (still FREE,
        #: but neither allocatable nor on any free list)
        self._offline: set[int] = set()

    def tier_of_pfn(self, pfn: int) -> int:
        """Which tier a PFN belongs to (contiguous partitioning)."""
        if pfn < 0 or pfn >= self.tiers[0].total + self.tiers[1].total:
            raise ValueError(f"pfn {pfn} outside physical memory")
        return 0 if pfn < self._fast_frames else 1

    def ever_allocated(self, pfn: int) -> bool:
        """Has this frame been handed out by the allocator at least once?

        O(1) range arithmetic against the tier's virgin span — no
        per-frame bookkeeping.  Administratively-offlined frames report
        ``False``: they must come back through ``online_frames`` before
        they can be treated as allocatable again.
        """
        tier = self.tiers[self.tier_of_pfn(pfn)]
        v_lo, v_hi = tier.free_list.virgin_range
        if v_lo <= pfn < v_hi:
            return False
        return pfn not in self._offline

    def page(self, pfn: int) -> PhysPage:
        """Frame metadata view (frames are store rows; views are cheap
        and stateless, so one is built per call rather than cached)."""
        if not self.ever_allocated(pfn):
            raise KeyError(pfn)
        return PhysPage(pfn=pfn, store=self.store)

    def allocate_pfn(self, tier_id: int, *, fallback: bool = False) -> int:
        """:meth:`allocate` without materializing the PhysPage view.

        Same pop order, same fallback rule, same store writes — returns
        the bare PFN for callers that work through the store directly.
        """
        tier = self.tiers[tier_id]
        if not tier.free_list:
            if fallback and tier_id == 0 and self.tiers[1].free_list:
                tier = self.tiers[1]
            else:
                raise OutOfFramesError(f"tier {tier_id} has no free frames")
        pfn = tier.free_list.popleft()
        store = self.store
        if pfn >= store.capacity:
            store.ensure(pfn + 1)
        store.in_free_list[pfn] = False
        store.tier_id[pfn] = tier.tier_id
        store.state[pfn] = STATE_FREE  # caller attaches
        return pfn

    def allocate(self, tier_id: int, *, fallback: bool = False) -> PhysPage:
        """Take a free frame from ``tier_id``.

        With ``fallback=True`` an empty fast tier falls through to the
        slow tier (Linux's allocation fallback order), mirroring how new
        allocations land in slow memory once DRAM fills.
        """
        return PhysPage(pfn=self.allocate_pfn(tier_id, fallback=fallback), store=self.store)

    def free(self, pfn: int) -> None:
        """Return a frame to its tier's free list."""
        if not self.ever_allocated(pfn):
            raise ValueError(f"pfn {pfn} was never allocated")
        store = self.store
        if store.in_free_list[pfn]:
            raise ValueError(f"double free of pfn {pfn}")
        store.detach_row(pfn)
        self.tiers[0 if pfn < self._fast_frames else 1].free_list.append(pfn)
        store.in_free_list[pfn] = True

    def free_pid(self, pid: int) -> dict[str, int]:
        """Bulk-release every frame owned by ``pid`` (process teardown).

        Covers MAPPED and MIGRATING frames (the page-table walk) *and*
        SHADOW frames — retained slow-tier twins, including stale ones
        whose fast copy diverged — so a departed workload leaves zero
        frames behind.  Frames are freed in ascending PFN order, keeping
        free-list contents deterministic.

        Returns per-state/per-tier release counts and raises if the scan
        finds a frame already on a free list (double free) or leaves any
        frame still bound to ``pid`` (leak).
        """
        st = self.store
        owned = st.owned_frames(pid)
        counts = {
            "mapped": int((st.state[owned] == STATE_MAPPED).sum()),
            "migrating": int((st.state[owned] == STATE_MIGRATING).sum()),
            "shadow": int((st.state[owned] == STATE_SHADOW).sum()),
            "fast": int((owned < self._fast_frames).sum()),
            "slow": int((owned >= self._fast_frames).sum()),
        }
        for pfn in owned.tolist():
            if st.in_free_list[pfn]:
                raise RuntimeError(f"teardown double free: pfn {pfn} of pid {pid}")
            self.free(pfn)
        leaked = st.owned_frames(pid)
        if leaked.size:
            raise RuntimeError(
                f"teardown leaked {leaked.size} frames of pid {pid}: {leaked[:8].tolist()}"
            )
        return counts

    def offline_frames(self, tier_id: int, n: int) -> list[int]:
        """Take up to ``n`` free frames of a tier out of service.

        Frames are popped from the *tail* of the free list so the
        allocation order of the remaining frames is undisturbed.  Only
        free frames can be offlined; if fewer than ``n`` are free the
        call offlines what it can (the caller reads the returned list
        for the actual count).
        """
        tier = self.tiers[tier_id]
        take = min(n, tier.free)
        taken = [tier.free_list.pop() for _ in range(take)]
        for pfn in taken:
            if pfn >= self.store.capacity:
                self.store.ensure(pfn + 1)
            self.store.in_free_list[pfn] = False
            self._offline.add(pfn)
        tier.offline += take
        return sorted(taken)

    def online_frames(self, tier_id: int, n: int | None = None) -> int:
        """Return offlined frames of a tier to service (ascending PFN)."""
        tier = self.tiers[tier_id]
        avail = sorted(p for p in self._offline if self.tier_of_pfn(p) == tier_id)
        if n is not None:
            avail = avail[:n]
        for pfn in avail:
            self._offline.discard(pfn)
            tier.free_list.append(pfn)
            self.store.in_free_list[pfn] = True
        tier.offline -= len(avail)
        return len(avail)

    def check_consistency(self) -> None:
        """Cross-check free lists against the store's free-list bitmap.

        Invariants: each tier's free list holds exactly the in-tier PFNs
        whose ``in_free_list`` bit is set; every FREE-state frame is
        either on a free list or offline; no live frame is on a free
        list.  Raises ``RuntimeError`` on the first violation.

        Memory-budgeted for million-frame stores: the virgin span of a
        free list is validated by range arithmetic against the bitmap
        (an ``.all()`` over the materialized prefix — frames beyond the
        store's capacity are virgin by construction), recycled frames
        through one bounded int64 array, and no Python sets of PFNs are
        ever built.
        """
        st = self.store
        cap = st.capacity
        for tier in self.tiers:
            lo, hi = tier.base_pfn, tier.base_pfn + tier.total
            v_lo, v_hi = tier.free_list.virgin_range
            recycled = tier.free_list.recycled_array()
            # Frames below the virgin span were allocated at least once;
            # a frame is flagged free there iff it is recycled/offline.
            flags = st.in_free_list[lo:min(hi, cap)]
            # virgin frames must all be flagged (materialized ones
            # explicitly; beyond-capacity ones by the free_fill default)
            v_mat_hi = min(v_hi, cap)
            if v_lo < v_mat_hi and not bool(st.in_free_list[v_lo:v_mat_hi].all()):
                raise RuntimeError(
                    f"tier {tier.tier_id}: virgin frame missing its free-list bit"
                )
            if v_hi > cap and not st.free_fill:
                raise RuntimeError(
                    f"tier {tier.tier_id}: unmaterialized virgin frames not "
                    "covered by the free_fill default"
                )
            if recycled.size:
                if int(recycled.min()) < lo or int(recycled.max()) >= hi:
                    raise RuntimeError(f"tier {tier.tier_id} free list holds out-of-tier pfns")
                if int(recycled.max()) >= cap:
                    raise RuntimeError(f"tier {tier.tier_id} recycled an unmaterialized pfn")
                uniq = np.unique(recycled)
                if uniq.size != recycled.size:
                    raise RuntimeError(f"tier {tier.tier_id} free list has duplicates")
                if ((uniq >= v_lo) & (uniq < v_hi)).any():
                    raise RuntimeError(
                        f"tier {tier.tier_id} free list has duplicates "
                        "(virgin pfn also recycled)"
                    )
                if not bool(st.in_free_list[uniq].all()):
                    raise RuntimeError(
                        f"tier {tier.tier_id} free list and bitmap disagree: "
                        "recycled frame without its bit"
                    )
            # Total flagged frames in the tier span must equal the free
            # list's length (bits outside the list would slip past the
            # per-group checks above).
            n_virgin_flagged = max(v_mat_hi - v_lo, 0) + max(v_hi - max(v_lo, cap), 0)
            n_span_flagged = int(flags.sum()) + (max(hi - max(lo, cap), 0) if st.free_fill else 0)
            if n_span_flagged != recycled.size + n_virgin_flagged:
                raise RuntimeError(
                    f"tier {tier.tier_id} free list and bitmap disagree: "
                    f"{len(tier.free_list)} listed vs {n_span_flagged} flagged"
                )
            if tier.offline != sum(1 for p in self._offline if self.tier_of_pfn(p) == tier.tier_id):
                raise RuntimeError(f"tier {tier.tier_id} offline count out of sync")
        free_state = st.state[:cap] == STATE_FREE
        flagged = st.in_free_list[:cap]
        offline = np.zeros(cap, dtype=bool)
        if self._offline:
            offline[sorted(self._offline)] = True
        if bool((flagged & ~free_state).any()):
            raise RuntimeError("live frame present on a free list")
        unaccounted = free_state & ~flagged & ~offline
        if bool(unaccounted.any()):
            raise RuntimeError(
                f"{int(unaccounted.sum())} FREE frames neither listed nor offline"
            )

    def free_frames(self, tier_id: int) -> int:
        return self.tiers[tier_id].free

    def used_frames(self, tier_id: int) -> int:
        return self.tiers[tier_id].used

    def mapped_pages(self, tier_id: int | None = None):
        """Iterate live (mapped or migrating) frames, optionally by tier."""
        st = self.store.state
        live = (st == STATE_MAPPED) | (st == STATE_MIGRATING)
        if tier_id is not None:
            live &= self.store.tier_id == tier_id
        for pfn in np.flatnonzero(live).tolist():
            yield PhysPage(pfn=pfn, store=self.store)
