"""Per-tier physical frame allocation with watermarks.

Global PFN space is partitioned contiguously: the fast tier owns
``[0, fast_frames)``, the slow tier ``[fast_frames, fast+slow)``, so a
PFN alone identifies its tier — mirroring how zone membership works in
the kernel and letting PTEs stay a single integer.

Watermarks drive proactive demotion exactly as in TPP/Linux: when a
tier's free frames drop below ``low_watermark`` the reclaim path (a
tiering policy) is expected to demote until ``high_watermark`` is
restored.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.mm.page import PageState, PhysPage
from repro.mm.page_store import (
    STATE_FREE,
    STATE_MAPPED,
    STATE_MIGRATING,
    STATE_SHADOW,
    PageStatsStore,
)


class OutOfFramesError(RuntimeError):
    """A tier has no free frames and the caller did not allow fallback."""


@dataclass
class TierFrames:
    """Allocation bookkeeping for one tier."""

    tier_id: int
    base_pfn: int
    total: int
    low_watermark_frac: float = 0.02
    high_watermark_frac: float = 0.05
    #: frames administratively removed from service (capacity events)
    offline: int = 0

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError("tier needs at least one frame")
        if not 0 <= self.low_watermark_frac <= self.high_watermark_frac <= 1:
            raise ValueError("need 0 <= low <= high <= 1 watermark fractions")
        self.free_list: deque[int] = deque(range(self.base_pfn, self.base_pfn + self.total))

    @property
    def free(self) -> int:
        return len(self.free_list)

    @property
    def online(self) -> int:
        """Frames currently in service (installed minus offlined)."""
        return self.total - self.offline

    @property
    def used(self) -> int:
        return self.online - self.free

    @property
    def low_watermark(self) -> int:
        return int(self.online * self.low_watermark_frac)

    @property
    def high_watermark(self) -> int:
        return int(self.online * self.high_watermark_frac)

    def below_low_watermark(self) -> bool:
        return self.free < self.low_watermark

    def frames_to_reclaim(self) -> int:
        """How many frames demotion must free to restore the high mark."""
        deficit = self.high_watermark - self.free
        return max(deficit, 0)


class FrameAllocator:
    """Allocator over both tiers plus the frame metadata table."""

    def __init__(
        self,
        fast_frames: int,
        slow_frames: int,
        low_watermark_frac: float = 0.02,
        high_watermark_frac: float = 0.05,
    ) -> None:
        self.tiers = [
            TierFrames(0, base_pfn=0, total=fast_frames,
                       low_watermark_frac=low_watermark_frac,
                       high_watermark_frac=high_watermark_frac),
            TierFrames(1, base_pfn=fast_frames, total=slow_frames,
                       low_watermark_frac=low_watermark_frac,
                       high_watermark_frac=high_watermark_frac),
        ]
        self._fast_frames = fast_frames
        #: authoritative per-frame state (PhysPage objects are views)
        self.store = PageStatsStore(fast_frames + slow_frames, fast_frames)
        self.store.in_free_list[:] = True
        self._pages: dict[int, PhysPage] = {}
        #: frames taken out of service by capacity events (still FREE,
        #: but neither allocatable nor on any free list)
        self._offline: set[int] = set()

    def tier_of_pfn(self, pfn: int) -> int:
        """Which tier a PFN belongs to (contiguous partitioning)."""
        if pfn < 0 or pfn >= self.tiers[0].total + self.tiers[1].total:
            raise ValueError(f"pfn {pfn} outside physical memory")
        return 0 if pfn < self._fast_frames else 1

    def page(self, pfn: int) -> PhysPage:
        """Frame metadata (created lazily on first allocation)."""
        return self._pages[pfn]

    def allocate(self, tier_id: int, *, fallback: bool = False) -> PhysPage:
        """Take a free frame from ``tier_id``.

        With ``fallback=True`` an empty fast tier falls through to the
        slow tier (Linux's allocation fallback order), mirroring how new
        allocations land in slow memory once DRAM fills.
        """
        tier = self.tiers[tier_id]
        if not tier.free_list:
            if fallback and tier_id == 0 and self.tiers[1].free_list:
                tier = self.tiers[1]
            else:
                raise OutOfFramesError(f"tier {tier_id} has no free frames")
        pfn = tier.free_list.popleft()
        self.store.in_free_list[pfn] = False
        page = self._pages.get(pfn)
        if page is None:
            page = PhysPage(pfn=pfn, store=self.store)
            self._pages[pfn] = page
        page.tier_id = tier.tier_id
        page.state = PageState.FREE  # caller attaches
        return page

    def free(self, pfn: int) -> None:
        """Return a frame to its tier's free list."""
        page = self._pages.get(pfn)
        if page is None:
            raise ValueError(f"pfn {pfn} was never allocated")
        tier = self.tiers[self.tier_of_pfn(pfn)]
        if self.store.in_free_list[pfn]:
            raise ValueError(f"double free of pfn {pfn}")
        page.detach()
        tier.free_list.append(pfn)
        self.store.in_free_list[pfn] = True

    def free_pid(self, pid: int) -> dict[str, int]:
        """Bulk-release every frame owned by ``pid`` (process teardown).

        Covers MAPPED and MIGRATING frames (the page-table walk) *and*
        SHADOW frames — retained slow-tier twins, including stale ones
        whose fast copy diverged — so a departed workload leaves zero
        frames behind.  Frames are freed in ascending PFN order, keeping
        free-list contents deterministic.

        Returns per-state/per-tier release counts and raises if the scan
        finds a frame already on a free list (double free) or leaves any
        frame still bound to ``pid`` (leak).
        """
        st = self.store
        owned = st.owned_frames(pid)
        counts = {
            "mapped": int((st.state[owned] == STATE_MAPPED).sum()),
            "migrating": int((st.state[owned] == STATE_MIGRATING).sum()),
            "shadow": int((st.state[owned] == STATE_SHADOW).sum()),
            "fast": int((owned < self._fast_frames).sum()),
            "slow": int((owned >= self._fast_frames).sum()),
        }
        for pfn in owned.tolist():
            if st.in_free_list[pfn]:
                raise RuntimeError(f"teardown double free: pfn {pfn} of pid {pid}")
            self.free(pfn)
        leaked = st.owned_frames(pid)
        if leaked.size:
            raise RuntimeError(
                f"teardown leaked {leaked.size} frames of pid {pid}: {leaked[:8].tolist()}"
            )
        return counts

    def offline_frames(self, tier_id: int, n: int) -> list[int]:
        """Take up to ``n`` free frames of a tier out of service.

        Frames are popped from the *tail* of the free list so the
        allocation order of the remaining frames is undisturbed.  Only
        free frames can be offlined; if fewer than ``n`` are free the
        call offlines what it can (the caller reads the returned list
        for the actual count).
        """
        tier = self.tiers[tier_id]
        take = min(n, tier.free)
        taken = [tier.free_list.pop() for _ in range(take)]
        for pfn in taken:
            self.store.in_free_list[pfn] = False
            self._offline.add(pfn)
        tier.offline += take
        return sorted(taken)

    def online_frames(self, tier_id: int, n: int | None = None) -> int:
        """Return offlined frames of a tier to service (ascending PFN)."""
        tier = self.tiers[tier_id]
        avail = sorted(p for p in self._offline if self.tier_of_pfn(p) == tier_id)
        if n is not None:
            avail = avail[:n]
        for pfn in avail:
            self._offline.discard(pfn)
            tier.free_list.append(pfn)
            self.store.in_free_list[pfn] = True
        tier.offline -= len(avail)
        return len(avail)

    def check_consistency(self) -> None:
        """Cross-check free lists against the store's free-list bitmap.

        Invariants: each tier's free list holds exactly the in-tier PFNs
        whose ``in_free_list`` bit is set; every FREE-state frame is
        either on a free list or offline; no live frame is on a free
        list.  Raises ``RuntimeError`` on the first violation.
        """
        st = self.store
        for tier in self.tiers:
            span = slice(tier.base_pfn, tier.base_pfn + tier.total)
            bitmap = set((np.flatnonzero(st.in_free_list[span]) + tier.base_pfn).tolist())
            listed = set(tier.free_list)
            if listed != bitmap:
                raise RuntimeError(
                    f"tier {tier.tier_id} free list and bitmap disagree: "
                    f"{len(listed)} listed vs {len(bitmap)} flagged"
                )
            if len(tier.free_list) != len(listed):
                raise RuntimeError(f"tier {tier.tier_id} free list has duplicates")
            if tier.offline != sum(1 for p in self._offline if self.tier_of_pfn(p) == tier.tier_id):
                raise RuntimeError(f"tier {tier.tier_id} offline count out of sync")
        free_state = st.state == STATE_FREE
        flagged = st.in_free_list
        offline = np.zeros(st.n_frames, dtype=bool)
        if self._offline:
            offline[sorted(self._offline)] = True
        if bool((flagged & ~free_state).any()):
            raise RuntimeError("live frame present on a free list")
        unaccounted = free_state & ~flagged & ~offline
        if bool(unaccounted.any()):
            raise RuntimeError(
                f"{int(unaccounted.sum())} FREE frames neither listed nor offline"
            )

    def free_frames(self, tier_id: int) -> int:
        return self.tiers[tier_id].free

    def used_frames(self, tier_id: int) -> int:
        return self.tiers[tier_id].used

    def mapped_pages(self, tier_id: int | None = None):
        """Iterate live (mapped or migrating) frames, optionally by tier."""
        st = self.store.state
        live = (st == STATE_MAPPED) | (st == STATE_MIGRATING)
        if tier_id is not None:
            live &= self.store.tier_id == tier_id
        for pfn in np.flatnonzero(live).tolist():
            yield self._pages[pfn]
