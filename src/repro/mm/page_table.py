"""Four-level radix page table (x86-64 style).

48-bit virtual addresses decompose into four 9-bit indices (PGD → PUD →
PMD → PT) plus the 12-bit page offset; the simulator works directly in
virtual page numbers (VPN = VA >> 12), i.e. 36 bits of index split
9/9/9/9.

Nodes are small dicts rather than 512-ary arrays — sparse and cheap for
simulated address spaces — but the *structure* is faithful: leaf (PT)
nodes are first-class objects that per-thread replicated tables can
share by reference, which is precisely the mechanism Vulcan's §3.4
relies on (replicate upper levels, share last level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.mm import pte as pte_mod

#: Radix bits per level and derived masks.
LEVEL_BITS = 9
LEVEL_FANOUT = 1 << LEVEL_BITS  # 512
N_LEVELS = 4  # PGD, PUD, PMD, PT
_LEVEL_MASK = LEVEL_FANOUT - 1


def vpn_indices(vpn: int) -> tuple[int, int, int, int]:
    """Split a VPN into (pgd, pud, pmd, pt) indices."""
    if vpn < 0 or vpn >= 1 << (LEVEL_BITS * N_LEVELS):
        raise ValueError(f"vpn {vpn} outside the 36-bit index space")
    return (
        (vpn >> (3 * LEVEL_BITS)) & _LEVEL_MASK,
        (vpn >> (2 * LEVEL_BITS)) & _LEVEL_MASK,
        (vpn >> LEVEL_BITS) & _LEVEL_MASK,
        vpn & _LEVEL_MASK,
    )


@dataclass
class PageTableNode:
    """One table page at any level.

    ``level`` 3..1 hold child :class:`PageTableNode` references; level 0
    (the PT leaf) holds integer PTEs.
    """

    level: int
    entries: dict[int, "PageTableNode | int"] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0


class PageTable:
    """A single (per-process or per-thread) page-table tree."""

    def __init__(self) -> None:
        self.root = PageTableNode(level=N_LEVELS - 1)
        self.mapped_count = 0
        #: Table pages allocated for this tree, by level (leaf counted
        #: only when owned — replication shares leaves).
        self.node_count_by_level = [0, 0, 0, 1]  # root exists
        #: leaf-base (vpn >> 9) -> PT node. Leaf nodes are never removed
        #: or replaced once linked (unmap only clears entries inside
        #: them), so the cache needs no invalidation; it turns the hot
        #: 3-level descent into one dict probe.
        self._leaf_cache: dict[int, PageTableNode] = {}

    # -- internal walks ---------------------------------------------------

    def _walk_to_leaf(self, vpn: int, create: bool, leaf_factory: Callable[[], PageTableNode] | None = None) -> PageTableNode | None:
        """Descend to the PT node covering ``vpn``.

        ``leaf_factory`` lets the replication layer supply a *shared*
        leaf node instead of a fresh one when creating.
        """
        leaf = self._leaf_cache.get(vpn >> LEVEL_BITS)
        if leaf is not None:
            return leaf
        i3, i2, i1, _ = vpn_indices(vpn)
        node = self.root
        for level, idx in ((2, i3), (1, i2), (0, i1)):
            child = node.entries.get(idx)
            if child is None:
                if not create:
                    return None
                if level == 0 and leaf_factory is not None:
                    child = leaf_factory()
                else:
                    child = PageTableNode(level=level)
                    self.node_count_by_level[level] += 1
                node.entries[idx] = child
            node = child  # type: ignore[assignment]
        self._leaf_cache[vpn >> LEVEL_BITS] = node
        return node  # the PT leaf node

    def leaf_for(self, vpn: int) -> PageTableNode | None:
        """The PT node covering ``vpn`` if it exists."""
        return self._walk_to_leaf(vpn, create=False)

    def install_leaf(self, vpn: int, leaf: PageTableNode) -> None:
        """Link an existing (shared) leaf node under this tree's upper
        levels at the slot covering ``vpn`` — the replication primitive."""
        if not leaf.is_leaf:
            raise ValueError("install_leaf requires a level-0 node")
        i3, i2, i1, _ = vpn_indices(vpn)
        node = self.root
        for level, idx in ((2, i3), (1, i2)):
            child = node.entries.get(idx)
            if child is None:
                child = PageTableNode(level=level)
                self.node_count_by_level[level] += 1
                node.entries[idx] = child
            node = child  # type: ignore[assignment]
        existing = node.entries.get(i1)
        if existing is not None and existing is not leaf:
            raise ValueError(f"slot for vpn {vpn} already holds a different leaf")
        node.entries[i1] = leaf
        self._leaf_cache[vpn >> LEVEL_BITS] = leaf

    # -- public mapping API ------------------------------------------------

    def map(self, vpn: int, pte_value: int) -> None:
        """Install a PTE for ``vpn`` (must not already be present)."""
        leaf = self._walk_to_leaf(vpn, create=True)
        assert leaf is not None
        idx = vpn & _LEVEL_MASK
        existing = leaf.entries.get(idx)
        if isinstance(existing, int) and pte_mod.pte_is_present(existing):
            raise ValueError(f"vpn {vpn} already mapped")
        leaf.entries[idx] = pte_value
        self.mapped_count += 1

    def unmap(self, vpn: int) -> int:
        """Remove the PTE for ``vpn`` and return its last value."""
        leaf = self.leaf_for(vpn)
        idx = vpn & _LEVEL_MASK
        if leaf is None or not isinstance(leaf.entries.get(idx), int):
            raise KeyError(f"vpn {vpn} not mapped")
        value = leaf.entries.pop(idx)
        self.mapped_count -= 1
        return value  # type: ignore[return-value]

    def lookup(self, vpn: int) -> int | None:
        """Return the PTE integer for ``vpn`` or ``None``."""
        leaf = self._leaf_cache.get(vpn >> LEVEL_BITS)
        if leaf is None:
            leaf = self._walk_to_leaf(vpn, create=False)
            if leaf is None:
                return None
        value = leaf.entries.get(vpn & _LEVEL_MASK)
        return value if isinstance(value, int) else None

    def update(self, vpn: int, new_value: int) -> None:
        """Overwrite an existing PTE (remap / flag changes)."""
        leaf = self._leaf_cache.get(vpn >> LEVEL_BITS)
        if leaf is None:
            leaf = self._walk_to_leaf(vpn, create=False)
        idx = vpn & _LEVEL_MASK
        if leaf is None or not isinstance(leaf.entries.get(idx), int):
            raise KeyError(f"vpn {vpn} not mapped")
        leaf.entries[idx] = new_value

    def modify(self, vpn: int, fn: Callable[[int], int]) -> int:
        """Apply ``fn`` to the current PTE and store the result."""
        leaf = self._leaf_cache.get(vpn >> LEVEL_BITS)
        if leaf is None:
            leaf = self._walk_to_leaf(vpn, create=False)
        idx = vpn & _LEVEL_MASK
        if leaf is None or not isinstance(leaf.entries.get(idx), int):
            raise KeyError(f"vpn {vpn} not mapped")
        new_value = fn(leaf.entries[idx])  # type: ignore[arg-type]
        leaf.entries[idx] = new_value
        return new_value

    def iter_ptes(self) -> Iterator[tuple[int, int]]:
        """Yield ``(vpn, pte)`` for every mapped page (scanning order)."""

        def rec(node: PageTableNode, prefix: int):
            for idx in sorted(node.entries):
                child = node.entries[idx]
                if node.is_leaf:
                    if isinstance(child, int):
                        yield (prefix << LEVEL_BITS) | idx, child
                else:
                    yield from rec(child, (prefix << LEVEL_BITS) | idx)  # type: ignore[arg-type]

        yield from rec(self.root, 0)

    def table_pages(self, include_leaves: bool = True) -> int:
        """Number of table pages in this tree (memory-overhead metric).

        With ``include_leaves=False`` only upper-level pages are counted,
        which is the marginal cost of one per-thread replica in Vulcan.
        """
        upper = sum(self.node_count_by_level[1:])
        if not include_leaves:
            return upper
        # Leaves may be shared; count distinct leaf objects reachable.
        leaves: set[int] = set()

        def rec(node: PageTableNode):
            for child in node.entries.values():
                if isinstance(child, PageTableNode):
                    if child.is_leaf:
                        leaves.add(id(child))
                    else:
                        rec(child)

        rec(self.root)
        return upper + len(leaves)
