"""Calibrated page-migration cost model.

The paper measures migration overheads on real hardware; Python cannot.
Instead we fit closed-form cost curves to every number the paper states,
and *derive* the model constants from those anchors at import time, so
the calibration is visible and testable rather than hidden in magic
numbers.

Anchors (paper §2.2):

* **Fig. 2** (single 4 KiB page, CPUs 2→32):
  total migration time rises 50K → 750K cycles; the *preparation* phase
  (``lru_add_drain_all()`` global sync) rises from 38.3% to 76.9% of the
  total — a 30× increase, "preparation time increasing by up to 30×".
* **Fig. 3** (batched migration, prep eliminated, 32-core machine):
  TLB coherence consumes up to **65%** of migration time at 512 pages /
  32 threads, while "page copying overhead grows relatively slowly" with
  page count (batched copies stream/pipeline, hence a sub-linear
  exponent); at few pages copying dominates.
* **Fig. 7** (2-page sync migration on 32 CPUs): Vulcan's optimized
  preparation alone gives **3.44×** speedup; adding the per-thread
  page-table TLB optimization gives **4.06×**.

Model
-----

Single-page migration with ``c`` online CPUs (the Fig. 2 microbenchmark
migrates while all CPUs run threads of the process)::

    prep(c)   = A * c**B          # cross-CPU drain + locks (superlinear)
    shoot(c)  = s1 * c            # unmap+remap IPI rounds, per target CPU
    fixed     = U + K + R         # unmap bookkeeping, 4K copy, remap

The four Fig. 2 anchor equations determine A, B, s1 and the fixed sum
exactly (two totals × two preparation shares).

Batched migration of ``P`` pages with ``T`` target threads (Fig. 3/7)::

    tlb(P, T)  = P * (b + u*T)    # per-page flush round, per-target ack
    copy(P)    = C * P**e         # streamed copy, sub-linear batching
    pp(P)      = P * (U' + R')    # per-page unmap/remap bookkeeping

``u`` falls out of the two Fig. 7 speedups; ``C`` and ``e`` out of the
Fig. 3 65% share plus the Fig. 7 equations.  ``b`` (the per-page flush
software path) is the one free parameter, set to 30K cycles — about 10µs
of kernel rmap-walk + flush bookkeeping per page, in line with Nomad's
reported per-page costs.

These are *effective* costs: they embed the kernel software path
(folio isolation, rmap walks, locking), which is why a "copy" of a 4 KiB
page costs far more than its DRAM streaming time.  The paper's own 50K
cycles for one 2-CPU migration is likewise nearly all software.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# --------------------------------------------------------------------------
# Paper anchors (verbatim from §2.2 / §5.2).
# --------------------------------------------------------------------------

FIG2_TOTAL_2CPU = 50_000.0
FIG2_TOTAL_32CPU = 750_000.0
FIG2_PREP_SHARE_2CPU = 0.383
FIG2_PREP_SHARE_32CPU = 0.769

FIG3_TLB_SHARE_MAX = 0.65  # at 512 pages, 32 threads
FIG3_PAGES_AT_MAX = 512
FIG3_THREADS_AT_MAX = 32

FIG7_SPEEDUP_PREP_ONLY = 3.44  # 2-page migration, prep optimization
FIG7_SPEEDUP_PREP_TLB = 4.06  # 2-page migration, prep + TLB optimization
FIG7_PAGES = 2
FIG7_THREADS = 32

# --------------------------------------------------------------------------
# Derived single-page constants (exact Fig. 2 fit).
# --------------------------------------------------------------------------

_PREP_2 = FIG2_PREP_SHARE_2CPU * FIG2_TOTAL_2CPU  # 19 150
_PREP_32 = FIG2_PREP_SHARE_32CPU * FIG2_TOTAL_32CPU  # 576 750

#: prep(c) = PREP_COEF * c**PREP_EXP
PREP_EXP = math.log(_PREP_32 / _PREP_2) / math.log(16.0)  # ≈ 1.228
PREP_COEF = _PREP_2 / (2.0**PREP_EXP)  # ≈ 8 177

#: Per-target-CPU shootdown cost of a single-page migration (two IPI
#: rounds: unmap flush + remap flush), from the non-prep residuals.
SHOOTDOWN_PER_CPU = ((FIG2_TOTAL_32CPU - _PREP_32) - (FIG2_TOTAL_2CPU - _PREP_2)) / 30.0  # ≈ 4 747

#: Fixed non-prep, non-shootdown cost of a single-page migration,
#: split into unmap / copy / remap for the breakdown plot.
_FIXED_SINGLE = (FIG2_TOTAL_2CPU - _PREP_2) - 2.0 * SHOOTDOWN_PER_CPU  # ≈ 21 357
UNMAP_SINGLE = 3_000.0
COPY_SINGLE = 16_000.0
REMAP_SINGLE = _FIXED_SINGLE - UNMAP_SINGLE - COPY_SINGLE  # ≈ 2 357

# --------------------------------------------------------------------------
# Derived batch constants (exact Fig. 3 + Fig. 7 fit).
# --------------------------------------------------------------------------

#: Per-page software cost of one flush round (rmap walk, bookkeeping).
BATCH_IPI_BASE = 30_000.0
#: Per-page unmap+remap bookkeeping in batched migration.
BATCH_PER_PAGE_FIXED = 1_800.0
#: Scope of Vulcan's optimized (per-application) LRU drain, in CPUs.
PREP_OPT_SCOPE_CPUS = 2


def _solve_batch_constants() -> tuple[float, float, float]:
    """Solve (u, C, e) from the Fig. 7 speedups and Fig. 3 TLB share.

    Returns ``(ipi_per_cpu, copy_coef, copy_exp)``.  See module
    docstring for the derivation; this is straight algebra on the
    anchors so a change to any anchor re-solves automatically.
    """
    prep_base = PREP_COEF * FIG7_THREADS**PREP_EXP
    prep_opt = PREP_COEF * PREP_OPT_SCOPE_CPUS**PREP_EXP
    p, t = float(FIG7_PAGES), float(FIG7_THREADS)

    # Speedup 1: (prep_base + X) = S1 * (prep_opt + X), X = tlb+copy+pp at (2, 32).
    x = (prep_base - FIG7_SPEEDUP_PREP_ONLY * prep_opt) / (FIG7_SPEEDUP_PREP_ONLY - 1.0)

    # Speedup 2 shrinks the shootdown target set from T cpus to 1:
    # denominator drops by p*(T-1)*u.
    total = prep_base + x
    denom2 = total / FIG7_SPEEDUP_PREP_TLB
    u = (prep_opt + x - denom2) / (p * (t - 1.0))

    # Fig. 3 share at (512, 32): copy+pp = tlb * (1-share)/share.
    pm, tm = float(FIG3_PAGES_AT_MAX), float(FIG3_THREADS_AT_MAX)
    tlb_max = pm * (BATCH_IPI_BASE + u * tm)
    copy_max = tlb_max * (1.0 - FIG3_TLB_SHARE_MAX) / FIG3_TLB_SHARE_MAX - pm * BATCH_PER_PAGE_FIXED

    # copy at the Fig. 7 point falls out of X.
    copy_f7 = x - p * (BATCH_IPI_BASE + u * t) - p * BATCH_PER_PAGE_FIXED
    e = math.log(copy_max / copy_f7) / math.log(pm / p)
    c = copy_f7 / (p**e)
    return (u, c, e)


BATCH_IPI_PER_CPU, BATCH_COPY_COEF, BATCH_COPY_EXP = _solve_batch_constants()

# --------------------------------------------------------------------------
# The model object.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SinglePageBreakdown:
    """Fig. 2-style phase breakdown of one single-page migration."""

    prep: float
    unmap: float
    shootdown: float
    copy: float
    remap: float

    @property
    def total(self) -> float:
        return self.prep + self.unmap + self.shootdown + self.copy + self.remap

    @property
    def prep_share(self) -> float:
        return self.prep / self.total

    def as_dict(self) -> dict[str, float]:
        return {
            "prep": self.prep,
            "unmap": self.unmap,
            "shootdown": self.shootdown,
            "copy": self.copy,
            "remap": self.remap,
        }


class MigrationCostModel:
    """Cycle costs for every migration operation the engine performs.

    Stateless; all methods are pure functions of their arguments so the
    engine, the benchmarks and the analytic figures all agree exactly.
    """

    # -- preparation ---------------------------------------------------------

    def prep_cycles(self, n_cpus: int) -> float:
        """Global ``lru_add_drain_all()`` preparation across ``n_cpus``."""
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        return PREP_COEF * float(n_cpus) ** PREP_EXP

    def prep_opt_cycles(self, scope_cpus: int = PREP_OPT_SCOPE_CPUS) -> float:
        """Vulcan's scoped drain: only the application's own CPUs."""
        return self.prep_cycles(max(scope_cpus, 1))

    # -- single-page migration (Fig. 2) ---------------------------------------

    def single_page_breakdown(self, n_cpus: int) -> SinglePageBreakdown:
        """Phase breakdown for migrating one base page with ``n_cpus``."""
        return SinglePageBreakdown(
            prep=self.prep_cycles(n_cpus),
            unmap=UNMAP_SINGLE,
            shootdown=SHOOTDOWN_PER_CPU * n_cpus,
            copy=COPY_SINGLE,
            remap=REMAP_SINGLE,
        )

    # -- batched migration (Fig. 3 / 7) ---------------------------------------

    def batch_tlb_cycles(self, pages: int, target_cpus: int) -> float:
        """TLB coherence cost of a batched migration: one flush round per
        page, acknowledgement latency growing with the target set."""
        if pages < 0 or target_cpus < 0:
            raise ValueError("pages and target_cpus must be non-negative")
        if pages == 0 or target_cpus == 0:
            return 0.0
        return pages * (BATCH_IPI_BASE + BATCH_IPI_PER_CPU * target_cpus)

    def batch_copy_cycles(self, pages: int) -> float:
        """Streamed copy cost; sub-linear in batch size (pipelining)."""
        if pages < 0:
            raise ValueError("pages must be non-negative")
        if pages == 0:
            return 0.0
        return BATCH_COPY_COEF * float(pages) ** BATCH_COPY_EXP

    def batch_fixed_cycles(self, pages: int) -> float:
        """Per-page unmap/remap bookkeeping."""
        return pages * BATCH_PER_PAGE_FIXED

    def batch_total_cycles(
        self,
        pages: int,
        target_cpus: int,
        n_cpus: int,
        *,
        opt_prep: bool = False,
        opt_tlb_target_cpus: int | None = None,
    ) -> float:
        """End-to-end cost of one batched migration call.

        Parameters
        ----------
        pages:
            Batch size.
        target_cpus:
            Cores that must receive shootdown IPIs without the per-thread
            page-table optimization (== threads of the process, when each
            runs on its own core).
        n_cpus:
            Online CPUs (scope of the unoptimized global drain).
        opt_prep:
            Use Vulcan's scoped drain instead of the global one.
        opt_tlb_target_cpus:
            When given, the *reduced* target set after per-thread
            page-table scoping (1 for fully private pages).
        """
        prep = self.prep_opt_cycles() if opt_prep else self.prep_cycles(n_cpus)
        targets = opt_tlb_target_cpus if opt_tlb_target_cpus is not None else target_cpus
        return (
            prep
            + self.batch_tlb_cycles(pages, targets)
            + self.batch_copy_cycles(pages)
            + self.batch_fixed_cycles(pages)
        )

    # -- phase shares used by the Fig. 3 bench --------------------------------

    def batch_shares(self, pages: int, target_cpus: int) -> dict[str, float]:
        """TLB / copy / fixed shares of a prep-free batched migration."""
        tlb = self.batch_tlb_cycles(pages, target_cpus)
        copy = self.batch_copy_cycles(pages)
        fixed = self.batch_fixed_cycles(pages)
        total = tlb + copy + fixed
        if total == 0:
            return {"tlb": 0.0, "copy": 0.0, "fixed": 0.0}
        return {"tlb": tlb / total, "copy": copy / total, "fixed": fixed / total}
