"""Transparent huge pages with split-on-promotion.

Vulcan (following Memtis) keeps THP enabled for TLB coverage in the slow
tier, but *splits* a 2 MiB huge page into 512 base pages before
promoting, so only the genuinely hot 4 KiB subpages consume fast-tier
capacity (§3.4/§3.5: "manages huge-page promotions by splitting them
into base pages to prevent memory wastage").

The manager tracks which VPN ranges are currently backed by a huge
mapping, estimates subpage heat skew from the access stream, and
performs the split: one huge mapping becomes 512 base PTEs (all pointing
into the same physically-contiguous frame block), after which the
ordinary migration engine promotes individual base pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.units import BASE_PAGES_PER_HUGE_PAGE


@dataclass
class HugeRegion:
    """One 2 MiB-aligned region currently mapped huge."""

    start_vpn: int  # aligned to BASE_PAGES_PER_HUGE_PAGE
    accesses: int = 0
    #: per-subpage access histogram, filled lazily on first profile
    subpage_hist: np.ndarray | None = None

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + BASE_PAGES_PER_HUGE_PAGE


@dataclass
class HugePageManager:
    """Tracks huge mappings and decides/performs splits.

    The simulator's page tables always operate at base-page granularity
    (a huge mapping is 512 base PTEs sharing hotness state); what this
    manager adds is the *policy* state: which regions count as huge for
    TLB-reach purposes, and the split bookkeeping that gates promotion.
    """

    enabled: bool = True
    #: huge-region base vpn -> region record
    regions: dict[int, HugeRegion] = field(default_factory=dict)
    splits: int = 0

    @staticmethod
    def huge_base(vpn: int) -> int:
        return vpn - (vpn % BASE_PAGES_PER_HUGE_PAGE)

    def register_region(self, start_vpn: int, n_pages: int) -> int:
        """Mark every fully-covered 2 MiB block of a VMA as huge-mapped.

        Returns the number of huge regions created.
        """
        if not self.enabled:
            return 0
        created = 0
        first = self.huge_base(start_vpn + BASE_PAGES_PER_HUGE_PAGE - 1)
        last_excl = self.huge_base(start_vpn + n_pages)
        for base in range(first, last_excl, BASE_PAGES_PER_HUGE_PAGE):
            if base not in self.regions:
                self.regions[base] = HugeRegion(start_vpn=base)
                created += 1
        return created

    def is_huge(self, vpn: int) -> bool:
        return self.huge_base(vpn) in self.regions

    def record_accesses(self, vpns: np.ndarray) -> None:
        """Account a batch of accesses to the covering regions."""
        if not self.enabled or not self.regions:
            return
        bases = vpns - (vpns % BASE_PAGES_PER_HUGE_PAGE)
        uniq, counts = np.unique(bases, return_counts=True)
        for base, count in zip(uniq.tolist(), counts.tolist()):
            region = self.regions.get(base)
            if region is None:
                continue
            region.accesses += count
            if region.subpage_hist is None:
                region.subpage_hist = np.zeros(BASE_PAGES_PER_HUGE_PAGE, dtype=np.int64)
            mask = bases == base
            offsets = (vpns[mask] - base).astype(np.int64)
            region.subpage_hist += np.bincount(offsets, minlength=BASE_PAGES_PER_HUGE_PAGE)

    def split_candidates(self, min_accesses: int = 64, skew_threshold: float = 2.0) -> list[int]:
        """Regions hot enough to be promotion candidates, hence splittable.

        A region qualifies when it has traffic and its subpage accesses
        are skewed (top-decile mean > ``skew_threshold`` × overall mean),
        i.e. promoting the whole 2 MiB would waste fast memory.
        A perfectly uniform hot region is better promoted whole, so it is
        *not* returned here.
        """
        out: list[int] = []
        for base, region in self.regions.items():
            if region.accesses < min_accesses or region.subpage_hist is None:
                continue
            hist = region.subpage_hist
            mean = hist.mean()
            if mean <= 0:
                continue
            k = max(BASE_PAGES_PER_HUGE_PAGE // 10, 1)
            top = np.sort(hist)[-k:].mean()
            if top > skew_threshold * mean:
                out.append(base)
        return out

    def split(self, base_vpn: int) -> list[int]:
        """Split a huge region into its base VPNs (returned hot-first
        when a histogram exists)."""
        region = self.regions.pop(base_vpn, None)
        if region is None:
            raise KeyError(f"vpn {base_vpn} is not a huge-region base")
        self.splits += 1
        vpns = np.arange(region.start_vpn, region.end_vpn, dtype=np.int64)
        if region.subpage_hist is not None:
            order = np.argsort(region.subpage_hist)[::-1]
            vpns = vpns[order]
        return vpns.tolist()

    def tlb_reach_pages(self, tlb_entries: int) -> int:
        """Effective TLB reach in base pages given huge coverage.

        Each huge-mapped entry covers 512 base pages; this is the Memtis
        rationale for keeping THP on despite split-on-promotion.
        """
        huge_entries = min(len(self.regions), tlb_entries)
        base_entries = tlb_entries - huge_entries
        return huge_entries * BASE_PAGES_PER_HUGE_PAGE + base_entries
