"""TLB shootdown scope computation.

A page migration must guarantee no core keeps a stale translation.  The
conservative kernel behaviour IPIs every core running *any* thread of
the process.  Vulcan's per-thread tables shrink the target set to the
cores running threads that can actually cache the entry (paper insight
#3): the PTE owner for private pages, the leaf-linked threads for shared
pages.

This module turns a page's ownership state plus the core scheduling map
into the concrete list of cores to IPI, and performs the invalidation on
the structural TLBs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import CpuComplex
from repro.mm.replication import ReplicatedPageTables
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer


@dataclass(frozen=True)
class ShootdownScope:
    """Resolved shootdown target set for one page (or batch)."""

    vpn: int
    target_core_ids: tuple[int, ...]
    sharing_tids: tuple[int, ...]
    process_wide: bool

    @property
    def n_targets(self) -> int:
        return len(self.target_core_ids)


def compute_scope(
    repl: ReplicatedPageTables,
    cpu: CpuComplex,
    vpn: int,
    *,
    thread_core_map: dict[int, int] | None = None,
    initiator_core: int | None = None,
) -> ShootdownScope:
    """Compute the core set that must receive an invalidation IPI.

    Parameters
    ----------
    repl:
        The process's (possibly replicated) page tables.
    cpu:
        The core complex (for the thread→core schedule).
    vpn:
        The page being remapped.
    thread_core_map:
        Optional explicit local-tid→core pinning (the harness pins 8
        threads per app).  When absent, the live schedule on ``cpu`` is
        consulted; core.thread_id must then hold *local* tids.
    initiator_core:
        The core driving the migration; it flushes its own TLB locally
        and is excluded from the IPI list, as in the kernel.
    """
    tids = repl.sharing_tids(vpn)
    if thread_core_map is not None:
        cores = sorted({thread_core_map[t] for t in tids if t in thread_core_map})
    else:
        cores = sorted({c.core_id for c in cpu.cores_running(tids)})
    if initiator_core is not None and initiator_core in cores:
        cores.remove(initiator_core)
    return ShootdownScope(
        vpn=vpn,
        target_core_ids=tuple(cores),
        sharing_tids=tuple(sorted(tids)),
        process_wide=not repl.enabled,
    )


def execute_shootdown(cpu: CpuComplex, scope: ShootdownScope, *, initiator_core: int | None = None) -> int:
    """Deliver the IPIs and invalidate the structural TLB entries.

    Returns the cycle cost charged to the initiator (IPI machinery only;
    phase-level costs come from :mod:`repro.mm.migration_costs`).
    """
    cost = cpu.deliver_ipis(list(scope.target_core_ids))
    for core_id in scope.target_core_ids:
        cpu.core(core_id).tlb.invalidate(scope.vpn)
    if initiator_core is not None:
        cpu.core(initiator_core).tlb.invalidate(scope.vpn)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(
            EventKind.TLB_SHOOTDOWN,
            "shootdown",
            args={
                "vpn": scope.vpn,
                "n_targets": scope.n_targets,
                "process_wide": scope.process_wide,
                "ipi_cycles": cost,
            },
        )
        tracer.metrics.histogram("shootdown_scope_cores").observe(scope.n_targets)
        tracer.metrics.counter(
            "shootdowns", scope="process_wide" if scope.process_wide else "scoped"
        ).inc()
    return cost
