"""Nomad-style page shadowing (paper §3.5, borrowed from Nomad).

When a page is promoted to the fast tier, its slow-tier copy is retained
as a *shadow* instead of being freed.  If the page later needs demotion
and has not been dirtied since promotion, demotion degenerates to a
remap — no copy at all.  A write to the promoted page invalidates the
shadow (the copies diverged).

Shadows consume slow-tier frames, so the tracker supports reclaim when
the slow tier runs short.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ShadowStats:
    retained: int = 0
    invalidated_by_write: int = 0
    remap_demotions: int = 0
    reclaimed: int = 0
    poisoned: int = 0


@dataclass
class ShadowTracker:
    """Tracks fast-tier pages that still have a clean slow-tier twin."""

    enabled: bool = True
    #: fast pfn -> retained slow pfn
    _shadows: dict[int, int] = field(default_factory=dict)
    #: shadows invalidated by writes but whose frame is not yet freed;
    #: the owner (allocator-side caller) reclaims these lazily.
    _stale: set[int] = field(default_factory=set)
    stats: ShadowStats = field(default_factory=ShadowStats)

    def __len__(self) -> int:
        return len(self._shadows)

    def retain(self, fast_pfn: int, shadow_pfn: int) -> None:
        """Record that ``fast_pfn``'s old slow-tier frame lives on."""
        if not self.enabled:
            raise RuntimeError("shadowing disabled")
        if fast_pfn in self._shadows:
            raise ValueError(f"fast pfn {fast_pfn} already shadowed")
        self._shadows[fast_pfn] = shadow_pfn
        self.stats.retained += 1

    def shadow_of(self, fast_pfn: int) -> int | None:
        return self._shadows.get(fast_pfn)

    def shadowed_mask(self, fast_pfns: np.ndarray) -> np.ndarray:
        """Vectorized ``shadow_of(pfn) is not None`` over an array."""
        if not self._shadows:
            return np.zeros(fast_pfns.size, dtype=bool)
        keys = np.fromiter(self._shadows, dtype=np.int64, count=len(self._shadows))
        return np.isin(fast_pfns, keys)

    def on_write(self, fast_pfn: int) -> int | None:
        """A write diverged the copies; drop the shadow.

        Returns the now-stale slow pfn (for the caller to free) or None.
        """
        shadow_pfn = self._shadows.pop(fast_pfn, None)
        if shadow_pfn is not None:
            self._stale.add(shadow_pfn)
            self.stats.invalidated_by_write += 1
        return shadow_pfn

    def can_remap_demote(self, fast_pfn: int, *, dirty: bool) -> bool:
        """True when demotion can skip the copy: shadow exists and the
        fast copy is clean."""
        if not self.enabled:
            return False
        if dirty:
            # A dirty PTE means the shadow silently diverged; invalidate.
            self.on_write(fast_pfn)
            return False
        return fast_pfn in self._shadows

    def consume(self, fast_pfn: int) -> int:
        """Use the shadow as the demotion destination (remap-demote)."""
        shadow_pfn = self._shadows.pop(fast_pfn)
        self.stats.remap_demotions += 1
        return shadow_pfn

    def poison(self, fast_pfn: int) -> int | None:
        """Fault injection: the retained slow-tier copy is corrupt.

        Unlike :meth:`on_write` the frame is handed straight back to the
        caller (not parked in the stale set) — a poisoned copy must be
        discarded immediately, and the demotion that wanted it falls
        back to a full copy.  Returns the poisoned slow pfn or ``None``.
        """
        shadow_pfn = self._shadows.pop(fast_pfn, None)
        if shadow_pfn is not None:
            self.stats.poisoned += 1
        return shadow_pfn

    def drain_stale(self) -> list[int]:
        """Hand back stale shadow frames for freeing."""
        out = list(self._stale)
        self._stale.clear()
        self.stats.reclaimed += len(out)
        return out

    def reclaim_all(self) -> list[int]:
        """Emergency: drop every shadow (slow tier under pressure)."""
        out = list(self._shadows.values()) + list(self._stale)
        self.stats.reclaimed += len(out)
        self._shadows.clear()
        self._stale.clear()
        return out
