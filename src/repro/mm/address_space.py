"""Processes, VMAs and demand paging.

A :class:`Process` owns a replicated page-table set, a VMA list, and its
thread registry.  :class:`AddressSpace` binds a process to the frame
allocator and implements the fault path:

* first touch by thread *t* → allocate a frame (fast tier with fallback
  to slow, Linux-style), install a PTE owned by *t*;
* touch by a second thread → private→shared promotion in the PTE
  ownership bits (see :mod:`repro.mm.replication`).

Two access paths are provided.  ``touch()`` is the fully structural
per-access path used by the microbenchmarks (it exercises TLBs and page
tables).  ``record_batch()`` is the vectorized path used by the
epoch-driven co-location simulator: it updates frame access counters for
whole numpy batches at once and leaves TLB effects to the statistical
model, as DESIGN.md §4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.mm import pte as pte_mod
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.page import PhysPage
from repro.mm.replication import ReplicatedPageTables


@dataclass
class Vma:
    """One contiguous virtual mapping."""

    start_vpn: int
    n_pages: int
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.n_pages <= 0:
            raise ValueError("VMA must span at least one page")

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.n_pages

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    def vpns(self) -> np.ndarray:
        """All VPNs of the region as an array (for vectorized sampling)."""
        return np.arange(self.start_vpn, self.end_vpn, dtype=np.int64)


@dataclass
class Process:
    """A workload process: threads + VMAs + replicated page tables."""

    pid: int
    name: str = ""
    replication_enabled: bool = True
    repl: ReplicatedPageTables = field(init=False)
    vmas: list[Vma] = field(default_factory=list)
    _next_vpn: int = 0x1000  # skip low VAs, purely cosmetic

    def __post_init__(self) -> None:
        self.repl = ReplicatedPageTables(enabled=self.replication_enabled)

    @property
    def tids(self) -> set[int]:
        return self.repl.tids

    def spawn_thread(self, tid: int) -> None:
        self.repl.register_thread(tid)

    def mmap(self, n_pages: int, name: str = "anon") -> Vma:
        """Reserve a contiguous virtual region (no frames yet)."""
        vma = Vma(start_vpn=self._next_vpn, n_pages=n_pages, name=name)
        self.vmas.append(vma)
        # Guard gap between VMAs so off-by-one bugs fault loudly.
        self._next_vpn = vma.end_vpn + 16
        return vma

    def vma_for(self, vpn: int) -> Vma | None:
        for vma in self.vmas:
            if vma.contains(vpn):
                return vma
        return None

    @property
    def rss_pages(self) -> int:
        """Resident set size in pages (frames actually faulted in)."""
        return self.repl.process_table.mapped_count


class AddressSpace:
    """Binds a process to physical memory; implements demand paging."""

    def __init__(self, process: Process, allocator: FrameAllocator) -> None:
        self.process = process
        self.allocator = allocator
        self.minor_faults = 0
        self.major_faults = 0
        #: grow-only all-False span scratch reused by record_plan — the
        #: per-segment unique pass borrows it and returns it all-False
        self._span_scratch = np.zeros(0, dtype=bool)

    # -- structural access path (microbenchmarks) -------------------------

    def translate(self, vpn: int) -> int | None:
        """VPN → PFN through the page tables, or None if unmapped."""
        value = self.process.repl.lookup(vpn)
        if value is None or not pte_mod.pte_is_present(value):
            return None
        return pte_mod.pte_pfn(value)

    def fault(self, vpn: int, tid: int, *, prefer_tier: int = 0) -> PhysPage:
        """Demand-fault ``vpn`` in for thread ``tid``.

        Frames come from ``prefer_tier`` with fallback to the other tier
        when exhausted (the kernel's node-ordered fallback).
        """
        if self.process.vma_for(vpn) is None:
            raise KeyError(f"segfault: vpn {vpn} outside every VMA of pid {self.process.pid}")
        if self.process.repl.lookup(vpn) is not None:
            raise ValueError(f"vpn {vpn} already mapped")
        page = self.allocator.allocate(prefer_tier, fallback=True)
        page.attach(self.process.pid, vpn)
        self.process.repl.handle_fault(vpn, tid, page.pfn)
        self.major_faults += 1
        return page

    def touch(self, vpn: int, tid: int, *, is_write: bool = False, cycle: int = 0) -> PhysPage:
        """One structural access: fault if needed, track sharing, count.

        Returns the frame accessed.
        """
        pfn = self.translate(vpn)
        if pfn is None:
            page = self.fault(vpn, tid)
        else:
            page = self.allocator.page(pfn)
            if self.process.repl.note_access(vpn, tid):
                self.minor_faults += 1
        page.record_access(is_write, tid=tid, cycle=cycle)
        return page

    # -- vectorized access path (epoch simulator) ---------------------------

    def populate(self, vma: Vma, tid: int, *, prefer_tier: int = 0) -> int:
        """Fault in an entire VMA for ``tid``; returns pages mapped."""
        mapped = 0
        for vpn in range(vma.start_vpn, vma.end_vpn):
            if self.process.repl.lookup(vpn) is None:
                self.fault(vpn, tid, prefer_tier=prefer_tier)
                mapped += 1
        return mapped

    def record_batch(self, vpns: np.ndarray, is_write: np.ndarray, tid: int, cycle: int = 0) -> tuple[int, int]:
        """Account a batch of accesses against frame counters.

        Pages must already be mapped (the harness populates VMAs up
        front, matching the paper's warmed-up workloads).  Returns
        ``(fast_accesses, slow_accesses)`` for FTHR sampling.

        The loop is over *unique* pages (bincount-compressed), not raw
        accesses, so a 50k-access epoch over a few thousand pages costs a
        few thousand dict hits.
        """
        if vpns.shape != is_write.shape:
            raise ValueError("vpns and is_write must have identical shape")
        if vpns.size == 0:
            return (0, 0)
        uniq, inverse = np.unique(vpns, return_inverse=True)
        writes_per = np.bincount(inverse, weights=is_write.astype(np.float64)).astype(np.int64)
        total_per = np.bincount(inverse)
        repl = self.process.repl
        flat = repl.flat
        # Translate the whole batch through the flat PTE mirror.
        idx = uniq - flat.base
        oob = (idx < 0) | (idx >= flat.pfn.size)
        if oob.any():
            bad = int(uniq[oob][0])
            raise KeyError(f"vpn {bad} not mapped; populate() the VMA first")
        pfns = flat.pfn[idx]
        missing = pfns < 0
        if missing.any():
            bad = int(uniq[missing][0])
            raise KeyError(f"vpn {bad} not mapped; populate() the VMA first")
        # Sharing transitions / leaf links (rare after warm-up).
        self.minor_faults += repl.bulk_note_access(uniq, tid)
        # Frame counters in one vectorized pass (pfns are unique: the
        # simulator maps private anonymous memory, one frame per vpn).
        reads_per = total_per - writes_per
        self.allocator.store.record_batch(pfns, reads_per, writes_per, tid, cycle)
        in_fast = pfns < self.allocator.store.fast_frames
        fast = int(total_per[in_fast].sum())
        slow = int(total_per.sum()) - fast
        return (fast, slow)

    def record_plan(self, plan, cycle: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Fused :meth:`record_batch` over a whole :class:`EpochPlan`.

        One translation gather, one pair of bincounts, and one frame-
        counter update cover the epoch; only the order-sensitive parts
        (sharing transitions and tid-bit ORs, both per-thread) walk the
        segments.  Returns per-segment ``(fast, slow)`` access-count
        arrays — the same values the legacy loop returned batch by
        batch (recovered from per-access tier membership via prefix
        sums over the segment offsets).
        """
        offsets = plan.offsets
        total_seg = np.diff(offsets)
        if plan.n == 0:
            return np.zeros(total_seg.size, dtype=np.int64), total_seg
        vpns = plan.vpns
        repl = self.process.repl
        flat = repl.flat
        store = self.allocator.store
        lo = int(vpns.min())
        hi = int(vpns.max())
        if lo < flat.base or hi >= flat.base + flat.pfn.size:
            idx_all = vpns - flat.base
            oob = (idx_all < 0) | (idx_all >= flat.pfn.size)
            bad = int(vpns[oob].min())
            raise KeyError(f"vpn {bad} not mapped; populate() the VMA first")
        pfn_all = flat.pfn[vpns - flat.base]
        if pfn_all.min() < 0:
            bad = int(vpns[pfn_all < 0].min())
            raise KeyError(f"vpn {bad} not mapped; populate() the VMA first")

        span = hi - lo + 1
        off_all = vpns - lo
        total_counts, write_counts, pfn_span, fast_seg = kernels.plan_span_stats(
            off_all, plan.is_write, pfn_all, store.fast_frames, offsets, span
        )
        occ = np.flatnonzero(total_counts)

        # Sharing transitions + tid bitmasks must run per thread, in
        # segment order (a transition by tid 0 changes what tid 1 sees);
        # the per-segment sorted-unique offsets are precomputed in one
        # kernel pass over the reusable span scratch.
        if self._span_scratch.size < span:
            self._span_scratch = np.zeros(span, dtype=bool)
        ucat, bounds = kernels.plan_segment_unique(
            off_all, offsets, self._span_scratch[:span]
        )
        minor = 0
        for k in range(total_seg.size):
            s, e = int(bounds[k]), int(bounds[k + 1])
            if s == e:
                continue
            uoff = ucat[s:e]
            tid = int(plan.tids[k])
            minor += repl.bulk_note_access(uoff + lo, tid)
            store.or_tid_bit(pfn_span[uoff], tid)
        self.minor_faults += minor

        store.record_epoch_rows(
            pfn_span[occ],
            total_counts[occ] - write_counts[occ],
            write_counts[occ],
            cycle,
        )
        return fast_seg, total_seg - fast_seg
