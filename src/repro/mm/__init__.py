"""OS memory-management substrate.

Implements the structures Vulcan modifies in the real kernel: 64-bit
PTEs (with the paper's thread-ownership bits 52-58), a 4-level radix
page table, per-thread page-table replication with shared leaf tables,
per-tier frame allocation with watermarks, per-CPU LRU pagevecs (the
``lru_add_drain_all()`` cost source), the five-phase migration engine
with sync/async/transactional variants, transparent huge pages, and
Nomad-style page shadowing.
"""

from repro.mm.address_space import AddressSpace, Process, Vma
from repro.mm.frame_alloc import FrameAllocator, OutOfFramesError, TierFrames
from repro.mm.lru import LruSubsystem, PerCpuPagevec
from repro.mm.migration import (
    MigrationEngine,
    MigrationOutcome,
    MigrationPhase,
    MigrationRequest,
    MigrationStats,
    OptimizationFlags,
)
from repro.mm.migration_costs import MigrationCostModel, SinglePageBreakdown
from repro.mm.page import PageState, PhysPage
from repro.mm.page_table import PageTable, PageTableNode
from repro.mm.pte import (
    PTE_SHARED_TID,
    Pte,
    pte_clear_flag,
    pte_make,
    pte_set_flag,
)
from repro.mm.replication import ReplicatedPageTables
from repro.mm.shadow import ShadowTracker
from repro.mm.thp import HugePageManager
from repro.mm.tlb_coherence import ShootdownScope, compute_scope

__all__ = [
    "AddressSpace",
    "Process",
    "Vma",
    "FrameAllocator",
    "TierFrames",
    "OutOfFramesError",
    "LruSubsystem",
    "PerCpuPagevec",
    "MigrationEngine",
    "MigrationOutcome",
    "MigrationPhase",
    "MigrationRequest",
    "MigrationStats",
    "OptimizationFlags",
    "MigrationCostModel",
    "SinglePageBreakdown",
    "PhysPage",
    "PageState",
    "PageTable",
    "PageTableNode",
    "Pte",
    "pte_make",
    "pte_set_flag",
    "pte_clear_flag",
    "PTE_SHARED_TID",
    "ReplicatedPageTables",
    "ShadowTracker",
    "HugePageManager",
    "ShootdownScope",
    "compute_scope",
]
