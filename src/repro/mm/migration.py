"""The five-phase page migration engine.

Paper §2.1 decomposes migration into: ① kernel trapping, ② PTE locking
and unmapping, ③ TLB shootdown via IPIs, ④ content copy between tiers,
⑤ PTE remapping.  This engine executes those phases against the
*structural* substrate (page tables, TLBs, allocator, LRU) while cycle
costs come from the calibrated :class:`MigrationCostModel`, so both the
mechanism's behaviour and its price are observable.

Three copy disciplines are implemented:

* **sync** — the classic blocking path (TPP promotion): application
  threads accessing the page stall for the whole operation.
* **async** — kswapd-style background migration (Memtis): off the
  critical path, but the page is unmapped during copy, so concurrent
  accesses fault-stall for the tail of the copy.
* **transactional** — Nomad/Vulcan: the page *stays mapped* during the
  copy; a write during the copy window dirties the destination stale and
  the transaction retries, up to a bound, then falls back to sync.  This
  is what makes async copying lose on write-intensive pages (paper
  Observation #4 / Fig. 4).

Vulcan's two mechanism optimizations are flags:

* ``opt_prep`` — scoped (per-application) LRU drain instead of
  ``lru_add_drain_all()``;
* ``opt_tlb`` — per-thread page-table shootdown scoping via
  :func:`repro.mm.tlb_coherence.compute_scope`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.machine.platform import Machine
from repro.mm import pte as pte_mod
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator, OutOfFramesError
from repro.mm.lru import LruSubsystem
from repro.mm.migration_costs import MigrationCostModel
from repro.mm.page import PageState
from repro.mm.shadow import ShadowTracker
from repro.mm.tlb_coherence import compute_scope, execute_shootdown
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer


class MigrationPhase(enum.Enum):
    """The five phases of §2.1's migration mechanism, plus the batch-level
    preparation (LRU drain + isolation) that precedes them."""

    PREP = "prep"
    TRAP = "trap"
    UNMAP = "unmap"
    SHOOTDOWN = "shootdown"
    COPY = "copy"
    REMAP = "remap"


class MigrationOutcome(enum.Enum):
    SUCCESS = "success"
    RETRIED = "retried"  # transactional copy restarted at least once
    FELL_BACK_SYNC = "fell_back_sync"  # transactional gave up, went sync
    FAILED = "failed"  # no destination frame, or an injected fault


class FaultKind(enum.Enum):
    """Typed injected-fault outcomes (scenario fault model).

    Each names the way a migration dies and what the engine must absorb
    without corrupting page state:

    * ``ABORTED_SYNC`` — a blocking migration aborts mid-copy (page
      pinned / refcount raced): the work up to the abort is wasted stall,
      the PTE is restored at the source, the destination frame freed.
    * ``LOST_ASYNC`` — a background (transactional) work item is dropped
      before commit: a full copy's worth of cycles wasted off the
      critical path, source stays mapped, destination freed.
    * ``POISONED_SHADOW`` — a retained slow-tier twin is found corrupt
      exactly when a remap-demotion wants it: the shadow is discarded
      and the demotion falls back to a full copy.
    """

    ABORTED_SYNC = "aborted_sync"
    LOST_ASYNC = "lost_async"
    POISONED_SHADOW = "poisoned_shadow"


@dataclass
class MigrationRequest:
    """One page to move."""

    pid: int
    vpn: int
    dest_tier: int
    sync: bool = True
    #: Expected write fraction, used by the transactional engine to
    #: simulate dirty-during-copy probability.
    write_fraction: float = 0.0
    #: Concurrent access rate to this page (accesses per 1K cycles),
    #: driving the dirty-probability model during async copy windows.
    access_rate_per_kcycle: float = 0.0


@dataclass
class MigrationStats:
    """Aggregate accounting for one engine."""

    migrations: int = 0
    pages_moved: int = 0
    promotions: int = 0
    demotions: int = 0
    retries: int = 0
    sync_fallbacks: int = 0
    failures: int = 0
    shadow_remaps: int = 0
    #: injected faults absorbed, keyed by FaultKind value
    faults_injected: dict[str, int] = field(default_factory=dict)
    total_cycles: float = 0.0
    stall_cycles: float = 0.0  # cycles application threads were blocked
    phase_cycles: dict[str, float] = field(
        default_factory=lambda: {p.value: 0.0 for p in MigrationPhase}
    )

    def charge(self, phase: MigrationPhase, cycles: float) -> None:
        self.phase_cycles[phase.value] += cycles
        self.total_cycles += cycles


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of Vulcan's mechanism optimizations are active."""

    opt_prep: bool = False
    opt_tlb: bool = False
    #: CPUs whose pagevecs a scoped drain covers (the app's cores).
    prep_scope_cpus: int = 2
    #: Retry bound before a transactional copy falls back to sync.
    async_retry_limit: int = 3


#: Cost of the kernel trap / syscall entry for a migration call.
TRAP_CYCLES = 600.0


class MigrationEngine:
    """Executes migrations for one process against shared hardware."""

    def __init__(
        self,
        machine: Machine,
        allocator: FrameAllocator,
        space: AddressSpace,
        lru: LruSubsystem,
        *,
        cost_model: MigrationCostModel | None = None,
        flags: OptimizationFlags | None = None,
        thread_core_map: dict[int, int] | None = None,
        shadow: ShadowTracker | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.machine = machine
        self.allocator = allocator
        self.space = space
        self.lru = lru
        self.costs = cost_model if cost_model is not None else MigrationCostModel()
        self.flags = flags if flags is not None else OptimizationFlags()
        self.thread_core_map = thread_core_map
        self.shadow = shadow
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = MigrationStats()
        self._tracer = get_tracer()
        #: scenario-attached fault source; any object with
        #: ``roll(kind: FaultKind, pid: int, vpn: int) -> bool``.  None
        #: (the default) means the fault paths are completely inert —
        #: no RNG draws happen, so fault-free runs are bit-identical to
        #: runs of builds without fault injection.
        self.fault_injector = None

    # -- phase helpers -------------------------------------------------------

    def _charge(self, phase: MigrationPhase, cycles: float) -> None:
        """Charge a phase cost and, when tracing, emit it as an event.

        The tracer's cycle clock advances by the charge so phase events
        and spans nest on the deterministic simulated timeline.
        """
        self.stats.charge(phase, cycles)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.MIGRATION_PHASE,
                phase.value,
                pid=self.space.process.pid,
                dur=cycles,
                args={"phase": phase.value, "cycles": cycles},
            )
            tracer.advance(cycles)
            tracer.metrics.counter(
                "migration_phase_cycles", workload=self.space.process.pid, phase=phase.value
            ).inc(cycles)

    def _prepare(self, n_pages: int) -> float:
        """Phase 0: LRU drain + isolation (the Fig. 2 'preparation')."""
        if self.flags.opt_prep:
            scope = list(range(min(self.flags.prep_scope_cpus, self.machine.cpu.n_cores)))
            self.lru.drain(scope)
            return self.costs.prep_opt_cycles(self.flags.prep_scope_cpus)
        self.lru.drain(None)
        return self.costs.prep_cycles(self.machine.cpu.n_cores)

    def _shootdown(self, vpn: int) -> tuple[float, int]:
        """Phase ③: resolve scope, deliver IPIs, invalidate TLBs.

        Returns ``(model_cycles, n_target_cpus)``.  The structural IPI
        cost is folded into the model cost (the model is calibrated to
        end-to-end measurements that already include it).
        """
        repl = self.space.process.repl
        if self.flags.opt_tlb and repl.enabled:
            scope = compute_scope(
                repl, self.machine.cpu, vpn, thread_core_map=self.thread_core_map
            )
        else:
            # Process-wide: every thread of the process is a target.
            tids = repl.tids if repl.tids else set()
            if self.thread_core_map is not None:
                cores = tuple(sorted({self.thread_core_map[t] for t in tids if t in self.thread_core_map}))
            else:
                cores = tuple(sorted({c.core_id for c in self.machine.cpu.cores_running(tids)}))
            from repro.mm.tlb_coherence import ShootdownScope

            scope = ShootdownScope(vpn=vpn, target_core_ids=cores, sharing_tids=tuple(sorted(tids)), process_wide=True)
        execute_shootdown(self.machine.cpu, scope)
        n_targets = max(scope.n_targets, 1)
        return (self.costs.batch_tlb_cycles(1, n_targets), n_targets)

    def _alloc_dest(self, dest_tier: int) -> "PhysPage | None":  # noqa: F821
        try:
            return self.allocator.allocate(dest_tier, fallback=False)
        except OutOfFramesError:
            return None

    # -- public API -----------------------------------------------------------

    def migrate(self, request: MigrationRequest) -> MigrationOutcome:
        """Migrate a single page through the five phases."""
        outcomes = self.migrate_batch([request])
        return outcomes[0]

    def migrate_batch(self, requests: list[MigrationRequest]) -> list[MigrationOutcome]:
        """Migrate a batch; preparation is paid once per call, as in
        ``migrate_pages()``."""
        if not requests:
            return []
        with self._tracer.span(
            "migrate_batch", pid=self.space.process.pid, pages=len(requests)
        ):
            self._charge(MigrationPhase.TRAP, TRAP_CYCLES)
            self._charge(MigrationPhase.PREP, self._prepare(len(requests)))

            outcomes: list[MigrationOutcome] = []
            for req in requests:
                outcomes.append(self._migrate_one(req))
            self.stats.migrations += 1
        return outcomes

    def _migrate_one(self, req: MigrationRequest) -> MigrationOutcome:
        repl = self.space.process.repl
        value = repl.lookup(req.vpn)
        if value is None:
            self.stats.failures += 1
            return MigrationOutcome.FAILED
        src_pfn = pte_mod.pte_pfn(value)
        src_page = self.allocator.page(src_pfn)
        if src_page.tier_id == req.dest_tier:
            return MigrationOutcome.SUCCESS  # already there

        # Shadow fast-path on demotion: a clean page that still has its
        # slow-tier shadow can be "demoted" by a remap alone (§3.5).
        if (
            self.shadow is not None
            and req.dest_tier == 1
            and self.shadow.can_remap_demote(src_pfn, dirty=pte_mod.pte_is_dirty(value))
        ):
            if self._roll_fault(FaultKind.POISONED_SHADOW, req):
                # The retained copy is corrupt: discard it and fall
                # through to a full-copy demotion.
                stale = self.shadow.poison(src_pfn)
                if stale is not None:
                    self.allocator.free(stale)
            else:
                return self._demote_via_shadow(req, value, src_pfn)

        dest_page = self._alloc_dest(req.dest_tier)
        if dest_page is None:
            self.stats.failures += 1
            return MigrationOutcome.FAILED

        if req.sync and self._roll_fault(FaultKind.ABORTED_SYNC, req):
            return self._abort_sync(req, dest_page.pfn)
        if not req.sync and self._roll_fault(FaultKind.LOST_ASYNC, req):
            return self._lose_async(req, src_pfn, dest_page.pfn)

        if req.sync:
            outcome = self._copy_sync(req, value, src_pfn, dest_page.pfn)
        else:
            outcome = self._copy_transactional(req, value, src_pfn, dest_page.pfn)

        if outcome in (MigrationOutcome.SUCCESS, MigrationOutcome.RETRIED, MigrationOutcome.FELL_BACK_SYNC):
            self._finalize_move(req, src_pfn, dest_page.pfn)
        else:
            self.allocator.free(dest_page.pfn)
        return outcome

    # -- copy disciplines -------------------------------------------------------

    def _copy_sync(self, req: MigrationRequest, value: int, src_pfn: int, dest_pfn: int) -> MigrationOutcome:
        """Blocking copy: unmap → shootdown → copy → remap; the app stalls."""
        self._charge(MigrationPhase.UNMAP, self.costs.batch_fixed_cycles(1) * 0.55)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge(MigrationPhase.SHOOTDOWN, tlb_cycles)
        copy_cycles = self.costs.batch_copy_cycles(1)
        self._charge(MigrationPhase.COPY, copy_cycles)
        self._charge(MigrationPhase.REMAP, self.costs.batch_fixed_cycles(1) * 0.45)
        # Everything after unmap is a stall for threads touching the page.
        self.stats.stall_cycles += tlb_cycles + copy_cycles
        return MigrationOutcome.SUCCESS

    def _copy_transactional(self, req: MigrationRequest, value: int, src_pfn: int, dest_pfn: int) -> MigrationOutcome:
        """Nomad-style transactional copy: page stays mapped during copy;
        a concurrent write aborts and retries the transaction."""
        src_page = self.allocator.page(src_pfn)
        src_page.state = PageState.MIGRATING
        copy_cycles = self.costs.batch_copy_cycles(1)
        retries = 0
        outcome = MigrationOutcome.SUCCESS
        while True:
            src_page.dirty_since_copy = False
            self._charge(MigrationPhase.COPY, copy_cycles)
            # Probability the page is written during this copy window.
            dirtied = self._dirtied_during(copy_cycles, req)
            if not dirtied and not src_page.dirty_since_copy:
                break
            retries += 1
            self.stats.retries += 1
            if retries > self.flags.async_retry_limit:
                # Give up: take the write-blocking sync path.
                self.stats.sync_fallbacks += 1
                self._copy_sync(req, value, src_pfn, dest_pfn)
                src_page.state = PageState.MAPPED
                return MigrationOutcome.FELL_BACK_SYNC
            outcome = MigrationOutcome.RETRIED
        # Commit: brief write-protect window, scoped shootdown, remap.
        self._charge(MigrationPhase.UNMAP, self.costs.batch_fixed_cycles(1) * 0.55)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge(MigrationPhase.SHOOTDOWN, tlb_cycles)
        self._charge(MigrationPhase.REMAP, self.costs.batch_fixed_cycles(1) * 0.45)
        # Only the commit window stalls the app.
        self.stats.stall_cycles += tlb_cycles
        src_page.state = PageState.MAPPED
        return outcome

    def _dirtied_during(self, window_cycles: float, req: MigrationRequest) -> bool:
        """Bernoulli draw: was the page written inside the copy window?

        Writes arrive at ``rate * write_fraction`` per kilocycle; the
        window survives clean with probability ``exp(-λ·w·window)``.
        """
        lam = req.access_rate_per_kcycle * req.write_fraction / 1_000.0
        if lam <= 0.0:
            return False
        p_dirty = 1.0 - float(np.exp(-lam * window_cycles))
        return bool(self.rng.random() < p_dirty)

    # -- injected faults ---------------------------------------------------------

    def _roll_fault(self, kind: FaultKind, req: MigrationRequest) -> bool:
        """Ask the attached injector whether this migration faults.

        With no injector attached this is a pure branch — no RNG state
        is consumed, preserving bit-identical fault-free runs.
        """
        inj = self.fault_injector
        if inj is None or not inj.roll(kind, pid=req.pid, vpn=req.vpn):
            return False
        self.stats.faults_injected[kind.value] = (
            self.stats.faults_injected.get(kind.value, 0) + 1
        )
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.FAULT_INJECTED,
                kind.value,
                pid=req.pid,
                args={"kind": kind.value, "vpn": req.vpn, "dest_tier": req.dest_tier},
            )
        tracer.metrics.counter("faults_injected", workload=req.pid, kind=kind.value).inc()
        return True

    def _abort_sync(self, req: MigrationRequest, dest_pfn: int) -> MigrationOutcome:
        """A blocking migration dies mid-copy and unwinds.

        The page was already unmapped and shot down, and roughly half
        the copy ran before the abort — all of it stall — then the PTE
        is restored at the source.  The source frame never changed
        state, so restoring is remap cost only; page state is intact.
        """
        self._charge(MigrationPhase.UNMAP, self.costs.batch_fixed_cycles(1) * 0.55)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge(MigrationPhase.SHOOTDOWN, tlb_cycles)
        wasted_copy = self.costs.batch_copy_cycles(1) * 0.5
        self._charge(MigrationPhase.COPY, wasted_copy)
        self._charge(MigrationPhase.REMAP, self.costs.batch_fixed_cycles(1) * 0.45)
        self.stats.stall_cycles += tlb_cycles + wasted_copy
        self.allocator.free(dest_pfn)
        self.stats.failures += 1
        return MigrationOutcome.FAILED

    def _lose_async(self, req: MigrationRequest, src_pfn: int, dest_pfn: int) -> MigrationOutcome:
        """A transactional work item is dropped before commit.

        The copy ran in the background (full copy cycles wasted, no
        stall — the page stayed mapped the whole time) but the commit
        never happened: the destination is freed and the source simply
        remains the live mapping.
        """
        src_page = self.allocator.page(src_pfn)
        src_page.state = PageState.MIGRATING
        self._charge(MigrationPhase.COPY, self.costs.batch_copy_cycles(1))
        src_page.state = PageState.MAPPED
        self.allocator.free(dest_pfn)
        self.stats.failures += 1
        return MigrationOutcome.FAILED

    # -- shadow demotion ---------------------------------------------------------

    def _demote_via_shadow(self, req: MigrationRequest, value: int, src_pfn: int) -> MigrationOutcome:
        """Demotion by remapping to the retained slow-tier shadow copy."""
        assert self.shadow is not None
        shadow_pfn = self.shadow.shadow_of(src_pfn)
        assert shadow_pfn is not None
        self._charge(MigrationPhase.UNMAP, self.costs.batch_fixed_cycles(1) * 0.55)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge(MigrationPhase.SHOOTDOWN, tlb_cycles)
        self._charge(MigrationPhase.REMAP, self.costs.batch_fixed_cycles(1) * 0.45)
        self.stats.stall_cycles += tlb_cycles

        repl = self.space.process.repl
        repl.update(req.vpn, pte_mod.pte_clear_flag(pte_mod.pte_with_pfn(value, shadow_pfn), pte_mod.PTE_SHADOW))
        shadow_page = self.allocator.page(shadow_pfn)
        shadow_page.attach(req.pid, req.vpn)
        shadow_page.heat = self.allocator.page(src_pfn).heat
        self.shadow.consume(src_pfn)
        if src_pfn in self.lru.lists[0]:
            self.lru.lists[0].remove(src_pfn)
        if shadow_pfn not in self.lru.lists[1]:
            self.lru.lists[1].insert(shadow_pfn)
        self.allocator.free(src_pfn)
        self.stats.demotions += 1
        self.stats.pages_moved += 1
        self.stats.shadow_remaps += 1
        return MigrationOutcome.SUCCESS

    # -- commit -----------------------------------------------------------------

    def _finalize_move(self, req: MigrationRequest, src_pfn: int, dest_pfn: int) -> None:
        """Repoint the PTE, move metadata, release or shadow the source."""
        repl = self.space.process.repl
        value = repl.lookup(req.vpn)
        assert value is not None
        src_page = self.allocator.page(src_pfn)
        dest_page = self.allocator.page(dest_pfn)

        keep_shadow = (
            self.shadow is not None
            and req.dest_tier == 0  # promotion
            and src_page.tier_id == 1
        )

        new_value = pte_mod.pte_with_pfn(value, dest_pfn)
        new_value = pte_mod.pte_clear_flag(new_value, pte_mod.PTE_DIRTY)
        if keep_shadow:
            new_value = pte_mod.pte_set_flag(new_value, pte_mod.PTE_SHADOW)
        repl.update(req.vpn, new_value)

        dest_page.attach(req.pid, req.vpn)
        dest_page.heat = src_page.heat
        dest_page.reads = src_page.reads
        dest_page.writes = src_page.writes
        dest_page.epoch_reads = src_page.epoch_reads
        dest_page.epoch_writes = src_page.epoch_writes
        dest_page.accessing_tids = set(src_page.accessing_tids)

        # LRU relink.
        if src_pfn in self.lru.lists[src_page.tier_id]:
            self.lru.lists[src_page.tier_id].remove(src_pfn)
        if dest_pfn not in self.lru.lists[req.dest_tier]:
            self.lru.lists[req.dest_tier].insert(dest_pfn)

        if keep_shadow:
            assert self.shadow is not None
            self.shadow.retain(fast_pfn=dest_pfn, shadow_pfn=src_pfn)
            src_page.state = PageState.SHADOW
        else:
            self.allocator.free(src_pfn)

        self.stats.pages_moved += 1
        if req.dest_tier == 0:
            self.stats.promotions += 1
        else:
            self.stats.demotions += 1
        self._tracer.metrics.counter(
            "pages_moved",
            workload=req.pid,
            tier="fast" if req.dest_tier == 0 else "slow",
        ).inc()
