"""The five-phase page migration engine.

Paper §2.1 decomposes migration into: ① kernel trapping, ② PTE locking
and unmapping, ③ TLB shootdown via IPIs, ④ content copy between tiers,
⑤ PTE remapping.  This engine executes those phases against the
*structural* substrate (page tables, TLBs, allocator, LRU) while cycle
costs come from the calibrated :class:`MigrationCostModel`, so both the
mechanism's behaviour and its price are observable.

Three copy disciplines are implemented:

* **sync** — the classic blocking path (TPP promotion): application
  threads accessing the page stall for the whole operation.
* **async** — kswapd-style background migration (Memtis): off the
  critical path, but the page is unmapped during copy, so concurrent
  accesses fault-stall for the tail of the copy.
* **transactional** — Nomad/Vulcan: the page *stays mapped* during the
  copy; a write during the copy window dirties the destination stale and
  the transaction retries, up to a bound, then falls back to sync.  This
  is what makes async copying lose on write-intensive pages (paper
  Observation #4 / Fig. 4).

Vulcan's two mechanism optimizations are flags:

* ``opt_prep`` — scoped (per-application) LRU drain instead of
  ``lru_add_drain_all()``;
* ``opt_tlb`` — per-thread page-table shootdown scoping via
  :func:`repro.mm.tlb_coherence.compute_scope`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.machine.platform import Machine
from repro.mm import pte as pte_mod
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator, OutOfFramesError
from repro.mm.lru import LruSubsystem
from repro.mm.migration_costs import MigrationCostModel
from repro.mm.page_store import (
    NONE_SENTINEL,
    STATE_FREE,
    STATE_MAPPED,
    STATE_MIGRATING,
    STATE_SHADOW,
)
from repro.mm.page_table import LEVEL_BITS
from repro.mm.shadow import ShadowTracker
from repro.mm.tlb_coherence import ShootdownScope, compute_scope, execute_shootdown
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer


class MigrationPhase(enum.Enum):
    """The five phases of §2.1's migration mechanism, plus the batch-level
    preparation (LRU drain + isolation) that precedes them."""

    PREP = "prep"
    TRAP = "trap"
    UNMAP = "unmap"
    SHOOTDOWN = "shootdown"
    COPY = "copy"
    REMAP = "remap"


class MigrationOutcome(enum.Enum):
    SUCCESS = "success"
    RETRIED = "retried"  # transactional copy restarted at least once
    FELL_BACK_SYNC = "fell_back_sync"  # transactional gave up, went sync
    FAILED = "failed"  # no destination frame, or an injected fault


class FaultKind(enum.Enum):
    """Typed injected-fault outcomes (scenario fault model).

    Each names the way a migration dies and what the engine must absorb
    without corrupting page state:

    * ``ABORTED_SYNC`` — a blocking migration aborts mid-copy (page
      pinned / refcount raced): the work up to the abort is wasted stall,
      the PTE is restored at the source, the destination frame freed.
    * ``LOST_ASYNC`` — a background (transactional) work item is dropped
      before commit: a full copy's worth of cycles wasted off the
      critical path, source stays mapped, destination freed.
    * ``POISONED_SHADOW`` — a retained slow-tier twin is found corrupt
      exactly when a remap-demotion wants it: the shadow is discarded
      and the demotion falls back to a full copy.
    """

    ABORTED_SYNC = "aborted_sync"
    LOST_ASYNC = "lost_async"
    POISONED_SHADOW = "poisoned_shadow"


class MigrationRequest(NamedTuple):
    """One page to move."""

    pid: int
    vpn: int
    dest_tier: int
    sync: bool = True
    #: Expected write fraction, used by the transactional engine to
    #: simulate dirty-during-copy probability.
    write_fraction: float = 0.0
    #: Concurrent access rate to this page (accesses per 1K cycles),
    #: driving the dirty-probability model during async copy windows.
    access_rate_per_kcycle: float = 0.0


@dataclass
class MigrationStats:
    """Aggregate accounting for one engine."""

    migrations: int = 0
    pages_moved: int = 0
    promotions: int = 0
    demotions: int = 0
    retries: int = 0
    sync_fallbacks: int = 0
    failures: int = 0
    shadow_remaps: int = 0
    #: injected faults absorbed, keyed by FaultKind value
    faults_injected: dict[str, int] = field(default_factory=dict)
    total_cycles: float = 0.0
    stall_cycles: float = 0.0  # cycles application threads were blocked
    phase_cycles: dict[str, float] = field(
        default_factory=lambda: {p.value: 0.0 for p in MigrationPhase}
    )

    def charge(self, phase: MigrationPhase, cycles: float) -> None:
        self.phase_cycles[phase.value] += cycles
        self.total_cycles += cycles


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of Vulcan's mechanism optimizations are active."""

    opt_prep: bool = False
    opt_tlb: bool = False
    #: CPUs whose pagevecs a scoped drain covers (the app's cores).
    prep_scope_cpus: int = 2
    #: Retry bound before a transactional copy falls back to sync.
    async_retry_limit: int = 3


#: Cost of the kernel trap / syscall entry for a migration call.
TRAP_CYCLES = 600.0

#: Outcomes after which the move commits (everything but FAILED).
_OK_OUTCOMES = (MigrationOutcome.SUCCESS, MigrationOutcome.RETRIED, MigrationOutcome.FELL_BACK_SYNC)

#: Precomputed phase-key strings (enum ``.value`` lookups were hot).
_PREP_KEY = MigrationPhase.PREP.value
_TRAP_KEY = MigrationPhase.TRAP.value
_UNMAP_KEY = MigrationPhase.UNMAP.value
_SHOOTDOWN_KEY = MigrationPhase.SHOOTDOWN.value
_COPY_KEY = MigrationPhase.COPY.value
_REMAP_KEY = MigrationPhase.REMAP.value


class MigrationEngine:
    """Executes migrations for one process against shared hardware."""

    def __init__(
        self,
        machine: Machine,
        allocator: FrameAllocator,
        space: AddressSpace,
        lru: LruSubsystem,
        *,
        cost_model: MigrationCostModel | None = None,
        flags: OptimizationFlags | None = None,
        thread_core_map: dict[int, int] | None = None,
        shadow: ShadowTracker | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.machine = machine
        self.allocator = allocator
        self.space = space
        self.lru = lru
        self.costs = cost_model if cost_model is not None else MigrationCostModel()
        self.flags = flags if flags is not None else OptimizationFlags()
        self.thread_core_map = thread_core_map
        self.shadow = shadow
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = MigrationStats()
        self._tracer = get_tracer()
        self._store = allocator.store
        # Per-page cost constants.  Recomputing the batch formulas for
        # one page every call produced the same floats (the models are
        # pure), so hoisting them preserves bit-identical accounting.
        self._fixed1 = self.costs.batch_fixed_cycles(1)
        self._unmap1 = self._fixed1 * 0.55
        self._remap1 = self._fixed1 * 0.45
        self._copy1 = self.costs.batch_copy_cycles(1)
        self._half_copy1 = self._copy1 * 0.5
        self._prep_cost = (
            self.costs.prep_opt_cycles(self.flags.prep_scope_cpus)
            if self.flags.opt_prep
            else self.costs.prep_cycles(machine.cpu.n_cores)
        )
        self._tlb1_cache: dict[int, float] = {}
        # Shootdown-scope caches.  Private scope depends only on the
        # (fixed) thread→core pinning; shared scope on a leaf's linked
        # tids, which only ever grows, so a (len, cores) pair detects
        # staleness; process-wide scope likewise keys on thread count.
        # None of these are used when the live schedule must be read.
        self._core_of_private: dict[int, tuple[int, ...]] = {}
        self._shared_scope_cache: dict[int, tuple[int, tuple[int, ...]]] = {}
        self._pw_scope_cache: tuple[int, tuple[int, ...]] | None = None
        #: scenario-attached fault source; any object with
        #: ``roll(kind: FaultKind, pid: int, vpn: int) -> bool``.  None
        #: (the default) means the fault paths are completely inert —
        #: no RNG draws happen, so fault-free runs are bit-identical to
        #: runs of builds without fault injection.
        self.fault_injector = None

    # -- phase helpers -------------------------------------------------------

    def _charge(self, phase: MigrationPhase, cycles: float) -> None:
        self._charge_key(phase.value, cycles)

    def _charge_key(self, key: str, cycles: float) -> None:
        """Charge a phase cost and, when tracing, emit it as an event.

        The tracer's cycle clock advances by the charge so phase events
        and spans nest on the deterministic simulated timeline.
        """
        st = self.stats
        st.phase_cycles[key] += cycles
        st.total_cycles += cycles
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.MIGRATION_PHASE,
                key,
                pid=self.space.process.pid,
                dur=cycles,
                args={"phase": key, "cycles": cycles},
            )
            tracer.advance(cycles)
            tracer.metrics.counter(
                "migration_phase_cycles", workload=self.space.process.pid, phase=key
            ).inc(cycles)

    def _prepare(self, n_pages: int) -> float:
        """Phase 0: LRU drain + isolation (the Fig. 2 'preparation')."""
        if self.flags.opt_prep:
            scope = list(range(min(self.flags.prep_scope_cpus, self.machine.cpu.n_cores)))
            self.lru.drain(scope)
        else:
            self.lru.drain(None)
        return self._prep_cost

    def _shootdown(self, vpn: int) -> tuple[float, int]:
        """Phase ③: resolve scope, deliver IPIs, invalidate TLBs.

        Returns ``(model_cycles, n_target_cpus)``.  The structural IPI
        cost is folded into the model cost (the model is calibrated to
        end-to-end measurements that already include it).

        With tracing off, the scope is resolved through the cached fast
        paths and the structural effects (IPI stats, TLB entry pops) are
        applied directly — identical state to the event-emitting path.
        """
        repl = self.space.process.repl
        cpu = self.machine.cpu
        if self._tracer.enabled:
            if self.flags.opt_tlb and repl.enabled:
                scope = compute_scope(
                    repl, cpu, vpn, thread_core_map=self.thread_core_map
                )
            else:
                # Process-wide: every thread of the process is a target.
                tids = repl.tids if repl.tids else set()
                if self.thread_core_map is not None:
                    cores = tuple(sorted({self.thread_core_map[t] for t in tids if t in self.thread_core_map}))
                else:
                    cores = tuple(sorted({c.core_id for c in cpu.cores_running(tids)}))
                scope = ShootdownScope(vpn=vpn, target_core_ids=cores, sharing_tids=tuple(sorted(tids)), process_wide=True)
            execute_shootdown(cpu, scope)
            n_targets = max(scope.n_targets, 1)
        else:
            if self.flags.opt_tlb and repl.enabled:
                cores = self._scope_cores(repl, cpu, vpn)
            else:
                cores = self._process_wide_cores(repl, cpu)
            if cores:
                cpu.deliver_ipis(cores)
                for core_id in cores:
                    tlb = cpu.cores[core_id].tlb
                    if tlb._map:
                        tlb.invalidate(vpn)
            n_targets = max(len(cores), 1)
        cost = self._tlb1_cache.get(n_targets)
        if cost is None:
            cost = self.costs.batch_tlb_cycles(1, n_targets)
            self._tlb1_cache[n_targets] = cost
        return (cost, n_targets)

    def _scope_cores(self, repl, cpu, vpn: int) -> tuple[int, ...]:
        """:func:`compute_scope`'s target cores, via the flat mirror."""
        tcm = self.thread_core_map
        if tcm is None:
            # Live-schedule scope is mutable state — never cached.
            tids = repl.sharing_tids(vpn)
            return tuple(sorted({c.core_id for c in cpu.cores_running(tids)}))
        flat = repl.flat
        i = vpn - flat.base
        if i < 0 or i >= flat.pfn.size or flat.pfn[i] < 0:
            return ()
        owner = int(flat.owner[i])
        if owner != pte_mod.PTE_SHARED_TID:
            cached = self._core_of_private.get(owner)
            if cached is None:
                cached = (tcm[owner],) if owner in tcm else ()
                self._core_of_private[owner] = cached
            return cached
        base = vpn >> LEVEL_BITS
        tids = repl._leaf_tids.get(base)
        if not tids:
            return ()
        entry = self._shared_scope_cache.get(base)
        if entry is not None and entry[0] == len(tids):
            return entry[1]
        cores = tuple(sorted({tcm[t] for t in tids if t in tcm}))
        self._shared_scope_cache[base] = (len(tids), cores)
        return cores

    def _process_wide_cores(self, repl, cpu) -> tuple[int, ...]:
        """Every core running any thread of the process."""
        tids = repl.thread_tables
        tcm = self.thread_core_map
        if tcm is None:
            return tuple(sorted({c.core_id for c in cpu.cores_running(tids.keys())}))
        entry = self._pw_scope_cache
        if entry is not None and entry[0] == len(tids):
            return entry[1]
        cores = tuple(sorted({tcm[t] for t in tids if t in tcm}))
        self._pw_scope_cache = (len(tids), cores)
        return cores

    def _alloc_dest(self, dest_tier: int) -> int | None:
        try:
            return self.allocator.allocate_pfn(dest_tier, fallback=False)
        except OutOfFramesError:
            return None

    # -- public API -----------------------------------------------------------

    def migrate(self, request: MigrationRequest) -> MigrationOutcome:
        """Migrate a single page through the five phases."""
        outcomes = self.migrate_batch([request])
        return outcomes[0]

    def migrate_batch(self, requests: list[MigrationRequest]) -> list[MigrationOutcome]:
        """Migrate a batch; preparation is paid once per call, as in
        ``migrate_pages()``.

        Dispatches to the fused (scatter-batched) implementation when
        its preconditions hold, else to the per-page legacy loop.  Both
        produce bit-identical state, stats and outcomes.
        """
        if not requests:
            return []
        tracer = self._tracer
        if tracer.enabled or tracer.metrics.enabled or self.fault_injector is not None:
            return self._migrate_batch_legacy(requests)
        # The fused path defers store writes into grouped scatters,
        # which needs each move to act on rows no other move writes —
        # guaranteed by unique vpns (sources are distinct pre-batch
        # mappings, destinations distinct pops).  The one overlap —
        # a frame freed by an earlier move and re-allocated by a later
        # one — is handled by applying the detach scatter before the
        # destination-row scatters.
        if len({r.vpn for r in requests}) != len(requests):
            return self._migrate_batch_legacy(requests)
        return self._migrate_batch_fused(requests)

    def _migrate_batch_legacy(self, requests: list[MigrationRequest]) -> list[MigrationOutcome]:
        """Per-page reference implementation (also the tracing path)."""
        with self._tracer.span(
            "migrate_batch", pid=self.space.process.pid, pages=len(requests)
        ):
            self._charge_key(_TRAP_KEY, TRAP_CYCLES)
            self._charge_key(_PREP_KEY, self._prepare(len(requests)))

            outcomes: list[MigrationOutcome] = []
            for req in requests:
                outcomes.append(self._migrate_one(req))
            self.stats.migrations += 1
        return outcomes

    def _migrate_batch_fused(self, requests: list[MigrationRequest]) -> list[MigrationOutcome]:
        """Batched :meth:`migrate_batch`: sequential bookkeeping, fused
        frame-store writes.

        Every order-sensitive effect — cost accounting (float adds in
        the exact legacy order), RNG draws, free-list pops/appends, LRU
        and shadow bookkeeping, radix PTE stores — runs in a sequential
        loop exactly as the legacy path would.  The per-frame stats-store
        and flat-mirror writes are deferred and applied as grouped numpy
        scatters; the dispatcher guaranteed all written rows are
        pairwise disjoint, so the scatter order cannot change the
        result.
        """
        st = self.stats
        self._charge_key(_TRAP_KEY, TRAP_CYCLES)
        self._charge_key(_PREP_KEY, self._prepare(len(requests)))

        repl = self.space.process.repl
        flat = repl.flat
        store = self._store
        cpu = self.machine.cpu
        fast_frames = store.fast_frames
        shadow = self.shadow
        lru_lists = self.lru.lists
        pt_update = repl.process_table.update
        tiers = self.allocator.tiers
        opt_tlb = self.flags.opt_tlb and repl.enabled
        retry_limit = self.flags.async_retry_limit
        tlb_cache = self._tlb1_cache
        cores_of = self._scope_cores if opt_tlb else None
        cpu_cores = cpu.cores
        pte_with_pfn = pte_mod.pte_with_pfn
        pte_clear_flag = pte_mod.pte_clear_flag
        pte_set_flag = pte_mod.pte_set_flag
        pte_tid = pte_mod.pte_tid
        pte_is_dirty = pte_mod.pte_is_dirty
        PTE_DIRTY = pte_mod.PTE_DIRTY
        PTE_SHADOW = pte_mod.PTE_SHADOW
        rng_random = self.rng.random

        # One vectorized translate for the whole batch (identical to a
        # value_of() per request: the mirror is only mutated at apply
        # time, and in-batch PTE rewrites never change the fields a
        # later move's translate or shootdown scope reads).
        n = len(requests)
        if flat.pfn.size:
            vpns_np = np.fromiter((r.vpn for r in requests), dtype=np.int64, count=n)
            idx_np = vpns_np - flat.base
            in_range = (idx_np >= 0) & (idx_np < flat.pfn.size)
            safe_idx = np.where(in_range, idx_np, 0)
            pfn_l = np.where(in_range, flat.pfn[safe_idx], -1).tolist()
            val_l = flat.value[safe_idx].tolist()
        else:
            pfn_l = [-1] * n
            val_l = [0] * n

        # Float accumulators: locals holding the running bucket values,
        # updated with the same sequence of binary adds the legacy
        # per-page charges perform, written back once at the end.
        pc = st.phase_cycles
        unmap_acc = pc[_UNMAP_KEY]
        sd_acc = pc[_SHOOTDOWN_KEY]
        copy_acc = pc[_COPY_KEY]
        remap_acc = pc[_REMAP_KEY]
        total = st.total_cycles
        stall = st.stall_cycles
        u1 = self._unmap1
        r1 = self._remap1
        c1 = self._copy1

        def _sd(vpn: int) -> float:
            """Fast-path shootdown: scope, IPIs, TLB pops, model cost."""
            cores = cores_of(repl, cpu, vpn) if cores_of is not None else self._process_wide_cores(repl, cpu)
            if cores:
                cpu.deliver_ipis(cores)
                for core_id in cores:
                    tlb = cpu_cores[core_id].tlb
                    if tlb._map:
                        tlb.invalidate(vpn)
            n_targets = len(cores) or 1
            cost = tlb_cache.get(n_targets)
            if cost is None:
                cost = self.costs.batch_tlb_cycles(1, n_targets)
                tlb_cache[n_targets] = cost
            return cost

        # Deferred scatter groups.
        fin_vpn: list[int] = []; fin_pid: list[int] = []
        fin_src: list[int] = []; fin_dest: list[int] = []
        sh_vpn: list[int] = []; sh_pid: list[int] = []
        sh_src: list[int] = []; sh_dst: list[int] = []
        mir_vpn: list[int] = []; mir_pfn: list[int] = []
        mir_val: list[int] = []; mir_own: list[int] = []; mir_dirty: list[bool] = []
        keep_src: list[int] = []  # sources retained as shadow rows
        det_src: list[int] = []   # sources fully detached (freed)
        txn_src: list[int] = []   # transactional sources (dirty reset)

        outcomes: list[MigrationOutcome] = []
        append_out = outcomes.append
        SUCCESS = MigrationOutcome.SUCCESS
        RETRIED = MigrationOutcome.RETRIED
        FELL_BACK = MigrationOutcome.FELL_BACK_SYNC
        FAILED = MigrationOutcome.FAILED

        for req, src_pfn, value in zip(requests, pfn_l, val_l):
            if src_pfn < 0:
                st.failures += 1
                append_out(FAILED)
                continue
            dest_tier = req.dest_tier
            src_tier = 0 if src_pfn < fast_frames else 1
            if src_tier == dest_tier:
                append_out(SUCCESS)
                continue

            if (
                shadow is not None
                and dest_tier == 1
                and shadow.can_remap_demote(src_pfn, dirty=pte_is_dirty(value))
            ):
                # Remap-only demotion onto the retained slow-tier twin.
                shadow_pfn = shadow.shadow_of(src_pfn)
                unmap_acc += u1; total += u1
                tlb_cycles = _sd(req.vpn)
                sd_acc += tlb_cycles; total += tlb_cycles
                remap_acc += r1; total += r1
                stall += tlb_cycles
                nv = pte_clear_flag(pte_with_pfn(value, shadow_pfn), PTE_SHADOW)
                pt_update(req.vpn, nv)
                mir_vpn.append(req.vpn); mir_pfn.append(shadow_pfn)
                mir_val.append(nv); mir_own.append(pte_tid(nv)); mir_dirty.append(pte_is_dirty(nv))
                sh_vpn.append(req.vpn); sh_pid.append(req.pid)
                sh_src.append(src_pfn); sh_dst.append(shadow_pfn)
                shadow.consume(src_pfn)
                lsrc = lru_lists[0]
                if src_pfn in lsrc:
                    lsrc.remove(src_pfn)
                ldst = lru_lists[1]
                if shadow_pfn not in ldst:
                    ldst.insert(shadow_pfn)
                tiers[src_tier].free_list.append(src_pfn)
                det_src.append(src_pfn)
                st.demotions += 1
                st.pages_moved += 1
                st.shadow_remaps += 1
                append_out(SUCCESS)
                continue

            # Allocate the destination (fallback=False, as in _alloc_dest).
            dest_list = tiers[dest_tier].free_list
            if not dest_list:
                st.failures += 1
                append_out(FAILED)
                continue
            dest_pfn = dest_list.popleft()
            if dest_pfn >= store.capacity:
                store.ensure(dest_pfn + 1)

            if req.sync:
                unmap_acc += u1; total += u1
                tlb_cycles = _sd(req.vpn)
                sd_acc += tlb_cycles; total += tlb_cycles
                copy_acc += c1; total += c1
                remap_acc += r1; total += r1
                stall += tlb_cycles + c1
                outcome = SUCCESS
            else:
                txn_src.append(src_pfn)
                lam = req.access_rate_per_kcycle * req.write_fraction / 1_000.0
                retries = 0
                outcome = SUCCESS
                fell_back = False
                if lam <= 0.0:
                    copy_acc += c1; total += c1
                else:
                    p_dirty = 1.0 - float(np.exp(-lam * c1))
                    while True:
                        copy_acc += c1; total += c1
                        if not (rng_random() < p_dirty):
                            break
                        retries += 1
                        st.retries += 1
                        if retries > retry_limit:
                            st.sync_fallbacks += 1
                            unmap_acc += u1; total += u1
                            tlb_cycles = _sd(req.vpn)
                            sd_acc += tlb_cycles; total += tlb_cycles
                            copy_acc += c1; total += c1
                            remap_acc += r1; total += r1
                            stall += tlb_cycles + c1
                            fell_back = True
                            break
                        outcome = RETRIED
                if fell_back:
                    outcome = FELL_BACK
                else:
                    unmap_acc += u1; total += u1
                    tlb_cycles = _sd(req.vpn)
                    sd_acc += tlb_cycles; total += tlb_cycles
                    remap_acc += r1; total += r1
                    stall += tlb_cycles

            # Finalize (every non-FAILED full copy commits).
            keep_shadow = shadow is not None and dest_tier == 0 and src_tier == 1
            nv = pte_clear_flag(pte_with_pfn(value, dest_pfn), PTE_DIRTY)
            if keep_shadow:
                nv = pte_set_flag(nv, PTE_SHADOW)
            pt_update(req.vpn, nv)
            mir_vpn.append(req.vpn); mir_pfn.append(dest_pfn)
            mir_val.append(nv); mir_own.append(pte_tid(nv)); mir_dirty.append(pte_is_dirty(nv))
            fin_vpn.append(req.vpn); fin_pid.append(req.pid)
            fin_src.append(src_pfn); fin_dest.append(dest_pfn)
            lsrc = lru_lists[src_tier]
            if src_pfn in lsrc:
                lsrc.remove(src_pfn)
            ldst = lru_lists[dest_tier]
            if dest_pfn not in ldst:
                ldst.insert(dest_pfn)
            if keep_shadow:
                shadow.retain(fast_pfn=dest_pfn, shadow_pfn=src_pfn)
                keep_src.append(src_pfn)
            else:
                tiers[src_tier].free_list.append(src_pfn)
                det_src.append(src_pfn)
            st.pages_moved += 1
            if dest_tier == 0:
                st.promotions += 1
            else:
                st.demotions += 1
            append_out(outcome)

        pc[_UNMAP_KEY] = unmap_acc
        pc[_SHOOTDOWN_KEY] = sd_acc
        pc[_COPY_KEY] = copy_acc
        pc[_REMAP_KEY] = remap_acc
        st.total_cycles = total
        st.stall_cycles = stall
        st.migrations += 1

        # -- apply deferred writes ---------------------------------------
        # All source rows are pristine pre-batch rows (a frame freed
        # in-batch can only be re-allocated as a destination, never read
        # as a source), so gather every src-carried column first, apply
        # the detach scatter, then rebuild destination rows — which
        # resolves freed-then-reallocated frames to their final (bound)
        # row exactly as the legacy free-then-move_row sequence does.
        if sh_dst:
            sdst = np.array(sh_dst, dtype=np.int64)
            sh_heat = store.heat[np.array(sh_src, dtype=np.int64)]
        if fin_dest:
            fsrc = np.array(fin_src, dtype=np.int64)
            fdst = np.array(fin_dest, dtype=np.int64)
            g_heat = store.heat[fsrc]
            g_reads = store.reads[fsrc]
            g_writes = store.writes[fsrc]
            g_er = store.epoch_reads[fsrc]
            g_ew = store.epoch_writes[fsrc]
            g_lo = store.tids_lo[fsrc]
            g_hi = store.tids_hi[fsrc]
        if det_src:
            d = np.array(det_src, dtype=np.int64)
            store.pid[d] = NONE_SENTINEL
            store.vpn[d] = NONE_SENTINEL
            store.state[d] = STATE_FREE
            store.reads[d] = 0
            store.writes[d] = 0
            store.heat[d] = 0.0
            store.epoch_reads[d] = 0
            store.epoch_writes[d] = 0
            store.shadow_pfn[d] = NONE_SENTINEL
            store.dirty_since_copy[d] = False
            store.tids_lo[d] = 0
            store.tids_hi[d] = 0
            store.touched[d] = False
            store.in_free_list[d] = True
        if sh_dst:
            store.pid[sdst] = sh_pid
            store.vpn[sdst] = sh_vpn
            store.state[sdst] = STATE_MAPPED
            store.heat[sdst] = sh_heat
        if fin_dest:
            store.pid[fdst] = fin_pid
            store.vpn[fdst] = fin_vpn
            store.state[fdst] = STATE_MAPPED
            store.heat[fdst] = g_heat
            store.reads[fdst] = g_reads
            store.writes[fdst] = g_writes
            store.epoch_reads[fdst] = g_er
            store.epoch_writes[fdst] = g_ew
            store.touched[fdst] = (g_er != 0) | (g_ew != 0)
            store.tids_lo[fdst] = g_lo
            store.tids_hi[fdst] = g_hi
            store.tier_id[fdst] = fdst >= fast_frames
            store.in_free_list[fdst] = False
        if txn_src:
            store.dirty_since_copy[np.array(txn_src, dtype=np.int64)] = False
        if keep_src:
            store.state[np.array(keep_src, dtype=np.int64)] = STATE_SHADOW
        if mir_vpn:
            midx = np.array(mir_vpn, dtype=np.int64) - flat.base
            flat.pfn[midx] = mir_pfn
            flat.owner[midx] = mir_own
            flat.dirty[midx] = mir_dirty
            flat.value[midx] = mir_val
        return outcomes

    def _migrate_one(self, req: MigrationRequest) -> MigrationOutcome:
        repl = self.space.process.repl
        value = repl.value_of(req.vpn)
        if value is None:
            self.stats.failures += 1
            return MigrationOutcome.FAILED
        src_pfn = pte_mod.pte_pfn(value)
        if self._store.tier_id[src_pfn] == req.dest_tier:
            return MigrationOutcome.SUCCESS  # already there

        # Shadow fast-path on demotion: a clean page that still has its
        # slow-tier shadow can be "demoted" by a remap alone (§3.5).
        if (
            self.shadow is not None
            and req.dest_tier == 1
            and self.shadow.can_remap_demote(src_pfn, dirty=pte_mod.pte_is_dirty(value))
        ):
            if self._roll_fault(FaultKind.POISONED_SHADOW, req):
                # The retained copy is corrupt: discard it and fall
                # through to a full-copy demotion.
                stale = self.shadow.poison(src_pfn)
                if stale is not None:
                    self.allocator.free(stale)
            else:
                return self._demote_via_shadow(req, value, src_pfn)

        dest_pfn = self._alloc_dest(req.dest_tier)
        if dest_pfn is None:
            self.stats.failures += 1
            return MigrationOutcome.FAILED

        if req.sync and self._roll_fault(FaultKind.ABORTED_SYNC, req):
            return self._abort_sync(req, dest_pfn)
        if not req.sync and self._roll_fault(FaultKind.LOST_ASYNC, req):
            return self._lose_async(req, src_pfn, dest_pfn)

        if req.sync:
            outcome = self._copy_sync(req, value, src_pfn, dest_pfn)
        else:
            outcome = self._copy_transactional(req, value, src_pfn, dest_pfn)

        if outcome in _OK_OUTCOMES:
            self._finalize_move(req, src_pfn, dest_pfn)
        else:
            self.allocator.free(dest_pfn)
        return outcome

    # -- copy disciplines -------------------------------------------------------

    def _copy_sync(self, req: MigrationRequest, value: int, src_pfn: int, dest_pfn: int) -> MigrationOutcome:
        """Blocking copy: unmap → shootdown → copy → remap; the app stalls."""
        self._charge_key(_UNMAP_KEY, self._unmap1)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge_key(_SHOOTDOWN_KEY, tlb_cycles)
        copy_cycles = self._copy1
        self._charge_key(_COPY_KEY, copy_cycles)
        self._charge_key(_REMAP_KEY, self._remap1)
        # Everything after unmap is a stall for threads touching the page.
        self.stats.stall_cycles += tlb_cycles + copy_cycles
        return MigrationOutcome.SUCCESS

    def _copy_transactional(self, req: MigrationRequest, value: int, src_pfn: int, dest_pfn: int) -> MigrationOutcome:
        """Nomad-style transactional copy: page stays mapped during copy;
        a concurrent write aborts and retries the transaction."""
        store = self._store
        store.state[src_pfn] = STATE_MIGRATING
        copy_cycles = self._copy1
        retries = 0
        outcome = MigrationOutcome.SUCCESS
        while True:
            store.dirty_since_copy[src_pfn] = False
            self._charge_key(_COPY_KEY, copy_cycles)
            # Probability the page is written during this copy window.
            dirtied = self._dirtied_during(copy_cycles, req)
            if not dirtied and not store.dirty_since_copy[src_pfn]:
                break
            retries += 1
            self.stats.retries += 1
            if retries > self.flags.async_retry_limit:
                # Give up: take the write-blocking sync path.
                self.stats.sync_fallbacks += 1
                self._copy_sync(req, value, src_pfn, dest_pfn)
                store.state[src_pfn] = STATE_MAPPED
                return MigrationOutcome.FELL_BACK_SYNC
            outcome = MigrationOutcome.RETRIED
        # Commit: brief write-protect window, scoped shootdown, remap.
        self._charge_key(_UNMAP_KEY, self._unmap1)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge_key(_SHOOTDOWN_KEY, tlb_cycles)
        self._charge_key(_REMAP_KEY, self._remap1)
        # Only the commit window stalls the app.
        self.stats.stall_cycles += tlb_cycles
        store.state[src_pfn] = STATE_MAPPED
        return outcome

    def _dirtied_during(self, window_cycles: float, req: MigrationRequest) -> bool:
        """Bernoulli draw: was the page written inside the copy window?

        Writes arrive at ``rate * write_fraction`` per kilocycle; the
        window survives clean with probability ``exp(-λ·w·window)``.
        """
        lam = req.access_rate_per_kcycle * req.write_fraction / 1_000.0
        if lam <= 0.0:
            return False
        p_dirty = 1.0 - float(np.exp(-lam * window_cycles))
        return bool(self.rng.random() < p_dirty)

    # -- injected faults ---------------------------------------------------------

    def _roll_fault(self, kind: FaultKind, req: MigrationRequest) -> bool:
        """Ask the attached injector whether this migration faults.

        With no injector attached this is a pure branch — no RNG state
        is consumed, preserving bit-identical fault-free runs.
        """
        inj = self.fault_injector
        if inj is None or not inj.roll(kind, pid=req.pid, vpn=req.vpn):
            return False
        self.stats.faults_injected[kind.value] = (
            self.stats.faults_injected.get(kind.value, 0) + 1
        )
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.FAULT_INJECTED,
                kind.value,
                pid=req.pid,
                args={"kind": kind.value, "vpn": req.vpn, "dest_tier": req.dest_tier},
            )
        if tracer.metrics.enabled:
            tracer.metrics.counter("faults_injected", workload=req.pid, kind=kind.value).inc()
        return True

    def _abort_sync(self, req: MigrationRequest, dest_pfn: int) -> MigrationOutcome:
        """A blocking migration dies mid-copy and unwinds.

        The page was already unmapped and shot down, and roughly half
        the copy ran before the abort — all of it stall — then the PTE
        is restored at the source.  The source frame never changed
        state, so restoring is remap cost only; page state is intact.
        """
        self._charge_key(_UNMAP_KEY, self._unmap1)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge_key(_SHOOTDOWN_KEY, tlb_cycles)
        wasted_copy = self._half_copy1
        self._charge_key(_COPY_KEY, wasted_copy)
        self._charge_key(_REMAP_KEY, self._remap1)
        self.stats.stall_cycles += tlb_cycles + wasted_copy
        self.allocator.free(dest_pfn)
        self.stats.failures += 1
        return MigrationOutcome.FAILED

    def _lose_async(self, req: MigrationRequest, src_pfn: int, dest_pfn: int) -> MigrationOutcome:
        """A transactional work item is dropped before commit.

        The copy ran in the background (full copy cycles wasted, no
        stall — the page stayed mapped the whole time) but the commit
        never happened: the destination is freed and the source simply
        remains the live mapping.
        """
        store = self._store
        store.state[src_pfn] = STATE_MIGRATING
        self._charge_key(_COPY_KEY, self._copy1)
        store.state[src_pfn] = STATE_MAPPED
        self.allocator.free(dest_pfn)
        self.stats.failures += 1
        return MigrationOutcome.FAILED

    # -- shadow demotion ---------------------------------------------------------

    def _demote_via_shadow(self, req: MigrationRequest, value: int, src_pfn: int) -> MigrationOutcome:
        """Demotion by remapping to the retained slow-tier shadow copy."""
        assert self.shadow is not None
        shadow_pfn = self.shadow.shadow_of(src_pfn)
        assert shadow_pfn is not None
        self._charge_key(_UNMAP_KEY, self._unmap1)
        tlb_cycles, _ = self._shootdown(req.vpn)
        self._charge_key(_SHOOTDOWN_KEY, tlb_cycles)
        self._charge_key(_REMAP_KEY, self._remap1)
        self.stats.stall_cycles += tlb_cycles

        repl = self.space.process.repl
        repl.update(req.vpn, pte_mod.pte_clear_flag(pte_mod.pte_with_pfn(value, shadow_pfn), pte_mod.PTE_SHADOW))
        store = self._store
        store.pid[shadow_pfn] = req.pid
        store.vpn[shadow_pfn] = req.vpn
        store.state[shadow_pfn] = STATE_MAPPED
        store.heat[shadow_pfn] = store.heat[src_pfn]
        self.shadow.consume(src_pfn)
        if src_pfn in self.lru.lists[0]:
            self.lru.lists[0].remove(src_pfn)
        if shadow_pfn not in self.lru.lists[1]:
            self.lru.lists[1].insert(shadow_pfn)
        self.allocator.free(src_pfn)
        self.stats.demotions += 1
        self.stats.pages_moved += 1
        self.stats.shadow_remaps += 1
        return MigrationOutcome.SUCCESS

    # -- commit -----------------------------------------------------------------

    def _finalize_move(self, req: MigrationRequest, src_pfn: int, dest_pfn: int) -> None:
        """Repoint the PTE, move metadata, release or shadow the source."""
        repl = self.space.process.repl
        value = repl.value_of(req.vpn)
        assert value is not None
        store = self._store
        src_tier = int(store.tier_id[src_pfn])

        keep_shadow = (
            self.shadow is not None
            and req.dest_tier == 0  # promotion
            and src_tier == 1
        )

        new_value = pte_mod.pte_with_pfn(value, dest_pfn)
        new_value = pte_mod.pte_clear_flag(new_value, pte_mod.PTE_DIRTY)
        if keep_shadow:
            new_value = pte_mod.pte_set_flag(new_value, pte_mod.PTE_SHADOW)
        repl.update(req.vpn, new_value)

        store.move_row(src_pfn, dest_pfn, req.pid, req.vpn)

        # LRU relink.
        if src_pfn in self.lru.lists[src_tier]:
            self.lru.lists[src_tier].remove(src_pfn)
        if dest_pfn not in self.lru.lists[req.dest_tier]:
            self.lru.lists[req.dest_tier].insert(dest_pfn)

        if keep_shadow:
            assert self.shadow is not None
            self.shadow.retain(fast_pfn=dest_pfn, shadow_pfn=src_pfn)
            store.state[src_pfn] = STATE_SHADOW
        else:
            self.allocator.free(src_pfn)

        self.stats.pages_moved += 1
        if req.dest_tier == 0:
            self.stats.promotions += 1
        else:
            self.stats.demotions += 1
        metrics = self._tracer.metrics
        if metrics.enabled:
            metrics.counter(
                "pages_moved",
                workload=req.pid,
                tier="fast" if req.dest_tier == 0 else "slow",
            ).inc()
