"""Per-CPU LRU pagevec caches and the migration-preparation cost source.

Linux batches LRU-list insertions in small per-CPU caches ("pagevecs",
15 entries).  Before a page can be isolated for migration, every CPU's
cache must be drained — ``lru_add_drain_all()`` — implemented with
``on_each_cpu_mask()``: schedule work on every CPU and wait.  The paper's
Observation #2 shows this *preparation* phase dominating migration time
as core counts grow (38.3% of 50K cycles at 2 CPUs → 76.9% of 750K at
32).

This module models the structure (per-CPU pagevecs that really buffer
pages, a global two-list LRU per tier for candidate selection) while the
preparation *cost* is produced by the calibrated
:class:`repro.mm.migration_costs.MigrationCostModel`.

Vulcan's workload-dependent migration avoids the global drain: each
application's migration threads drain only the CPUs that application
runs on (its dedicated cores), which is what the ``drain(cpu_ids)``
parameter expresses.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

PAGEVEC_SIZE = 15  # Linux PAGEVEC_SIZE


@dataclass
class PerCpuPagevec:
    """One CPU's LRU-addition buffer."""

    cpu_id: int
    capacity: int = PAGEVEC_SIZE
    pending: deque[int] = field(default_factory=deque)  # pfns awaiting LRU insert

    def add(self, pfn: int) -> bool:
        """Buffer a page; returns True when the vec filled and must drain."""
        self.pending.append(pfn)
        return len(self.pending) >= self.capacity

    def drain(self) -> list[int]:
        """Flush buffered pages (to the global lists); returns them."""
        out = list(self.pending)
        self.pending.clear()
        return out


class LruList:
    """Two-handed (active/inactive) LRU for one tier.

    ``OrderedDict`` gives O(1) move-to-end; iteration from the cold end
    of the inactive list yields demotion candidates, as in the kernel's
    reclaim scan.
    """

    def __init__(self) -> None:
        self.active: OrderedDict[int, None] = OrderedDict()
        self.inactive: OrderedDict[int, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self.active) + len(self.inactive)

    def __contains__(self, pfn: int) -> bool:
        return pfn in self.active or pfn in self.inactive

    def insert(self, pfn: int) -> None:
        """New pages enter the inactive list (kernel behaviour)."""
        if pfn in self:
            raise ValueError(f"pfn {pfn} already on LRU")
        self.inactive[pfn] = None

    def mark_accessed(self, pfn: int) -> None:
        """Second touch promotes inactive→active; active refreshes MRU."""
        if pfn in self.inactive:
            del self.inactive[pfn]
            self.active[pfn] = None
        elif pfn in self.active:
            self.active.move_to_end(pfn)

    def age(self, n: int) -> int:
        """Move up to ``n`` pages from the cold end of active→inactive."""
        moved = 0
        while moved < n and self.active:
            pfn, _ = self.active.popitem(last=False)
            self.inactive[pfn] = None
            moved += 1
        return moved

    def coldest(self, n: int) -> list[int]:
        """Up to ``n`` demotion candidates from the inactive cold end."""
        out: list[int] = []
        for pfn in self.inactive:
            if len(out) >= n:
                break
            out.append(pfn)
        return out

    def remove(self, pfn: int) -> None:
        if pfn in self.inactive:
            del self.inactive[pfn]
        elif pfn in self.active:
            del self.active[pfn]
        else:
            raise KeyError(f"pfn {pfn} not on LRU")


class LruSubsystem:
    """All per-CPU pagevecs plus per-tier global LRU lists."""

    def __init__(self, n_cpus: int, n_tiers: int = 2) -> None:
        if n_cpus <= 0:
            raise ValueError("need at least one CPU")
        self.pagevecs = [PerCpuPagevec(cpu_id=i) for i in range(n_cpus)]
        self.lists = [LruList() for _ in range(n_tiers)]
        self.drain_all_calls = 0
        self.scoped_drain_calls = 0
        #: tier recorded for pages still sitting in a pagevec.
        self._pending_tier: dict[int, int] = {}

    def add_page(self, pfn: int, tier_id: int, cpu_id: int) -> None:
        """Page becomes LRU-managed via ``cpu_id``'s pagevec."""
        vec = self.pagevecs[cpu_id]
        self._pending_tier[pfn] = tier_id
        if vec.add(pfn):
            for drained in vec.drain():
                self._insert_global(drained)

    def _insert_global(self, pfn: int) -> None:
        tier = self._pending_tier.pop(pfn, 0)
        if pfn not in self.lists[tier]:
            self.lists[tier].insert(pfn)

    def drain(self, cpu_ids: list[int] | None = None) -> int:
        """Drain pagevecs: all CPUs (``None``) or a scoped subset.

        Returns the number of pages flushed to the global lists.  The
        *cost* of the global variant is the preparation term of the
        migration cost model; scoped drains are Vulcan's optimization.
        """
        if cpu_ids is None:
            vecs = self.pagevecs
            self.drain_all_calls += 1
        else:
            vecs = [self.pagevecs[i] for i in cpu_ids]
            self.scoped_drain_calls += 1
        flushed = 0
        for vec in vecs:
            for pfn in vec.drain():
                self._insert_global(pfn)
                flushed += 1
        return flushed

    def is_isolatable(self, pfn: int, tier_id: int) -> bool:
        """A page can be isolated for migration only once it is on the
        global LRU (i.e. not stuck in some CPU's pagevec)."""
        return pfn in self.lists[tier_id]

    def forget_pages(self, pfns) -> int:
        """Drop pages from every pagevec and global list (teardown).

        A departing process's frames may sit anywhere in the LRU
        machinery — buffered in a per-CPU pagevec, or on either tier's
        global lists — and none of those locations may keep a reference
        once the frames return to the allocator.  Accepts any int
        iterable or an int ndarray directly (no boxed-int set is built
        for large teardowns).  Returns how many entries were removed.
        """
        sorted_pfns = np.unique(np.asarray(pfns, dtype=np.int64))
        if sorted_pfns.size == 0:
            return 0
        removed = 0
        for vec in self.pagevecs:
            if not vec.pending:
                continue
            pending = np.fromiter(vec.pending, dtype=np.int64, count=len(vec.pending))
            pos = np.searchsorted(sorted_pfns, pending)
            pos[pos == sorted_pfns.size] = 0
            drop = sorted_pfns[pos] == pending
            if drop.any():
                removed += int(drop.sum())
                vec.pending = deque(pending[~drop].tolist())
        for pfn in sorted_pfns.tolist():
            self._pending_tier.pop(pfn, None)
            for lst in self.lists:
                if pfn in lst:
                    lst.remove(pfn)
                    removed += 1
        return removed

    def move_tier(self, pfn: int, from_tier: int, to_tier: int) -> None:
        """Relink a migrated page onto its new tier's LRU."""
        if pfn in self.lists[from_tier]:
            self.lists[from_tier].remove(pfn)
        if pfn not in self.lists[to_tier]:
            self.lists[to_tier].insert(pfn)
