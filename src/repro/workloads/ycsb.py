"""YCSB-style key-value workload family.

The paper drives Memcached with YCSB-C; this module generalizes the KV
generator to the standard YCSB core workloads so co-location studies
can vary the read/write/scan composition:

========  =======================  ==========================
workload  operation mix            distribution
========  =======================  ==========================
A         50% read / 50% update    zipfian
B         95% read / 5% update     zipfian
C         100% read                zipfian
D         95% read / 5% insert     latest (recency-skewed)
E         95% scan / 5% insert     zipfian (scan length 1-16)
F         50% read / 50% RMW       zipfian
========  =======================  ==========================

Operations map to page accesses: read = 1 read; update = 1 write;
insert = 1 write at the growing tail ("latest" keys); scan = a short
sequential run of reads; read-modify-write = 1 read + 1 write to the
same page.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ServiceClass
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class YcsbMix:
    """Operation proportions (must sum to 1)."""

    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    latest: bool = False  # recency-skewed key choice (workload D)

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix must sum to 1, got {total}")


YCSB_MIXES: dict[str, YcsbMix] = {
    "A": YcsbMix(read=0.5, update=0.5),
    "B": YcsbMix(read=0.95, update=0.05),
    "C": YcsbMix(read=1.0),
    "D": YcsbMix(read=0.95, insert=0.05, latest=True),
    "E": YcsbMix(scan=0.95, insert=0.05),
    "F": YcsbMix(read=0.5, rmw=0.5),
}

MAX_SCAN_LEN = 16


class YcsbWorkload(Workload):
    """A KV store under one of the YCSB core mixes."""

    def __init__(
        self,
        spec: WorkloadSpec | None = None,
        seed: int = 0,
        *,
        mix: str = "C",
        zipf_skew: float = 0.99,
    ) -> None:
        if spec is None:
            spec = WorkloadSpec(name=f"ycsb-{mix.lower()}", service=ServiceClass.LC, rss_pages=4096)
        super().__init__(spec, seed)
        key = mix.upper()
        if key not in YCSB_MIXES:
            raise ValueError(f"unknown YCSB workload {mix!r}; pick from {sorted(YCSB_MIXES)}")
        self.mix_name = key
        self.mix = YCSB_MIXES[key]
        self.zipf_skew = zipf_skew
        self._sampler: ZipfSampler | None = None

    def _on_bind(self) -> None:
        self._sampler = ZipfSampler(
            self.spec.rss_pages, self.zipf_skew, permute=not self.mix.latest,
            rng=np.random.default_rng(self.seed),
        )

    def _keys(self, n: int, rng: np.random.Generator) -> np.ndarray:
        assert self._sampler is not None
        ranks = self._sampler.sample(n, rng)
        if self.mix.latest:
            # "latest": rank 0 is the most recently inserted key —
            # map ranks onto the tail of the key space.
            return (self.spec.rss_pages - 1 - ranks).astype(np.int64)
        return ranks

    def _thread_access(self, tid: int, n: int, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        assert self.vma is not None
        rng = np.random.default_rng((self.seed, epoch, tid, 41))
        m = self.mix
        ops = rng.choice(
            5, size=n, p=[m.read, m.update, m.insert, m.scan, m.rmw]
        )
        vpn_chunks: list[np.ndarray] = []
        write_chunks: list[np.ndarray] = []

        n_read = int((ops == 0).sum())
        if n_read:
            vpn_chunks.append(self._keys(n_read, rng))
            write_chunks.append(np.zeros(n_read, dtype=bool))

        n_update = int((ops == 1).sum())
        if n_update:
            vpn_chunks.append(self._keys(n_update, rng))
            write_chunks.append(np.ones(n_update, dtype=bool))

        n_insert = int((ops == 2).sum())
        if n_insert:
            # Inserts append at the key-space tail.
            tail = self.spec.rss_pages - 1 - rng.integers(0, max(self.spec.rss_pages // 50, 1), size=n_insert)
            vpn_chunks.append(tail.astype(np.int64))
            write_chunks.append(np.ones(n_insert, dtype=bool))

        n_scan = int((ops == 3).sum())
        if n_scan:
            starts = self._keys(n_scan, rng)
            lengths = rng.integers(1, MAX_SCAN_LEN + 1, size=n_scan)
            runs = [
                np.arange(s, min(s + l, self.spec.rss_pages), dtype=np.int64)
                for s, l in zip(starts.tolist(), lengths.tolist())
            ]
            scan_vpns = np.concatenate(runs) if runs else np.empty(0, dtype=np.int64)
            vpn_chunks.append(scan_vpns)
            write_chunks.append(np.zeros(scan_vpns.size, dtype=bool))

        n_rmw = int((ops == 4).sum())
        if n_rmw:
            keys = self._keys(n_rmw, rng)
            vpn_chunks.append(np.repeat(keys, 2))
            write_chunks.append(np.tile([False, True], n_rmw))

        vpns = self.vma.start_vpn + np.concatenate(vpn_chunks)
        writes = np.concatenate(write_chunks)
        return vpns, writes

    def write_fraction(self) -> float:
        m = self.mix
        # rmw contributes one read + one write per op; scans average
        # (1 + MAX_SCAN_LEN)/2 reads per op.
        scan_reads = m.scan * (1 + MAX_SCAN_LEN) / 2.0
        writes = m.update + m.insert + m.rmw
        total = m.read + m.update + m.insert + scan_reads + 2 * m.rmw
        return writes / total

    def wss_pages(self) -> int:
        return max(int(self.spec.rss_pages * 0.2), 1)
