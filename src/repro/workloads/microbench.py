"""The Nomad-style WSS/RSS microbenchmark (paper §5.2, Fig. 8).

"1) allocating data to specific segments of the tiered memory; 2)
running tests with various working set size (WSS) and RSS values; and 3)
generating memory accesses to the WSS data that mimic real-world memory
access patterns with a Zipfian distribution."

Three standard scenarios (small / medium / large WSS relative to the
fast tier) are provided via :func:`scenario`.  The read ratio is a
parameter so the same generator drives the Fig. 4 sync/async sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import ServiceClass
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.zipf import ZipfSampler


class MicrobenchWorkload(Workload):
    """Zipfian accesses over a WSS subset of an RSS region."""

    def __init__(
        self,
        spec: WorkloadSpec | None = None,
        seed: int = 0,
        *,
        wss_pages: int | None = None,
        zipf_skew: float = 0.99,
        read_ratio: float = 0.8,
        shared_threads: bool = True,
    ) -> None:
        if spec is None:
            spec = WorkloadSpec(name="microbench", service=ServiceClass.BE, rss_pages=4096)
        super().__init__(spec, seed)
        self._wss = wss_pages if wss_pages is not None else spec.rss_pages // 4
        if self._wss <= 0 or self._wss > spec.rss_pages:
            raise ValueError("WSS must be in (0, RSS]")
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0,1]")
        self.zipf_skew = zipf_skew
        self.read_ratio = read_ratio
        #: shared: all threads hit one WSS; private: disjoint per-thread slices
        self.shared_threads = shared_threads
        self._sampler: ZipfSampler | None = None

    def _on_bind(self) -> None:
        support = self._wss if self.shared_threads else max(self._wss // self.spec.n_threads, 1)
        self._sampler = ZipfSampler(support, self.zipf_skew, permute=True, rng=np.random.default_rng(self.seed))

    def _thread_access(self, tid: int, n: int, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        assert self._sampler is not None and self.vma is not None
        rng = np.random.default_rng((self.seed, epoch, tid, 29))
        offsets = self._sampler.sample(n, rng)
        if self.shared_threads:
            vpns = self.vma.start_vpn + offsets
        else:
            slice_pages = max(self._wss // self.spec.n_threads, 1)
            vpns = self.vma.start_vpn + tid * slice_pages + offsets
        writes = rng.random(n) >= self.read_ratio
        return vpns, writes

    def first_touch_tid(self, offset: int) -> int:
        """Private mode: each thread faults in its own WSS slice."""
        if self.shared_threads:
            return offset % self.spec.n_threads
        slice_pages = max(self._wss // self.spec.n_threads, 1)
        return min(offset // slice_pages, self.spec.n_threads - 1)

    def write_fraction(self) -> float:
        return 1.0 - self.read_ratio

    def wss_pages(self) -> int:
        return self._wss


def scenario(
    name: str,
    fast_tier_pages: int,
    *,
    seed: int = 0,
    read_ratio: float = 0.8,
    n_threads: int = 8,
    accesses_per_thread: int = 20_000,
    populate_tier: int = 1,
) -> MicrobenchWorkload:
    """The Fig. 8 scenarios, sized relative to the fast tier.

    * ``small``  — WSS fits comfortably (50% of fast tier).
    * ``medium`` — WSS ≈ fast tier (100%); tiering is exercised hard.
    * ``large``  — WSS is 2× the fast tier; most accesses must miss.

    RSS is 4× WSS in every case, so plenty of genuinely cold data
    exists; data starts on the slow tier (``populate_tier=1``) per the
    Nomad methodology, so promotion is actually exercised.
    """
    ratios = {"small": 0.5, "medium": 1.0, "large": 2.0}
    if name not in ratios:
        raise ValueError(f"unknown scenario {name!r}; pick from {sorted(ratios)}")
    wss = max(int(fast_tier_pages * ratios[name]), 8)
    spec = WorkloadSpec(
        name=f"microbench-{name}",
        service=ServiceClass.BE,
        rss_pages=wss * 4,
        n_threads=n_threads,
        accesses_per_thread=accesses_per_thread,
        populate_tier=populate_tier,
    )
    return MicrobenchWorkload(spec, seed=seed, wss_pages=wss, read_ratio=read_ratio)
