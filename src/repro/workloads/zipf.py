"""Vectorized bounded-Zipf sampling.

``numpy``'s built-in ``Generator.zipf`` is unbounded and slow for the
truncated distributions tiered-memory studies use.  We precompute the
normalized CDF of ``P(k) ∝ (k+1)^{-s}`` over ``k ∈ [0, n)`` once and
sample whole batches with a single ``searchsorted`` — O(log n) per
sample, fully vectorized, deterministic under a seeded generator.
"""

from __future__ import annotations

import numpy as np

from repro import kernels


class ZipfSampler:
    """Bounded Zipf(s) over ``[0, n)`` with optional permutation.

    Parameters
    ----------
    n:
        Support size (e.g. pages in the working set).
    s:
        Skew exponent; ``s=0`` degenerates to uniform.
    permute:
        When true, ranks are shuffled so hot items are scattered across
        the index space (realistic for hash-addressed stores); when
        false, index 0 is the hottest (convenient for tests).
    rng:
        Generator for the permutation draw (sampling itself takes the
        generator per call).
    """

    #: inverse-CDF lookup-table resolution (power of two: the bucket
    #: boundaries b/M are then exact binary floats, so the bracket
    #: invariant below holds with equality, not approximately)
    _LUT_BUCKETS = 1 << 16

    def __init__(self, n: int, s: float = 0.99, *, permute: bool = False, rng: np.random.Generator | None = None) -> None:
        if n <= 0:
            raise ValueError("support size must be positive")
        if s < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.s = s
        weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Bucket b of the LUT brackets searchsorted's answer for any
        # u in [b/M, (b+1)/M): monotonicity gives
        #   lut[b] <= searchsorted(cdf, u, 'right') <= lut[b+1].
        m = self._LUT_BUCKETS
        grid = np.arange(m + 1, dtype=np.float64) / m
        self._lut = np.searchsorted(self._cdf, grid, side="right").astype(np.int64)
        if permute:
            gen = rng if rng is not None else np.random.default_rng(0)
            self._perm: np.ndarray | None = gen.permutation(n)
        else:
            self._perm = None

    def _invert(self, u: np.ndarray) -> np.ndarray:
        """Exactly ``np.searchsorted(self._cdf, u, side='right')``.

        The LUT narrows each sample to a short index range in O(1);
        the few samples whose bucket straddles a CDF step finish with a
        vectorized bisection over that (tiny) range.  The result is the
        same integer ``searchsorted`` returns for every input — callers
        rely on that for bit-identical RNG-stream consumption.  The
        arithmetic lives in the kernel tier (both backends return the
        exact ``searchsorted`` integer for every input).
        """
        return kernels.zipf_invert(self._cdf, self._lut, self._LUT_BUCKETS, u)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` indices in ``[0, n)``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return np.empty(0, dtype=np.int64)
        u = rng.random(size)
        ranks = self._invert(u)
        np.clip(ranks, 0, self.n - 1, out=ranks)
        if self._perm is not None:
            return self._perm[ranks]
        return ranks

    def pmf(self) -> np.ndarray:
        """Probability of each index (rank order, pre-permutation)."""
        p = np.empty(self.n)
        p[0] = self._cdf[0]
        p[1:] = np.diff(self._cdf)
        return p

    def hot_fraction(self, top_frac: float) -> float:
        """Probability mass on the hottest ``top_frac`` of items."""
        if not 0.0 < top_frac <= 1.0:
            raise ValueError("top_frac must be in (0, 1]")
        k = max(int(self.n * top_frac), 1)
        return float(self._cdf[k - 1])
