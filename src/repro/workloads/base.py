"""Workload interface for the epoch-driven harness.

A workload owns a virtual region (its RSS) inside a process the harness
creates, and produces per-thread access batches each epoch.  Per-thread
generation matters: Vulcan's page classification distinguishes *which*
threads touch a page, so generators partition or share their working
sets across threads explicitly.

The issue model separates *intent* from *achievement*: a workload asks
to issue ``issue_rate(epoch)`` × budget accesses; the harness converts
achieved memory latency into achieved throughput (the performance
metric).  ``issue_rate`` < 1 models LC burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ServiceClass
from repro.mm.address_space import Vma
from repro.profiling.base import AccessBatch, EpochPlan


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description the harness uses to set a workload up."""

    name: str
    service: ServiceClass
    rss_pages: int
    n_threads: int = 8
    start_epoch: int = 0
    #: requested accesses per thread per epoch at issue_rate = 1
    accesses_per_thread: int = 20_000
    #: tier the RSS is faulted into at admission (0 = fast-first with
    #: fallback, Linux default; 1 = slow, as in the Nomad microbenchmark
    #: that "allocates data to specific segments of the tiered memory")
    populate_tier: int = 0


class Workload:
    """Base class; subclasses implement :meth:`_thread_vpns`."""

    #: epochs of plans generated per :meth:`planned_epoch` burst.  The
    #: harness sets this: static runs prefetch (every plan is a pure
    #: function of (seed, epoch, spec), so building several back to
    #: back batches the Zipf LUT sampling across epochs); the scenario
    #: engine pins it to 1 because scripted events may reshape a
    #: workload between epochs, and a prefetched plan would have
    #: consumed ``issue_rate`` RNG draws the reshaped generator should
    #: have made.
    plan_horizon = 1

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self.pid: int | None = None
        self.vma: Vma | None = None
        self._rng = np.random.default_rng(seed)
        #: epoch -> (issue_rate, EpochPlan) built by the current burst
        self._plan_cache: dict[int, tuple[float, EpochPlan]] = {}
        #: per-burst-slot reusable plan buffers (allocation-free epochs)
        self._plan_slots: list[dict] = []
        self._plan_tids: np.ndarray | None = None

    # -- harness binding -----------------------------------------------------

    def bind(self, pid: int, vma: Vma) -> None:
        """Called once by the harness after the VMA is created."""
        self.pid = pid
        self.vma = vma
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook (e.g. build index structures over the VMA)."""

    def reshape(self, attrs: dict | None = None, reseed: int | None = None) -> None:
        """Scenario phase shift: mutate generator knobs on a live workload.

        ``attrs`` assigns existing generator attributes (e.g. a
        Memcached ``hot_frac`` resize or a Zipf skew change); ``reseed``
        replaces the layout seed.  Either way :meth:`_on_bind` re-runs
        so derived structures (hot-set permutations, samplers) are
        rebuilt over the *same* VMA — the process, its pages, and its
        profile history all survive; only future traffic changes shape.
        """
        if self.pid is None or self.vma is None:
            raise RuntimeError(f"workload {self.name!r} not bound to a process")
        for name, value in (attrs or {}).items():
            if name.startswith("_") or not hasattr(self, name):
                raise AttributeError(f"{type(self).__name__} has no reshapeable attribute {name!r}")
            setattr(self, name, value)
        if reseed is not None:
            self.seed = int(reseed)
        # Any prefetched plans were built by the pre-reshape generator;
        # they must not outlive it.
        self._plan_cache.clear()
        self._on_bind()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def service(self) -> ServiceClass:
        return self.spec.service

    # -- per-epoch generation ---------------------------------------------------

    def issue_rate(self, epoch: int) -> float:
        """Fraction of the access budget the workload tries to use this
        epoch (1.0 = saturating).  Default: saturating (BE behaviour)."""
        return 1.0

    def generate(self, epoch: int) -> list[AccessBatch]:
        """Produce one access batch per thread for this epoch."""
        if self.pid is None or self.vma is None:
            raise RuntimeError(f"workload {self.name!r} not bound to a process")
        batches: list[AccessBatch] = []
        n = int(self.spec.accesses_per_thread * self.issue_rate(epoch))
        for tid in range(self.spec.n_threads):
            if n <= 0:
                vpns = np.empty(0, dtype=np.int64)
                writes = np.empty(0, dtype=bool)
            else:
                vpns, writes = self._thread_access(tid, n, epoch)
            batches.append(AccessBatch(pid=self.pid, tid=tid, vpns=vpns, is_write=writes))
        return batches

    def plan_epoch(self, epoch: int) -> EpochPlan:
        """Produce the epoch's traffic as one vectorized :class:`EpochPlan`.

        Consumes exactly the RNG stream :meth:`generate` would — the
        same single ``issue_rate`` call, then ``_thread_access`` per tid
        in order — so batched and legacy runs are bit-identical.
        """
        if self.pid is None or self.vma is None:
            raise RuntimeError(f"workload {self.name!r} not bound to a process")
        n = int(self.spec.accesses_per_thread * self.issue_rate(epoch))
        n_threads = self.spec.n_threads
        offsets = np.zeros(n_threads + 1, dtype=np.int64)
        if n <= 0:
            return EpochPlan(
                pid=self.pid,
                vpns=np.empty(0, dtype=np.int64),
                is_write=np.empty(0, dtype=bool),
                offsets=offsets,
                tids=np.arange(n_threads, dtype=np.int64),
            )
        parts_v: list[np.ndarray] = []
        parts_w: list[np.ndarray] = []
        for tid in range(n_threads):
            vpns, writes = self._thread_access(tid, n, epoch)
            parts_v.append(vpns)
            parts_w.append(writes)
            offsets[tid + 1] = offsets[tid] + vpns.size
        return EpochPlan(
            pid=self.pid,
            vpns=np.concatenate(parts_v),
            is_write=np.concatenate(parts_w),
            offsets=offsets,
            tids=np.arange(n_threads, dtype=np.int64),
        )

    def planned_epoch(self, epoch: int) -> tuple[float, EpochPlan]:
        """Burst-prefetching, allocation-free variant of the harness's
        ``issue_rate(epoch)`` + ``plan_epoch(epoch)`` pair.

        On a cache miss the next ``plan_horizon`` epochs of plans are
        built back to back into a rotating pool of reusable buffers
        (one slot per horizon step, so a cached plan is never
        overwritten before its epoch consumes it).  RNG draw order is
        preserved exactly: for each prefetched epoch the harness-side
        ``issue_rate`` draw happens first, then the plan's own internal
        draw — the same ``A_e, B_e, A_{e+1}, B_{e+1}, ...`` sequence a
        non-prefetching run makes.  The returned plan's arrays are
        *views into reused buffers*: valid until ``plan_horizon``
        further epochs have been planned, which the epoch-driven
        harness guarantees by consuming each plan within its epoch.
        """
        hit = self._plan_cache.pop(epoch, None)
        if hit is not None:
            return hit
        # Stale prefetch (epoch jumped, or reshape cleared the cache):
        # drop and rebuild from here.
        self._plan_cache.clear()
        horizon = max(int(self.plan_horizon), 1)
        for i in range(horizon):
            e = epoch + i
            issue = self.issue_rate(e)
            self._plan_cache[e] = (issue, self._plan_into(i, e))
        return self._plan_cache.pop(epoch)

    def _plan_into(self, slot_i: int, epoch: int) -> EpochPlan:
        """Build epoch ``epoch``'s plan into reusable buffer slot
        ``slot_i`` — same traffic and RNG stream as :meth:`plan_epoch`,
        without the per-epoch concatenate allocations."""
        if self.pid is None or self.vma is None:
            raise RuntimeError(f"workload {self.name!r} not bound to a process")
        n = int(self.spec.accesses_per_thread * self.issue_rate(epoch))
        nt = self.spec.n_threads
        while len(self._plan_slots) <= slot_i:
            self._plan_slots.append(
                {
                    "vpns": np.empty(0, dtype=np.int64),
                    "writes": np.empty(0, dtype=bool),
                    "offsets": np.zeros(nt + 1, dtype=np.int64),
                }
            )
        slot = self._plan_slots[slot_i]
        offsets = slot["offsets"]
        if offsets.size != nt + 1:
            offsets = slot["offsets"] = np.zeros(nt + 1, dtype=np.int64)
        if self._plan_tids is None or self._plan_tids.size != nt:
            self._plan_tids = np.arange(nt, dtype=np.int64)
        offsets[0] = 0
        if n <= 0:
            offsets[:] = 0
            return EpochPlan(
                pid=self.pid,
                vpns=slot["vpns"][:0],
                is_write=slot["writes"][:0],
                offsets=offsets,
                tids=self._plan_tids,
            )
        cap = n * nt
        if slot["vpns"].size < cap:
            slot["vpns"] = np.empty(cap, dtype=np.int64)
            slot["writes"] = np.empty(cap, dtype=bool)
        buf_v = slot["vpns"]
        buf_w = slot["writes"]
        pos = 0
        for tid in range(nt):
            vpns, writes = self._thread_access(tid, n, epoch)
            m = vpns.size
            buf_v[pos : pos + m] = vpns
            buf_w[pos : pos + m] = writes
            pos += m
            offsets[tid + 1] = pos
        return EpochPlan(
            pid=self.pid,
            vpns=buf_v[:pos],
            is_write=buf_w[:pos],
            offsets=offsets,
            tids=self._plan_tids,
        )

    def _thread_access(self, tid: int, n: int, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (vpns, is_write) for one thread's epoch traffic."""
        raise NotImplementedError

    def first_touch_tid(self, offset: int) -> int:
        """Which thread demand-faults page ``offset`` of the VMA in.

        First touch sets PTE ownership (§3.4), so this must reflect the
        application's real initialization pattern: data-parallel apps
        fault their own shards in; shared structures are touched by
        whichever thread gets there first (modeled round-robin).
        """
        return offset % self.spec.n_threads

    # -- metadata the harness/policies may query ---------------------------------

    def write_fraction(self) -> float:
        """Nominal overall write fraction (for documentation/tests)."""
        return 0.0

    def wss_pages(self) -> int:
        """Nominal working-set size in pages (defaults to RSS)."""
        return self.spec.rss_pages
