"""Liblinear-shaped BE workload (paper §5.3 / Table 2).

"Linear classification of the KDD12 dataset" at 69 GB RSS.  Sparse
linear training has three access components:

* **dataset scans** — every example streamed once per pass (sequential,
  read-only, private per training shard): the bulk of the footprint,
  individually low-reuse but *persistently touched*;
* **feature weights** — per nonzero feature of every example, the weight
  vector entry is read and updated.  KDD12's feature popularity is
  heavy-tailed, so a sizeable slab of feature pages sees high, sustained
  traffic — this is what makes Liblinear "appear persistently hot" to
  absolute-count profilers and monopolize fast memory (Observation #1);
* threads share the feature region (hogwild-style) and own disjoint
  example shards.

The workload saturates its access budget (BE: "sustained and frequent
memory accesses") — co-location experiments typically give it a higher
intensity than the LC co-runner via ``accesses_per_thread``.
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import ServiceClass
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.zipf import ZipfSampler


class LiblinearWorkload(Workload):
    """Sharded dataset scans + Zipf-popular shared feature weights."""

    def __init__(
        self,
        spec: WorkloadSpec | None = None,
        seed: int = 0,
        *,
        feature_region_frac: float = 0.20,
        feature_access_frac: float = 0.5,
        feature_skew: float = 0.6,
        feature_write_fraction: float = 0.5,
    ) -> None:
        if spec is None:
            spec = WorkloadSpec(name="liblinear", service=ServiceClass.BE, rss_pages=6900)
        super().__init__(spec, seed)
        if not 0.0 < feature_region_frac < 1.0:
            raise ValueError("feature_region_frac must be in (0,1)")
        if not 0.0 <= feature_access_frac <= 1.0:
            raise ValueError("feature_access_frac must be in [0,1]")
        self.feature_region_frac = feature_region_frac
        self.feature_access_frac = feature_access_frac
        self.feature_skew = feature_skew
        self.feature_write_fraction = feature_write_fraction
        self._feature_pages = 0
        self._data_pages = 0
        self._feature_sampler: ZipfSampler | None = None

    def _on_bind(self) -> None:
        n = self.spec.rss_pages
        self._feature_pages = max(int(n * self.feature_region_frac), 1)
        self._data_pages = n - self._feature_pages
        self._feature_sampler = ZipfSampler(
            self._feature_pages,
            self.feature_skew,
            permute=True,
            rng=np.random.default_rng(self.seed),
        )

    def _thread_access(self, tid: int, n: int, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        assert self.vma is not None and self._feature_sampler is not None
        rng = np.random.default_rng((self.seed, epoch, tid, 13))
        n_feat = int(n * self.feature_access_frac)
        n_scan = n - n_feat

        # Sequential scan of this thread's private shard, position
        # carried across epochs (one training pass spans many epochs).
        shard_pages = max(self._data_pages // self.spec.n_threads, 1)
        shard_start = self.vma.start_vpn + self._feature_pages + tid * shard_pages
        shard_end = min(shard_start + shard_pages, self.vma.end_vpn)
        span = max(shard_end - shard_start, 1)
        pos = (epoch * n_scan + np.arange(n_scan)) % span
        scan_vpns = shard_start + pos
        scan_writes = np.zeros(n_scan, dtype=bool)

        # Shared feature weights: popularity-skewed read-modify-writes.
        feat_vpns = self.vma.start_vpn + self._feature_sampler.sample(n_feat, rng)
        feat_writes = rng.random(n_feat) < self.feature_write_fraction

        vpns = np.concatenate([scan_vpns, feat_vpns])
        writes = np.concatenate([scan_writes, feat_writes])
        return vpns, writes

    def first_touch_tid(self, offset: int) -> int:
        """Shards are faulted in by their training thread; the shared
        feature region by whichever thread initializes it (round-robin)."""
        if offset < self._feature_pages:
            return offset % self.spec.n_threads
        shard_pages = max(self._data_pages // self.spec.n_threads, 1)
        return min((offset - self._feature_pages) // shard_pages, self.spec.n_threads - 1)

    def write_fraction(self) -> float:
        return self.feature_access_frac * self.feature_write_fraction

    def wss_pages(self) -> int:
        """Popular feature pages plus the stripes being streamed."""
        if not self._feature_pages:
            return self.spec.rss_pages
        hot_features = max(int(self._feature_pages * 0.5), 1)
        return hot_features + self.spec.n_threads * 64
