"""PageRank-shaped BE workload (paper §5.3 / Table 2).

"A memory- and compute-intensive graph algorithm execution" at 42 GB
RSS.  Large-scale graph processing is "intensive irregular random
access" (paper §1): per super-step, every vertex pulls its in-neighbors'
ranks — index-array gathers whose page popularity follows the graph's
degree distribution.

Shape decisions:

* A synthetic power-law (Zipf-degree) graph stands in for the web graph;
  a vertex's *page* popularity equals its out-degree share, giving a
  heavy-tailed but broader-than-Memcached hot set.
* The VMA splits into an adjacency region (~85%, read-only gathers) and
  a rank region (~15%, swept sequentially with writes for the new
  ranks).
* Threads own disjoint vertex ranges (edge-parallel PageRank) — their
  *rank writes* are private, while hub-adjacency reads are shared.
* Steady full-rate issue (BE batch job).
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import ServiceClass
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.zipf import ZipfSampler


class PageRankWorkload(Workload):
    """Degree-skewed gathers over adjacency + sequential rank sweeps."""

    def __init__(
        self,
        spec: WorkloadSpec | None = None,
        seed: int = 0,
        *,
        degree_skew: float = 0.8,
        rank_region_frac: float = 0.15,
        gather_fraction: float = 0.8,
    ) -> None:
        if spec is None:
            spec = WorkloadSpec(name="pagerank", service=ServiceClass.BE, rss_pages=4200)
        super().__init__(spec, seed)
        if not 0.0 < rank_region_frac < 1.0:
            raise ValueError("rank_region_frac must be in (0,1)")
        self.degree_skew = degree_skew
        self.rank_region_frac = rank_region_frac
        self.gather_fraction = gather_fraction
        self._adj_sampler: ZipfSampler | None = None
        self._adj_pages = 0
        self._rank_pages = 0

    def _on_bind(self) -> None:
        n = self.spec.rss_pages
        self._rank_pages = max(int(n * self.rank_region_frac), 1)
        self._adj_pages = n - self._rank_pages
        self._adj_sampler = ZipfSampler(
            self._adj_pages, self.degree_skew, permute=True, rng=np.random.default_rng(self.seed)
        )

    def _thread_access(self, tid: int, n: int, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        assert self._adj_sampler is not None and self.vma is not None
        rng = np.random.default_rng((self.seed, epoch, tid, 7))
        n_gather = int(n * self.gather_fraction)
        n_sweep = n - n_gather

        # Irregular gathers over the shared adjacency region.
        gather_vpns = self.vma.start_vpn + self._adj_sampler.sample(n_gather, rng)
        gather_writes = np.zeros(n_gather, dtype=bool)

        # Sequential sweep over this thread's private rank slice.
        slice_pages = max(self._rank_pages // self.spec.n_threads, 1)
        slice_start = self.vma.start_vpn + self._adj_pages + tid * slice_pages
        slice_end = min(slice_start + slice_pages, self.vma.end_vpn)
        span = max(slice_end - slice_start, 1)
        pos = (epoch * n_sweep + np.arange(n_sweep)) % span
        sweep_vpns = slice_start + pos
        # Rank updates: read old + write new → half the sweep writes.
        sweep_writes = rng.random(n_sweep) < 0.5

        vpns = np.concatenate([gather_vpns, sweep_vpns])
        writes = np.concatenate([gather_writes, sweep_writes])
        return vpns, writes

    def first_touch_tid(self, offset: int) -> int:
        """Rank slices are faulted in by their owning thread; the shared
        adjacency region by the (parallel) graph loader, round-robin."""
        if offset < self._adj_pages:
            return offset % self.spec.n_threads
        slice_pages = max(self._rank_pages // self.spec.n_threads, 1)
        return min((offset - self._adj_pages) // slice_pages, self.spec.n_threads - 1)

    def write_fraction(self) -> float:
        return (1.0 - self.gather_fraction) * 0.5

    def wss_pages(self) -> int:
        """Hot adjacency hubs + the rank vectors."""
        hub_pages = int(self._adj_pages * 0.3) if self._adj_pages else int(self.spec.rss_pages * 0.25)
        return hub_pages + self._rank_pages
