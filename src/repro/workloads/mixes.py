"""Co-location scenario builders (paper §5.3 / Table 2).

The headline experiment: Memcached starts warmed at t=0, PageRank joins
at t=50 s, Liblinear at t=110 s, each pinned to 8 dedicated cores with 8
threads.  RSS values follow Table 2 at the DESIGN.md §4 scale
(1 simulated page ≙ 10 MB).
"""

from __future__ import annotations

from repro.sim.config import SimulationConfig
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.liblinear import LiblinearWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.pagerank import PageRankWorkload

#: Table 2 resident set sizes.
PAPER_RSS_BYTES = {
    "memcached": 51 * 10**9,
    "pagerank": 42 * 10**9,
    "liblinear": 69 * 10**9,
}

#: §5.3 start times, seconds.
PAPER_START_SECONDS = {
    "memcached": 0,
    "pagerank": 50,
    "liblinear": 110,
}

#: Relative memory-access intensity.  BE batch jobs saturate memory
#: bandwidth ("sustained and frequent memory accesses", Observation #1);
#: the LC service is request-bound.  Applied to accesses_per_thread.
INTENSITY = {
    "memcached": 1.0,
    "pagerank": 2.0,
    "liblinear": 3.0,
}


def paper_colocation_mix(
    sim: SimulationConfig | None = None,
    *,
    seed: int = 0,
    n_threads: int = 8,
    accesses_per_thread: int | None = None,
) -> list[Workload]:
    """The three-application mix of Figures 9 and 10.

    Start epochs derive from the paper's start seconds and the epoch
    length; RSS pages from Table 2 bytes and the page unit.
    """
    cfg = sim if sim is not None else SimulationConfig()
    apt = accesses_per_thread if accesses_per_thread is not None else 20_000

    def spec(name: str, service) -> WorkloadSpec:
        return WorkloadSpec(
            name=name,
            service=service,
            rss_pages=cfg.pages_for(PAPER_RSS_BYTES[name]),
            n_threads=n_threads,
            start_epoch=int(PAPER_START_SECONDS[name] / cfg.epoch_seconds),
            accesses_per_thread=int(apt * INTENSITY[name]),
        )

    from repro.core.classify import ServiceClass

    return [
        MemcachedWorkload(spec("memcached", ServiceClass.LC), seed=seed),
        PageRankWorkload(spec("pagerank", ServiceClass.BE), seed=seed + 1),
        LiblinearWorkload(spec("liblinear", ServiceClass.BE), seed=seed + 2),
    ]


def hugeheap_mix(
    sim: SimulationConfig,
    *,
    seed: int = 0,
    n_threads: int = 8,
    accesses_per_thread: int | None = None,
) -> list[Workload]:
    """The Table 2 mix, all admitted at t=0, for fine-grained page units.

    Used by ``repro bench --hugeheap``: with a ~150 kB page unit the
    Table 2 RSS values fault in over a million simulated pages, which is
    what the chunked frame stores are sized against.  Starting every
    workload at epoch 0 makes the full heap materialize up front, so
    short benchmark runs still exercise the full store.
    """
    apt = accesses_per_thread if accesses_per_thread is not None else 20_000
    from repro.core.classify import ServiceClass

    def spec(name: str, service) -> WorkloadSpec:
        return WorkloadSpec(
            name=name,
            service=service,
            rss_pages=sim.pages_for(PAPER_RSS_BYTES[name]),
            n_threads=n_threads,
            start_epoch=0,
            accesses_per_thread=int(apt * INTENSITY[name]),
        )

    return [
        MemcachedWorkload(spec("memcached", ServiceClass.LC), seed=seed),
        PageRankWorkload(spec("pagerank", ServiceClass.BE), seed=seed + 1),
        LiblinearWorkload(spec("liblinear", ServiceClass.BE), seed=seed + 2),
    ]


def dilemma_pair(
    sim: SimulationConfig | None = None,
    *,
    seed: int = 0,
    n_threads: int = 8,
    accesses_per_thread: int | None = None,
) -> list[Workload]:
    """The Fig. 1 pair: Memcached (LC) + Liblinear (BE), both from t=0."""
    cfg = sim if sim is not None else SimulationConfig()
    apt = accesses_per_thread if accesses_per_thread is not None else 20_000
    from repro.core.classify import ServiceClass

    mc = MemcachedWorkload(
        WorkloadSpec(
            name="memcached",
            service=ServiceClass.LC,
            rss_pages=cfg.pages_for(PAPER_RSS_BYTES["memcached"]),
            n_threads=n_threads,
            start_epoch=0,
            accesses_per_thread=int(apt * INTENSITY["memcached"]),
        ),
        seed=seed,
    )
    ll = LiblinearWorkload(
        WorkloadSpec(
            name="liblinear",
            service=ServiceClass.BE,
            rss_pages=cfg.pages_for(PAPER_RSS_BYTES["liblinear"]),
            n_threads=n_threads,
            start_epoch=0,
            accesses_per_thread=int(apt * INTENSITY["liblinear"]),
        ),
        seed=seed + 1,
    )
    return [mc, ll]
