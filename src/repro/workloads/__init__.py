"""Application substrate: synthetic workloads with the paper's shapes.

The paper's applications (Table 2) can't ship with a reproduction, so
each is replaced by a generator with the same access *shape* at the
DESIGN.md §4 scale factor:

* :class:`MemcachedWorkload` — LC key-value store: 90% GET / 10% SET,
  a hot key set receiving 90% of traffic, bursty issue rate.
* :class:`PageRankWorkload` — BE graph analytics: degree-skewed random
  access over adjacency data plus sequential rank-vector sweeps.
* :class:`LiblinearWorkload` — BE linear classification over a
  KDD12-sized design matrix: relentless streaming scans, the fast-tier
  monopolist of Observation #1.
* :class:`MicrobenchWorkload` — the Nomad-style WSS/RSS Zipfian
  microbenchmark used by Fig. 8.
"""

from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.liblinear import LiblinearWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.microbench import MicrobenchWorkload
from repro.workloads.mixes import PAPER_RSS_BYTES, paper_colocation_mix
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.ycsb import YCSB_MIXES, YcsbWorkload
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Workload",
    "WorkloadSpec",
    "ZipfSampler",
    "MemcachedWorkload",
    "PageRankWorkload",
    "LiblinearWorkload",
    "MicrobenchWorkload",
    "paper_colocation_mix",
    "PAPER_RSS_BYTES",
    "YcsbWorkload",
    "YCSB_MIXES",
]
