"""Memcached-shaped LC workload (paper §5.3 / Table 2).

"A high-performance key-value store with 90% GETs, 10% SETs, and a hot
key set accessed 90% of the time", driven by YCSB-C at 51 GB RSS.

Shape decisions:

* The key space maps onto the VMA's pages hash-style (hot keys
  scattered, not clustered) — a permuted Zipf over the full RSS whose
  skew is tuned so the hottest ``hot_frac`` of pages receive
  ``hot_mass`` of the traffic (defaults 10% / 90%).
* All threads serve the same key space (server threads pull from one
  connection pool) → pages are *shared* across threads, read-mostly.
* LC burstiness: the issue rate oscillates between a low idle floor and
  full bursts (diurnal-ish square wave + jitter), so mean utilization
  stays moderate and burstiness high — the signals
  :func:`repro.core.classify.classify_service` keys on.
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import ServiceClass
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.zipf import ZipfSampler


class MemcachedWorkload(Workload):
    """YCSB-C-style KV service: hot keyset, 90/10 read/write, bursty.

    The paper's description is a two-tier popularity model — "a hot key
    set accessed 90% of the time" — so traffic splits Bernoulli(0.9)
    between the hot set (mild Zipf within: all hot pages carry
    comparable heat) and the cold remainder (uniform).  The comparable
    per-page heat inside the hot set is what makes the cold-page dilemma
    sharp: a global absolute-count threshold admits or evicts the keyset
    *wholesale* once a co-runner's traffic brackets it.
    """

    def __init__(
        self,
        spec: WorkloadSpec | None = None,
        seed: int = 0,
        *,
        get_fraction: float = 0.9,
        hot_frac: float = 0.10,
        hot_mass: float = 0.90,
        burst_period_epochs: int = 8,
        idle_rate: float = 0.35,
    ) -> None:
        if spec is None:
            spec = WorkloadSpec(name="memcached", service=ServiceClass.LC, rss_pages=5100)
        super().__init__(spec, seed)
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0,1]")
        self.get_fraction = get_fraction
        self.hot_frac = hot_frac
        self.hot_mass = hot_mass
        self.burst_period_epochs = burst_period_epochs
        self.idle_rate = idle_rate
        self._hot_pages: np.ndarray | None = None
        self._cold_pages: np.ndarray | None = None
        self._hot_sampler: ZipfSampler | None = None

    def _on_bind(self) -> None:
        n = self.spec.rss_pages
        n_hot = max(int(n * self.hot_frac), 1)
        # Hash-addressed store: hot keys scatter across the page space.
        perm = np.random.default_rng(self.seed).permutation(n).astype(np.int64)
        self._hot_pages = perm[:n_hot]
        self._cold_pages = perm[n_hot:] if n_hot < n else perm[:0]
        # Mild skew within the keyset; every hot page stays clearly hot.
        self._hot_sampler = ZipfSampler(n_hot, 0.3)

    def issue_rate(self, epoch: int) -> float:
        """Square-wave bursts with jitter: LC services idle between peaks."""
        phase = epoch % self.burst_period_epochs
        base = 1.0 if phase < self.burst_period_epochs // 2 else self.idle_rate
        jitter = float(self._rng.uniform(-0.05, 0.05))
        return float(np.clip(base + jitter, 0.05, 1.0))

    def _thread_access(self, tid: int, n: int, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        assert self._hot_pages is not None and self._hot_sampler is not None
        assert self._cold_pages is not None and self.vma is not None
        rng = np.random.default_rng((self.seed, epoch, tid))
        to_hot = rng.random(n) < self.hot_mass
        n_hot = int(to_hot.sum())
        offsets = np.empty(n, dtype=np.int64)
        offsets[to_hot] = self._hot_pages[self._hot_sampler.sample(n_hot, rng)]
        n_cold = n - n_hot
        if n_cold:
            if self._cold_pages.size:
                offsets[~to_hot] = self._cold_pages[rng.integers(0, self._cold_pages.size, size=n_cold)]
            else:
                offsets[~to_hot] = self._hot_pages[rng.integers(0, self._hot_pages.size, size=n_cold)]
        vpns = self.vma.start_vpn + offsets
        # SETs are writes; GETs reads.  Same key space for both.
        writes = rng.random(n) >= self.get_fraction
        return vpns, writes

    def write_fraction(self) -> float:
        return 1.0 - self.get_fraction

    def wss_pages(self) -> int:
        """The hot keyset is the effective working set."""
        return max(int(self.spec.rss_pages * self.hot_frac), 1)
