"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run a co-location experiment and print the steady-state summary::

        python -m repro run --policy vulcan --epochs 60
        python -m repro run --policy memtis --mix dilemma --epochs 25

``compare``
    Race several policies on the same mix and print the Fig. 10-style
    normalized-performance and fairness table::

        python -m repro compare --policies tpp memtis nomad vulcan

``costs``
    Print the calibrated migration cost model (Figures 2/3/7 data)::

        python -m repro costs --cpus 2 8 32

``trace``
    Summarize a trace captured with ``--trace`` (per-phase migration
    cycles, TLB shootdown-scope histogram, CBFRP credit timeline)::

        python -m repro run --policy vulcan --epochs 20 --trace /tmp/t.json
        python -m repro trace /tmp/t.json

``bench``
    Time the fixed Fig. 9 co-location scenario and write host-side
    performance (wall time, epochs/sec, peak RSS) plus the simulated
    steady-state metrics to ``BENCH_colocation.json``::

        python -m repro bench                 # full scenario, 80 epochs
        python -m repro bench --quick         # CI smoke variant
        python -m repro bench --quick --check BENCH_baseline.json

``sweep``
    Sensitivity sweep over fast-tier sizes × seeds, optionally fanned
    out across worker processes with an on-disk result cache::

        python -m repro sweep --policy vulcan --fast-gb 8 16 32 --seeds 1 2 3 \\
            --workers 4 --cache-dir /tmp/sweep-cache
        python -m repro sweep --fast-gb 8 16 32 --seeds 1 2 3 \\
            --cache-dir /tmp/sweep-cache --resume   # re-runs only missing cells

``fuzz``
    Property-based scenario fuzzing: generate arbitrary valid scenario
    timelines, run each under the invariant oracle, minimize and
    optionally promote anything that fails::

        python -m repro fuzz --runs 25 --seed 7 --json
        python -m repro fuzz --runs 100 --workers 4 --promote
        python -m repro fuzz --replay tests/golden/fuzz_regressions
        python -m repro fuzz --fleet --runs 25 --promote

``fleet``
    Simulated multi-node cluster: each node runs the single-box stack
    unchanged while a global placer assigns and live-migrates workloads
    using per-node CBFRP credit balances::

        python -m repro fleet list
        python -m repro fleet run balanced_trio --json
        python -m repro fleet run drain_rebalance --workers 4 --check

``run``/``compare``/``sweep`` also accept ``--json`` for
machine-readable output instead of rendered tables.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
from pathlib import Path

import numpy as np

from repro.harness import Sweep
from repro.harness.export import to_json
from repro.harness.recipes import (
    run_summary_json,
    standard_run,
    sweep_cell,
    sweep_cfi,
    sweep_mean_ops,
)
from repro.metrics.fairness import cfi
from repro.metrics.perf import normalize_to_min
from repro.metrics.reporting import render_table
from repro.mm.migration_costs import MigrationCostModel
from repro.obs.export import read_trace, summarize, write_chrome_trace
from repro.obs.trace import get_tracer
from repro.policies import POLICY_REGISTRY

WINDOW = 10

_BENCH_DEFAULT_OUTPUT = "BENCH_colocation.json"


# The canonical run lives in harness.recipes so the service computes the
# exact same function; the alias keeps the historical import path alive
# (golden capture + e2e tests import it from here).
_run_one = standard_run


def _check_trace_path(path: str) -> None:
    """Fail before the run, not after it, when the trace can't be written."""
    parent = Path(path).resolve().parent
    if not parent.is_dir():
        raise SystemExit(f"--trace: directory {parent} does not exist")


def _export_trace(res, path: str) -> None:
    """Write the captured event stream as a Chrome trace_event file."""
    tracer = get_tracer()
    names = {ts.pid: ts.name for ts in res.workloads.values()}
    n = write_chrome_trace(tracer.events(), path, process_names=names)
    dropped = tracer.buffer.dropped
    note = f" ({dropped} oldest dropped by ring buffer)" if dropped else ""
    print(f"wrote {n} trace events to {path}{note}", file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    tracer = get_tracer()
    if args.trace:
        _check_trace_path(args.trace)
        tracer.enable()
    try:
        res = _run_one(args.policy, args.mix, args.epochs, args.accesses, args.seed)
        if args.trace:
            _export_trace(res, args.trace)
    finally:
        if args.trace:
            tracer.disable()
    if args.json:
        print(json.dumps(run_summary_json(res, mix=args.mix, seed=args.seed), indent=2))
        return 0
    alloc = {p: np.asarray(t.fast_pages[-WINDOW:], float) for p, t in res.workloads.items()}
    fthr = {p: np.asarray(t.fthr_true[-WINDOW:], float) for p, t in res.workloads.items()}
    fairness = cfi(alloc, fthr)
    rows = []
    for ts in res.workloads.values():
        rows.append([
            ts.name,
            ts.rss_pages[-1],
            ts.fast_pages[-1],
            float(np.mean(ts.fthr_true[-WINDOW:])),
            float(np.mean(ts.hot_ratio[-WINDOW:])),
            float(np.mean(ts.ops[-WINDOW:])),
        ])
    print(render_table(
        ["workload", "rss_pages", "fast_pages", "FTHR", "hot_ratio", "ops/epoch"],
        rows,
        title=f"policy={args.policy} mix={args.mix} epochs={args.epochs} (steady window {WINDOW})",
        float_fmt="{:.3g}",
    ))
    print(f"\nCFI (Eq. 4, steady window): {fairness:.3f}")
    return 0


def _compare_trace_path(base: str, policy: str) -> str:
    """Per-policy trace file for ``compare``: t.json → t.vulcan.json."""
    p = Path(base)
    suffix = p.suffix or ".json"
    return str(p.with_name(f"{p.stem}.{policy}{suffix}"))


def cmd_compare(args: argparse.Namespace) -> int:
    perf: dict[str, dict[str, float]] = {}
    fairness: dict[str, float] = {}
    names: list[str] = []
    results: dict[str, dict] = {}
    tracer = get_tracer()
    if args.trace:
        _check_trace_path(args.trace)
    for policy in args.policies:
        if policy not in POLICY_REGISTRY:
            raise SystemExit(f"unknown policy {policy!r}; available: {sorted(POLICY_REGISTRY)}")
        if args.trace:
            tracer.enable()  # fresh buffer + clock per policy
        try:
            res = _run_one(policy, args.mix, args.epochs, args.accesses, args.seed)
            if args.trace:
                _export_trace(res, _compare_trace_path(args.trace, policy))
        finally:
            if args.trace:
                tracer.disable()
        names = [ts.name for ts in res.workloads.values()]
        for ts in res.workloads.values():
            perf.setdefault(ts.name, {})[policy] = float(np.mean(ts.ops[-WINDOW:]))
        alloc = {p: np.asarray(t.fast_pages[-WINDOW:], float) for p, t in res.workloads.items()}
        fthr = {p: np.asarray(t.fthr_true[-WINDOW:], float) for p, t in res.workloads.items()}
        fairness[policy] = cfi(alloc, fthr)
        if args.json:
            results[policy] = to_json(res)
        print(f"  ran {policy}", file=sys.stderr)
    normalized = {name: normalize_to_min(perf[name]) for name in names}
    if args.json:
        print(json.dumps({
            "mix": args.mix,
            "epochs": args.epochs,
            "seed": args.seed,
            "fairness_cfi": fairness,
            "normalized_perf": normalized,
            "policies": results,
        }, indent=2))
        return 0
    rows = []
    for name in names:
        normed = normalized[name]
        for policy in args.policies:
            rows.append([name, policy, normed[policy], perf[name][policy]])
    print(render_table(
        ["workload", "policy", "normalized", "ops/epoch"],
        rows,
        title=f"performance, mix={args.mix} (normalized to the lowest system)",
        float_fmt="{:.3g}",
    ))
    print()
    print(render_table(
        ["policy", "CFI"],
        [[p, fairness[p]] for p in args.policies],
        title="fairness (FTHR-weighted CFI, higher is better)",
    ))
    return 0


def _print_profile(profiler, top: int = 20) -> None:
    """Top-``top`` functions of the epoch loop by cumulative time."""
    import pstats

    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative")
    print(f"--- profile: top {top} by cumulative time ---", file=sys.stderr)
    stats.print_stats(top)


def _profile_payload(profiler, top: int = 50) -> dict:
    """The profile as machine-readable hotspots, cumulative-sorted."""
    import pstats

    stats = pstats.Stats(profiler)
    entries = []
    for (file, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        entries.append(
            {
                "function": f"{file}:{line}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    entries.sort(key=lambda e: (-e["cumtime_s"], e["function"]))
    return {"total_tottime_s": round(stats.total_tt, 6), "hotspots": entries[:top]}


def _emit_profile(profiler, out: Path) -> None:
    """Print the human top-20 and write the JSON artifact next to ``out``."""
    _print_profile(profiler)
    ppath = out.with_suffix(".profile.json")
    ppath.write_text(json.dumps(_profile_payload(profiler), indent=2) + "\n")
    print(f"wrote {ppath}")


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import check_regression, run_bench, run_hugeheap_bench

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    if args.hugeheap:
        bench = run_hugeheap_bench(quick=args.quick)
        out = Path("BENCH_hugeheap.json" if args.output == _BENCH_DEFAULT_OUTPUT else args.output)
        if profiler is not None:
            profiler.disable()
            _emit_profile(profiler, out)
        payload = bench.to_dict()
        huge = payload["simulated"]["hugeheap"]
        print(
            f"{bench.epochs} epochs in {bench.wall_seconds:.2f}s "
            f"({bench.epochs_per_sec:.2f} epochs/sec, peak RSS {bench.peak_rss_kb} kB, "
            f"{huge['machine_frames']} machine frames, "
            f"{huge['materialized_frames']} materialized)"
        )
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        if args.check:
            err = check_regression(payload, args.check, tolerance=args.tolerance)
            if err is not None:
                print(f"FAIL: {err}", file=sys.stderr)
                return 1
        return 0
    if args.service:
        from repro.service.loadgen import run_service_bench

        payload = run_service_bench(
            quick=args.quick, clients=args.clients, jobs_per_client=args.jobs_per_client,
        )
        out = Path("BENCH_service.json" if args.output == _BENCH_DEFAULT_OUTPUT else args.output)
        timing, jobs = payload["timing"], payload["jobs"]
        print(
            f"{jobs['completed']}/{jobs['submitted']} jobs in {timing['wall_seconds']:.2f}s "
            f"({timing['jobs_per_sec']:.2f} jobs/sec, "
            f"p50 {timing['submit_to_result_p50_ms']:.0f} ms, "
            f"p99 {timing['submit_to_result_p99_ms']:.0f} ms, "
            f"{jobs['deduped']} deduped, {jobs['cache_hits']} cache hits, "
            f"{jobs['failed']} failed)"
        )
    elif args.fleet:
        from repro.harness.bench import run_fleet_bench

        payload = run_fleet_bench(quick=args.quick)
        out = Path("BENCH_fleet.json" if args.output == _BENCH_DEFAULT_OUTPUT else args.output)
        timing, sim = payload["timing"], payload["simulated"]
        print(
            f"{sim['node_epochs']} node-epochs in {timing['wall_seconds']:.2f}s "
            f"({timing['node_epochs_per_sec']:.2f} node-epochs/sec, "
            f"evacuation p99 {sim['evacuation_p99_cycles']:.3g} cycles, "
            f"peak RSS {timing['peak_rss_kb']} kB)"
        )
    else:
        bench = run_bench(quick=args.quick, scenario=args.scenario)
        payload = bench.to_dict()
        out = Path(args.output)
        print(
            f"{bench.epochs} epochs in {bench.wall_seconds:.2f}s "
            f"({bench.epochs_per_sec:.2f} epochs/sec, peak RSS {bench.peak_rss_kb} kB)"
        )
    if profiler is not None:
        profiler.disable()
        _emit_profile(profiler, out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if args.check:
        err = check_regression(payload, args.check, tolerance=args.tolerance)
        if err is not None:
            print(f"FAIL: {err}", file=sys.stderr)
            return 1
    if args.service and payload["jobs"]["failed"]:
        print(f"FAIL: {payload['jobs']['failed']} jobs failed under load", file=sys.stderr)
        return 1
    return 0


# -- service ---------------------------------------------------------------------

def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.service import TieringService

    service = TieringService(
        args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        job_timeout=args.job_timeout,
        use_cache=not args.no_cache,
        verbose=args.verbose,
    )
    service.start()
    recovered = len(service.queue.recovered)
    note = f" (re-queued {recovered} interrupted job(s))" if recovered else ""
    print(f"tiering service listening on {service.url}{note}", file=sys.stderr)
    print(f"data dir: {Path(args.data_dir).resolve()}", file=sys.stderr)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down (in-flight jobs re-queued)...", file=sys.stderr)
    finally:
        service.stop()
    return 0


def _parse_payload(args: argparse.Namespace) -> dict:
    if args.payload and args.payload_file:
        raise SystemExit("submit: give --payload or --payload-file, not both")
    try:
        if args.payload_file:
            return json.loads(Path(args.payload_file).read_text())
        if args.payload:
            return json.loads(args.payload)
    except OSError as exc:
        raise SystemExit(f"cannot read --payload-file: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"payload is not valid JSON: {exc}")
    return {}


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    payload = _parse_payload(args)
    try:
        sub = client.submit(args.kind, payload)
        job = sub["job"]
        print(
            f"job {job['job_id']} [{job['state']}]"
            + (" (deduped: identical spec already submitted)" if sub["deduped"] else ""),
            file=sys.stderr,
        )
        if not args.wait:
            print(json.dumps(sub, indent=2))
            return 0
        final = client.wait(job["job_id"], timeout=args.timeout)
        if final["state"] != "done":
            print(json.dumps(final, indent=2))
            print(f"job ended {final['state']}: {final.get('error')}", file=sys.stderr)
            return 1
        print(json.dumps({"job": final, "result": client.result(job["job_id"])}, indent=2))
        return 0
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_id is None:
            jobs = client.jobs(state=args.state)
            if args.json:
                print(json.dumps({"jobs": jobs}, indent=2))
                return 0
            rows = [
                [
                    j["job_id"], j["kind"], j["state"], j["attempts"],
                    "yes" if j["cached"] else "no",
                    (j["error"] or {}).get("message", "")[:40] if j["error"] else "",
                ]
                for j in jobs
            ]
            print(render_table(
                ["job", "kind", "state", "attempts", "cached", "error"],
                rows,
                title=f"{len(jobs)} job(s) at {args.url}",
            ))
            return 0
        if args.cancel:
            job = client.cancel(args.job_id)
            print(json.dumps(job, indent=2))
            return 0
        if args.result:
            print(json.dumps(client.result(args.job_id), indent=2))
            return 0
        if args.trace:
            for rec in client.trace(args.job_id):
                print(json.dumps(rec))
            return 0
        print(json.dumps(client.job(args.job_id), indent=2))
        return 0
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1


# -- fleet -----------------------------------------------------------------------

def _load_fleet_spec(args: argparse.Namespace):
    from repro.fleet import FleetSpec, FleetSpecError, get_fleet_scenario

    if bool(args.name) == bool(args.spec):
        raise SystemExit("fleet run: give a canned NAME or --spec FILE (not both)")
    try:
        if args.spec:
            return FleetSpec.from_json(args.spec)
        return get_fleet_scenario(args.name)
    except OSError as exc:
        raise SystemExit(f"cannot read --spec file: {exc}")
    except (json.JSONDecodeError, FleetSpecError, KeyError, TypeError) as exc:
        raise SystemExit(f"invalid fleet spec: {exc}")


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.fleet import FleetSpecError, run_fleet
    from repro.fuzz.oracle import InvariantViolation
    from repro.harness.recipes import fleet_summary_json

    spec = _load_fleet_spec(args)
    overrides = {
        k: v
        for k, v in (("policy", args.policy), ("placer", args.placer), ("seed", args.seed))
        if v is not None
    }
    if overrides:
        try:
            spec = spec.with_overrides(**overrides)
        except FleetSpecError as exc:
            raise SystemExit(f"invalid override: {exc}")
    tracer = get_tracer()
    if args.trace:
        _check_trace_path(args.trace)
        tracer.enable()
    try:
        try:
            res = run_fleet(spec, workers=args.workers, check=args.check)
        except InvariantViolation as exc:
            print(f"CHECK FAIL: {exc}", file=sys.stderr)
            return 1
        if args.trace:
            n = write_chrome_trace(tracer.events(), args.trace)
            print(f"wrote {n} trace events to {args.trace}", file=sys.stderr)
    finally:
        if args.trace:
            tracer.disable()
    if args.json:
        print(json.dumps(fleet_summary_json(res), indent=2))
        if args.check:
            print("all fleet checks passed", file=sys.stderr)
        return 0
    s = res.summary()
    rows = []
    for r in res.rounds:
        per_node = {n: 0 for n in r["active"]}
        for node in r["assignment"].values():
            per_node[node] += 1
        rows.append([
            r["round"],
            len(r["active"]),
            " ".join(f"{n}:{per_node[n]}" for n in sorted(per_node)),
            r["score"],
            "-" if r["vs_oracle"] is None else f"{r['vs_oracle']:.3f}",
        ])
    print(render_table(
        ["round", "nodes", "workloads per node", "score", "vs oracle"],
        rows,
        title=(
            f"fleet={s['fleet']} placer={s['placer']} policy={s['policy']} "
            f"seed={s['seed']} workers={args.workers}"
        ),
        float_fmt="{:.3g}",
    ))
    if res.moves:
        print()
        print(render_table(
            ["round", "workload", "from", "to", "pages", "cycles", "reason"],
            [[m.round, m.key, m.src or "-", m.dst, m.pages, m.cycles, m.reason]
             for m in res.moves],
            title="cross-node moves",
        ))
    print(
        f"\nfleet CFI {s['fleet_cfi']:.3f}, per-node CFI spread "
        f"{s['node_cfi_spread']:.3f}, placement score {s['placement_score']:.3f}"
        + ("" if s["vs_oracle"] is None else f" ({s['vs_oracle']:.1%} of oracle)")
    )
    print(
        f"{s['placements']} placements, {s['migrations']} migrations, "
        f"{s['evacuations']} evacuations, evacuation p99 "
        f"{s['evacuation_p99_cycles']:.3g} cycles"
    )
    if args.check:
        print("all fleet checks passed", file=sys.stderr)
    return 0


def cmd_fleet_list(args: argparse.Namespace) -> int:
    from repro.fleet import FLEET_SCENARIOS

    rows = []
    for name in sorted(FLEET_SCENARIOS):
        spec = FLEET_SCENARIOS[name]()
        rows.append([
            name,
            len(spec.nodes),
            len(spec.workloads),
            spec.n_rounds,
            spec.epochs_per_round,
            len(spec.events),
            spec.placer,
            spec.description,
        ])
    print(render_table(
        ["name", "nodes", "workloads", "rounds", "epochs/round", "events", "placer",
         "description"],
        rows,
        title="canned fleet scenarios (repro fleet run NAME)",
    ))
    return 0


# -- scenario --------------------------------------------------------------------

def _load_scenario_spec(args: argparse.Namespace):
    from repro.scenario import ScenarioSpecError, get_scenario
    from repro.scenario.spec import ScenarioSpec

    if bool(args.name) == bool(args.spec):
        raise SystemExit("scenario run: give a canned NAME or --spec FILE (not both)")
    try:
        if args.spec:
            return ScenarioSpec.from_json(args.spec)
        return get_scenario(args.name)
    except OSError as exc:
        raise SystemExit(f"cannot read --spec file: {exc}")
    except (json.JSONDecodeError, ScenarioSpecError, KeyError, TypeError) as exc:
        raise SystemExit(f"invalid scenario: {exc}")


def _scenario_check(sres, spec) -> list[str]:
    """Acceptance assertions for ``scenario run --check``."""
    errors: list[str] = []
    want_departs = sum(1 for e in spec.events if e.action == "depart")
    want_restarts = sum(1 for e in spec.events if e.action == "restart")
    if len(sres.departures) != want_departs:
        errors.append(f"departures: scripted {want_departs}, observed {len(sres.departures)}")
    if len(sres.restarts) != want_restarts:
        errors.append(f"restarts: scripted {want_restarts}, observed {len(sres.restarts)}")
    bad_leaks = [c for c in sres.leak_checks if not c.get("consistent")]
    if len(sres.leak_checks) != want_departs or bad_leaks:
        errors.append(
            f"leak checks: {len(sres.leak_checks)}/{want_departs} ran, {len(bad_leaks)} failed"
        )
    faults_armed = any(
        e.action == "faults_set" and any(float(p) > 0 for p in e.params.values())
        for e in spec.events
    )
    if faults_armed and not sres.faults:
        errors.append("faults armed but none fired")
    n = sres.result.n_epochs
    for pid, ts in sres.result.workloads.items():
        if ts.epochs and (ts.epochs[0] < 0 or ts.epochs[-1] >= n):
            errors.append(f"pid {pid}: epochs outside [0, {n})")
    for dep in sres.departures:
        ts = sres.result.workloads.get(dep["pid"])
        if ts is not None and ts.last_epoch >= dep["epoch"]:
            errors.append(
                f"pid {dep['pid']} departed @{dep['epoch']} but recorded epoch {ts.last_epoch}"
            )
    return errors


def cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.fuzz.oracle import InvariantOracle
    from repro.harness.recipes import scenario_summary_json
    from repro.scenario import run_scenario

    spec = _load_scenario_spec(args)
    tracer = get_tracer()
    if args.trace:
        _check_trace_path(args.trace)
        tracer.enable()
    try:
        # --check attaches the full per-epoch invariant battery; an
        # InvariantViolation propagates as a loud failure.
        oracle = InvariantOracle() if args.check else None
        sres = run_scenario(
            spec, seed=args.seed, policy=args.policy, epochs=args.epochs, oracle=oracle,
        )
        if args.trace:
            _export_trace(sres.result, args.trace)
    finally:
        if args.trace:
            tracer.disable()
    payload = scenario_summary_json(sres, window=args.window)
    fairness = payload["fairness_under_churn"]
    check_errors = _scenario_check(sres, spec) if args.check else []
    if args.json:
        if args.check:
            payload["check"] = {
                "passed": not check_errors,
                "errors": check_errors,
                "epochs_checked": oracle.epochs_checked,
            }
        print(json.dumps(payload, indent=2))
    else:
        s = sres.summary()
        rows = [
            [pid, w["name"], w["first_epoch"], w["last_epoch"], w["epochs"], w["mean_ops"]]
            for pid, w in s["workloads"].items()
        ]
        print(render_table(
            ["pid", "workload", "first", "last", "epochs", "mean ops/epoch"],
            rows,
            title=(
                f"scenario={s['scenario']} policy={s['policy']} seed={s['seed']} "
                f"epochs={s['n_epochs']}"
            ),
            float_fmt="{:.3g}",
        ))
        print(
            f"\nevents: {s['departures']} departures, {s['restarts']} restarts, "
            f"{s['phase_shifts']} phase shifts, {s['qos_changes']} QoS changes, "
            f"{s['capacity_events']} capacity events, {s['faults_fired']} faults fired"
        )
        print(
            f"fairness under churn (window {args.window}): "
            f"mean CFI {fairness['mean_cfi']:.3f}, min CFI {fairness['min_cfi']:.3f}"
        )
    if args.check:
        for err in check_errors:
            print(f"CHECK FAIL: {err}", file=sys.stderr)
        if not check_errors:
            print("all scenario checks passed", file=sys.stderr)
        return 1 if check_errors else 0
    return 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenario import SCENARIOS

    rows = []
    for name, builder in SCENARIOS.items():
        spec = builder()
        rows.append([
            name,
            spec.n_epochs,
            len(spec.workloads),
            len(spec.events),
            spec.description,
        ])
    print(render_table(
        ["name", "epochs", "workloads", "events", "description"],
        rows,
        title="canned scenarios (repro scenario run NAME)",
    ))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.fuzz.promote import (
        iter_crashers,
        iter_fleet_crashers,
        load_crasher,
        load_fleet_crasher,
    )
    from repro.fuzz.runner import campaign, case_finding, fleet_campaign, fleet_case_finding

    if args.replay is not None:
        if args.fleet:
            paths = iter_fleet_crashers(args.replay)
            loader, prober = load_fleet_crasher, fleet_case_finding
        else:
            paths = iter_crashers(args.replay)
            loader, prober = load_crasher, case_finding
        results = []
        for p in paths:
            if args.fleet:
                from repro.fleet.events import FleetSpecError

                try:
                    case, violation = loader(p)
                except FleetSpecError as exc:
                    # the spec this crasher needed is now rejected up
                    # front — the crash is unreachable, i.e. fixed
                    data = json.loads(p.read_text())
                    results.append({
                        "file": p.name,
                        "original_check": data["violation"]["check"],
                        "status": "fixed",
                        "finding": None,
                        "note": f"spec now rejected at validation: {exc}",
                    })
                    continue
            else:
                case, violation = loader(p)
            finding = prober(case)
            results.append({
                "file": p.name,
                "original_check": violation["check"],
                "status": "fixed" if finding is None else "failing",
                "finding": finding,
            })
        green = all(r["status"] == "fixed" for r in results)
        if args.json:
            print(json.dumps({"replayed": len(results), "green": green,
                              "results": results}, indent=2))
        elif results:
            print(render_table(
                ["file", "originally caught", "now"],
                [[r["file"], r["original_check"], r["status"]] for r in results],
                title=f"promoted crashers in {args.replay}",
            ))
        else:
            print(f"no promoted crashers in {args.replay}")
        for r in results:
            if r["status"] == "failing":
                print(f"REGRESSION: {r['file']} still fails "
                      f"[{r['finding']['check']}] {r['finding']['message']}", file=sys.stderr)
        return 0 if green else 1

    t0 = time.monotonic()
    if args.fleet:
        report = fleet_campaign(
            seed=args.seed,
            runs=args.runs,
            workers=args.workers,
            promote_dir=args.promote,
            log=lambda msg: print(msg, file=sys.stderr),
        )
    else:
        report = campaign(
            seed=args.seed,
            runs=args.runs,
            max_epochs=args.max_epochs,
            workers=args.workers,
            shrink=not args.no_shrink,
            promote_dir=args.promote,
            log=lambda msg: print(msg, file=sys.stderr),
        )
    elapsed = time.monotonic() - t0
    if args.json:
        # the report itself carries no wall-clock, so it is bit-identical
        # across replays of the same seed; timing goes to stderr below
        print(json.dumps(report, indent=2))
    else:
        c = report["counts"]
        print(render_table(
            ["runs", "ok", "violations", "replayed", "mismatches", "parity"],
            [[report["runs"], c["ok"], c["violations"], c["replay_checked"],
              c["replay_mismatches"],
              "-" if report["service_parity"] is None
              else ("ok" if report["service_parity"]["ok"] else "FAIL")]],
            title=f"fuzz campaign seed={report['seed']}",
        ))
        for f in report["failures"]:
            line = f"case {f['index']}: [{f['finding']['check']}] {f['finding']['message']}"
            if "shrink" in f:
                line += (f"  (shrunk {f['original']['n_events']}ev/"
                         f"{f['original']['n_epochs']}ep -> "
                         f"{f['shrink']['n_events']}ev/{f['shrink']['n_epochs']}ep "
                         f"in {f['shrink']['steps']} steps)")
            print(line)
            if "promoted" in f:
                print(f"  promoted -> {f['promoted']}")
    print(f"fuzz: {report['runs']} runs in {elapsed:.1f}s, "
          f"{'clean' if report['clean'] else 'FAILURES FOUND'}", file=sys.stderr)
    return 0 if report["clean"] else 1


def cmd_costs(args: argparse.Namespace) -> int:
    model = MigrationCostModel()
    rows = []
    for c in args.cpus:
        b = model.single_page_breakdown(c)
        rows.append([c, b.prep, b.shootdown, b.copy, b.total, f"{b.prep_share:.1%}"])
    print(render_table(
        ["cpus", "prep", "shootdown", "copy", "total", "prep%"],
        rows,
        title="single-page migration cost (cycles) — Fig 2 calibration",
        float_fmt="{:.0f}",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        events = read_trace(args.path)
    except OSError as exc:
        raise SystemExit(f"cannot read trace file: {exc}")
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        raise SystemExit(f"{args.path} is not a trace written by --trace: {exc}")
    if not events:
        print(f"no trace events in {args.path}", file=sys.stderr)
        return 1
    print(summarize(events))
    return 0


# -- sweep -----------------------------------------------------------------------

# Shared with the service layer (see harness.recipes): sweep jobs and
# `repro sweep` must hash and compute identical cells to dedupe.
_sweep_cell = sweep_cell
_sweep_mean_ops = sweep_mean_ops
_sweep_cfi = sweep_cfi


def cmd_sweep(args: argparse.Namespace) -> int:
    cache_dir = None if args.no_cache else args.cache_dir
    if args.resume:
        if cache_dir is None:
            raise SystemExit("--resume needs --cache-dir (and not --no-cache)")
        if not Path(cache_dir).is_dir():
            raise SystemExit(f"--resume: cache dir {cache_dir} does not exist; nothing to resume")
    factory = functools.partial(
        _sweep_cell, policy=args.policy, mix=args.mix, epochs=args.epochs, accesses=args.accesses,
    )
    sweep = Sweep(
        metrics={"mean_ops": _sweep_mean_ops, "cfi": _sweep_cfi},
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    cells = sweep.run(
        factory,
        grid={"fast_gb": args.fast_gb},
        seeds=args.seeds,
        workers=args.workers,
        cache_dir=cache_dir,
        timeout=args.timeout,
        derived_seeds=args.derive_seeds,
        cache_extra={
            "policy": args.policy, "mix": args.mix,
            "epochs": args.epochs, "accesses": args.accesses,
        },
    )
    if cache_dir is not None:
        print(
            f"cache: {sweep.cache_hits} restored, {sweep.cache_misses} computed",
            file=sys.stderr,
        )
    for failure in sweep.errors:
        print(
            f"FAILED cell {dict(failure.params)} seed={failure.seed}: "
            f"[{failure.kind}] {failure.error}: {failure.message}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps({
            "policy": args.policy,
            "mix": args.mix,
            "epochs": args.epochs,
            "seeds": args.seeds,
            "workers": args.workers,
            "cache": {"hits": sweep.cache_hits, "misses": sweep.cache_misses},
            "cells": [
                {
                    "params": dict(c.params),
                    "metrics": {m: {"mean": v[0], "ci95": v[1]} for m, v in c.metrics.items()},
                    "failures": [
                        {"seed": f.seed, "kind": f.kind, "error": f.error, "message": f.message}
                        for f in c.failures
                    ],
                }
                for c in cells
            ],
        }, indent=2))
        return 1 if sweep.errors else 0
    rows = []
    for cell in cells:
        mo, mo_ci = cell.metrics["mean_ops"]
        fa, fa_ci = cell.metrics["cfi"]
        rows.append([cell.param("fast_gb"), mo, mo_ci, fa, fa_ci, len(cell.failures)])
    print(render_table(
        ["fast_gb", "ops/epoch", "±ci95", "CFI", "±ci95", "failed"],
        rows,
        title=(
            f"fast-tier sweep, policy={args.policy} mix={args.mix} "
            f"epochs={args.epochs} seeds={args.seeds} workers={args.workers}"
        ),
        float_fmt="{:.3g}",
    ))
    return 1 if sweep.errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one policy on a co-location mix")
    run.add_argument("--policy", default="vulcan", choices=sorted(POLICY_REGISTRY))
    run.add_argument("--mix", default="paper", choices=["paper", "dilemma"])
    run.add_argument("--epochs", type=int, default=60)
    run.add_argument("--accesses", type=int, default=5000, help="accesses per thread per epoch")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--json", action="store_true", help="emit machine-readable JSON instead of tables")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="capture a Chrome trace_event file (summarize with `repro trace PATH`)")
    run.set_defaults(func=cmd_run)

    comp = sub.add_parser("compare", help="race several policies")
    comp.add_argument("--policies", nargs="+", default=["tpp", "memtis", "nomad", "vulcan"])
    comp.add_argument("--mix", default="paper", choices=["paper", "dilemma"])
    comp.add_argument("--epochs", type=int, default=60)
    comp.add_argument("--accesses", type=int, default=5000)
    comp.add_argument("--seed", type=int, default=1)
    comp.add_argument("--json", action="store_true", help="emit machine-readable JSON instead of tables")
    comp.add_argument("--trace", metavar="PATH", default=None,
                      help="capture one Chrome trace per policy (PATH gets a .<policy> infix)")
    comp.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep", help="fast-tier-size sensitivity sweep (parallel + cached)")
    sweep.add_argument("--policy", default="vulcan", choices=sorted(POLICY_REGISTRY))
    sweep.add_argument("--mix", default="dilemma", choices=["paper", "dilemma"])
    sweep.add_argument("--epochs", type=int, default=20)
    sweep.add_argument("--accesses", type=int, default=5000, help="accesses per thread per epoch")
    sweep.add_argument("--fast-gb", type=float, nargs="+", default=[8.0, 16.0, 32.0],
                       help="fast-tier capacities (GiB) forming the grid")
    sweep.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes; 1 = serial in-process")
    sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="on-disk result cache; completed cells are reused")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore the cache entirely (even with --cache-dir)")
    sweep.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep from --cache-dir (errors if it doesn't exist)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-cell wall-clock timeout in seconds (parallel mode)")
    sweep.add_argument("--derive-seeds", action="store_true",
                       help="decorrelate grid cells: factory seed = stable hash of (params, seed)")
    sweep.add_argument("--json", action="store_true", help="emit machine-readable JSON instead of tables")
    sweep.set_defaults(func=cmd_sweep)

    scenario = sub.add_parser("scenario", help="scripted dynamic scenarios (churn, faults, capacity)")
    scsub = scenario.add_subparsers(dest="scenario_command", required=True)
    sc_run = scsub.add_parser("run", help="run a scenario and report fairness under churn")
    sc_run.add_argument("name", nargs="?", default=None,
                        help="canned scenario name (see `repro scenario list`)")
    sc_run.add_argument("--spec", metavar="FILE", default=None,
                        help="JSON ScenarioSpec file instead of a canned name")
    sc_run.add_argument("--policy", default=None, choices=sorted(POLICY_REGISTRY),
                        help="override the spec's policy")
    sc_run.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    sc_run.add_argument("--epochs", type=int, default=None,
                        help="override the spec's epoch count (must not cut off events)")
    sc_run.add_argument("--window", type=int, default=WINDOW,
                        help="windowed-CFI window in epochs (default 10)")
    sc_run.add_argument("--json", action="store_true",
                        help="emit the full ScenarioResult as JSON")
    sc_run.add_argument("--trace", metavar="PATH", default=None,
                        help="capture a Chrome trace (departures, faults, capacity events)")
    sc_run.add_argument("--check", action="store_true",
                        help="assert scenario invariants (leak checks, event counts); exit 1 on failure")
    sc_run.set_defaults(func=cmd_scenario_run)
    sc_list = scsub.add_parser("list", help="list canned scenarios")
    sc_list.set_defaults(func=cmd_scenario_list)

    fleet = sub.add_parser(
        "fleet", help="multi-node fair tiering under a global CBFRP-aware placer")
    flsub = fleet.add_subparsers(dest="fleet_command", required=True)
    fl_run = flsub.add_parser("run", help="run a fleet scenario and report fleet-wide fairness")
    fl_run.add_argument("name", nargs="?", default=None,
                        help="canned fleet scenario name (see `repro fleet list`)")
    fl_run.add_argument("--spec", metavar="FILE", default=None,
                        help="JSON FleetSpec file instead of a canned name")
    fl_run.add_argument("--placer", default=None,
                        choices=["greedy-free-dram", "credit-balance", "oracle"],
                        help="override the spec's placement policy")
    fl_run.add_argument("--policy", default=None, choices=sorted(POLICY_REGISTRY),
                        help="override the per-node tiering policy")
    fl_run.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    fl_run.add_argument("--workers", type=int, default=1,
                        help="shard node rounds across worker processes "
                             "(results bit-identical to --workers 1)")
    fl_run.add_argument("--json", action="store_true",
                        help="emit the full FleetResult as JSON")
    fl_run.add_argument("--trace", metavar="PATH", default=None,
                        help="capture fleet events (placements, migrations, evacuations) "
                             "as a Chrome trace")
    fl_run.add_argument("--check", action="store_true",
                        help="run per-node invariant oracles plus the cross-node "
                             "frame-conservation check; exit 1 on violation")
    fl_run.set_defaults(func=cmd_fleet_run)
    fl_list = flsub.add_parser("list", help="list canned fleet scenarios")
    fl_list.set_defaults(func=cmd_fleet_list)

    fuzz = sub.add_parser(
        "fuzz", help="property-based scenario fuzzing with an invariant oracle")
    fuzz.add_argument("--seed", type=int, default=7,
                      help="campaign master seed (same seed => identical run list and report)")
    fuzz.add_argument("--runs", type=int, default=25, help="number of generated cases")
    fuzz.add_argument("--fleet", action="store_true",
                      help="fuzz multi-node fleets (drain/join/flash-crowd "
                           "timelines) instead of single-node scenarios; with "
                           "--replay, replays fleet_crasher_*.json files")
    fuzz.add_argument("--max-epochs", type=int, default=24,
                      help="upper bound on generated timeline length")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="worker processes (results identical to --workers 1)")
    fuzz.add_argument("--promote", metavar="DIR", nargs="?",
                      const="tests/golden/fuzz_regressions", default=None,
                      help="write minimized crashers as regression files "
                           "(default dir: tests/golden/fuzz_regressions)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip timeline minimization of failing cases")
    fuzz.add_argument("--replay", metavar="DIR", default=None,
                      help="replay promoted crashers from DIR instead of fuzzing; "
                           "exit 1 if any still fails")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the full campaign report as JSON (deterministic)")
    fuzz.set_defaults(func=cmd_fuzz)

    bench = sub.add_parser("bench", help="time the fixed Fig. 9 scenario (hot-path benchmark)")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke variant: fewer epochs, fewer accesses per thread")
    bench.add_argument("--scenario", metavar="NAME", default=None,
                       help="time a canned dynamic scenario instead of the static mix")
    bench.add_argument("--hugeheap", action="store_true",
                       help="million-frame variant: the Table 2 mix at ~150 kB page "
                            "granularity (writes BENCH_hugeheap.json by default)")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top 20 functions "
                            "by cumulative time to stderr")
    bench.add_argument("--service", action="store_true",
                       help="load-test the job service instead of the simulator "
                            "(boots a private server, mixed concurrent workload)")
    bench.add_argument("--fleet", action="store_true",
                       help="time the pinned fleet scenario (drain_rebalance) instead: "
                            "node-epochs/sec + evacuation p99 (writes BENCH_fleet.json)")
    bench.add_argument("--clients", type=int, default=None,
                       help="concurrent load-gen clients (--service only)")
    bench.add_argument("--jobs-per-client", type=int, default=None, dest="jobs_per_client",
                       help="jobs each client submits (--service only)")
    bench.add_argument("--output", metavar="PATH", default=_BENCH_DEFAULT_OUTPUT,
                       help="where to write the result JSON (default: repo root; "
                            "BENCH_service.json with --service)")
    bench.add_argument("--check", metavar="BASELINE", default=None,
                       help="compare throughput against a committed baseline JSON; "
                            "exit 1 on regression beyond --tolerance")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional throughput drop vs baseline (default 0.30)")
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser("serve", help="run the tiering job service (HTTP control plane)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job worker processes (default 2)")
    serve.add_argument("--data-dir", default=".repro-service",
                       help="journal + result cache directory (default .repro-service)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock timeout in seconds (default: none)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed result cache")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser("submit", help="submit a job to a running service")
    submit.add_argument("kind", choices=["run", "sweep", "scenario", "fleet"])
    submit.add_argument("--url", default="http://127.0.0.1:8787",
                        help="service base URL (default http://127.0.0.1:8787)")
    submit.add_argument("--payload", metavar="JSON", default=None,
                        help="job payload as inline JSON (defaults applied server-side)")
    submit.add_argument("--payload-file", metavar="PATH", default=None,
                        help="job payload from a JSON file")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print its result")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait timeout in seconds (default 300)")
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser("jobs", help="inspect jobs on a running service")
    jobs.add_argument("job_id", nargs="?", default=None,
                      help="a job id; omit to list all jobs")
    jobs.add_argument("--url", default="http://127.0.0.1:8787",
                      help="service base URL (default http://127.0.0.1:8787)")
    jobs.add_argument("--state", default=None,
                      choices=["pending", "running", "done", "failed", "cancelled"],
                      help="filter the listing by state")
    jobs.add_argument("--json", action="store_true",
                      help="print the listing as JSON instead of a table")
    jobs.add_argument("--result", action="store_true",
                      help="print the job's result payload")
    jobs.add_argument("--cancel", action="store_true",
                      help="cancel the job")
    jobs.add_argument("--trace", action="store_true",
                      help="print the job's journal trace as JSONL")
    jobs.set_defaults(func=cmd_jobs)

    costs = sub.add_parser("costs", help="print the calibrated cost model")
    costs.add_argument("--cpus", type=int, nargs="+", default=[2, 4, 8, 16, 32])
    costs.set_defaults(func=cmd_costs)

    trace = sub.add_parser("trace", help="summarize a captured trace file")
    trace.add_argument("path", help="trace file written by --trace (Chrome JSON or JSONL)")
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
