"""Profiler interface and shared heat bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class AccessBatch:
    """One epoch's worth of accesses from one thread of one process."""

    pid: int
    tid: int
    vpns: np.ndarray  # int64
    is_write: np.ndarray  # bool, same shape

    def __post_init__(self) -> None:
        if self.vpns.shape != self.is_write.shape:
            raise ValueError("vpns and is_write must have identical shape")

    @property
    def n(self) -> int:
        return int(self.vpns.size)


@dataclass
class ProfilerStats:
    """Cost/quality accounting common to all profilers."""

    epochs: int = 0
    samples_taken: int = 0
    accesses_seen: int = 0
    #: profiling CPU overhead charged to the *system* (daemon side)
    overhead_cycles: float = 0.0
    #: profiling overhead charged to the *application* (e.g. hint faults)
    app_overhead_cycles: float = 0.0


class Profiler:
    """Base class: per-(pid, vpn) exponentially-decayed heat.

    Subclasses implement :meth:`observe` to turn the raw stream into
    heat contributions via their mechanism's lens, then call
    :meth:`_accumulate`.

    Heat decays by ``decay`` each epoch (Memtis-style halving when
    ``decay=0.5``), so hotness tracks the recent past.
    """

    #: human-readable mechanism name, overridden by subclasses
    mechanism = "abstract"

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must lie in [0, 1]")
        self.decay = decay
        #: pid -> {vpn: heat}
        self._heat: dict[int, dict[int, float]] = {}
        #: pid -> {vpn: write-heat} (for read/write classification)
        self._write_heat: dict[int, dict[int, float]] = {}
        self.stats = ProfilerStats()

    # -- subclass API ----------------------------------------------------

    def observe(self, batch: AccessBatch) -> None:
        """Ingest one access batch (mechanism-specific)."""
        raise NotImplementedError

    def _accumulate(self, pid: int, vpns: np.ndarray, weights: np.ndarray, write_weights: np.ndarray | None = None) -> None:
        """Add heat mass to pages of ``pid`` (vectorized per unique page)."""
        if vpns.size == 0:
            return
        heat = self._heat.setdefault(pid, {})
        uniq, inverse = np.unique(vpns, return_inverse=True)
        sums = np.bincount(inverse, weights=weights)
        for vpn, w in zip(uniq.tolist(), sums.tolist()):
            heat[vpn] = heat.get(vpn, 0.0) + w
        if write_weights is not None:
            wheat = self._write_heat.setdefault(pid, {})
            wsums = np.bincount(inverse, weights=write_weights)
            for vpn, w in zip(uniq.tolist(), wsums.tolist()):
                if w > 0.0:
                    wheat[vpn] = wheat.get(vpn, 0.0) + w

    # -- common API ---------------------------------------------------------

    def end_epoch(self) -> None:
        """Decay heat; subclasses extend for rotation/scan bookkeeping."""
        self.stats.epochs += 1
        if self.decay < 1.0:
            for heat in self._heat.values():
                dead = []
                for vpn in heat:
                    heat[vpn] *= self.decay
                    if heat[vpn] < 1e-6:
                        dead.append(vpn)
                for vpn in dead:
                    del heat[vpn]
            for wheat in self._write_heat.values():
                dead = []
                for vpn in wheat:
                    wheat[vpn] *= self.decay
                    if wheat[vpn] < 1e-6:
                        dead.append(vpn)
                for vpn in dead:
                    del wheat[vpn]

    def hotness(self, pid: int) -> dict[int, float]:
        """Current per-page heat estimates for ``pid`` (live view)."""
        return self._heat.get(pid, {})

    def write_heat(self, pid: int) -> dict[int, float]:
        """Write-specific heat (for read/write intensity classification)."""
        return self._write_heat.get(pid, {})

    def write_fraction(self, pid: int, vpn: int) -> float:
        """Estimated fraction of accesses to ``vpn`` that are writes."""
        h = self._heat.get(pid, {}).get(vpn, 0.0)
        if h <= 0.0:
            return 0.0
        w = self._write_heat.get(pid, {}).get(vpn, 0.0)
        return min(w / h, 1.0)

    def hottest(self, pid: int, n: int) -> list[tuple[int, float]]:
        """Top-``n`` (vpn, heat) pairs, hottest first, vpn-tiebroken."""
        heat = self._heat.get(pid, {})
        return sorted(heat.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def forget(self, pid: int) -> None:
        """Drop all state for an exited process."""
        self._heat.pop(pid, None)
        self._write_heat.pop(pid, None)
