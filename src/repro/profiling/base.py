"""Profiler interface and shared heat bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.profiling.heat_store import HeatStore


@dataclass(frozen=True)
class AccessBatch:
    """One epoch's worth of accesses from one thread of one process."""

    pid: int
    tid: int
    vpns: np.ndarray  # int64
    is_write: np.ndarray  # bool, same shape

    def __post_init__(self) -> None:
        if self.vpns.shape != self.is_write.shape:
            raise ValueError("vpns and is_write must have identical shape")
        if not np.issubdtype(self.vpns.dtype, np.integer):
            raise TypeError(
                f"vpns must have an integer dtype, got {self.vpns.dtype} "
                "(float vpns would silently mis-accumulate heat)"
            )
        if self.is_write.dtype != np.bool_:
            raise TypeError(
                f"is_write must have dtype bool, got {self.is_write.dtype} "
                "(non-bool masks would skew the write-heat bincounts)"
            )

    @property
    def n(self) -> int:
        return int(self.vpns.size)


@dataclass(frozen=True)
class EpochPlan:
    """One epoch of traffic for one process, all threads concatenated.

    The vectorized successor to a ``list[AccessBatch]``: segment ``i``
    covers ``vpns[offsets[i]:offsets[i+1]]`` and belongs to thread
    ``tids[i]``.  Segments appear in the exact order the legacy
    generator yielded batches (tid 0, 1, ...), so any consumer that
    iterates :meth:`segments` reproduces the per-batch stream
    bit-for-bit; fused consumers use the flat arrays plus
    ``np.add.reduceat``-style reductions over ``offsets``.
    """

    pid: int
    vpns: np.ndarray  # int64, all segments back to back
    is_write: np.ndarray  # bool, same shape
    offsets: np.ndarray  # int64, len n_segments + 1, offsets[0] == 0
    tids: np.ndarray  # int64, len n_segments

    def __post_init__(self) -> None:
        if self.vpns.shape != self.is_write.shape:
            raise ValueError("vpns and is_write must have identical shape")
        if self.offsets.size != self.tids.size + 1:
            raise ValueError("offsets must have one more entry than tids")
        if self.offsets.size and int(self.offsets[-1]) != int(self.vpns.size):
            raise ValueError("offsets[-1] must equal the access count")

    @property
    def n(self) -> int:
        return int(self.vpns.size)

    @property
    def n_segments(self) -> int:
        return int(self.tids.size)

    def segment(self, i: int) -> AccessBatch:
        """Segment ``i`` as a legacy :class:`AccessBatch` (array views)."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return AccessBatch(
            pid=self.pid,
            tid=int(self.tids[i]),
            vpns=self.vpns[lo:hi],
            is_write=self.is_write[lo:hi],
        )

    def segments(self):
        """Iterate the legacy per-thread batch stream, in order."""
        for i in range(self.n_segments):
            yield self.segment(i)


@dataclass
class ProfilerStats:
    """Cost/quality accounting common to all profilers."""

    epochs: int = 0
    samples_taken: int = 0
    accesses_seen: int = 0
    #: profiling CPU overhead charged to the *system* (daemon side)
    overhead_cycles: float = 0.0
    #: profiling overhead charged to the *application* (e.g. hint faults)
    app_overhead_cycles: float = 0.0


class Profiler:
    """Base class: per-(pid, vpn) exponentially-decayed heat.

    Subclasses implement :meth:`observe` to turn the raw stream into
    heat contributions via their mechanism's lens, then call
    :meth:`_accumulate`.

    Heat decays by ``decay`` each epoch (Memtis-style halving when
    ``decay=0.5``), so hotness tracks the recent past.

    Heat lives in a :class:`~repro.profiling.heat_store.HeatStore`
    (dense per-pid arrays).  :meth:`hotness` still materializes the
    classic ``{vpn: heat}`` dict for tests and cold paths; hot paths
    should use the vectorized accessors (:meth:`heat_view`,
    :meth:`write_fraction_many`, :meth:`hot_count`).
    """

    #: human-readable mechanism name, overridden by subclasses
    mechanism = "abstract"

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must lie in [0, 1]")
        self.decay = decay
        self._heat = HeatStore()
        self._write_heat = HeatStore()
        self.stats = ProfilerStats()

    # -- subclass API ----------------------------------------------------

    def observe(self, batch: AccessBatch) -> None:
        """Ingest one access batch (mechanism-specific)."""
        raise NotImplementedError

    def observe_plan(self, plan: EpochPlan) -> None:
        """Ingest one process's whole epoch.

        The default replays the legacy per-thread batch stream in order,
        which is exact for every mechanism; subclasses with fused fast
        paths must preserve per-segment RNG draws, sequential state
        (poison windows), and per-segment heat-insertion order.
        """
        for batch in plan.segments():
            self.observe(batch)

    def _accumulate(self, pid: int, vpns: np.ndarray, weights: np.ndarray, write_weights: np.ndarray | None = None) -> None:
        """Add heat mass to pages of ``pid`` (vectorized per unique page)."""
        if vpns.size == 0:
            return
        ww = write_weights if write_weights is not None else np.zeros(vpns.size)
        uniq, sums, wsums = kernels.accumulate_unique(vpns, weights, ww)
        self._heat.accumulate(pid, uniq, sums)
        if write_weights is not None:
            written = wsums > 0.0
            if written.any():
                self._write_heat.accumulate(pid, uniq[written], wsums[written])

    # -- common API ---------------------------------------------------------

    def end_epoch(self) -> None:
        """Decay heat; subclasses extend for rotation/scan bookkeeping."""
        self.stats.epochs += 1
        if self.decay < 1.0:
            self._heat.decay_all(self.decay)
            self._write_heat.decay_all(self.decay)

    def hotness(self, pid: int) -> dict[int, float]:
        """Per-page heat estimates for ``pid`` as a dict (cold paths)."""
        return self._heat.as_dict(pid)

    def write_heat(self, pid: int) -> dict[int, float]:
        """Write-specific heat (for read/write intensity classification)."""
        return self._write_heat.as_dict(pid)

    def heat_view(self, pid: int) -> tuple[np.ndarray, np.ndarray]:
        """(vpns, heats) in heat-insertion order — the vectorized
        equivalent of iterating ``hotness(pid).items()``."""
        vpns = self._heat.ordered_vpns(pid)
        return vpns, self._heat.gather(pid, vpns)

    def heat_of(self, pid: int, vpns: np.ndarray) -> np.ndarray:
        """``hotness(pid).get(vpn, 0.0)`` vectorized over ``vpns``."""
        return self._heat.gather(pid, vpns)

    def hot_count(self, pid: int, threshold: float) -> int:
        """How many pages of ``pid`` have heat >= ``threshold``."""
        return self._heat.count_at_least(pid, threshold)

    def write_fraction(self, pid: int, vpn: int) -> float:
        """Estimated fraction of accesses to ``vpn`` that are writes."""
        h = self._heat.get(pid, vpn)
        if h <= 0.0:
            return 0.0
        w = self._write_heat.get(pid, vpn)
        return min(w / h, 1.0)

    def write_fraction_many(self, pid: int, vpns: np.ndarray) -> np.ndarray:
        """:meth:`write_fraction` vectorized over ``vpns``."""
        h = self._heat.gather(pid, vpns)
        w = self._write_heat.gather(pid, vpns)
        return kernels.write_fractions(h, w)

    def hottest(self, pid: int, n: int) -> list[tuple[int, float]]:
        """Top-``n`` (vpn, heat) pairs, hottest first, vpn-tiebroken."""
        return self._heat.hottest(pid, n)

    def forget(self, pid: int) -> None:
        """Drop all state for an exited process."""
        self._heat.forget(pid)
        self._write_heat.forget(pid)
