"""Page-table accessed-bit scanning profiler.

Models the Nimble/MULTI-CLOCK approach: a kernel thread periodically
walks the page table, records which PTEs have the accessed bit set, and
clears the bits.  The signal is *binary per scan interval* — a page
touched once and a page touched a million times look identical — so heat
is built by accumulating indicators across epochs (a CLOCK-style
approximation of frequency from repeated recency).

Cost model: ~45 cycles per PTE visited per scan (pointer chase + atomic
clear), charged to the daemon.  This is the scalability problem the
paper notes for per-page scanning: cost is O(RSS), not O(traffic).
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import AccessBatch, Profiler

#: Daemon-side cost per PTE visited during a scan.
SCAN_COST_PER_PTE = 45.0


class PtScanProfiler(Profiler):
    """Accessed-bit scanning with per-epoch scan granularity."""

    mechanism = "ptscan"

    def __init__(self, decay: float = 0.5, scan_interval_epochs: int = 1) -> None:
        super().__init__(decay=decay)
        if scan_interval_epochs < 1:
            raise ValueError("scan interval must be >= 1 epoch")
        self.scan_interval_epochs = scan_interval_epochs
        self._epoch_mod = 0
        #: pid -> set of vpns with the accessed bit currently set
        self._accessed: dict[int, set[int]] = {}
        #: pid -> set of vpns whose *dirty* bit is set (writes)
        self._dirtied: dict[int, set[int]] = {}
        #: pid -> known RSS (pages) so scan cost can be charged
        self._rss: dict[int, int] = {}

    def set_rss(self, pid: int, rss_pages: int) -> None:
        """Tell the scanner how many PTEs a full scan of ``pid`` visits."""
        self._rss[pid] = rss_pages

    def observe(self, batch: AccessBatch) -> None:
        """Accesses set the accessed (and possibly dirty) bits."""
        self.stats.accesses_seen += batch.n
        if batch.n == 0:
            return
        acc = self._accessed.setdefault(batch.pid, set())
        acc.update(np.unique(batch.vpns).tolist())
        written = batch.vpns[batch.is_write]
        if written.size:
            self._dirtied.setdefault(batch.pid, set()).update(np.unique(written).tolist())

    def end_epoch(self) -> None:
        """Run the scan when the interval elapses: harvest + clear bits."""
        self._epoch_mod = (self._epoch_mod + 1) % self.scan_interval_epochs
        if self._epoch_mod == 0:
            for pid, acc in self._accessed.items():
                if not acc:
                    continue
                vpns = np.fromiter(acc, dtype=np.int64)
                dirty = self._dirtied.get(pid, set())
                wmask = np.fromiter((v in dirty for v in acc), dtype=bool, count=len(acc))
                # Binary indicator: one unit of heat per touched page.
                self._accumulate(pid, vpns, np.ones(vpns.size), write_weights=wmask.astype(np.float64))
                self.stats.samples_taken += int(vpns.size)
                acc.clear()
                dirty.clear()
                # Full-table walk cost: every resident PTE is visited.
                scanned = max(self._rss.get(pid, int(vpns.size)), int(vpns.size))
                self.stats.overhead_cycles += scanned * SCAN_COST_PER_PTE
        super().end_epoch()

    def forget(self, pid: int) -> None:
        super().forget(pid)
        self._accessed.pop(pid, None)
        self._dirtied.pop(pid, None)
        self._rss.pop(pid, None)
