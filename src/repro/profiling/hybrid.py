"""FlexMem-style hybrid profiler — Vulcan's default (§3.2).

Combines performance-counter sampling (frequency signal, cheap, may miss
pages) with hinting faults (exact recency for the rotation window,
catches what sampling misses) "to overcome the limitations of
sampling-based memory tracking".

Fusion rule: heat is the PEBS frequency estimate, boosted by the
hint-fault indicator for pages sampling under-reports.  Each mechanism
keeps its own cost accounting; the hybrid's overhead is their sum.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import AccessBatch, Profiler
from repro.profiling.hintfault import HintFaultProfiler
from repro.profiling.pebs import PebsProfiler


class HybridProfiler(Profiler):
    """PEBS frequency + hint-fault recency fusion."""

    mechanism = "hybrid"

    def __init__(
        self,
        period: int = 64,
        window_fraction: float = 0.125,
        decay: float = 0.5,
        fault_boost: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(decay=decay)
        self.pebs = PebsProfiler(period=period, decay=decay, rng=rng)
        self.faults = HintFaultProfiler(window_fraction=window_fraction, decay=decay)
        #: Heat credited to a hint-fault hit.  A fault proves >= 1 access
        #: where sampling's detection floor is ~period accesses, but a
        #: binary indicator must not drown the frequency signal (streaming
        #: scans fault every rotation yet have no reuse) — an eighth of a
        #: period keeps fault-only pages below typical hot thresholds
        #: while still surfacing sampling misses.
        self.fault_boost = fault_boost if fault_boost is not None else period / 8.0

    def register_pages(self, pid: int, vpns: np.ndarray) -> None:
        """Expose the fault rotation's coverage registration."""
        self.faults.register_pages(pid, vpns)

    def observe(self, batch: AccessBatch) -> None:
        self.stats.accesses_seen += batch.n
        self.pebs.observe(batch)
        self.faults.observe(batch)

    def end_epoch(self) -> None:
        self.pebs.end_epoch()
        self.faults.end_epoch()
        # Fuse into this profiler's own heat store so downstream
        # consumers see one coherent estimate: start from a copy of the
        # PEBS book, then add the boosted fault indicator in the fault
        # store's insertion order (the old dict-update order).
        self._heat.clear()
        self._write_heat.clear()
        pids = set(self.pebs._heat.pids()) | set(self.faults._heat.pids())
        for pid in pids:
            self._heat.adopt_copy(pid, self.pebs._heat)
            fvpns = self.faults._heat.ordered_vpns(pid)
            self._heat.add_scaled(
                pid, fvpns, self.faults._heat.gather(pid, fvpns), self.fault_boost
            )
            self._write_heat.adopt_copy(pid, self.pebs._write_heat)
            wvpns = self.faults._write_heat.ordered_vpns(pid)
            self._write_heat.add_scaled(
                pid, wvpns, self.faults._write_heat.gather(pid, wvpns), self.fault_boost
            )
        # Aggregate cost accounting.
        self.stats.epochs += 1
        self.stats.samples_taken = self.pebs.stats.samples_taken + self.faults.stats.samples_taken
        self.stats.overhead_cycles = self.pebs.stats.overhead_cycles + self.faults.stats.overhead_cycles
        self.stats.app_overhead_cycles = (
            self.pebs.stats.app_overhead_cycles + self.faults.stats.app_overhead_cycles
        )

    def forget(self, pid: int) -> None:
        super().forget(pid)
        self.pebs.forget(pid)
        self.faults.forget(pid)
