"""Dense per-pid heat arrays (the profiling half of the SoA refactor).

Replaces the old ``dict[pid, dict[vpn, float]]`` heat books with one
dense float64 array per pid over the pid's vpn range: accumulate is a
fancy-indexed add over bincount-compressed batches, decay is one
vectorized multiply plus threshold compaction, and policy-side reads
are numpy gathers instead of dict lookups.

Two properties of the old dicts are *observable* through policy
decisions and are preserved exactly:

* **Values** — every float is produced by the same elementwise
  arithmetic the dict path used (one add per unique vpn per batch, one
  multiply per epoch), so heats are bit-identical.
* **Iteration order** — promotion-queue heat averages and the
  tpp/nomad shuffle consume heats in dict *insertion* order, so each
  pid keeps an ordered key set (`dict[int, None]`): new vpns append in
  ascending order per batch (``np.unique`` sorts), dead vpns drop out
  on decay, exactly as dict keys did.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

#: heat below this after decay is dropped (dict-compaction threshold)
DECAY_FLOOR = 1e-6

_GROW_PAD = 4096


class _PidHeat:
    """One pid's dense heat array plus the insertion-ordered key set."""

    __slots__ = ("base", "heat", "live", "order", "_order_cache", "min_live")

    def __init__(self) -> None:
        self.base = 0
        self.heat = np.empty(0, dtype=np.float64)
        self.live = np.zeros(0, dtype=bool)
        self.order: dict[int, None] = {}
        self._order_cache: np.ndarray | None = None
        #: lower bound on the minimum live heat.  Decay multiplies it
        #: alongside the array; while it stays >= the compaction floor
        #: no live entry can have dropped below, so the per-epoch
        #: compaction scan is provably a no-op and is skipped (the
        #: multiply itself always runs — deferring it would change
        #: float association and break bit-identity).
        self.min_live = np.inf

    def ensure(self, lo: int, hi: int) -> None:
        """Grow arrays to cover vpns in ``[lo, hi]``."""
        if self.heat.size and self.base <= lo and hi < self.base + self.heat.size:
            return
        if self.heat.size == 0:
            new_base = max(lo - 64, 0)
            new_size = max(hi - new_base + _GROW_PAD, _GROW_PAD)
            old = None
        else:
            span_lo = min(self.base, lo)
            span_hi = max(self.base + self.heat.size, hi + 1)
            new_base = max(span_lo - 64, 0)
            new_size = max(span_hi - new_base + _GROW_PAD, 2 * self.heat.size)
            old = (self.base, self.heat, self.live)
        heat = np.zeros(new_size, dtype=np.float64)
        live = np.zeros(new_size, dtype=bool)
        if old is not None:
            ob, oheat, olive = old
            off = ob - new_base
            heat[off:off + oheat.size] = oheat
            live[off:off + olive.size] = olive
        self.base, self.heat, self.live = new_base, heat, live

    def ordered_vpns(self) -> np.ndarray:
        if self._order_cache is None:
            self._order_cache = np.fromiter(
                self.order, dtype=np.int64, count=len(self.order)
            )
        return self._order_cache

    def copy(self) -> "_PidHeat":
        dup = _PidHeat()
        dup.base = self.base
        dup.heat = self.heat.copy()
        dup.live = self.live.copy()
        dup.order = dict(self.order)
        dup.min_live = self.min_live
        return dup

    def observe_written(self, idx: np.ndarray) -> None:
        """Lower ``min_live`` after writes to ``heat[idx]``.

        Taking the min over just the touched slots keeps the bound
        valid for any write (adds of new entries, scaled fusion adds)
        without rescanning the whole array.
        """
        m = float(self.heat[idx].min())
        if m < self.min_live:
            self.min_live = m


class HeatStore:
    """Per-(pid, vpn) heat as dense arrays with dict-equivalent semantics."""

    def __init__(self) -> None:
        self._pids: dict[int, _PidHeat] = {}

    # -- writes ----------------------------------------------------------

    def accumulate(self, pid: int, vpns: np.ndarray, sums: np.ndarray) -> None:
        """Add ``sums`` to ``vpns`` (unique, ascending) for ``pid``.

        Equivalent to ``heat[vpn] = heat.get(vpn, 0.0) + w`` per entry;
        new keys enter the order set in ascending-vpn order, matching
        the dict path (``np.unique`` output is sorted).
        """
        if vpns.size == 0:
            return
        ph = self._pids.setdefault(pid, _PidHeat())
        ph.ensure(int(vpns[0]), int(vpns[-1]))
        idx = vpns - ph.base
        new, written_min = kernels.heat_accumulate(ph.heat, ph.live, idx, sums)
        if new.any():
            order = ph.order
            for vpn in vpns[new].tolist():
                order[vpn] = None
            ph._order_cache = None
        if written_min < ph.min_live:
            ph.min_live = written_min

    def add_scaled(self, pid: int, vpns: np.ndarray, heats: np.ndarray, scale: float) -> None:
        """``heat[vpn] = heat.get(vpn, 0.0) + h * scale`` in given order.

        Used by the hybrid profiler's fusion pass; ``vpns`` must be
        unique but may be in any order — new keys append in exactly
        that order (the old dict-update order).
        """
        if vpns.size == 0:
            return
        ph = self._pids.setdefault(pid, _PidHeat())
        ph.ensure(int(vpns.min()), int(vpns.max()))
        idx = vpns - ph.base
        new, written_min = kernels.heat_add_scaled(ph.heat, ph.live, idx, heats, scale)
        if new.any():
            order = ph.order
            for vpn in vpns[new].tolist():
                order[vpn] = None
            ph._order_cache = None
        if written_min < ph.min_live:
            ph.min_live = written_min

    def adopt_copy(self, pid: int, src: "HeatStore") -> None:
        """Replace ``pid``'s book with a copy of ``src``'s (fusion base)."""
        sph = src._pids.get(pid)
        if sph is None:
            self._pids.pop(pid, None)
        else:
            self._pids[pid] = sph.copy()

    def decay_all(self, decay: float, floor: float = DECAY_FLOOR) -> None:
        """One-shot decay: ``heat *= decay`` then drop entries < floor.

        The multiply always runs (deferring it would re-associate float
        products and break bit-identity); the compaction *scan* is
        skipped whenever the pid's ``min_live`` lower bound proves no
        live entry can be below the floor — the lazy-compaction path
        that keeps million-frame books at one multiply per epoch.
        """
        for ph in self._pids.values():
            kernels.heat_decay(ph.heat, decay)  # non-live entries are exactly 0.0
            ph.min_live *= decay
            if ph.min_live >= floor:
                continue  # bound >= floor: scan provably drops nothing
            dead_idx = kernels.heat_compact(ph.heat, ph.live, floor)
            if dead_idx.size:
                order = ph.order
                for vpn in (dead_idx + ph.base).tolist():
                    del order[vpn]
                ph._order_cache = None
            # the scan visited every live slot anyway: tighten the
            # bound to the exact survivor minimum
            if ph.order:
                ph.min_live = float(kernels.heat_min_live(ph.heat, ph.live))
            else:
                ph.min_live = np.inf

    def forget(self, pid: int) -> None:
        self._pids.pop(pid, None)

    def clear(self) -> None:
        self._pids.clear()

    # -- reads -----------------------------------------------------------

    def pids(self) -> list[int]:
        return list(self._pids)

    def ordered_vpns(self, pid: int) -> np.ndarray:
        """Live vpns in insertion order (the old dict iteration order)."""
        ph = self._pids.get(pid)
        if ph is None:
            return np.empty(0, dtype=np.int64)
        return ph.ordered_vpns()

    def gather(self, pid: int, vpns: np.ndarray) -> np.ndarray:
        """``heat.get(vpn, 0.0)`` vectorized over ``vpns``."""
        ph = self._pids.get(pid)
        if ph is None or ph.heat.size == 0:
            return np.zeros(vpns.size, dtype=np.float64)
        return kernels.heat_gather(ph.heat, ph.base, vpns)

    def get(self, pid: int, vpn: int) -> float:
        ph = self._pids.get(pid)
        if ph is None:
            return 0.0
        i = vpn - ph.base
        if 0 <= i < ph.heat.size:
            return float(ph.heat[i])
        return 0.0

    def count_at_least(self, pid: int, threshold: float) -> int:
        """How many live entries have heat >= threshold."""
        ph = self._pids.get(pid)
        if ph is None:
            return 0
        return int((ph.live & (ph.heat >= threshold)).sum())

    def as_dict(self, pid: int) -> dict[int, float]:
        """Materialize the old dict view (insertion order, python floats)."""
        ph = self._pids.get(pid)
        if ph is None:
            return {}
        vpns = ph.ordered_vpns()
        heats = ph.heat[vpns - ph.base].tolist()
        return dict(zip(vpns.tolist(), heats))

    def check_consistency(self) -> None:
        """Raise ``RuntimeError`` if any pid's key set and arrays diverge.

        The dict-equivalence contract (module docstring) only holds if
        the insertion-ordered key set and the dense ``live`` mask name
        exactly the same vpns, the order cache (when built) mirrors the
        key set, and every dead slot holds exactly 0.0 heat (decay
        compaction zeroes what it drops).  Used by the fuzz oracle.
        """
        for pid, ph in self._pids.items():
            live_vpns = np.flatnonzero(ph.live) + ph.base  # ascending
            order_arr = np.fromiter(ph.order, dtype=np.int64, count=len(ph.order))
            order_sorted = np.sort(order_arr)
            if not np.array_equal(live_vpns, order_sorted):
                missing = np.setdiff1d(live_vpns, order_sorted)[:8].tolist()
                extra = np.setdiff1d(order_sorted, live_vpns)[:8].tolist()
                raise RuntimeError(
                    f"pid {pid} heat key set desynced: {live_vpns.size} live vs "
                    f"{order_arr.size} ordered (live-only {missing}, order-only {extra})"
                )
            cache = ph._order_cache
            if cache is not None and not np.array_equal(np.sort(cache), order_sorted):
                raise RuntimeError(f"pid {pid} heat order cache stale")
            dead_heat = np.flatnonzero(~ph.live & (ph.heat != 0.0))
            if dead_heat.size:
                vpn = int(dead_heat[0] + ph.base)
                raise RuntimeError(
                    f"pid {pid}: {dead_heat.size} dead slot(s) hold nonzero heat "
                    f"(first vpn {vpn} = {float(ph.heat[dead_heat[0]])})"
                )
            if live_vpns.size:
                true_min = float(ph.heat[ph.live].min())
                if true_min < ph.min_live:
                    raise RuntimeError(
                        f"pid {pid}: min_live bound {ph.min_live} above true "
                        f"minimum live heat {true_min} (lazy compaction unsound)"
                    )

    def hottest(self, pid: int, n: int) -> list[tuple[int, float]]:
        """Top-``n`` (vpn, heat), hottest first, vpn-tiebroken.

        ``argpartition`` prunes to the candidate set before the exact
        ``(-heat, vpn)`` ordering (a stable lexsort) so the full-table
        sort only touches ~n entries.
        """
        ph = self._pids.get(pid)
        if ph is None or n <= 0 or not ph.order:
            return []
        vpns, heats = kernels.topk_live(ph.heat, ph.live, ph.base, n)
        order = np.lexsort((vpns, -heats))[:n]
        return list(zip(vpns[order].tolist(), heats[order].tolist()))
