"""Chrono-style timer-based hotness measurement (paper §2.1).

Chrono (EuroSys'25) refines hinting-fault profiling by recording each
page's *idle time* — the interval between un-poisoning and the next
fault — rather than a bare touched/untouched bit.  Short idle time ⇒
frequently accessed; long ⇒ cold.  Hotness here is the EMA of
``1 / (idle_epochs + 1)``, giving a bounded (0, 1] per-observation
signal that separates "touched instantly every window" from "touched
eventually".

Costs mirror the hint-fault mechanism: the application pays the fault,
the daemon pays poisoning.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import AccessBatch, Profiler
from repro.profiling.hintfault import HINT_FAULT_COST_CYCLES, POISON_COST_CYCLES


class ChronoProfiler(Profiler):
    """Idle-time-weighted rotating poisoning."""

    mechanism = "chrono"

    def __init__(self, window_fraction: float = 0.125, decay: float = 0.5) -> None:
        super().__init__(decay=decay)
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError("window_fraction must be in (0, 1]")
        self.window_fraction = window_fraction
        self._pages: dict[int, np.ndarray] = {}
        #: pid -> {vpn: epoch poisoned}, for idle-time measurement
        self._poisoned_at: dict[int, dict[int, int]] = {}
        self._cursor: dict[int, int] = {}
        self._epoch = 0

    def register_pages(self, pid: int, vpns: np.ndarray) -> None:
        self._pages[pid] = np.sort(np.asarray(vpns, dtype=np.int64))
        self._cursor.setdefault(pid, 0)
        if pid not in self._poisoned_at:
            self._rotate(pid)

    def _rotate(self, pid: int) -> None:
        pages = self._pages.get(pid)
        if pages is None or pages.size == 0:
            self._poisoned_at[pid] = {}
            return
        window = max(int(pages.size * self.window_fraction), 1)
        start = self._cursor.get(pid, 0) % pages.size
        idx = (start + np.arange(window)) % pages.size
        poisoned = self._poisoned_at.setdefault(pid, {})
        for vpn in pages[idx].tolist():
            poisoned.setdefault(vpn, self._epoch)
        self._cursor[pid] = (start + window) % pages.size
        self.stats.overhead_cycles += window * POISON_COST_CYCLES

    def observe(self, batch: AccessBatch) -> None:
        self.stats.accesses_seen += batch.n
        if batch.n == 0:
            return
        poisoned = self._poisoned_at.get(batch.pid)
        if not poisoned:
            return
        parr = np.fromiter(poisoned, dtype=np.int64)
        mask = np.isin(batch.vpns, parr)
        hits = np.unique(batch.vpns[mask])
        if hits.size == 0:
            return
        self.stats.samples_taken += int(hits.size)
        self.stats.app_overhead_cycles += hits.size * HINT_FAULT_COST_CYCLES
        # Idle time = epochs the page sat poisoned before this fault.
        weights = np.empty(hits.size, dtype=np.float64)
        for i, vpn in enumerate(hits.tolist()):
            idle = self._epoch - poisoned.pop(vpn)
            weights[i] = 1.0 / (idle + 1.0)
        w_hits = np.unique(batch.vpns[mask & batch.is_write])
        wweights = np.where(np.isin(hits, w_hits), weights, 0.0)
        self._accumulate(batch.pid, hits, weights, write_weights=wweights)

    def end_epoch(self) -> None:
        self._epoch += 1
        for pid in list(self._pages):
            self._rotate(pid)
        super().end_epoch()

    def forget(self, pid: int) -> None:
        super().forget(pid)
        self._pages.pop(pid, None)
        self._poisoned_at.pop(pid, None)
        self._cursor.pop(pid, None)
