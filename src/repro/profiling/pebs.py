"""PEBS-style hardware-event sampling profiler.

Models Processor Event-Based Sampling of memory-access events (as used
by Memtis, HeMem, FlexMem): every ``period``-th access (with random
phase) produces a sample carrying the page address.  Cheap and
frequency-proportional, but at terabyte scale the fixed sampling budget
makes infrequently-accessed hot pages invisible — the false-negative
problem Telescope documents (paper §2.1).

Overhead model: each retired sample costs the PEBS interrupt/drain path
~1.2K cycles on the daemon side.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import AccessBatch, Profiler

#: Daemon-side cost of harvesting one PEBS sample (interrupt + parse).
SAMPLE_COST_CYCLES = 1_200.0


class PebsProfiler(Profiler):
    """Sampling profiler with configurable period."""

    mechanism = "pebs"

    def __init__(self, period: int = 64, decay: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__(decay=decay)
        if period < 1:
            raise ValueError("sampling period must be >= 1")
        self.period = period
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def observe(self, batch: AccessBatch) -> None:
        """Keep ~1/period of the stream, heat-weighted by the period so
        expected heat equals true access counts."""
        n = batch.n
        self.stats.accesses_seen += n
        if n == 0:
            return
        # Random-phase systematic sampling — the standard PEBS counter
        # reload behaviour: deterministic stride, random initial offset.
        start = int(self.rng.integers(self.period))
        idx = np.arange(start, n, self.period)
        if idx.size == 0:
            return
        self.stats.samples_taken += int(idx.size)
        self.stats.overhead_cycles += idx.size * SAMPLE_COST_CYCLES
        vpns = batch.vpns[idx]
        writes = batch.is_write[idx]
        weights = np.full(idx.size, float(self.period))
        self._accumulate(batch.pid, vpns, weights, write_weights=weights * writes)
