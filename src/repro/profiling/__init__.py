"""Page-access profiling mechanisms (paper §2.1's taxonomy).

Every profiler consumes the *same* per-epoch access stream the simulated
hardware sees and produces per-page hotness estimates — but each with
its mechanism's characteristic distortions and costs:

* :class:`PebsProfiler` — hardware-event sampling: cheap, but misses
  pages at low sampling rates (false negatives at scale).
* :class:`PtScanProfiler` — accessed-bit scanning: sees only a binary
  touched/untouched signal per scan interval; cost scales with RSS.
* :class:`HintFaultProfiler` — NUMA-hinting faults: exact recency for
  poisoned pages, but each hit costs the *application* a fault.
* :class:`HybridProfiler` — FlexMem-style fusion of counter-based
  frequency and fault-based recency; Vulcan's default (§3.2).
* :class:`HotnessHistogram` — Memtis-style global histogram used to
  turn "heat" into a capacity-constrained hot/cold threshold.
"""

from repro.profiling.base import AccessBatch, Profiler, ProfilerStats
from repro.profiling.chrono import ChronoProfiler
from repro.profiling.hintfault import HintFaultProfiler
from repro.profiling.histogram import HotnessHistogram
from repro.profiling.hybrid import HybridProfiler
from repro.profiling.pebs import PebsProfiler
from repro.profiling.ptscan import PtScanProfiler
from repro.profiling.telescope import TelescopeProfiler

__all__ = [
    "AccessBatch",
    "Profiler",
    "ProfilerStats",
    "PebsProfiler",
    "PtScanProfiler",
    "HintFaultProfiler",
    "HybridProfiler",
    "HotnessHistogram",
    "ChronoProfiler",
    "TelescopeProfiler",
]
