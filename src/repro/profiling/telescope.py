"""Telescope-style region-based page-table profiling (paper §2.1).

Telescope (ATC'24) makes accessed-bit profiling tractable for terabyte
footprints by walking the page table *hierarchically*: upper-level
entries have accessed bits too, so a cold gigabyte prunes to one
upper-level check instead of 262 144 leaf checks.  Hot regions are
"zoomed" into progressively finer granularity.

Model: regions form a binary refinement tree over each process's page
range.  A scan visits a node; if its accessed bit is clear (no traffic
since last scan) the whole subtree is skipped; if set and the node is
wider than ``leaf_region_pages``, it splits and its children are
scanned next round.  Heat lands at whatever granularity the zoom has
reached, spread over the region's touched pages.

Cost: one PTE-check per *visited node* — the savings vs flat scanning
is exactly the pruned subtrees, which :attr:`ProfilerStats
.overhead_cycles` reflects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.profiling.base import AccessBatch, Profiler
from repro.profiling.ptscan import SCAN_COST_PER_PTE


@dataclass
class _Region:
    start: int
    n_pages: int
    children: "list[_Region] | None" = None
    touched: bool = False
    touched_pages: set[int] = field(default_factory=set)

    @property
    def end(self) -> int:
        return self.start + self.n_pages


class TelescopeProfiler(Profiler):
    """Hierarchical accessed-bit scanning with zooming."""

    mechanism = "telescope"

    def __init__(self, decay: float = 0.5, leaf_region_pages: int = 64) -> None:
        super().__init__(decay=decay)
        if leaf_region_pages < 1:
            raise ValueError("leaf_region_pages must be >= 1")
        self.leaf_region_pages = leaf_region_pages
        self._roots: dict[int, _Region] = {}
        self.nodes_visited = 0
        self.nodes_pruned_pages = 0  # pages skipped thanks to pruning

    def register_range(self, pid: int, start_vpn: int, n_pages: int) -> None:
        """Declare the VPN range the profiler covers for ``pid``."""
        if n_pages <= 0:
            raise ValueError("range must be non-empty")
        self._roots[pid] = _Region(start=start_vpn, n_pages=n_pages)

    # -- traffic -----------------------------------------------------------

    def observe(self, batch: AccessBatch) -> None:
        self.stats.accesses_seen += batch.n
        root = self._roots.get(batch.pid)
        if root is None or batch.n == 0:
            return
        vpns = np.unique(batch.vpns)
        vpns = vpns[(vpns >= root.start) & (vpns < root.end)]
        if vpns.size == 0:
            return
        self._mark(root, vpns)

    def _mark(self, region: _Region, vpns: np.ndarray) -> None:
        region.touched = True
        if region.children is None:
            region.touched_pages.update(vpns.tolist())
            return
        for child in region.children:
            sub = vpns[(vpns >= child.start) & (vpns < child.end)]
            if sub.size:
                self._mark(child, sub)

    # -- the scan -------------------------------------------------------------

    def end_epoch(self) -> None:
        for pid, root in self._roots.items():
            self._scan(pid, root)
        super().end_epoch()

    def _scan(self, pid: int, region: _Region) -> None:
        self.nodes_visited += 1
        self.stats.overhead_cycles += SCAN_COST_PER_PTE
        if not region.touched:
            self.nodes_pruned_pages += region.n_pages
            return
        region.touched = False
        if region.children is not None:
            for child in region.children:
                self._scan(pid, child)
            return
        # Leaf-of-the-zoom: account heat, then refine if still coarse.
        if region.touched_pages:
            pages = np.fromiter(region.touched_pages, dtype=np.int64)
            # Coarse regions smear one unit over their touched pages —
            # the precision cost of not having zoomed yet.
            self._accumulate(pid, pages, np.ones(pages.size))
            self.stats.samples_taken += int(pages.size)
            # Checking each touched page's leaf PTE costs a visit.
            self.stats.overhead_cycles += pages.size * SCAN_COST_PER_PTE
            self.nodes_visited += int(pages.size)
            region.touched_pages.clear()
        if region.n_pages > self.leaf_region_pages:
            mid = region.n_pages // 2
            region.children = [
                _Region(start=region.start, n_pages=mid),
                _Region(start=region.start + mid, n_pages=region.n_pages - mid),
            ]

    def forget(self, pid: int) -> None:
        super().forget(pid)
        self._roots.pop(pid, None)
