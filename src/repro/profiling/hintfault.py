"""NUMA-hinting-fault profiler.

Models AutoNUMA/TPP-style hinting: a rotating window of pages is
"poisoned" (PTEs flipped to ``prot_none``); the next access to a
poisoned page traps, revealing an exact (page, time, thread) event.  The
signal is precise for the sampled window but costs the *application* a
fault (~2.5K cycles) per hit — the extra latency the paper attributes to
this mechanism.

The rotation walks each process's known page set window-by-window so
every page is eventually sampled (TPP poisons pages on the slow tier to
detect promotion candidates; we poison everywhere and let policies
filter by tier).
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.profiling.base import AccessBatch, Profiler

#: Application-side cost of taking one hinting fault.
HINT_FAULT_COST_CYCLES = 2_500.0
#: Daemon-side cost of re-poisoning one PTE.
POISON_COST_CYCLES = 150.0


def _member(values: np.ndarray, sorted_ref: np.ndarray) -> np.ndarray:
    """``np.isin(values, sorted_ref)`` for an already-sorted reference.

    Same boolean mask, without np.isin re-sorting the reference on
    every call.  Dispatches to the kernel tier.
    """
    return kernels.member_sorted(values, sorted_ref)


class HintFaultProfiler(Profiler):
    """Rotating prot_none poisoning with exact hit accounting."""

    mechanism = "hintfault"

    def __init__(self, window_fraction: float = 0.125, decay: float = 0.5) -> None:
        super().__init__(decay=decay)
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError("window_fraction must be in (0, 1]")
        self.window_fraction = window_fraction
        #: pid -> sorted array of known vpns (refreshed via register_pages)
        self._pages: dict[int, np.ndarray] = {}
        #: pid -> currently poisoned vpn set
        self._poisoned: dict[int, set[int]] = {}
        #: pid -> *sorted* ndarray mirror of the poisoned set.  Only
        #: membership is ever asked of it, so keeping it sorted lets
        #: ``observe`` use searchsorted instead of np.isin (which
        #: re-sorts both operands on every batch).
        self._parr: dict[int, np.ndarray] = {}
        #: pid -> rotation cursor into the page array
        self._cursor: dict[int, int] = {}

    def register_pages(self, pid: int, vpns: np.ndarray) -> None:
        """Declare the pages of ``pid`` the rotation should cover."""
        self._pages[pid] = np.sort(np.asarray(vpns, dtype=np.int64))
        self._cursor.setdefault(pid, 0)
        if pid not in self._poisoned:
            self._rotate(pid)

    def _rotate(self, pid: int) -> None:
        """Advance the poisoned window for ``pid``."""
        pages = self._pages.get(pid)
        if pages is None or pages.size == 0:
            self._poisoned[pid] = set()
            self._parr[pid] = np.empty(0, dtype=np.int64)
            return
        window = max(int(pages.size * self.window_fraction), 1)
        start = self._cursor.get(pid, 0) % pages.size
        idx = (start + np.arange(window)) % pages.size
        win = pages[idx]
        self._poisoned[pid] = set(win.tolist())
        self._parr[pid] = np.sort(win)
        self._cursor[pid] = (start + window) % pages.size
        self.stats.overhead_cycles += window * POISON_COST_CYCLES

    def observe(self, batch: AccessBatch) -> None:
        """Accesses hitting poisoned pages fault and get recorded exactly."""
        self.stats.accesses_seen += batch.n
        if batch.n == 0:
            return
        poisoned = self._poisoned.get(batch.pid)
        if not poisoned:
            return
        parr = self._parr.get(batch.pid)
        if parr is None or parr.size != len(poisoned):
            parr = np.sort(np.fromiter(poisoned, dtype=np.int64))
            self._parr[batch.pid] = parr
        mask = _member(batch.vpns, parr)
        hits = batch.vpns[mask]
        if hits.size == 0:
            return
        # Each poisoned page faults once, then is unpoisoned until the
        # next rotation — so count unique pages, not raw hits.
        uniq = np.unique(hits)
        self.stats.samples_taken += int(uniq.size)
        self.stats.app_overhead_cycles += uniq.size * HINT_FAULT_COST_CYCLES
        poisoned.difference_update(uniq.tolist())
        self._parr[batch.pid] = parr[~_member(parr, uniq)]
        # The first-touch indicator carries one heat unit; exact
        # write/read split is visible for the faulting access.
        writes_first = np.zeros(uniq.size, dtype=np.float64)
        w_hits = np.unique(batch.vpns[mask & batch.is_write])
        if w_hits.size:
            writes_first[_member(uniq, w_hits)] = 1.0
        self._accumulate(batch.pid, uniq, np.ones(uniq.size), write_weights=writes_first)

    def end_epoch(self) -> None:
        for pid in list(self._pages):
            self._rotate(pid)
        super().end_epoch()

    def forget(self, pid: int) -> None:
        super().forget(pid)
        self._pages.pop(pid, None)
        self._poisoned.pop(pid, None)
        self._parr.pop(pid, None)
        self._cursor.pop(pid, None)
