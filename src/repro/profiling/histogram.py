"""Memtis-style global hotness histogram and threshold selection.

Memtis keeps a logarithmic histogram of page access counts and picks the
*hot threshold* as the smallest heat such that all pages at or above it
fit in the fast tier.  This is exactly the mechanism that produces the
cold-page dilemma (paper Observation #1): the threshold is global across
processes, so one high-intensity workload pushes it above every
co-runner's heat range.

The histogram is also reused per-workload by Vulcan (thresholds within a
partition), so it takes heat from any source dict.
"""

from __future__ import annotations

import numpy as np


class HotnessHistogram:
    """Log-bucketed heat histogram with capacity-threshold queries."""

    def __init__(self, n_bins: int = 16, base: float = 2.0) -> None:
        if n_bins < 2:
            raise ValueError("need at least two bins")
        if base <= 1.0:
            raise ValueError("log base must exceed 1")
        self.n_bins = n_bins
        self.base = base

    def bin_of(self, heat: float) -> int:
        """Bucket index for a heat value (0 = coldest)."""
        if heat <= 0.0:
            return 0
        b = int(np.floor(np.log(heat) / np.log(self.base))) + 1
        return int(np.clip(b, 0, self.n_bins - 1))

    def build(self, heats: np.ndarray) -> np.ndarray:
        """Histogram counts over the ``n_bins`` buckets."""
        counts = np.zeros(self.n_bins, dtype=np.int64)
        if heats.size == 0:
            return counts
        safe = np.where(heats > 0.0, heats, np.nan)
        bins = np.floor(np.log(safe) / np.log(self.base)) + 1
        bins = np.where(np.isnan(bins), 0, bins)
        bins = np.clip(bins, 0, self.n_bins - 1).astype(np.int64)
        np.add.at(counts, bins, 1)
        return counts

    def hot_threshold(self, heats: np.ndarray, capacity_pages: int) -> float:
        """Smallest heat such that pages >= it fit in ``capacity_pages``.

        Works on exact heats (the histogram binning is how the kernel
        implementation bounds memory; with simulator-scale page counts we
        can afford the exact ordering, which the histogram approximates).
        Returns ``0.0`` when everything fits.
        """
        if capacity_pages < 0:
            raise ValueError("capacity must be non-negative")
        if heats.size <= capacity_pages:
            return 0.0
        if capacity_pages == 0:
            return float(np.inf)
        # k-th hottest heat, hottest-first.
        part = np.partition(heats, heats.size - capacity_pages)
        return float(part[heats.size - capacity_pages])

    def hot_set(self, heat_by_vpn: dict[int, float], capacity_pages: int) -> set[int]:
        """The concrete page set Memtis would place in fast memory."""
        if not heat_by_vpn or capacity_pages <= 0:
            return set()
        items = sorted(heat_by_vpn.items(), key=lambda kv: (-kv[1], kv[0]))
        return {vpn for vpn, _ in items[:capacity_pages]}
