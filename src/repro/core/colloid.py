"""Colloid-style latency balancing (paper §3.6 future work).

Colloid (SOSP'24) observes that tiering by hotness is wrong when the
fast tier's *loaded* latency approaches the slow tier's: under bandwidth
contention, promoting more hot pages makes the fast tier slower for
everyone.  The paper proposes integrating this with Vulcan: "suspend the
migration process of co-located workloads when the fast tier's access
latency no longer offers significant advantages over alternate tiers".

:class:`LatencyBalancer` implements that decision with hysteresis:
migration is suspended when the loaded-latency advantage falls below
``suspend_margin`` and resumed once it recovers above
``resume_margin`` (> suspend_margin, so the decision doesn't flap).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyBalancer:
    """Hysteretic migrate/suspend decision from loaded tier latencies.

    Parameters
    ----------
    suspend_margin:
        Migration suspends when ``slow_latency / fast_latency`` drops
        below ``1 + suspend_margin`` (fast tier barely faster).
    resume_margin:
        Migration resumes when the ratio recovers above
        ``1 + resume_margin``.
    """

    suspend_margin: float = 0.10
    resume_margin: float = 0.25
    enabled: bool = True
    suspended: bool = field(default=False, init=False)
    suspensions: int = field(default=0, init=False)
    resumes: int = field(default=0, init=False)
    _last_ratio: float = field(default=float("inf"), init=False)

    def __post_init__(self) -> None:
        if self.suspend_margin < 0:
            raise ValueError("suspend_margin must be non-negative")
        if self.resume_margin <= self.suspend_margin:
            raise ValueError("resume_margin must exceed suspend_margin (hysteresis)")

    def update(self, fast_loaded_cycles: float, slow_loaded_cycles: float) -> bool:
        """Feed this epoch's loaded latencies; returns ``True`` when
        migration should proceed."""
        if fast_loaded_cycles <= 0 or slow_loaded_cycles <= 0:
            raise ValueError("latencies must be positive")
        if not self.enabled:
            return True
        ratio = slow_loaded_cycles / fast_loaded_cycles
        self._last_ratio = ratio
        if self.suspended:
            if ratio >= 1.0 + self.resume_margin:
                self.suspended = False
                self.resumes += 1
        else:
            if ratio < 1.0 + self.suspend_margin:
                self.suspended = True
                self.suspensions += 1
        return not self.suspended

    @property
    def migration_allowed(self) -> bool:
        return not self.suspended

    @property
    def last_advantage_ratio(self) -> float:
        """Most recent slow/fast loaded-latency ratio."""
        return self._last_ratio
