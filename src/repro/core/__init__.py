"""Vulcan's contribution: the four innovations of §3.

* :mod:`repro.core.qos` — GPT / FTHR / demand estimation (§3.3, Eq. 1-3)
* :mod:`repro.core.cbfrp` — credit-based fair partitioning (Algorithm 1)
* :mod:`repro.core.classify` — LC/BE and page-class classification
* :mod:`repro.core.queues` — four priority queues + MLFQ (Table 1)
* :mod:`repro.core.bias` — biased promotion/demotion selection (§3.5)
* :mod:`repro.core.partition` — fast-tier partition ledger (§3.3)
* :mod:`repro.core.daemon` — the per-workload migration manager (§3.2)
"""

from repro.core.bias import BiasedMigrationPolicy, MigrationPlan, PlannedMigration
from repro.core.cbfrp import CbfrpState, CreditLedger, run_cbfrp
from repro.core.classify import (
    PageClass,
    ServiceClass,
    classify_page,
    classify_service,
    WorkloadSignals,
)
from repro.core.colloid import LatencyBalancer
from repro.core.daemon import VulcanDaemon, WorkloadHandle
from repro.core.replication_advisor import ReplicationAdvice, ReplicationAdvisor
from repro.core.whitelist import ServiceClassifier, Whitelist
from repro.core.partition import PartitionLedger
from repro.core.qos import QosTracker, WorkloadQos, demand_pages, gpt_for

__all__ = [
    "BiasedMigrationPolicy",
    "MigrationPlan",
    "PlannedMigration",
    "CbfrpState",
    "CreditLedger",
    "run_cbfrp",
    "PageClass",
    "ServiceClass",
    "classify_page",
    "classify_service",
    "WorkloadSignals",
    "VulcanDaemon",
    "WorkloadHandle",
    "PartitionLedger",
    "QosTracker",
    "WorkloadQos",
    "demand_pages",
    "gpt_for",
    "LatencyBalancer",
    "ReplicationAdvisor",
    "ReplicationAdvice",
    "Whitelist",
    "ServiceClassifier",
]
