"""Fast-tier partition ledger (§3.3 enforcement).

CBFRP outputs a per-workload fast-memory quota; this ledger tracks
actual usage against it and answers the two enforcement questions the
migration layer asks every epoch:

* may this workload promote another page? (usage < quota)
* must this workload demote, and how many pages? (usage > quota, after
  a CBFRP shrink or an RSS change)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PartitionLedger:
    """Quota vs usage of fast-tier pages per workload."""

    capacity_pages: int
    quotas: dict[int, int] = field(default_factory=dict)
    usage: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise ValueError("capacity must be positive")

    def register(self, pid: int, quota_pages: int = 0) -> None:
        if pid in self.quotas:
            raise ValueError(f"pid {pid} already registered")
        self.quotas[pid] = quota_pages
        self.usage.setdefault(pid, 0)

    def unregister(self, pid: int) -> None:
        self.quotas.pop(pid, None)
        self.usage.pop(pid, None)

    def set_capacity(self, capacity_pages: int) -> None:
        """Capacity event: the enforceable fast-tier size changed.

        Standing quotas are left untouched — they may transiently exceed
        the shrunken capacity until the next CBFRP pass installs a fresh
        allocation that must fit the new value.
        """
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_pages = capacity_pages

    def set_quotas(self, quotas: dict[int, int]) -> None:
        """Install a fresh CBFRP allocation (must fit capacity)."""
        total = sum(quotas.values())
        if total > self.capacity_pages:
            raise ValueError(f"quotas ({total}) exceed capacity ({self.capacity_pages})")
        for pid, q in quotas.items():
            if pid not in self.quotas:
                raise KeyError(f"pid {pid} not registered")
            if q < 0:
                raise ValueError("quota cannot be negative")
            self.quotas[pid] = q

    def set_usage(self, pid: int, pages: int) -> None:
        """Sync usage from the allocator's ground truth."""
        if pages < 0:
            raise ValueError("usage cannot be negative")
        self.usage[pid] = pages

    def add_usage(self, pid: int, delta: int) -> None:
        new = self.usage.get(pid, 0) + delta
        if new < 0:
            raise ValueError(f"usage of pid {pid} would go negative")
        self.usage[pid] = new

    def headroom(self, pid: int) -> int:
        """Pages this workload may still promote under its quota."""
        return max(self.quotas.get(pid, 0) - self.usage.get(pid, 0), 0)

    def overage(self, pid: int) -> int:
        """Pages this workload must demote to respect its quota."""
        return max(self.usage.get(pid, 0) - self.quotas.get(pid, 0), 0)

    def total_usage(self) -> int:
        return sum(self.usage.values())

    def utilization(self) -> float:
        return self.total_usage() / self.capacity_pages
