"""Per-thread page-table replication cost/benefit advisor (§3.6).

Replication "introduces memory and manipulation overhead, which can be
problematic for some workloads, such as FaaS"; the paper suggests
"automatically enabling/disabling the thread-level page table
replication mechanism based on performance trade-offs".  This advisor
implements that decision:

* **cost** — the per-thread upper-level table pages (memory) plus the
  fault-path manipulation overhead of leaf linking, amortized per epoch;
* **benefit** — the IPI + invalidation cycles the scoped shootdowns
  saved versus process-wide coherence, measured from the actual
  migration traffic and sharing degrees.

Short-lived, many-threaded, low-migration workloads (the FaaS shape)
come out negative and are advised OFF; long-running workloads with
private working sets and steady migration come out positive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mm.migration_costs import BATCH_IPI_PER_CPU
from repro.sim.units import PAGE_SIZE

#: Fault-path cost of linking a shared leaf into a replica (cycles).
LEAF_LINK_COST_CYCLES = 400.0
#: Cycles-per-byte weight converting replica table memory into an
#: equivalent recurring cost (opportunity cost of resident metadata).
MEMORY_COST_CYCLES_PER_PAGE_EPOCH = 50.0


@dataclass
class ReplicationAdvice:
    """One workload's verdict."""

    pid: int
    enable: bool
    benefit_cycles_per_epoch: float
    cost_cycles_per_epoch: float

    @property
    def net_cycles_per_epoch(self) -> float:
        return self.benefit_cycles_per_epoch - self.cost_cycles_per_epoch


class ReplicationAdvisor:
    """Accumulates per-epoch evidence and issues enable/disable advice."""

    def __init__(self, hysteresis: float = 1.2) -> None:
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1")
        self.hysteresis = hysteresis
        self._epochs: dict[int, int] = {}
        self._saved_ipi_targets: dict[int, int] = {}
        self._leaf_links: dict[int, int] = {}
        self._replica_pages: dict[int, int] = {}
        self._current: dict[int, bool] = {}

    def note_epoch(
        self,
        pid: int,
        *,
        migrations: int,
        avg_sharers: float,
        n_threads: int,
        new_leaf_links: int,
        replica_upper_pages: int,
    ) -> None:
        """Record one epoch of evidence for ``pid``.

        ``avg_sharers`` is the mean size of the sharing set among
        migrated pages (1 = fully private traffic); process-wide
        coherence would have targeted ``n_threads`` cores instead.
        """
        if migrations < 0 or new_leaf_links < 0:
            raise ValueError("counters cannot be negative")
        self._epochs[pid] = self._epochs.get(pid, 0) + 1
        saved = int(migrations * max(n_threads - avg_sharers, 0.0))
        self._saved_ipi_targets[pid] = self._saved_ipi_targets.get(pid, 0) + saved
        self._leaf_links[pid] = self._leaf_links.get(pid, 0) + new_leaf_links
        self._replica_pages[pid] = replica_upper_pages

    def advise(self, pid: int) -> ReplicationAdvice:
        epochs = max(self._epochs.get(pid, 0), 1)
        benefit = self._saved_ipi_targets.get(pid, 0) * BATCH_IPI_PER_CPU / epochs
        cost = (
            self._leaf_links.get(pid, 0) * LEAF_LINK_COST_CYCLES / epochs
            + self._replica_pages.get(pid, 0) * MEMORY_COST_CYCLES_PER_PAGE_EPOCH
        )
        was_on = self._current.get(pid, True)
        # Hysteresis: flipping state requires a clear margin.
        if was_on:
            enable = benefit * self.hysteresis >= cost
        else:
            enable = benefit >= cost * self.hysteresis
        self._current[pid] = enable
        return ReplicationAdvice(
            pid=pid,
            enable=enable,
            benefit_cycles_per_epoch=benefit,
            cost_cycles_per_epoch=cost,
        )

    def replica_memory_bytes(self, pid: int) -> int:
        """Resident replica overhead in bytes (table pages × 4 KiB)."""
        return self._replica_pages.get(pid, 0) * PAGE_SIZE

    def forget(self, pid: int) -> None:
        for d in (self._epochs, self._saved_ipi_targets, self._leaf_links, self._replica_pages, self._current):
            d.pop(pid, None)
