"""Admission control and black-box service classification (§3.2/§3.3).

The migration daemon "operates exclusively on a controlled set of
whitelisted applications managed by the system administrator", and
classifies black-box workloads as LC or BE "based on resource
utilization patterns" (citing Themis).  This module implements both:

* :class:`Whitelist` — the admin-controlled admission set, with an
  optional default-deny posture;
* :class:`ServiceClassifier` — observes per-epoch utilization of each
  managed workload and derives LC/BE from mean utilization and
  burstiness (coefficient of variation), re-evaluating on a rolling
  window so phase changes are tracked.  A declared class always wins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ServiceClass, WorkloadSignals, classify_service
from repro.metrics.stats import coefficient_of_variation


class NotWhitelistedError(PermissionError):
    """A workload outside the admin whitelist asked for management."""


@dataclass
class Whitelist:
    """The administrator's set of manageable applications.

    ``default_allow=True`` turns the whitelist into an audit log only
    (useful for experiments); production posture is default-deny.
    """

    default_allow: bool = False
    _allowed: set[str] = field(default_factory=set)
    _denied_attempts: list[str] = field(default_factory=list)

    def allow(self, name: str) -> None:
        self._allowed.add(name)

    def revoke(self, name: str) -> None:
        self._allowed.discard(name)

    def is_allowed(self, name: str) -> bool:
        return self.default_allow or name in self._allowed

    def check(self, name: str) -> None:
        """Raise unless ``name`` may be managed (records the attempt)."""
        if not self.is_allowed(name):
            self._denied_attempts.append(name)
            raise NotWhitelistedError(f"workload {name!r} is not whitelisted for tiering management")

    @property
    def denied_attempts(self) -> list[str]:
        return list(self._denied_attempts)


@dataclass
class _History:
    declared: ServiceClass | None
    utilization: deque[float] = field(default_factory=lambda: deque(maxlen=16))
    current: ServiceClass = ServiceClass.LC  # conservative default


class ServiceClassifier:
    """Rolling LC/BE classification from observed issue rates.

    Call :meth:`observe` once per epoch with the fraction of the access
    budget the workload actually used; :meth:`service_of` returns the
    current classification.  Needs ``min_window`` observations before it
    overrides the conservative LC default.
    """

    def __init__(self, min_window: int = 4, utilization_cut: float = 0.7, burstiness_cut: float = 0.5) -> None:
        if min_window < 1:
            raise ValueError("min_window must be >= 1")
        self.min_window = min_window
        self.utilization_cut = utilization_cut
        self.burstiness_cut = burstiness_cut
        self._workloads: dict[int, _History] = {}
        self.reclassifications = 0

    def register(self, pid: int, declared: ServiceClass | None = None) -> None:
        if pid in self._workloads:
            raise ValueError(f"pid {pid} already registered")
        self._workloads[pid] = _History(declared=declared)
        if declared is not None:
            self._workloads[pid].current = declared

    def unregister(self, pid: int) -> None:
        self._workloads.pop(pid, None)

    def observe(self, pid: int, utilization: float) -> ServiceClass:
        """Feed one epoch's observed issue-rate; returns the (possibly
        updated) classification."""
        h = self._workloads.get(pid)
        if h is None:
            raise KeyError(f"pid {pid} not registered")
        h.utilization.append(float(np.clip(utilization, 0.0, 1.0)))
        if h.declared is not None:
            return h.declared
        if len(h.utilization) >= self.min_window:
            signals = WorkloadSignals(
                mean_utilization=float(np.mean(h.utilization)),
                burstiness=coefficient_of_variation(list(h.utilization)),
            )
            new = classify_service(
                signals,
                utilization_cut=self.utilization_cut,
                burstiness_cut=self.burstiness_cut,
            )
            if new is not h.current:
                self.reclassifications += 1
                h.current = new
        return h.current

    def service_of(self, pid: int) -> ServiceClass:
        h = self._workloads.get(pid)
        if h is None:
            raise KeyError(f"pid {pid} not registered")
        return h.current
