"""Tiered-memory QoS metrics: GPT, FTHR, and demand (paper §3.3).

* **GPT** (Guaranteed Performance Target), Eq. before (1)::

      GPT_i = min(GFMC / RSS_i, 1)

  where ``GFMC`` (Guaranteed Fast Memory Capacity) is the fast tier
  split evenly over the ``n`` co-located workloads.  GPT is the QoS
  baseline: the fraction of a workload's resident set its fair share of
  fast memory could cover.

* **FTHR** (Fast-Tier Hit Ratio), Eq. (1)-(2): per epoch, ``N`` samples
  of (fast, slow) access counts are averaged into ``H̄_{i,t}`` and
  folded into an EMA with α = 0.8 — responsive but stable.

* **demand**, Eq. (3)::

      demand_i = alloc_i + (GPT_i - FTHR_i) · RSS_i · log²(RSS_i)

  A workload whose hit ratio trails its target asks for more; one
  exceeding it offers the surplus back.  The log² factor scales the
  correction with footprint.  We clamp demand to ``[0, RSS_i]`` — no
  workload can use more fast memory than its resident set — which the
  paper leaves implicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Eq. (2) EMA weight on the newest sample window ("empirically 0.8").
FTHR_ALPHA = 0.8


def gpt_for(rss_pages: int, fast_capacity_pages: int, n_workloads: int) -> float:
    """Guaranteed Performance Target for one workload.

    ``GFMC = fast_capacity / n``; GPT saturates at 1 when the fair share
    covers the whole resident set.
    """
    if rss_pages <= 0:
        return 1.0
    if n_workloads <= 0:
        raise ValueError("need at least one workload")
    gfmc = fast_capacity_pages / n_workloads
    return min(gfmc / rss_pages, 1.0)


#: Release-side headroom: a satisfied BE workload is shrunk toward
#: FTHR ≈ BE_TARGET_KAPPA × GPT instead of the bare GPT floor.
BE_TARGET_KAPPA = 2.0
#: Margin kept above a satisfied LC workload's measured hot set.
LC_HOT_SET_MARGIN = 1.15


def demand_pages(
    alloc_pages: int,
    gpt: float,
    fthr: float,
    rss_pages: int,
    *,
    hot_set_pages: int | None = None,
    latency_critical: bool = True,
) -> int:
    """Fast-memory demand: Eq. (3) growth with a differentiated release.

    Eq. (3) reads ``demand = alloc + (GPT - FTHR)·RSS·log²(RSS)``.  The
    log² factor is so large that, after clamping to ``[0, RSS]``, the
    equation acts as a direction signal: *under target → demand
    everything; over target → demand nothing*.  Taken literally the
    release side would demote a workload's genuinely hot pages until its
    hit ratio collapses to the GPT floor — the opposite of "leave no one
    behind".

    Reproduction decision (documented in DESIGN.md): the growth side is
    Eq. (3) verbatim.  The release side is differentiated by service
    class, mirroring §3.3's "differentiated QoS guarantees":

    * **LC** — a satisfied LC workload donates only the allocation
      beyond its measured hot set (×1.15 margin): fairness never
      cannibalizes pages an LC service is actually hitting.
    * **BE** — a satisfied BE workload is shrunk geometrically toward a
      hit-ratio target of ``κ·GPT`` (κ = 2): it keeps comfortable
      headroom above its guarantee but releases surplus that fairness
      can redistribute to workloads extracting less value per page.
    """
    if rss_pages <= 0:
        return 0
    if fthr < gpt:
        log2rss = math.log2(max(rss_pages, 2))
        raw = alloc_pages + (gpt - fthr) * rss_pages * log2rss * log2rss
        return int(min(max(raw, 0.0), float(rss_pages)))
    if latency_critical:
        if hot_set_pages is None:
            return alloc_pages
        keep = int(round(hot_set_pages * LC_HOT_SET_MARGIN))
        return max(min(alloc_pages, keep, rss_pages), 0)
    target = min(BE_TARGET_KAPPA * gpt, 0.95)
    if fthr <= target or fthr <= 0.0:
        return alloc_pages  # within headroom: hold
    return max(int(alloc_pages * target / fthr), 0)


@dataclass
class WorkloadQos:
    """Per-workload QoS state evolved epoch by epoch."""

    pid: int
    rss_pages: int = 0
    gpt: float = 1.0
    fthr: float = 0.0
    prev_window_avg: float = 0.0
    _initialized: bool = False
    #: raw (fast, slow) sample pairs accumulated in the current window
    _samples: list[tuple[int, int]] = field(default_factory=list)

    def add_sample(self, fast_accesses: int, slow_accesses: int) -> None:
        """One of the N intra-epoch samples of Eq. (1)."""
        if fast_accesses < 0 or slow_accesses < 0:
            raise ValueError("access counts must be non-negative")
        self._samples.append((fast_accesses, slow_accesses))

    def window_average(self) -> float:
        """H̄_{i,t}: ratio of fast accesses over the sample window."""
        fast = sum(s[0] for s in self._samples)
        total = fast + sum(s[1] for s in self._samples)
        return fast / total if total else 0.0

    def end_window(self) -> float:
        """Fold the window into FTHR via Eq. (2) and reset samples."""
        h_t = self.window_average()
        if not self._initialized:
            # First window: no history to blend with.
            self.fthr = h_t
            self._initialized = True
        else:
            self.fthr = FTHR_ALPHA * h_t + (1.0 - FTHR_ALPHA) * self.prev_window_avg
        self.prev_window_avg = h_t
        self._samples.clear()
        return self.fthr

    @property
    def under_allocated(self) -> bool:
        """Paper: FTHR below GPT means fast memory is insufficient."""
        return self.fthr < self.gpt

    def demand(
        self,
        alloc_pages: int,
        hot_set_pages: int | None = None,
        *,
        latency_critical: bool = True,
    ) -> int:
        return demand_pages(
            alloc_pages,
            self.gpt,
            self.fthr,
            self.rss_pages,
            hot_set_pages=hot_set_pages,
            latency_critical=latency_critical,
        )


class QosTracker:
    """QoS state for every managed workload."""

    def __init__(self, fast_capacity_pages: int) -> None:
        if fast_capacity_pages <= 0:
            raise ValueError("fast capacity must be positive")
        self.fast_capacity_pages = fast_capacity_pages
        self.workloads: dict[int, WorkloadQos] = {}

    def register(self, pid: int, rss_pages: int) -> WorkloadQos:
        if pid in self.workloads:
            raise ValueError(f"pid {pid} already tracked")
        qos = WorkloadQos(pid=pid, rss_pages=rss_pages)
        self.workloads[pid] = qos
        self._refresh_gpts()
        return qos

    def unregister(self, pid: int) -> None:
        self.workloads.pop(pid, None)
        self._refresh_gpts()

    def set_rss(self, pid: int, rss_pages: int) -> None:
        """RSS changes (growth, phase change) re-derive every GPT."""
        self.workloads[pid].rss_pages = rss_pages
        self._refresh_gpts()

    def set_capacity(self, fast_capacity_pages: int) -> None:
        """Fast-tier capacity changed (frames offlined/onlined).

        GFMC — and with it every workload's GPT — is a function of the
        *online* fast capacity, so a capacity event reshapes all
        guarantees immediately.
        """
        if fast_capacity_pages <= 0:
            raise ValueError("fast capacity must be positive")
        self.fast_capacity_pages = fast_capacity_pages
        self._refresh_gpts()

    def _refresh_gpts(self) -> None:
        n = len(self.workloads)
        if n == 0:
            return
        for qos in self.workloads.values():
            qos.gpt = gpt_for(qos.rss_pages, self.fast_capacity_pages, n)

    def end_epoch(self) -> dict[int, float]:
        """Close every workload's sample window; returns pid → FTHR."""
        return {pid: qos.end_window() for pid, qos in self.workloads.items()}

    def demands(
        self,
        allocs: dict[int, int],
        hot_sets: dict[int, int] | None = None,
        latency_critical: dict[int, bool] | None = None,
    ) -> dict[int, int]:
        """Eq. (3) demands for all workloads given current allocations,
        per-workload hot-set size estimates, and service classes."""
        hs = hot_sets or {}
        lc = latency_critical or {}
        return {
            pid: qos.demand(allocs.get(pid, 0), hs.get(pid), latency_critical=lc.get(pid, True))
            for pid, qos in self.workloads.items()
        }
