"""Four-class priority promotion queues with MLFQ escalation (§3.5).

Pages awaiting promotion are queued by their Table 1 class; within a
queue the hottest page is served first.  A Multi-Level Feedback Queue
rule prevents starvation: a page re-enqueued with grown heat escalates
one priority level once its heat crosses ``boost_factor`` × the median
heat of the class above it — "allowing pages to promote to
higher-priority queues as their heat levels increase".

Implementation: one max-heap per class keyed on (-heat, vpn), with lazy
invalidation (a page re-enqueued with new heat leaves a stale entry that
is skipped on pop) — the standard priority-queue-with-updates idiom.
"""

from __future__ import annotations

import heapq
from typing import NamedTuple

from repro.core.classify import PageClass
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer


class QueuedPage(NamedTuple):
    """A promotion candidate with its scheduling state."""

    pid: int
    vpn: int
    heat: float
    page_class: PageClass
    #: effective class after MLFQ escalation (>= page_class)
    effective_class: PageClass


#: next-higher Table 1 class (MLFQ climb order), ``None`` at the top
_NEXT_CLASS: dict[PageClass, PageClass | None] = {
    PageClass.SHARED_WRITE: PageClass.PRIVATE_WRITE,
    PageClass.PRIVATE_WRITE: PageClass.SHARED_READ,
    PageClass.SHARED_READ: PageClass.PRIVATE_READ,
    PageClass.PRIVATE_READ: None,
}

#: pop() service order: highest class first
_CLASSES_DESC = tuple(sorted(PageClass, reverse=True))


class PromotionQueues:
    """The four Table 1 queues plus the MLFQ escalation rule."""

    def __init__(self, boost_factor: float = 2.0) -> None:
        if boost_factor <= 1.0:
            raise ValueError("boost_factor must exceed 1")
        self.boost_factor = boost_factor
        #: effective class -> heap of (-heat, pid, vpn)
        self._heaps: dict[PageClass, list[tuple[float, int, int]]] = {c: [] for c in PageClass}
        #: (pid, vpn) -> (effective class, heat) of the live entry; a
        #: heap tuple that doesn't match this (or finds no entry) is a
        #: lazily-invalidated leftover and is skipped on pop
        self._live: dict[tuple[int, int], tuple[PageClass, float]] = {}
        self._heat_sum: dict[PageClass, float] = {c: 0.0 for c in PageClass}
        self._heat_count: dict[PageClass, int] = {c: 0 for c in PageClass}
        self.escalations = 0

    def __len__(self) -> int:
        return len(self._live)

    def _mean_heat(self, cls: PageClass) -> float:
        n = self._heat_count[cls]
        return self._heat_sum[cls] / n if n else 0.0

    def _escalate(self, base: PageClass, heat: float) -> PageClass:
        """MLFQ: climb while heat dwarfs the population above."""
        cls = base
        sums = self._heat_sum
        counts = self._heat_count
        bf = self.boost_factor
        while True:
            above = _NEXT_CLASS[cls]
            if above is None:
                break
            n = counts[above]
            if n:
                ref = sums[above] / n
                if ref > 0.0 and heat >= bf * ref:
                    cls = above
                    self.escalations += 1
                    continue
            break
        return cls

    def enqueue(self, pid: int, vpn: int, heat: float, page_class: PageClass) -> PageClass:
        """Add or refresh a candidate; returns its effective class."""
        if heat < 0.0:
            raise ValueError("heat must be non-negative")
        key = (pid, vpn)
        sums = self._heat_sum
        counts = self._heat_count
        old = self._live.get(key)
        if old is not None:
            old_cls = old[0]
            sums[old_cls] -= old[1]
            counts[old_cls] -= 1
        effective = self._escalate(page_class, heat)
        if effective is not page_class:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "queue_escalation", pid=pid, vpn=vpn, heat=heat,
                    from_class=page_class.name, to_class=effective.name,
                )
                tracer.metrics.counter("queue_escalations", page_class=page_class.name).inc()
        self._live[key] = (effective, heat)
        heapq.heappush(self._heaps[effective], (-heat, pid, vpn))
        sums[effective] += heat
        counts[effective] += 1
        return effective

    def pop(self, budget: int) -> list[QueuedPage]:
        """Serve up to ``budget`` pages, highest class first, hottest
        within class."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        out: list[QueuedPage] = []
        tracer = get_tracer()
        for cls in _CLASSES_DESC:
            heap = self._heaps[cls]
            while heap and len(out) < budget:
                neg_heat, pid, vpn = heapq.heappop(heap)
                key = (pid, vpn)
                live = self._live.get(key)
                if live is None:
                    continue  # already served or dropped
                heat = live[1]
                if live[0] is not cls or heat != -neg_heat:
                    continue  # superseded by a re-enqueue
                del self._live[key]
                self._heat_sum[cls] -= heat
                self._heat_count[cls] -= 1
                out.append(
                    QueuedPage(pid=pid, vpn=vpn, heat=heat, page_class=cls, effective_class=cls)
                )
                if tracer.enabled:
                    tracer.emit(
                        EventKind.QUEUE_PROMOTION,
                        "queue_promotion",
                        pid=pid,
                        args={"vpn": vpn, "heat": heat, "page_class": cls.name},
                    )
                    tracer.metrics.counter(
                        "queue_promotions", workload=pid, page_class=cls.name
                    ).inc()
            if len(out) >= budget:
                break
        return out

    def drop(self, pid: int, vpn: int) -> bool:
        """Remove a candidate (page demoted away, process exit)."""
        live = self._live.pop((pid, vpn), None)
        if live is None:
            return False
        cls, heat = live
        self._heat_sum[cls] -= heat
        self._heat_count[cls] -= 1
        return True

    def drop_pid(self, pid: int) -> int:
        """Remove every candidate of a process."""
        keys = [k for k in self._live if k[0] == pid]
        for k in keys:
            self.drop(*k)
        return len(keys)

    def depth(self, cls: PageClass) -> int:
        """Live candidates currently queued at ``cls``."""
        return self._heat_count[cls]
