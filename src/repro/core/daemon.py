"""The Vulcan migration daemon (§3.2) — ties the four innovations together.

One daemon instance manages a whitelisted set of workloads.  Per epoch it:

1. closes each workload's FTHR sampling window (Eq. 1-2);
2. derives fast-memory demands (Eq. 3);
3. runs CBFRP (Algorithm 1) to produce per-workload quotas;
4. refreshes each workload's promotion candidates, classifies them per
   Table 1, and serves promotions within the quota headroom through the
   workload's *own* migration engine (workload-dependent migration:
   scoped LRU drains, per-thread-page-table shootdown scoping);
5. demotes over-quota workloads coldest-first, using shadow remaps when
   possible.

The daemon never blocks one workload's migrations on another's — each
handle owns its engine — which is the decentralization §3.2 argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bias import BiasedMigrationPolicy, MigrationPlan
from repro.core.cbfrp import CreditLedger, run_cbfrp
from repro.core.classify import ServiceClass
from repro.core.partition import PartitionLedger
from repro.core.qos import QosTracker
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.migration import MigrationEngine, MigrationRequest
from repro.mm.shadow import ShadowTracker
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer
from repro.profiling.base import Profiler


@dataclass
class WorkloadHandle:
    """Everything the daemon holds for one managed workload."""

    pid: int
    name: str
    service: ServiceClass
    space: AddressSpace
    engine: MigrationEngine
    profiler: Profiler
    shadow: ShadowTracker | None = None
    #: access rate per kilocycle fed to the transactional-dirty model
    access_rate_per_kcycle: float = 0.0


@dataclass
class EpochReport:
    """What one daemon tick did."""

    quotas: dict[int, int] = field(default_factory=dict)
    fthr: dict[int, float] = field(default_factory=dict)
    gpt: dict[int, float] = field(default_factory=dict)
    demands: dict[int, int] = field(default_factory=dict)
    plans: dict[int, MigrationPlan] = field(default_factory=dict)
    promotions: int = 0
    demotions: int = 0
    migration_cycles: float = 0.0


class VulcanDaemon:
    """Coordinates QoS tracking, CBFRP and biased migration."""

    def __init__(
        self,
        allocator: FrameAllocator,
        *,
        fast_capacity_pages: int,
        unit_pages: int = 16,
        promotion_budget_per_epoch: int = 256,
        policy: BiasedMigrationPolicy | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if unit_pages <= 0:
            raise ValueError("unit_pages must be positive")
        self.allocator = allocator
        self.unit_pages = unit_pages
        self.promotion_budget = promotion_budget_per_epoch
        self.qos = QosTracker(fast_capacity_pages)
        self.partition = PartitionLedger(fast_capacity_pages)
        self.credits = CreditLedger()
        self.policy = policy if policy is not None else BiasedMigrationPolicy()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.workloads: dict[int, WorkloadHandle] = {}

    # -- whitelist management (the admin-controlled set, §3.2) ---------------

    def attach(self, handle: WorkloadHandle) -> None:
        """Admit a workload to management."""
        pid = handle.pid
        if pid in self.workloads:
            raise ValueError(f"pid {pid} already managed")
        self.workloads[pid] = handle
        self.qos.register(pid, handle.space.process.rss_pages)
        self.partition.register(pid)
        self.credits.ensure(pid)

    def detach(self, pid: int) -> None:
        """Remove an exited workload; its profiler/queue state is dropped."""
        handle = self.workloads.pop(pid, None)
        if handle is None:
            return
        handle.profiler.forget(pid)
        self.policy.forget(pid)
        self.qos.unregister(pid)
        self.partition.unregister(pid)
        self.credits.drop(pid)

    def set_fast_capacity(self, pages: int) -> None:
        """Capacity event: the online fast-tier size changed.

        Propagates to the QoS tracker (GPTs are derived from GFMC =
        capacity / n) and the partition ledger (CBFRP partitions the new
        capacity on the next tick).
        """
        pages = max(int(pages), 1)
        self.qos.set_capacity(pages)
        self.partition.set_capacity(pages)

    # -- per-epoch tick ----------------------------------------------------------

    def _sync_usage(self) -> None:
        """Pull ground-truth fast-tier usage from the frame store."""
        for pid in self.workloads:
            self.partition.set_usage(pid, self.allocator.store.fast_usage(pid))

    def tick(self, migrate: bool = True) -> EpochReport:
        """Run one management epoch (steps 1-5 of the module docstring).

        With ``migrate=False`` (Colloid-style suspension, §3.6) the QoS
        bookkeeping still runs — FTHR windows close, demands and quotas
        update — but no pages move this epoch.
        """
        report = EpochReport()
        if not self.workloads:
            return report

        # 1. Close FTHR windows; refresh RSS-dependent GPTs.
        for pid, handle in self.workloads.items():
            self.qos.set_rss(pid, handle.space.process.rss_pages)
        report.fthr = self.qos.end_epoch()
        report.gpt = {pid: q.gpt for pid, q in self.qos.workloads.items()}

        # 2. Demands from current allocations (quotas double as allocs),
        # with hot-set estimates gating the release side of the controller.
        self._sync_usage()
        allocs = {pid: self.partition.usage.get(pid, 0) for pid in self.workloads}
        hot_sets = {
            pid: handle.profiler.hot_count(pid, self.policy.hot_threshold)
            for pid, handle in self.workloads.items()
        }
        lc_map = {
            pid: handle.service is ServiceClass.LC for pid, handle in self.workloads.items()
        }
        report.demands = self.qos.demands(allocs, hot_sets, lc_map)

        # 3. CBFRP in allocation units.
        unit = self.unit_pages
        demands_units = {pid: -(-d // unit) for pid, d in report.demands.items()}
        capacity_units = self.partition.capacity_pages // unit
        service = {pid: h.service for pid, h in self.workloads.items()}
        state = run_cbfrp(capacity_units, demands_units, service, self.credits, rng=self.rng)
        quotas = {pid: u * unit for pid, u in state.allocations.items()}
        self.partition.set_quotas(quotas)
        report.quotas = quotas
        tracer = get_tracer()
        if tracer.enabled:
            for pid in self.workloads:
                tracer.emit(
                    EventKind.CREDIT_BALANCE,
                    "credit_balance",
                    pid=pid,
                    args={
                        "credits": self.credits.get(pid),
                        "quota_pages": quotas.get(pid, 0),
                        "demand_pages": report.demands.get(pid, 0),
                        "fthr": report.fthr.get(pid, 0.0),
                    },
                )
                tracer.metrics.gauge("quota_pages", workload=pid).set(quotas.get(pid, 0))
                tracer.metrics.gauge("cbfrp_credits", workload=pid).set(self.credits.get(pid))

        # 4./5. Per-workload promotion and demotion.
        if not migrate:
            return report
        slack_shares = self._slack_shares()
        for pid, handle in self.workloads.items():
            plan = self._plan_for(pid, handle, slack_shares.get(pid, 0))
            report.plans[pid] = plan
            cycles_before = handle.engine.stats.total_cycles
            self._execute(handle, plan)
            report.migration_cycles += handle.engine.stats.total_cycles - cycles_before
            report.promotions += len(plan.promotions)
            report.demotions += len(plan.demotions)
        return report

    def _slack_shares(self) -> dict[int, int]:
        """Work-conserving slack: CBFRP quotas are *guarantees*, not caps.

        Capacity no workload demanded is distributed weighted by inverse
        FTHR, equalizing *effective* service (allocation × hit ratio):
        a workload extracting less value per fast page receives
        proportionally more pages, which is exactly what the paper's CFI
        metric (Eq. 4) scores.  The shares are reclaimable next round
        because overage is measured against quota + share.
        """
        total_quota = sum(self.partition.quotas.values())
        slack = max(self.partition.capacity_pages - total_quota, 0)
        if not self.workloads or slack == 0:
            return {pid: 0 for pid in self.workloads}
        weights = {
            pid: 1.0 / max(self.qos.workloads[pid].fthr, 0.10)
            for pid in self.workloads
        }
        wsum = sum(weights.values())
        return {pid: int(slack * w / wsum) for pid, w in weights.items()}

    def _plan_for(self, pid: int, handle: WorkloadHandle, slack_share: int = 0) -> MigrationPlan:
        plan = MigrationPlan()
        repl = handle.space.process.repl
        effective_quota = self.partition.quotas.get(pid, 0) + slack_share

        # Demote first when over the effective quota — frees headroom.
        # Rate-limited so the CBFRP controller converges smoothly instead
        # of slamming a workload's residency in one epoch.
        overage = max(self.partition.usage.get(pid, 0) - effective_quota, 0)
        overage = min(overage, self.promotion_budget)
        if overage > 0:
            plan.demotions = self.policy.select_demotions(
                pid, overage, handle.profiler, repl, self.allocator, shadow=handle.shadow
            )

        self.policy.refresh_candidates(pid, handle.profiler, repl, self.allocator)
        usage_after_demotion = self.partition.usage.get(pid, 0) - len(plan.demotions)
        headroom = max(effective_quota - usage_after_demotion, 0)
        budget = min(self.promotion_budget, headroom)
        # Also bounded by actual free fast frames after demotions land.
        free_after = self.allocator.free_frames(0) + len(plan.demotions)
        budget = min(budget, free_after)
        if budget > 0:
            plan.promotions = self.policy.select_promotions(pid, budget, handle.profiler)

        # Within-quota exchange: a full quota must not freeze a stale
        # resident set.  Hotter queued candidates displace the coldest
        # resident pages, with 1.2× hysteresis against thrashing.
        exchange_budget = self.promotion_budget - len(plan.promotions)
        if exchange_budget > 0 and headroom <= len(plan.promotions):
            extra = self.policy.select_promotions(pid, exchange_budget, handle.profiler)
            if extra:
                already = {m.vpn for m in plan.demotions}
                victims = self.policy.select_demotions(
                    pid, len(extra), handle.profiler, repl, self.allocator,
                    shadow=handle.shadow, exclude=already,
                )
                extra.sort(key=lambda m: -m.heat)
                victims.sort(key=lambda m: m.heat)
                for cand, victim in zip(extra, victims):
                    if cand.heat > 1.2 * victim.heat:
                        plan.promotions.append(cand)
                        plan.demotions.append(victim)
        return plan

    def _execute(self, handle: WorkloadHandle, plan: MigrationPlan) -> None:
        tracer = get_tracer()
        requests: list[MigrationRequest] = []
        for m in plan.demotions:
            if tracer.enabled:
                tracer.emit(
                    EventKind.QUEUE_DEMOTION,
                    "queue_demotion",
                    pid=m.pid,
                    args={"vpn": m.vpn, "heat": m.heat},
                )
                tracer.metrics.counter("queue_demotions", workload=m.pid).inc()
            requests.append(
                MigrationRequest(pid=m.pid, vpn=m.vpn, dest_tier=1, sync=True)
            )
        for m in plan.promotions:
            requests.append(
                MigrationRequest(
                    pid=m.pid,
                    vpn=m.vpn,
                    dest_tier=0,
                    sync=m.sync,
                    write_fraction=m.write_fraction,
                    access_rate_per_kcycle=handle.access_rate_per_kcycle,
                )
            )
        if requests:
            handle.engine.migrate_batch(requests)
            self._post_move_accounting(handle, plan)

    def _post_move_accounting(self, handle: WorkloadHandle, plan: MigrationPlan) -> None:
        """Refresh partition usage after the engine moved pages."""
        self.partition.set_usage(handle.pid, self.allocator.store.fast_usage(handle.pid))
