"""Biased page migration policy (§3.5): promotion & demotion selection.

Promotion: hot slow-tier candidates are classified per Table 1
(ownership from the PTE thread-id bits, write intensity from profiled
write fractions), enqueued into the four priority queues, and served
within the workload's promotion budget.  The queue class also fixes the
copy discipline — async (transactional) for read-intensive pages, sync
for write-intensive ones.

Demotion: coldest-first among the workload's fast-tier pages, with a
preference for pages whose slow-tier shadow is still valid (remap-only
demotion, near-free) — "reduces demotion costs by remapping non-dirty
pages, which are often the read-intensive ... pages we previously
prioritized for promotion".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro import kernels
from repro.core.classify import PageClass
from repro.core.queues import PromotionQueues
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.pte import PTE_SHARED_TID
from repro.mm.replication import ReplicatedPageTables
from repro.mm.shadow import ShadowTracker
from repro.profiling.base import Profiler


class PlannedMigration(NamedTuple):
    """One selected page move."""

    pid: int
    vpn: int
    dest_tier: int  # 0 = promote, 1 = demote
    sync: bool
    heat: float
    page_class: PageClass | None = None
    write_fraction: float = 0.0


@dataclass
class MigrationPlan:
    """One epoch's selections for one workload."""

    promotions: list[PlannedMigration] = field(default_factory=list)
    demotions: list[PlannedMigration] = field(default_factory=list)

    @property
    def n_moves(self) -> int:
        return len(self.promotions) + len(self.demotions)


class BiasedMigrationPolicy:
    """Per-workload promotion/demotion selection with Table 1 bias."""

    def __init__(
        self,
        *,
        hot_threshold: float = 10.0,
        boost_factor: float = 2.0,
        write_intensive_threshold: float = 0.25,
    ) -> None:
        self.hot_threshold = hot_threshold
        self.write_intensive_threshold = write_intensive_threshold
        #: pid -> its promotion queues (workload-dependent, §3.2)
        self._queues: dict[int, PromotionQueues] = {}
        self._boost_factor = boost_factor

    def queues_for(self, pid: int) -> PromotionQueues:
        q = self._queues.get(pid)
        if q is None:
            q = PromotionQueues(boost_factor=self._boost_factor)
            self._queues[pid] = q
        return q

    def forget(self, pid: int) -> None:
        self._queues.pop(pid, None)

    # -- promotion ----------------------------------------------------------

    def refresh_candidates(
        self,
        pid: int,
        profiler: Profiler,
        repl: ReplicatedPageTables,
        allocator: FrameAllocator,
    ) -> int:
        """Classify + enqueue the workload's hot slow-tier pages.

        Returns the number of candidates enqueued this round.
        """
        queues = self.queues_for(pid)
        # Gather hot slow-tier pages in heat-insertion order (the order
        # the old dict iteration enqueued them in — the queues' running
        # class means depend on it).
        vpns, heats = profiler.heat_view(pid)
        if vpns.size == 0:
            return 0
        flat = repl.flat
        cand_vpns, cand_heats, priv = kernels.hot_slow_candidates(
            vpns, heats, self.hot_threshold, flat.pfn, flat.owner,
            flat.base, allocator.store.fast_frames, PTE_SHARED_TID,
        )
        if cand_vpns.size == 0:
            return 0
        wfs = profiler.write_fraction_many(pid, cand_vpns)
        # Vectorized classify_page: write_fraction_many guarantees
        # [0, 1] so the scalar range check is redundant, and the
        # elementwise >= is the same compare it made per page.  The
        # enqueues stay sequential — the queues' running class means
        # (MLFQ escalation) are order-dependent.
        vpn_l = cand_vpns.tolist()
        heat_l = cand_heats.tolist()
        priv_l = priv.tolist()
        wi_l = (wfs >= self.write_intensive_threshold).tolist()
        enqueue = queues.enqueue
        for vpn, heat, p, wi in zip(vpn_l, heat_l, priv_l, wi_l):
            if p:
                cls = PageClass.PRIVATE_WRITE if wi else PageClass.PRIVATE_READ
            else:
                cls = PageClass.SHARED_WRITE if wi else PageClass.SHARED_READ
            enqueue(pid, vpn, heat, cls)
        return len(vpn_l)

    def select_promotions(self, pid: int, budget: int, profiler: Profiler) -> list[PlannedMigration]:
        """Serve up to ``budget`` promotions from the priority queues."""
        if budget <= 0:
            return []
        queues = self.queues_for(pid)
        served = queues.pop(budget)
        if not served:
            return []
        # One gather for all write fractions; write_fraction_many is
        # elementwise-identical to the scalar write_fraction.
        wfs = profiler.write_fraction_many(
            pid, np.fromiter((qp.vpn for qp in served), dtype=np.int64, count=len(served))
        ).tolist()
        return [
            PlannedMigration(
                pid=pid,
                vpn=qp.vpn,
                dest_tier=0,
                sync=not qp.effective_class.use_async_copy,
                heat=qp.heat,
                page_class=qp.effective_class,
                write_fraction=wf,
            )
            for qp, wf in zip(served, wfs)
        ]

    # -- demotion ------------------------------------------------------------

    def select_demotions(
        self,
        pid: int,
        n_pages: int,
        profiler: Profiler,
        repl: ReplicatedPageTables,
        allocator: FrameAllocator,
        shadow: ShadowTracker | None = None,
        exclude: set[int] | None = None,
    ) -> list[PlannedMigration]:
        """Pick ``n_pages`` fast-tier victims, coldest first.

        Shadowed clean pages are preferred at equal coldness (they demote
        by remap); the sort key reflects that with a small bias rather
        than an absolute preference, so a hot shadowed page is still kept
        over a cold unshadowed one.
        """
        if n_pages <= 0:
            return []
        flat = repl.flat
        vpns = flat.present_vpns()  # ascending — same order as the PTE walk
        if vpns.size == 0:
            return []
        idx = flat.indices(vpns)
        pfns = flat.pfn[idx]
        keep = pfns < allocator.store.fast_frames  # fast-tier pages only
        if exclude:
            keep &= ~np.isin(vpns, np.fromiter(exclude, dtype=np.int64, count=len(exclude)))
        vpns, pfns, idx = vpns[keep], pfns[keep], idx[keep]
        if vpns.size == 0:
            return []
        h = profiler.heat_of(pid, vpns)
        if shadow is not None:
            shadowed = ~flat.dirty[idx] & shadow.shadowed_mask(pfns)
        else:
            shadowed = np.zeros(vpns.size, dtype=bool)
        key = h * np.where(shadowed, 0.5, 1.0)
        order = np.lexsort((vpns, key))[:n_pages]  # coldest first, vpn tiebreak
        return [
            PlannedMigration(
                pid=pid,
                vpn=int(vpns[i]),
                dest_tier=1,
                sync=True,  # demotions are off the hot path; shadow remap is cheap anyway
                heat=float(h[i]),
            )
            for i in order.tolist()
        ]
