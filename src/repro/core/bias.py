"""Biased page migration policy (§3.5): promotion & demotion selection.

Promotion: hot slow-tier candidates are classified per Table 1
(ownership from the PTE thread-id bits, write intensity from profiled
write fractions), enqueued into the four priority queues, and served
within the workload's promotion budget.  The queue class also fixes the
copy discipline — async (transactional) for read-intensive pages, sync
for write-intensive ones.

Demotion: coldest-first among the workload's fast-tier pages, with a
preference for pages whose slow-tier shadow is still valid (remap-only
demotion, near-free) — "reduces demotion costs by remapping non-dirty
pages, which are often the read-intensive ... pages we previously
prioritized for promotion".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import PageClass, classify_page
from repro.core.queues import PromotionQueues
from repro.mm import pte as pte_mod
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.replication import ReplicatedPageTables
from repro.mm.shadow import ShadowTracker
from repro.profiling.base import Profiler


@dataclass(frozen=True)
class PlannedMigration:
    """One selected page move."""

    pid: int
    vpn: int
    dest_tier: int  # 0 = promote, 1 = demote
    sync: bool
    heat: float
    page_class: PageClass | None = None
    write_fraction: float = 0.0


@dataclass
class MigrationPlan:
    """One epoch's selections for one workload."""

    promotions: list[PlannedMigration] = field(default_factory=list)
    demotions: list[PlannedMigration] = field(default_factory=list)

    @property
    def n_moves(self) -> int:
        return len(self.promotions) + len(self.demotions)


class BiasedMigrationPolicy:
    """Per-workload promotion/demotion selection with Table 1 bias."""

    def __init__(
        self,
        *,
        hot_threshold: float = 10.0,
        boost_factor: float = 2.0,
        write_intensive_threshold: float = 0.25,
    ) -> None:
        self.hot_threshold = hot_threshold
        self.write_intensive_threshold = write_intensive_threshold
        #: pid -> its promotion queues (workload-dependent, §3.2)
        self._queues: dict[int, PromotionQueues] = {}
        self._boost_factor = boost_factor

    def queues_for(self, pid: int) -> PromotionQueues:
        q = self._queues.get(pid)
        if q is None:
            q = PromotionQueues(boost_factor=self._boost_factor)
            self._queues[pid] = q
        return q

    def forget(self, pid: int) -> None:
        self._queues.pop(pid, None)

    # -- promotion ----------------------------------------------------------

    def refresh_candidates(
        self,
        pid: int,
        profiler: Profiler,
        repl: ReplicatedPageTables,
        allocator: FrameAllocator,
    ) -> int:
        """Classify + enqueue the workload's hot slow-tier pages.

        Returns the number of candidates enqueued this round.
        """
        queues = self.queues_for(pid)
        enqueued = 0
        for vpn, heat in profiler.hotness(pid).items():
            if heat < self.hot_threshold:
                continue
            value = repl.lookup(vpn)
            if value is None:
                continue
            pfn = pte_mod.pte_pfn(value)
            if allocator.tier_of_pfn(pfn) != 1:
                continue  # already fast
            wf = profiler.write_fraction(pid, vpn)
            cls = classify_page(
                private=repl.is_private(vpn),
                write_fraction=wf,
                threshold=self.write_intensive_threshold,
            )
            queues.enqueue(pid, vpn, heat, cls)
            enqueued += 1
        return enqueued

    def select_promotions(self, pid: int, budget: int, profiler: Profiler) -> list[PlannedMigration]:
        """Serve up to ``budget`` promotions from the priority queues."""
        if budget <= 0:
            return []
        queues = self.queues_for(pid)
        out: list[PlannedMigration] = []
        for qp in queues.pop(budget):
            out.append(
                PlannedMigration(
                    pid=pid,
                    vpn=qp.vpn,
                    dest_tier=0,
                    sync=not qp.effective_class.use_async_copy,
                    heat=qp.heat,
                    page_class=qp.effective_class,
                    write_fraction=profiler.write_fraction(pid, qp.vpn),
                )
            )
        return out

    # -- demotion ------------------------------------------------------------

    def select_demotions(
        self,
        pid: int,
        n_pages: int,
        profiler: Profiler,
        repl: ReplicatedPageTables,
        allocator: FrameAllocator,
        shadow: ShadowTracker | None = None,
        exclude: set[int] | None = None,
    ) -> list[PlannedMigration]:
        """Pick ``n_pages`` fast-tier victims, coldest first.

        Shadowed clean pages are preferred at equal coldness (they demote
        by remap); the sort key reflects that with a small bias rather
        than an absolute preference, so a hot shadowed page is still kept
        over a cold unshadowed one.
        """
        if n_pages <= 0:
            return []
        heat = profiler.hotness(pid)
        skip = exclude or set()
        candidates: list[tuple[float, int, int, bool]] = []  # (key, vpn, pfn, shadowed)
        for vpn, value in repl.process_table.iter_ptes():
            if vpn in skip:
                continue
            pfn = pte_mod.pte_pfn(value)
            if allocator.tier_of_pfn(pfn) != 0:
                continue
            h = heat.get(vpn, 0.0)
            shadowed = (
                shadow is not None
                and not pte_mod.pte_is_dirty(value)
                and shadow.shadow_of(pfn) is not None
            )
            key = h * (0.5 if shadowed else 1.0)
            candidates.append((key, vpn, pfn, shadowed))
        candidates.sort(key=lambda t: (t[0], t[1]))
        out: list[PlannedMigration] = []
        for key, vpn, pfn, shadowed in candidates[:n_pages]:
            out.append(
                PlannedMigration(
                    pid=pid,
                    vpn=vpn,
                    dest_tier=1,
                    sync=True,  # demotions are off the hot path; shadow remap is cheap anyway
                    heat=heat.get(vpn, 0.0),
                )
            )
        return out
