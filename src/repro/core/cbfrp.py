"""Credit-Based Fair Resource Partitioning — Algorithm 1 (paper §3.3).

Karma-inspired long-term fairness: workloads that donate unused fast
memory earn credits; workloads that borrow beyond their guaranteed share
spend them.  Reallocation runs every epoch on the Eq. (3) demands.

Algorithm 1, as printed, initializes ``alloc_i ← min(demand_i, GFMC)``
and then defines donors as ``{i | alloc_i > demand_i}`` — a set that is
empty under that initialization.  We read the intent (consistent with
Karma and with the text "workloads are further categorized as borrowers
(demand > alloc) … or donors (demand < alloc)" where *alloc* is the
guaranteed share): a **donor** is a workload whose demand leaves part of
its GFMC share unused, and its donatable surplus is ``GFMC − alloc_i``.
This makes the total conserved: Σ alloc never exceeds capacity.

Selection rules:

* borrowers: LC before BE (line 7); within a class, highest credits
  first (Karma's rich-get-served-first), ties by pid for determinism;
* donors: minimum credits first (line 9) — poor donors earn first;
* when no donor surplus remains and an LC borrower is still short, a
  random BE task holding more than GFMC is expropriated one unit
  (lines 11-13) — the paper's LC-priority escape hatch.

Transfers are per-``unit`` (a block of pages) rather than per-page so an
epoch's rebalance is a few hundred iterations, not millions; credit
accounting is per unit transferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ServiceClass
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer

#: Credits each workload starts with (Karma-style initial endowment).
INITIAL_CREDITS = 64


@dataclass
class CreditLedger:
    """Per-workload credit balances.

    ``endowed`` tracks the net credit mass that should be outstanding:
    each ``ensure`` banks the initial endowment, each ``drop`` retires
    the departing balance (positive or negative).  Since transfers are
    zero-sum, ``sum(credits.values()) == endowed`` must hold at every
    instant — the conservation invariant the fuzz oracle checks.
    """

    credits: dict[int, int] = field(default_factory=dict)
    endowed: int = 0

    def ensure(self, pid: int, initial: int = INITIAL_CREDITS) -> None:
        if pid not in self.credits:
            self.credits[pid] = initial
            self.endowed += initial

    def get(self, pid: int) -> int:
        return self.credits.get(pid, 0)

    def transfer(self, donor: int, borrower: int, units: int = 1) -> None:
        """Donor earns, borrower pays, per unit moved."""
        if units <= 0:
            raise ValueError("units must be positive")
        self.credits[donor] = self.credits.get(donor, 0) + units
        self.credits[borrower] = self.credits.get(borrower, 0) - units

    def drop(self, pid: int) -> None:
        balance = self.credits.pop(pid, None)
        if balance is not None:
            self.endowed -= balance

    def check_conservation(self) -> None:
        """Raise ``RuntimeError`` if credits were minted or destroyed."""
        total = sum(self.credits.values())
        if total != self.endowed:
            raise RuntimeError(
                f"credit conservation broken: Σ balances = {total} but "
                f"endowment says {self.endowed} (drift {total - self.endowed:+d})"
            )


@dataclass
class CbfrpState:
    """Inputs/outputs of one reallocation round."""

    capacity_units: int
    demands: dict[int, int]  # pid -> demanded units
    service: dict[int, ServiceClass]
    allocations: dict[int, int] = field(default_factory=dict)  # output
    expropriated: int = 0  # units taken from BE for LC (lines 11-13)
    transfers: int = 0

    @property
    def gfmc_units(self) -> int:
        n = len(self.demands)
        return self.capacity_units // n if n else 0


def run_cbfrp(
    capacity_units: int,
    demands: dict[int, int],
    service: dict[int, ServiceClass],
    ledger: CreditLedger,
    rng: np.random.Generator | None = None,
) -> CbfrpState:
    """One round of Algorithm 1.

    Parameters
    ----------
    capacity_units:
        Total fast-tier capacity in allocation units.
    demands:
        Eq. (3) demand per pid, in units.
    service:
        LC/BE class per pid.
    ledger:
        Credit balances, updated in place.
    rng:
        For the random BE expropriation choice (line 12); deterministic
        default.

    Returns
    -------
    CbfrpState with ``allocations`` summing to ≤ ``capacity_units``.
    """
    if set(demands) != set(service):
        raise ValueError("demands and service must cover the same pids")
    rng = rng if rng is not None else np.random.default_rng(0)
    tracer = get_tracer()
    state = CbfrpState(capacity_units=capacity_units, demands=dict(demands), service=dict(service))
    n = len(demands)
    if n == 0:
        return state
    gfmc = state.gfmc_units
    for pid in demands:
        ledger.ensure(pid)

    # Lines 1-2: start from the demand capped at the guaranteed share.
    alloc = {pid: min(d, gfmc) for pid, d in demands.items()}

    # Donatable surplus of each workload's guaranteed share.
    surplus = {pid: gfmc - alloc[pid] for pid in demands}

    lc_borrowers = {pid for pid, svc in service.items() if svc is ServiceClass.LC and alloc[pid] < demands[pid]}
    be_borrowers = {pid for pid, svc in service.items() if svc is ServiceClass.BE and alloc[pid] < demands[pid]}
    donors = {pid for pid in demands if surplus[pid] > 0}

    def pick_borrower() -> int:
        pool = lc_borrowers if lc_borrowers else be_borrowers
        # Highest credits first; pid tiebreak keeps runs deterministic.
        return max(pool, key=lambda p: (ledger.get(p), -p))

    def pick_donor() -> int:
        return min(donors, key=lambda p: (ledger.get(p), p))

    # Line 6: iterate until demands met or nothing left to move.
    while lc_borrowers or be_borrowers:
        b = pick_borrower()
        if donors:
            d = pick_donor()
            moved = min(surplus[d], demands[b] - alloc[b])
            alloc[b] += moved
            surplus[d] -= moved
            ledger.transfer(d, b, moved)
            state.transfers += moved
            if tracer.enabled:
                tracer.emit(
                    EventKind.CREDIT_GRANT,
                    "credit_grant",
                    pid=b,
                    args={
                        "donor": d,
                        "borrower": b,
                        "units": moved,
                        "donor_credits": ledger.get(d),
                        "borrower_credits": ledger.get(b),
                    },
                )
                tracer.metrics.counter("cbfrp_units_granted", workload=d).inc(moved)
            if surplus[d] == 0:
                donors.discard(d)
        elif b in lc_borrowers:
            # Lines 11-13: reclaim from a BE task holding above GFMC.
            candidates = [
                p for p, svc in service.items()
                if svc is ServiceClass.BE and alloc[p] > gfmc
            ]
            if not candidates:
                break
            d = candidates[int(rng.integers(len(candidates)))]
            alloc[d] -= 1
            alloc[b] += 1
            ledger.transfer(d, b, 1)
            state.transfers += 1
            state.expropriated += 1
            if tracer.enabled:
                tracer.emit(
                    EventKind.CREDIT_RECLAIM,
                    "credit_reclaim",
                    pid=b,
                    args={
                        "donor": d,
                        "borrower": b,
                        "units": 1,
                        "donor_credits": ledger.get(d),
                        "borrower_credits": ledger.get(b),
                    },
                )
                tracer.metrics.counter("cbfrp_units_expropriated", workload=d).inc()
        else:
            break
        # Lines 16-17: drop satisfied borrowers.
        if alloc[b] >= demands[b]:
            lc_borrowers.discard(b)
            be_borrowers.discard(b)

    state.allocations = alloc
    return state
