"""Workload (LC/BE) and page (Table 1) classification.

**Service class.**  Vulcan classifies black-box workloads as
latency-critical or best-effort "based on resource utilization patterns"
(citing Themis).  The heuristic here follows that intuition: BE
workloads saturate their access budget steadily (high duty cycle, high
bandwidth); LC workloads are bursty with low average utilization.  A
declared class (the operator whitelists apps anyway, §3.2) overrides the
heuristic.

**Page class.**  Table 1 crosses thread ownership with access pattern::

    private + read-intensive  → ★★★★  async copy
    shared  + read-intensive  → ★★★   async copy
    private + write-intensive → ★★    sync copy
    shared  + write-intensive → ★     sync copy
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ServiceClass(enum.Enum):
    LC = "latency-critical"
    BE = "best-effort"


class PageClass(enum.IntEnum):
    """Table 1 rows; the integer is the priority (higher = migrate first)."""

    SHARED_WRITE = 1  # ★
    PRIVATE_WRITE = 2  # ★★
    SHARED_READ = 3  # ★★★
    PRIVATE_READ = 4  # ★★★★

    @property
    def use_async_copy(self) -> bool:
        """Table 1 strategy column: async for read-intensive classes."""
        return self in (PageClass.PRIVATE_READ, PageClass.SHARED_READ)

    @property
    def is_private(self) -> bool:
        return self in (PageClass.PRIVATE_READ, PageClass.PRIVATE_WRITE)

    @property
    def is_write_intensive(self) -> bool:
        return self in (PageClass.PRIVATE_WRITE, PageClass.SHARED_WRITE)


#: Write fraction above which a page counts as write-intensive.  MTM
#: uses a similar cut; writes are costlier than their count suggests
#: (dirty-page retries, sync stalls), hence the < 0.5 threshold.
WRITE_INTENSIVE_THRESHOLD = 0.25


def classify_page(*, private: bool, write_fraction: float, threshold: float = WRITE_INTENSIVE_THRESHOLD) -> PageClass:
    """Map ownership + measured write fraction to a Table 1 class."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0,1], got {write_fraction}")
    write_intensive = write_fraction >= threshold
    if private:
        return PageClass.PRIVATE_WRITE if write_intensive else PageClass.PRIVATE_READ
    return PageClass.SHARED_WRITE if write_intensive else PageClass.SHARED_READ


@dataclass
class WorkloadSignals:
    """Utilization signals the service classifier consumes.

    Attributes
    ----------
    mean_utilization:
        Fraction of the access budget actually issued, averaged over
        recent epochs (BE batch jobs pin this near 1).
    burstiness:
        Coefficient of variation of per-epoch issue rates (LC services
        idle between request bursts → high CV).
    declared:
        Operator-declared class, if any (wins outright).
    """

    mean_utilization: float = 0.0
    burstiness: float = 0.0
    declared: ServiceClass | None = None


def classify_service(
    signals: WorkloadSignals,
    *,
    utilization_cut: float = 0.7,
    burstiness_cut: float = 0.5,
) -> ServiceClass:
    """LC/BE decision: declared class, else the utilization heuristic.

    Sustained high utilization with low burstiness reads as
    throughput-oriented batch work (BE); everything else is treated as
    latency-critical — the conservative direction, since misclassifying
    an LC service as BE is what causes the cold-page dilemma.
    """
    if signals.declared is not None:
        return signals.declared
    if signals.mean_utilization >= utilization_cut and signals.burstiness <= burstiness_cut:
        return ServiceClass.BE
    return ServiceClass.LC
