"""Fleet layer: many nodes, one scheduler (DESIGN.md §7).

A simulated cluster of N nodes — each an unchanged single-box
machine/policy/scenario stack — under a global placer that assigns and
live-migrates workloads across nodes using per-node CBFRP credit
balances and FTHR telemetry.  Nodes advance in lock-step *sync rounds*;
each node-round is a pure recipe cell, which is what lets the fleet
shard nodes across processes (``harness.parallel``) while keeping the
serial ≡ parallel bit-identical determinism contract.
"""

from repro.fleet.events import FLEET_ACTIONS, FleetEvent
from repro.fleet.experiment import FleetExperiment, FleetResult, run_fleet
from repro.fleet.library import FLEET_SCENARIOS, fleet_scenario_names, get_fleet_scenario
from repro.fleet.metrics import oracle_assignment, placement_score
from repro.fleet.placer import PLACER_REGISTRY
from repro.fleet.spec import FleetSpec, FleetSpecError, NodeDef

__all__ = [
    "FLEET_ACTIONS",
    "FLEET_SCENARIOS",
    "FleetEvent",
    "FleetExperiment",
    "FleetResult",
    "FleetSpec",
    "FleetSpecError",
    "NodeDef",
    "PLACER_REGISTRY",
    "fleet_scenario_names",
    "get_fleet_scenario",
    "oracle_assignment",
    "placement_score",
    "run_fleet",
]
