"""Fleet-wide metrics: CFI, placement quality vs. oracle, evacuation cost.

The placement-quality score is deliberately *analytic* — a pure
function of (assignment, per-workload fast-page demand, per-node fast
capacity), not of a simulation run:

    e_w   = min(1, capacity(node(w)) / Σ demand on node(w))   expected
            fast share each co-tenant of the node can get under a
            proportional split,
    score = Jain(e_w over workloads) × (Σ_n min(cap_n, demand_n)
            / Σ_n demand_n)

i.e. fairness of expected fast shares, discounted by how much total
demand the placement actually lands in fast memory.  Because the same
function scores every placer *and* defines the brute-force oracle's
objective, "oracle ≥ every heuristic" holds by construction — which is
what makes placement-quality-vs-oracle a meaningful [0, 1] ratio rather
than a race between two different notions of good.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.metrics.fairness import jain_index

#: refuse brute-force searches above this many candidate assignments
ORACLE_MAX_ASSIGNMENTS = 250_000


def placement_score(
    assignment: dict[str, str],
    demands: dict[str, int],
    capacities: dict[str, int],
) -> float:
    """Score one full assignment (workload key → node id) in [0, 1]."""
    if not assignment:
        return 1.0
    load: dict[str, int] = {}
    for key, node in assignment.items():
        if node not in capacities:
            raise ValueError(f"workload {key!r} assigned to unknown node {node!r}")
        load[node] = load.get(node, 0) + demands[key]
    shares = [
        min(1.0, capacities[assignment[key]] / load[assignment[key]])
        for key in sorted(assignment)
    ]
    total_demand = sum(demands[k] for k in assignment)
    served = sum(min(capacities[n], d) for n, d in load.items())
    if total_demand == 0:
        return 1.0
    return jain_index(shares) * (served / total_demand)


def oracle_assignment(
    demands: dict[str, int],
    capacities: dict[str, int],
    *,
    max_per_node: int | None = None,
) -> tuple[dict[str, str], float]:
    """Exhaustive best placement under :func:`placement_score`.

    Deterministic tie-break: candidates are enumerated in (sorted
    workload keys) × (sorted node ids) lexicographic order and the
    first maximum wins, so the oracle never depends on dict order.
    ``max_per_node`` restricts the search to assignments hosting at
    most that many workloads on any node (the core-block constraint
    real placers face) so the oracle ratio compares feasible against
    feasible.  Raises ``ValueError`` when the search space exceeds
    ``ORACLE_MAX_ASSIGNMENTS`` — the oracle is a small-N scoring tool,
    not a production placer — or when no assignment fits under
    ``max_per_node``.
    """
    keys = sorted(demands)
    nodes = sorted(capacities)
    if not keys:
        return {}, 1.0
    n_candidates = len(nodes) ** len(keys)
    if n_candidates > ORACLE_MAX_ASSIGNMENTS:
        raise ValueError(
            f"oracle search space {len(nodes)}^{len(keys)} = {n_candidates} exceeds "
            f"{ORACLE_MAX_ASSIGNMENTS}; use a heuristic placer at this scale"
        )
    best: dict[str, str] | None = None
    best_score = -1.0
    for combo in product(nodes, repeat=len(keys)):
        if max_per_node is not None:
            if max(combo.count(n) for n in set(combo)) > max_per_node:
                continue
        candidate = dict(zip(keys, combo))
        score = placement_score(candidate, demands, capacities)
        if score > best_score:
            best, best_score = candidate, score
    if best is None:
        raise ValueError(
            f"no assignment of {len(keys)} workloads onto {len(nodes)} node(s) "
            f"satisfies max {max_per_node} per node"
        )
    return best, best_score


def placement_quality(
    assignment: dict[str, str],
    demands: dict[str, int],
    capacities: dict[str, int],
    *,
    max_per_node: int | None = None,
) -> dict:
    """The achieved/oracle score ratio, or achieved-only at large N."""
    achieved = placement_score(assignment, demands, capacities)
    try:
        _, best = oracle_assignment(demands, capacities, max_per_node=max_per_node)
    except ValueError:
        return {"score": achieved, "oracle_score": None, "vs_oracle": None}
    ratio = 1.0 if best == 0.0 else achieved / best
    return {"score": achieved, "oracle_score": best, "vs_oracle": ratio}


def fleet_cfi(weighted_alloc: dict[str, float]) -> float:
    """Eq. 4 lifted to the fleet: Jain over per-*workload* cumulative
    FTHR-weighted fast allocations, summed across every node and round
    the workload ran on.  Fairness follows the tenant when it migrates."""
    return jain_index([weighted_alloc[k] for k in sorted(weighted_alloc)])


def node_cfi_spread(node_cfis: dict[str, list[float]]) -> dict:
    """Per-node CFI dispersion: is one box systematically less fair?

    ``node_cfis`` maps node id → its per-round node-local CFI values
    (rounds where the node hosted ≥ 2 workloads; single-tenant rounds
    are vacuously fair and excluded from the spread).
    """
    means = {
        node: float(np.mean(vals)) for node, vals in sorted(node_cfis.items()) if vals
    }
    if not means:
        return {"per_node": {}, "spread": 0.0, "min": 1.0, "max": 1.0}
    values = list(means.values())
    return {
        "per_node": means,
        "spread": float(max(values) - min(values)),
        "min": float(min(values)),
        "max": float(max(values)),
    }


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(np.ceil(q / 100.0 * len(ordered))) - 1))
    return float(ordered[rank])
