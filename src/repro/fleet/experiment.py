"""The fleet epoch loop: N nodes, one global placer, sync rounds.

Each sync round the fleet (1) dispatches cross-node events (drains
evacuate their residents, joins bring capacity online, flash crowds
inflate resident demand), (2) asks the placer for a complete
assignment and diffs it against the current one — new keys are
placements, moved keys are live migrations charged the modeled
cross-node cost — and (3) advances every busy node one round as an
isolated pure cell (:func:`repro.fleet.node.run_node_round`), either
in-process or sharded across workers via ``harness.parallel``.

Determinism contract: the serial path and the parallel path build the
*same* canonical cell JSON and derive the *same* per-cell seed from it,
and all cross-round state (assignment, telemetry, accumulators) lives
here in the parent — so a same-seed fleet is bit-identical at
``workers=1`` and ``workers=4``.  The tests pin this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.fleet.events import FleetEvent
from repro.fleet.metrics import (
    fleet_cfi,
    node_cfi_spread,
    oracle_assignment,
    percentile,
    placement_score,
)
from repro.fleet.node import (
    CROSS_NODE_PAGE_CYCLES,
    NodeTelemetry,
    build_node_cell,
    idle_node_telemetry,
    node_capacity_pages,
    node_workload_slots,
    run_node_round,
)
from repro.fleet.placer import make_placer
from repro.fleet.spec import FleetSpec
from repro.harness.parallel import CellTask, derive_cell_seed, execute_tasks
from repro.obs.events import EventKind
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer


@dataclass(frozen=True)
class MoveRecord:
    """One cross-node workload move (placement, migration, or evacuation)."""

    round: int
    key: str
    src: str | None  # None for an initial placement
    dst: str
    pages: int
    cycles: int
    reason: str  # "placement" | "rebalance" | "evacuation"

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "key": self.key,
            "src": self.src,
            "dst": self.dst,
            "pages": self.pages,
            "cycles": self.cycles,
            "reason": self.reason,
        }


@dataclass
class FleetResult:
    """Everything a fleet run produced, in plain-data form."""

    spec: FleetSpec
    workers: int
    rounds: list[dict] = field(default_factory=list)
    moves: list[MoveRecord] = field(default_factory=list)
    weighted_alloc: dict[str, float] = field(default_factory=dict)
    node_cfis: dict[str, list[float]] = field(default_factory=dict)
    node_epochs: int = 0

    # -- derived metrics ---------------------------------------------------

    def fleet_cfi(self) -> float:
        return fleet_cfi(self.weighted_alloc)

    def cfi_spread(self) -> dict:
        return node_cfi_spread(self.node_cfis)

    def evacuation_cycles(self) -> list[int]:
        return [m.cycles for m in self.moves if m.reason == "evacuation"]

    def quality(self) -> dict:
        """Mean per-round placement score and vs-oracle ratio (where known)."""
        scores = [r["score"] for r in self.rounds]
        ratios = [r["vs_oracle"] for r in self.rounds if r["vs_oracle"] is not None]
        return {
            "mean_score": sum(scores) / len(scores) if scores else 1.0,
            "mean_vs_oracle": sum(ratios) / len(ratios) if ratios else None,
        }

    def summary(self) -> dict:
        evac = self.evacuation_cycles()
        by_reason = {"placement": 0, "rebalance": 0, "evacuation": 0}
        for m in self.moves:
            by_reason[m.reason] += 1
        q = self.quality()
        return {
            "fleet": self.spec.name,
            "placer": self.spec.placer,
            "policy": self.spec.policy,
            "seed": self.spec.seed,
            "n_rounds": self.spec.n_rounds,
            "n_nodes": len(self.spec.nodes),
            "n_workloads": len(self.spec.workloads),
            "node_epochs": self.node_epochs,
            "fleet_cfi": self.fleet_cfi(),
            "node_cfi_spread": self.cfi_spread()["spread"],
            "placement_score": q["mean_score"],
            "vs_oracle": q["mean_vs_oracle"],
            "placements": by_reason["placement"],
            "migrations": by_reason["rebalance"],
            "evacuations": by_reason["evacuation"],
            "cross_node_pages": sum(m.pages for m in self.moves if m.src is not None),
            "evacuation_p99_cycles": percentile([float(c) for c in evac], 99.0),
        }

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.content_hash(),
            "workers_used": self.workers,  # informational; contents are workers-free
            "summary": self.summary(),
            "cfi_spread": self.cfi_spread(),
            "weighted_alloc": {k: self.weighted_alloc[k] for k in sorted(self.weighted_alloc)},
            "rounds": self.rounds,
            "moves": [m.to_dict() for m in self.moves],
        }

    def canonical_json(self) -> str:
        """The bit-identity surface: workers must not change this string."""
        payload = self.to_dict()
        payload.pop("workers_used")
        return json.dumps(payload, sort_keys=True)


class FleetExperiment:
    """Run one :class:`FleetSpec` to completion."""

    def __init__(self, spec: FleetSpec, *, workers: int = 1, check: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec.validate()
        self.workers = workers
        self.check = check
        self.placer = make_placer(spec.placer)
        self.active: set[str] = spec.initially_active()
        self.fast_gb = {n.node_id: n.fast_gb for n in spec.nodes}
        self.defs = {d.key: d for d in spec.workloads}
        self.assignment: dict[str, str | None] = {d.key: None for d in spec.workloads}
        self.telemetry: dict[str, NodeTelemetry] = {}
        #: key → [multiplier, rounds_remaining] while a flash crowd is live
        self.crowd: dict[str, list] = {}
        self.result = FleetResult(spec=spec, workers=workers)
        for d in spec.workloads:
            self.result.weighted_alloc[d.key] = 0.0
        for n in spec.nodes:
            self.result.node_cfis[n.node_id] = []

    # -- event dispatch ----------------------------------------------------

    def _dispatch(self, round_index: int) -> list[tuple[str, str]]:
        """Apply this round's events; returns evacuated (key, src) pairs."""
        tracer = get_tracer()
        registry = get_registry()
        evacuated: list[tuple[str, str]] = []
        due = [e for e in self.spec.events if e.round == round_index]
        for ev in sorted(due, key=lambda e: (e.action, e.node or "")):
            if ev.action == "node_drain":
                self.active.discard(ev.node)
                self.telemetry.pop(ev.node, None)
                for key in sorted(k for k, n in self.assignment.items() if n == ev.node):
                    self.assignment[key] = None
                    evacuated.append((key, ev.node))
                tracer.emit(EventKind.FLEET_NODE_CHANGE, "node_drain",
                            args={"node": ev.node, "round": round_index,
                                  "evacuating": len(evacuated)})
                registry.counter("fleet_node_changes", change="drain").inc()
            elif ev.action == "node_join":
                self.active.add(ev.node)
                tracer.emit(EventKind.FLEET_NODE_CHANGE, "node_join",
                            args={"node": ev.node, "round": round_index})
                registry.counter("fleet_node_changes", change="join").inc()
            elif ev.action == "flash_crowd":
                factor = float(ev.params["factor"])
                rounds = int(ev.params.get("rounds", 1))
                for key in sorted(k for k, n in self.assignment.items() if n == ev.node):
                    self.crowd[key] = [factor, rounds]
                tracer.emit(EventKind.FLEET_NODE_CHANGE, "flash_crowd",
                            args={"node": ev.node, "round": round_index,
                                  "factor": factor, "rounds": rounds})
                registry.counter("fleet_node_changes", change="flash_crowd").inc()
        return evacuated

    def _effective_demand(self, key: str) -> int:
        base = self.defs[key].rss_pages
        if key in self.crowd:
            return max(1, int(round(base * self.crowd[key][0])))
        return base

    # -- one sync round ----------------------------------------------------

    def _place(self, round_index: int, evacuated: list[tuple[str, str]]) -> dict:
        """Run the placer, record the moves, return the round record."""
        tracer = get_tracer()
        registry = get_registry()
        demands = {k: self._effective_demand(k) for k in sorted(self.assignment)}
        capacities = {n: node_capacity_pages(self.fast_gb[n]) for n in sorted(self.active)}
        new = self.placer.assign(
            demands=demands,
            capacities=capacities,
            current=dict(self.assignment),
            telemetry=dict(self.telemetry),
        )
        missing = set(demands) - set(new)
        stray = {k for k, n in new.items() if n not in capacities}
        if missing or stray:
            raise RuntimeError(
                f"placer {self.placer.name!r} broke its contract at round "
                f"{round_index}: unassigned={sorted(missing)} "
                f"on-inactive-nodes={sorted(stray)}"
            )

        evacuated_src = dict(evacuated)
        for key in sorted(new):
            src, dst = self.assignment[key], new[key]
            if src == dst:
                continue
            pages = demands[key]
            if src is None and key in evacuated_src:
                reason, src = "evacuation", evacuated_src[key]
                kind, counter = EventKind.FLEET_EVACUATION, "fleet_evacuations_total"
            elif src is None:
                reason = "placement"
                kind, counter = EventKind.FLEET_PLACEMENT, "fleet_placements_total"
            else:
                reason = "rebalance"
                kind, counter = EventKind.FLEET_MIGRATION, "fleet_migrations_total"
            cycles = 0 if reason == "placement" else pages * CROSS_NODE_PAGE_CYCLES
            self.result.moves.append(MoveRecord(
                round=round_index, key=key, src=src, dst=dst,
                pages=pages, cycles=cycles, reason=reason,
            ))
            tracer.emit(kind, reason, args={
                "key": key, "src": src, "dst": dst,
                "pages": pages, "cycles": cycles, "round": round_index,
            })
            registry.counter(counter).inc()
            if reason != "placement":
                registry.counter("fleet_cross_node_pages_total").inc(pages)
            self.assignment[key] = dst

        score = placement_score(new, demands, capacities)
        try:
            _, best = oracle_assignment(
                demands, capacities, max_per_node=node_workload_slots(),
            )
            vs_oracle = 1.0 if best == 0.0 else score / best
        except ValueError:
            best, vs_oracle = None, None
        return {
            "round": round_index,
            "active": sorted(self.active),
            "assignment": {k: new[k] for k in sorted(new)},
            "demands": demands,
            "score": score,
            "oracle_score": best,
            "vs_oracle": vs_oracle,
        }

    def _advance_nodes(self, round_index: int) -> dict[str, NodeTelemetry]:
        """Advance every active node one round; serial ≡ parallel."""
        residents: dict[str, list] = {n: [] for n in sorted(self.active)}
        for key in sorted(self.assignment):
            node = self.assignment[key]
            d = self.defs[key]
            eff = self._effective_demand(key)
            residents[node].append(d if eff == d.rss_pages else replace(d, rss_pages=eff))

        cells: list[tuple[str, str, int]] = []  # (node, cell_json, cell_seed)
        for node in sorted(self.active):
            if not residents[node]:
                continue
            cell = build_node_cell(
                node_id=node,
                round_index=round_index,
                fast_gb=self.fast_gb[node],
                epochs=self.spec.epochs_per_round,
                policy=self.spec.policy,
                workloads=residents[node],
                check=self.check,
            )
            params = (("node_cell", cell),)
            cells.append((node, cell, derive_cell_seed(params, self.spec.seed)))

        telemetry: dict[str, NodeTelemetry] = {}
        if self.workers == 1 or len(cells) <= 1:
            for node, cell, cell_seed in cells:
                telemetry[node] = NodeTelemetry.from_dict(
                    run_node_round(node_cell=cell, seed=cell_seed)
                )
        else:
            tasks = [
                CellTask(i, i, (("node_cell", cell),), self.spec.seed, cell_seed)
                for i, (_node, cell, cell_seed) in enumerate(cells)
            ]
            outcomes = execute_tasks(tasks, run_node_round, workers=self.workers)
            for i, (node, _cell, _cell_seed) in enumerate(cells):
                outcome = outcomes[i]
                if not outcome.ok:
                    f = outcome.failure
                    raise RuntimeError(
                        f"fleet node {node} round {round_index} failed "
                        f"({f.kind}/{f.error}): {f.message}"
                    )
                telemetry[node] = NodeTelemetry.from_dict(outcome.result["data"])
        for node in sorted(self.active):
            if node not in telemetry:
                telemetry[node] = idle_node_telemetry(node, round_index, self.fast_gb[node])
        self.result.node_epochs += len(cells) * self.spec.epochs_per_round
        return telemetry

    def run(self) -> FleetResult:
        tracer = get_tracer()
        registry = get_registry()
        for round_index in range(self.spec.n_rounds):
            evacuated = self._dispatch(round_index)
            record = self._place(round_index, evacuated)
            telemetry = self._advance_nodes(round_index)

            for node in sorted(telemetry):
                t = telemetry[node]
                if len(t.workloads) >= 2:
                    self.result.node_cfis[node].append(t.cfi)
                for w in t.workloads:
                    self.result.weighted_alloc[w.key] += w.mean_fthr * w.fast_pages
                registry.gauge("fleet_node_credit", node=node).set(t.credit_balance)
                registry.gauge("fleet_node_free_pages", node=node).set(t.free_fast_pages)
            self.telemetry = telemetry

            record["nodes"] = [telemetry[n].to_dict() for n in sorted(telemetry)]
            self.result.rounds.append(record)
            if self.check:
                from repro.fuzz.oracle import check_fleet_round

                check_fleet_round(record, set(self.defs))

            registry.counter("fleet_rounds_total").inc()
            tracer.emit(EventKind.FLEET_ROUND, "round", args={
                "round": round_index,
                "active": sorted(self.active),
                "score": record["score"],
            })
            for key in [k for k, c in list(self.crowd.items())]:
                self.crowd[key][1] -= 1
                if self.crowd[key][1] <= 0:
                    del self.crowd[key]
        return self.result


def run_fleet(spec: FleetSpec, *, workers: int = 1, check: bool = False) -> FleetResult:
    """Convenience wrapper: build, run, return the result."""
    return FleetExperiment(spec, workers=workers, check=check).run()
