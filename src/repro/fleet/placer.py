"""Pluggable global placement policies (DESIGN.md §7).

A placer sees the fleet the way a real cluster scheduler would: static
demand (each workload's RSS in pages), static supply (each active
node's fast-tier capacity), the current assignment, and the previous
round's telemetry (per-node CBFRP credit balances, FTHR, free DRAM
exported by the node cells).  It returns a *complete* assignment for
the next round; the fleet loop diffs it against the current one to
derive live migrations and charge their modeled cross-node cost.

The contract every placer must honour:

* **total** — every key in ``demands`` is assigned to a node in
  ``capacities`` (active nodes only; a drained node never appears);
* **deterministic** — identical inputs produce the identical dict, so
  all internal ordering is by explicit sort keys, never dict order;
* **read-only** — placers never mutate their inputs and draw no RNG.
"""

from __future__ import annotations

from repro.fleet.metrics import oracle_assignment, placement_score
from repro.fleet.node import NodeTelemetry, node_workload_slots


class Placer:
    """Base interface; subclasses implement :meth:`assign`."""

    name = "base"

    def assign(
        self,
        *,
        demands: dict[str, int],
        capacities: dict[str, int],
        current: dict[str, str | None],
        telemetry: dict[str, NodeTelemetry],
    ) -> dict[str, str]:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def _loads(assignment: dict[str, str], demands: dict[str, int]) -> dict[str, int]:
        load: dict[str, int] = {}
        for key, node in assignment.items():
            load[node] = load.get(node, 0) + demands[key]
        return load

    @staticmethod
    def _counts(assignment: dict[str, str]) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in assignment.values():
            counts[node] = counts.get(node, 0) + 1
        return counts

    @staticmethod
    def _fill(
        assignment: dict[str, str],
        pending: list[str],
        demands: dict[str, int],
        capacities: dict[str, int],
        preference,
    ) -> dict[str, str]:
        """Place ``pending`` one by one, largest demand first, onto the
        node ``preference`` ranks highest given the running loads.

        Nodes already hosting ``node_workload_slots()`` workloads are
        out of the running regardless of preference: the core-block cap
        is a hard bin constraint, unlike fast-tier load which merely
        degrades.  A valid spec guarantees total slots ≥ total
        workloads at every placement point, so greedy filling can never
        strand a workload.
        """
        out = dict(assignment)
        load = Placer._loads(out, demands)
        counts = Placer._counts(out)
        slots = node_workload_slots()
        for key in sorted(pending, key=lambda k: (-demands[k], k)):
            open_nodes = [n for n in sorted(capacities) if counts.get(n, 0) < slots]
            if not open_nodes:
                raise RuntimeError(
                    f"no node has a free workload slot ({slots}/node) for {key!r}"
                )
            node = min(
                open_nodes,
                key=lambda n: (-preference(n, load.get(n, 0)), n),
            )
            out[key] = node
            load[node] = load.get(node, 0) + demands[key]
            counts[node] = counts.get(node, 0) + 1
        return out


class GreedyFreeDram(Placer):
    """Most-free-DRAM-first bin filling; never migrates proactively.

    The baseline a real cluster starts from: place each new (or
    evacuated) workload on the node with the most free fast memory.
    Already-placed workloads stay put — only drains move them.
    """

    name = "greedy-free-dram"

    def assign(self, *, demands, capacities, current, telemetry):
        placed = {k: n for k, n in current.items() if n is not None}
        pending = [k for k in demands if current.get(k) is None]
        return self._fill(
            placed, pending, demands, capacities,
            preference=lambda n, load: capacities[n] - load,
        )


class CreditBalance(Placer):
    """CBFRP-aware placement: free DRAM discounted by credit pressure.

    The CBFRP ledger is zero-sum inside a node, so a node's *aggregate*
    balance carries no signal — what does is ``credit_pressure``, the
    units its tenants are borrowing: heavy borrowing means the node's
    fast tier is oversubscribed relative to per-tenant demand.
    Placement prefers nodes with free DRAM and low pressure; after
    filling, up to ``max_moves`` rebalance migrations per round are
    considered, each moving a workload off the most-pressured
    overloaded node — and only accepted if it strictly improves the
    analytic placement score, the hysteresis that keeps the modeled
    cross-node migration cost from being paid for nothing.
    """

    name = "credit-balance"

    #: weight of a node's borrowed credit units vs its free pages
    credit_weight = 0.5
    #: rebalance migrations allowed per sync round
    max_moves = 1

    def assign(self, *, demands, capacities, current, telemetry):
        def pressure(node: str) -> float:
            t = telemetry.get(node)
            return float(t.credit_pressure) if t is not None else 0.0

        placed = {k: n for k, n in current.items() if n is not None}
        pending = [k for k in demands if current.get(k) is None]
        out = self._fill(
            placed, pending, demands, capacities,
            preference=lambda n, load: (capacities[n] - load) - self.credit_weight * pressure(n),
        )

        moves = 0
        while moves < self.max_moves:
            move = self._best_rebalance(out, demands, capacities, pressure)
            if move is None:
                break
            key, dest = move
            out[key] = dest
            moves += 1
        return out

    def _best_rebalance(self, assignment, demands, capacities, pressure):
        """The single (workload, dest) move that most improves the
        placement score, taken from the most-pressured overloaded node
        — or None when nothing qualifies."""
        load = self._loads(assignment, demands)
        overloaded = [n for n in sorted(capacities) if load.get(n, 0) > capacities[n]]
        if not overloaded:
            return None
        source = min(overloaded, key=lambda n: (-pressure(n), -load.get(n, 0), n))
        residents = [k for k, n in assignment.items() if n == source]
        if len(residents) <= 1:
            return None  # moving the only tenant just relocates the pressure
        before = placement_score(assignment, demands, capacities)
        counts = self._counts(assignment)
        slots = node_workload_slots()
        best = None
        best_score = before + 1e-9
        for key in sorted(residents, key=lambda k: (demands[k], k)):
            for dest in sorted(capacities):
                if dest == source or counts.get(dest, 0) >= slots:
                    continue
                candidate = {**assignment, key: dest}
                score = placement_score(candidate, demands, capacities)
                if score > best_score:
                    best, best_score = (key, dest), score
        return best


class OraclePlacer(Placer):
    """Brute-force best placement each round (small fleets only).

    Exhaustively maximizes the analytic placement score; raises
    ``ValueError`` past ``ORACLE_MAX_ASSIGNMENTS`` candidates.  Used to
    score the heuristics, and runnable as a placer for tiny fleets.
    """

    name = "oracle"

    def assign(self, *, demands, capacities, current, telemetry):
        assignment, _score = oracle_assignment(
            demands, capacities, max_per_node=node_workload_slots(),
        )
        return assignment


PLACER_REGISTRY: dict[str, type[Placer]] = {
    cls.name: cls for cls in (GreedyFreeDram, CreditBalance, OraclePlacer)
}


def make_placer(name: str) -> Placer:
    try:
        return PLACER_REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown placer {name!r} (have: {', '.join(sorted(PLACER_REGISTRY))})"
        ) from None
