"""Declarative fleet specifications (DESIGN.md §7).

A :class:`FleetSpec` is plain data — JSON-loadable, validated up front,
content-hashable — describing a cluster: N nodes (each a fast-tier
sizing for the unchanged single-box stack), a set of workloads for the
global placer to distribute, and a round-stamped timeline of cross-node
events (:mod:`repro.fleet.events`).  Workloads reuse the scenario
layer's :class:`~repro.scenario.spec.WorkloadDef` with the fleet-level
constraint ``start_epoch == 0``: arrival staggering happens at fleet
granularity (node joins, flash crowds), not inside a node round.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.fleet.events import FleetEvent, FleetSpecError, _is_int, validate_timeline
from repro.scenario.spec import ScenarioSpecError, WorkloadDef

#: placement policies a spec may name (must match placer.PLACER_REGISTRY)
VALID_PLACERS = ("greedy-free-dram", "credit-balance", "oracle")


@dataclass(frozen=True)
class NodeDef:
    """One simulated machine in the fleet."""

    node_id: str
    fast_gb: float = 8.0

    def to_dict(self) -> dict:
        return {"node_id": self.node_id, "fast_gb": self.fast_gb}

    @classmethod
    def from_dict(cls, data: dict) -> "NodeDef":
        return cls(**data)


@dataclass(frozen=True)
class FleetSpec:
    """A complete scripted fleet experiment."""

    name: str
    n_rounds: int
    epochs_per_round: int
    nodes: tuple[NodeDef, ...] = ()
    workloads: tuple[WorkloadDef, ...] = ()
    events: tuple[FleetEvent, ...] = ()
    policy: str = "vulcan"
    placer: str = "credit-balance"
    seed: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        # Tolerate list inputs (e.g. straight from JSON) by freezing.
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "events", tuple(self.events))

    # -- validation -------------------------------------------------------

    def validate(self) -> "FleetSpec":
        """Check internal consistency; returns self so calls chain."""
        if not self.name:
            raise FleetSpecError("fleet spec needs a name")
        if not _is_int(self.n_rounds) or self.n_rounds <= 0:
            raise FleetSpecError("n_rounds must be a positive integer")
        if not _is_int(self.epochs_per_round) or self.epochs_per_round <= 0:
            raise FleetSpecError("epochs_per_round must be a positive integer")
        if not self.nodes:
            raise FleetSpecError("fleet needs at least one node")
        node_ids = [n.node_id for n in self.nodes]
        if len(set(node_ids)) != len(node_ids):
            raise FleetSpecError(f"duplicate node ids: {node_ids}")
        for n in self.nodes:
            if not n.node_id:
                raise FleetSpecError("node ids must be non-empty")
            if not isinstance(n.fast_gb, (int, float)) or isinstance(n.fast_gb, bool) or n.fast_gb <= 0:
                raise FleetSpecError(f"node {n.node_id}: fast_gb must be a positive number")
        if not self.workloads:
            raise FleetSpecError("fleet needs at least one workload")
        keys = [d.key for d in self.workloads]
        if len(set(keys)) != len(keys):
            raise FleetSpecError(f"duplicate workload keys: {keys}")
        for d in self.workloads:
            self._validate_workload(d)
        if self.placer not in VALID_PLACERS:
            raise FleetSpecError(f"unknown placer {self.placer!r} (pick from {VALID_PLACERS})")
        from repro.fleet.node import node_workload_slots

        validate_timeline(
            node_ids, self.events, self.n_rounds,
            n_workloads=len(self.workloads),
            slots_per_node=node_workload_slots(),
        )
        return self

    def _validate_workload(self, d: WorkloadDef) -> None:
        # Delegate the per-field checks to a one-workload scenario spec
        # (same rules, same error type surface) ...
        from repro.scenario.spec import ScenarioSpec

        try:
            ScenarioSpec(name="_probe", n_epochs=self.epochs_per_round, workloads=(d,)).validate()
        except ScenarioSpecError as exc:
            raise FleetSpecError(str(exc)) from exc
        # ... then add the fleet constraint: no intra-round staggering.
        if d.start_epoch != 0:
            raise FleetSpecError(
                f"{d.key}: fleet workloads must have start_epoch == 0 "
                f"(stagger with node_join/flash_crowd events instead)"
            )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "policy": self.policy,
            "placer": self.placer,
            "seed": self.seed,
            "n_rounds": self.n_rounds,
            "epochs_per_round": self.epochs_per_round,
            "nodes": [n.to_dict() for n in self.nodes],
            "workloads": [d.to_dict() for d in self.workloads],
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            policy=data.get("policy", "vulcan"),
            placer=data.get("placer", "credit-balance"),
            seed=data.get("seed", 1),
            n_rounds=data["n_rounds"],
            epochs_per_round=data["epochs_per_round"],
            nodes=tuple(NodeDef.from_dict(n) for n in data.get("nodes", [])),
            workloads=tuple(WorkloadDef.from_dict(d) for d in data.get("workloads", [])),
            events=tuple(FleetEvent.from_dict(e) for e in data.get("events", [])),
        ).validate()

    @classmethod
    def from_json(cls, path) -> "FleetSpec":
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def content_hash(self) -> str:
        """Stable digest of the full spec content (cache/dedup key)."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def with_overrides(self, **kwargs) -> "FleetSpec":
        """A copy with fields replaced (CLI --seed/--policy/--placer)."""
        return replace(self, **kwargs).validate()

    def initially_active(self) -> set[str]:
        """Node ids online at round 0 (pending node_join nodes excluded)."""
        return validate_timeline([n.node_id for n in self.nodes], self.events, self.n_rounds)
