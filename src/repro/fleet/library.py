"""Canned fleet scenarios (DESIGN.md §7, README "Running a fleet").

Sized for CI like the single-box scenario library: small nodes (4 GiB
fast tier ≈ 429 frames), small access budgets, and combined workload
RSS deliberately close to total fleet capacity so the placer's choices
actually matter.  Every spec keeps node-count^workload-count under
``ORACLE_MAX_ASSIGNMENTS`` so placement-quality-vs-oracle is reported
for each round.
"""

from __future__ import annotations

from repro.fleet.events import FleetEvent
from repro.fleet.spec import FleetSpec, NodeDef
from repro.scenario.spec import WorkloadDef


def _wl(key: str, kind: str, service: str, rss: int) -> WorkloadDef:
    return WorkloadDef(
        key=key, kind=kind, service=service, rss_pages=rss,
        n_threads=2, accesses_per_thread=800,
    )


def _six_pack() -> tuple[WorkloadDef, ...]:
    """Six workloads (3 LC, 3 BE) totalling ~1290 pages."""
    return (
        _wl("mc-a", "memcached", "LC", 320),
        _wl("mc-b", "memcached", "LC", 240),
        _wl("ms-a", "microbench", "LC", 150),
        _wl("pr-a", "pagerank", "BE", 260),
        _wl("ll-a", "liblinear", "BE", 200),
        _wl("ll-b", "liblinear", "BE", 120),
    )


def balanced_trio() -> FleetSpec:
    """Three equal nodes, six workloads, no events.

    The calibration fleet: static demand, so a good placer should land
    near the oracle in round 0 and never migrate after that.
    """
    return FleetSpec(
        name="balanced_trio",
        description="3 equal nodes, 6 workloads, static demand",
        n_rounds=4,
        epochs_per_round=3,
        nodes=(NodeDef("n0", 4.0), NodeDef("n1", 4.0), NodeDef("n2", 4.0)),
        workloads=_six_pack(),
        seed=1,
    ).validate()


def drain_rebalance() -> FleetSpec:
    """A node drains mid-run; a spare joins two rounds later.

    The evacuation fleet: round 2 drains ``n1`` (its residents must be
    re-placed the same round, paying the modeled cross-node cost) and
    round 4 brings the spare ``n3`` online for the placer to exploit.
    """
    return FleetSpec(
        name="drain_rebalance",
        description="drain n1 at round 2, spare n3 joins at round 4",
        n_rounds=6,
        epochs_per_round=3,
        nodes=(NodeDef("n0", 4.0), NodeDef("n1", 4.0),
               NodeDef("n2", 4.0), NodeDef("n3", 4.0)),
        workloads=_six_pack(),
        events=(
            FleetEvent(round=2, action="node_drain", node="n1"),
            FleetEvent(round=4, action="node_join", node="n3"),
        ),
        seed=1,
    ).validate()


def flash_crowd_fleet() -> FleetSpec:
    """One node's residents double their demand for two rounds.

    The rebalance fleet: the crowd makes whichever node hosts the
    targeted workloads oversubscribed, so a credit-aware placer should
    shed load while the greedy baseline just eats the unfairness.
    """
    return FleetSpec(
        name="flash_crowd_fleet",
        description="residents of n0 double demand for rounds 2-3",
        n_rounds=5,
        epochs_per_round=3,
        nodes=(NodeDef("n0", 4.0), NodeDef("n1", 4.0), NodeDef("n2", 4.0)),
        workloads=_six_pack(),
        events=(
            FleetEvent(round=2, action="flash_crowd", node="n0",
                       params={"factor": 2.0, "rounds": 2}),
        ),
        seed=1,
    ).validate()


FLEET_SCENARIOS = {
    "balanced_trio": balanced_trio,
    "drain_rebalance": drain_rebalance,
    "flash_crowd_fleet": flash_crowd_fleet,
}


def fleet_scenario_names() -> list[str]:
    return sorted(FLEET_SCENARIOS)


def get_fleet_scenario(name: str) -> FleetSpec:
    try:
        return FLEET_SCENARIOS[name]()
    except KeyError:
        raise KeyError(
            f"unknown fleet scenario {name!r} (have: {', '.join(fleet_scenario_names())})"
        ) from None
