"""The node handle: one fleet node advancing one sync round.

Determinism is the whole design here.  A node-round is a **pure recipe
cell**: :func:`run_node_round` takes the complete cell description as
canonical JSON (node id, round, machine sizing, the workloads the
placer assigned, the policy) plus a derived seed, builds a *fresh*
:class:`~repro.scenario.engine.ScenarioExperiment`, runs it for
``epochs_per_round`` epochs, and returns a plain telemetry dict.  No
state crosses rounds inside a node — everything the fleet remembers
(assignments, credit history, migration costs) lives in the parent's
:class:`~repro.fleet.experiment.FleetExperiment` — so forking cells
across workers cannot change what any cell computes, and serial and
parallel fleets are bit-identical by construction.

The cell satisfies the ``harness.parallel`` factory contract
(module-level, ``factory(**params, seed=cell_seed)``) exactly like the
fuzzer's ``run_case``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.harness.recipes import STEADY_WINDOW, steady_cfi
from repro.obs.trace import get_tracer
from repro.scenario.spec import WorkloadDef

#: cross-node live-migration cost model: cycles charged per moved page
#: (page copy over the inter-node fabric plus remote invalidation —
#: an order of magnitude above the intra-node per-page migration cost)
CROSS_NODE_PAGE_CYCLES = 40_000


def node_workload_slots() -> int:
    """Hard cap on co-resident workloads per node.

    The single-box harness pins every workload to its own dedicated
    block of ``cores_per_workload`` (8) cores and raises once the
    machine's cores run out, so a node can host at most
    ``n_cores // 8`` workloads no matter how its fast tier is sized.
    Placers must treat this as a bin constraint — fast-tier overload
    degrades gracefully (the slow tier absorbs it); core exhaustion
    does not.  Found by the fleet fuzzer: drains that concentrated
    five workloads onto one survivor crashed its node cell.
    """
    from repro.sim.config import MachineConfig

    return MachineConfig().n_cores // 8


@dataclass(frozen=True)
class WorkloadTelemetry:
    """Per-workload snapshot exported by one node-round."""

    key: str
    service: str
    rss_pages: int
    mean_ops: float
    mean_fthr: float
    fast_pages: int
    credits: int

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "service": self.service,
            "rss_pages": self.rss_pages,
            "mean_ops": self.mean_ops,
            "mean_fthr": self.mean_fthr,
            "fast_pages": self.fast_pages,
            "credits": self.credits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTelemetry":
        return cls(**data)


@dataclass(frozen=True)
class NodeTelemetry:
    """Typed snapshot of one node after one sync round.

    ``credit_balance`` is the node's aggregate CBFRP position (≈0 on a
    healthy node: the ledger is zero-sum, every borrowed unit has a
    donor).  The *contention* signal the credit-balance placer reads is
    ``credit_pressure``: the units the node's tenants are borrowing —
    a node where tenants borrow heavily is one whose fast tier is
    oversubscribed relative to per-tenant demand, even though the
    borrowing nets out to zero inside the box.
    """

    node_id: str
    round: int
    fast_capacity_pages: int
    free_fast_pages: int
    cfi: float
    workloads: tuple[WorkloadTelemetry, ...] = field(default_factory=tuple)

    @property
    def credit_balance(self) -> int:
        return sum(w.credits for w in self.workloads)

    @property
    def credit_pressure(self) -> int:
        """Total units borrowed by this node's tenants (≥ 0)."""
        return sum(-w.credits for w in self.workloads if w.credits < 0)

    @property
    def demand_pages(self) -> int:
        return sum(w.rss_pages for w in self.workloads)

    @property
    def used_pages(self) -> int:
        return self.fast_capacity_pages - self.free_fast_pages

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "round": self.round,
            "fast_capacity_pages": self.fast_capacity_pages,
            "free_fast_pages": self.free_fast_pages,
            "cfi": self.cfi,
            "credit_balance": self.credit_balance,
            "credit_pressure": self.credit_pressure,
            "workloads": [w.to_dict() for w in self.workloads],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeTelemetry":
        return cls(
            node_id=data["node_id"],
            round=data["round"],
            fast_capacity_pages=data["fast_capacity_pages"],
            free_fast_pages=data["free_fast_pages"],
            cfi=data["cfi"],
            workloads=tuple(WorkloadTelemetry.from_dict(w) for w in data["workloads"]),
        )


def _machine_config(fast_gb: float):
    """Default machine with a resized fast tier (same construction as
    ``harness.recipes.sweep_cell`` so node sizing hashes like a cell)."""
    from dataclasses import replace

    from repro.sim.config import MachineConfig, TierConfig
    from repro.sim.units import GiB

    mc = MachineConfig()
    return replace(mc, fast=TierConfig(
        name="fast",
        capacity_bytes=int(fast_gb * GiB),
        load_latency_ns=mc.fast.load_latency_ns,
        bandwidth_gbps=mc.fast.bandwidth_gbps,
    ))


def node_capacity_pages(fast_gb: float) -> int:
    """Fast-tier frames a node of ``fast_gb`` exposes (pure, no Machine)."""
    from repro.sim.config import SimulationConfig
    from repro.sim.units import GiB

    return int(fast_gb * GiB) // SimulationConfig().page_unit_bytes


def build_node_cell(
    *,
    node_id: str,
    round_index: int,
    fast_gb: float,
    epochs: int,
    policy: str,
    workloads: list[WorkloadDef],
    check: bool = False,
) -> str:
    """The canonical JSON cell description (sorted keys, sorted workloads).

    One function builds it for both the serial and the parallel path so
    the derived cell seed — a hash of this string — can never differ
    between them.
    """
    return json.dumps(
        {
            "node_id": node_id,
            "round": round_index,
            "fast_gb": fast_gb,
            "epochs": epochs,
            "policy": policy,
            "check": check,
            "workloads": [d.to_dict() for d in sorted(workloads, key=lambda d: d.key)],
        },
        sort_keys=True,
    )


def run_node_round(node_cell: str = "", seed: int = 0) -> dict:
    """Worker-process entry: advance one node one sync round.

    ``node_cell`` is the JSON from :func:`build_node_cell`; ``seed`` is
    the derived per-cell seed.  Tracing and metrics are force-disabled
    for the duration: node-internal events must not reach the parent's
    trace stream in serial mode when they could not in parallel mode
    (the child's buffer dies with the fork) — fleet-level events are the
    parent's job.
    """
    from repro.fuzz.oracle import InvariantOracle
    from repro.scenario.engine import ScenarioExperiment
    from repro.scenario.spec import ScenarioSpec

    cell = json.loads(node_cell)
    defs = tuple(WorkloadDef.from_dict(d) for d in cell["workloads"])
    spec = ScenarioSpec(
        name=f"fleet/{cell['node_id']}/r{cell['round']}",
        n_epochs=cell["epochs"],
        workloads=defs,
        events=(),
        policy=cell["policy"],
        seed=seed,
    ).validate()

    tracer = get_tracer()
    was_tracing, was_metrics = tracer.enabled, tracer.metrics.enabled
    tracer.enabled = False
    tracer.metrics.enabled = False
    try:
        exp = ScenarioExperiment(
            spec,
            oracle=InvariantOracle() if cell["check"] else None,
            machine_config=_machine_config(cell["fast_gb"]),
        )
        result = exp.run()
    finally:
        tracer.enabled = was_tracing
        tracer.metrics.enabled = was_metrics

    window = min(cell["epochs"], STEADY_WINDOW)
    daemon = getattr(exp.policy, "daemon", None)
    wl_telemetry = []
    for d in defs:
        pid = exp._pid_of[d.key]
        ts = result.workloads[pid]
        wl_telemetry.append(WorkloadTelemetry(
            key=d.key,
            service=d.service,
            rss_pages=d.rss_pages,
            mean_ops=float(np.mean(ts.ops[-window:])),
            mean_fthr=float(np.mean(ts.fthr_true[-window:])),
            fast_pages=int(ts.fast_pages[-1]),
            credits=int(daemon.credits.get(pid)) if daemon is not None else 0,
        ))
    fast = exp.allocator.tiers[0]
    telemetry = NodeTelemetry(
        node_id=cell["node_id"],
        round=cell["round"],
        fast_capacity_pages=fast.total,
        free_fast_pages=fast.online - fast.used,
        cfi=steady_cfi(result, window=window) if defs else 1.0,
        workloads=tuple(wl_telemetry),
    )
    return telemetry.to_dict()


def idle_node_telemetry(node_id: str, round_index: int, fast_gb: float) -> NodeTelemetry:
    """Telemetry for a node with nothing assigned (no experiment needed)."""
    cap = node_capacity_pages(fast_gb)
    return NodeTelemetry(
        node_id=node_id,
        round=round_index,
        fast_capacity_pages=cap,
        free_fast_pages=cap,
        cfi=1.0,
        workloads=(),
    )
