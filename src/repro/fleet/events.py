"""Cross-node fleet events: drains, joins, flash crowds.

Fleet events are stamped with a *sync round*, not an epoch — they are
dispatched by the :class:`~repro.fleet.experiment.FleetExperiment`
between rounds, before the placer runs, so a drained node's workloads
are evacuated and re-placed in the same round the drain lands.

The validation walk mirrors ``ScenarioSpec.validate``: it replays the
timeline against an explicit active-node state machine so an invalid
script (draining the last node, joining a node that never left the
pending set) fails at spec construction, never mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: every cross-node action the fleet loop dispatches
FLEET_ACTIONS = ("node_drain", "node_join", "flash_crowd")


class FleetSpecError(ValueError):
    """A fleet spec (or its event timeline) failed validation."""


def _is_int(x) -> bool:
    """A real integer (bools masquerade as ints and must not count)."""
    return isinstance(x, (int, np.integer)) and not isinstance(x, bool)


def _is_number(x) -> bool:
    return _is_int(x) or isinstance(x, (float, np.floating))


@dataclass(frozen=True)
class FleetEvent:
    """One scripted cross-node event, applied at the start of ``round``."""

    round: int
    action: str
    node: str | None = None
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "action": self.action,
            "node": self.node,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetEvent":
        return cls(**data)


def validate_timeline(
    node_ids: list[str],
    events: tuple[FleetEvent, ...],
    n_rounds: int,
    *,
    n_workloads: int = 0,
    slots_per_node: int | None = None,
) -> set[str]:
    """Replay the event timeline; returns the set of initially active nodes.

    A node referenced by a ``node_join`` event starts *inactive* and
    comes online at that round; every other node is active from round 0.
    Raises :class:`FleetSpecError` on any illegal script: unknown nodes,
    double drains, joining an already-active node, or an active set that
    ever empties (the placer would have nowhere to put anything).

    With ``slots_per_node`` set, additionally requires that after every
    round's events the active nodes offer at least ``n_workloads``
    workload slots — a drain that strands more workloads than the
    survivors have dedicated core blocks for must fail here, at spec
    construction, not as a core-exhaustion crash inside a node cell.
    """
    known = set(node_ids)
    pending_join = {ev.node for ev in events if ev.action == "node_join"}
    unknown = pending_join - known
    if unknown:
        raise FleetSpecError(f"node_join references unknown node(s): {sorted(unknown)}")
    initially_active = known - pending_join
    if not initially_active:
        raise FleetSpecError("every node is pending a node_join; nothing is active at round 0")

    active = set(initially_active)
    for ev in sorted(events, key=lambda e: (e.round, e.action, e.node or "")):
        where = f"event @round {ev.round} {ev.action}"
        if not _is_int(ev.round):
            raise FleetSpecError(f"{where}: round must be an integer, got {ev.round!r}")
        if not 0 < ev.round < n_rounds:
            # round 0 placement is the initial assignment; events start at 1
            raise FleetSpecError(f"{where}: round outside [1, {n_rounds})")
        if ev.action not in FLEET_ACTIONS:
            raise FleetSpecError(f"{where}: unknown action (pick from {FLEET_ACTIONS})")
        if ev.node not in known:
            raise FleetSpecError(f"{where}: unknown node {ev.node!r}")
        if ev.action == "node_drain":
            if ev.node not in active:
                raise FleetSpecError(f"{where}: {ev.node} is not active")
            active.discard(ev.node)
            if not active:
                raise FleetSpecError(f"{where}: draining {ev.node} empties the fleet")
        elif ev.action == "node_join":
            if ev.node in active:
                raise FleetSpecError(f"{where}: {ev.node} is already active")
            active.add(ev.node)
        elif ev.action == "flash_crowd":
            if ev.node not in active:
                raise FleetSpecError(f"{where}: flash crowd targets inactive node {ev.node}")
            factor = ev.params.get("factor")
            if not _is_number(factor) or not factor > 1.0:
                raise FleetSpecError(f"{where}: params.factor must be a number > 1, got {factor!r}")
            rounds = ev.params.get("rounds", 1)
            if not _is_int(rounds) or rounds <= 0:
                raise FleetSpecError(f"{where}: params.rounds must be a positive int, got {rounds!r}")

    if slots_per_node is not None and n_workloads > 0:
        # Hosting feasibility at every placement point: the placer runs
        # after each round's events, so only the post-dispatch active
        # sets (and round 0) need the capacity to host everything.
        def _check_hosting(active_set: set[str], when: str) -> None:
            slots = len(active_set) * slots_per_node
            if slots < n_workloads:
                raise FleetSpecError(
                    f"{when}: {len(active_set)} active node(s) offer {slots} "
                    f"workload slots ({slots_per_node}/node) for "
                    f"{n_workloads} workloads"
                )

        active = set(initially_active)
        _check_hosting(active, "round 0")
        by_round: dict[int, list[FleetEvent]] = {}
        for ev in events:
            by_round.setdefault(ev.round, []).append(ev)
        for rnd in sorted(by_round):
            for ev in sorted(by_round[rnd], key=lambda e: (e.action, e.node or "")):
                if ev.action == "node_drain":
                    active.discard(ev.node)
                elif ev.action == "node_join":
                    active.add(ev.node)
            _check_hosting(active, f"after round {rnd} events")
    return initially_active
