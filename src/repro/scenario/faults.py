"""Probabilistic migration-fault injection (DESIGN.md §scenario).

One :class:`FaultInjector` is shared by every workload's migration
engine in a scenario run.  The engine asks ``roll(kind, pid=, vpn=)``
at each fault point; the injector draws from its *own* RNG stream (so
arming faults never perturbs workload or policy randomness) and only
draws at all when the probability for that kind is nonzero — an
injector with all probabilities at zero is bit-identical to no
injector, which is what the determinism tests pin.
"""

from __future__ import annotations

import numpy as np

from repro.mm.migration import FaultKind


class FaultInjector:
    """Shared, scriptable source of typed migration faults."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self.probs: dict[FaultKind, float] = {}
        #: typed record of every fault that actually fired
        self.records: list[dict] = []
        #: current epoch, stamped by the scenario engine each epoch
        self.epoch: int = -1

    def configure(self, params: dict) -> None:
        """Arm fault kinds from a string-keyed probability map."""
        for key, prob in params.items():
            kind = FaultKind(key)
            p = float(prob)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability of {key} must lie in [0, 1], got {p}")
            if p > 0.0:
                self.probs[kind] = p
            else:
                self.probs.pop(kind, None)

    def clear(self) -> None:
        """Disarm everything (no further RNG draws)."""
        self.probs.clear()

    @property
    def armed(self) -> bool:
        return bool(self.probs)

    def roll(self, kind: FaultKind, *, pid: int, vpn: int) -> bool:
        """Should this migration step fail?  Draws only when armed."""
        p = self.probs.get(kind, 0.0)
        if p <= 0.0:
            return False
        if self.rng.random() >= p:
            return False
        self.records.append({"epoch": self.epoch, "kind": kind.value, "pid": pid, "vpn": vpn})
        return True
