"""Scripted dynamic scenarios: churn, phase shifts, capacity events,
QoS changes, and fault injection over the co-location harness."""

from repro.scenario.engine import ScenarioExperiment, ScenarioResult, build_workload, run_scenario
from repro.scenario.faults import FaultInjector
from repro.scenario.library import SCENARIOS, get_scenario, scenario_names
from repro.scenario.spec import (
    FAULT_KEYS,
    ScenarioEvent,
    ScenarioSpec,
    ScenarioSpecError,
    WorkloadDef,
)

__all__ = [
    "FAULT_KEYS",
    "FaultInjector",
    "SCENARIOS",
    "ScenarioEvent",
    "ScenarioExperiment",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSpecError",
    "WorkloadDef",
    "build_workload",
    "get_scenario",
    "run_scenario",
    "scenario_names",
]
