"""Scripted-timeline experiment driver (DESIGN.md §scenario).

:class:`ScenarioExperiment` extends the epoch loop of
:class:`~repro.harness.experiment.ColocationExperiment` with a scripted
event schedule: at the start of each epoch — after admissions, before
traffic and the policy pass — every event stamped with that epoch is
dispatched.  Departures therefore free their frames and detach from the
policy *before* the same epoch's CBFRP run, so credits re-partition
within one epoch of a departure (the acceptance invariant the tests
pin).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.core.classify import ServiceClass
from repro.fuzz.oracle import InvariantOracle
from repro.harness.experiment import ColocationExperiment, ExperimentResult
from repro.obs.events import EventKind
from repro.obs.trace import get_tracer
from repro.scenario.faults import FaultInjector
from repro.scenario.spec import ScenarioSpec, WorkloadDef
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.liblinear import LiblinearWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.microbench import MicrobenchWorkload
from repro.workloads.pagerank import PageRankWorkload

KIND_CLASSES: dict[str, type[Workload]] = {
    "memcached": MemcachedWorkload,
    "pagerank": PageRankWorkload,
    "liblinear": LiblinearWorkload,
    "microbench": MicrobenchWorkload,
}


def _instance_seed(d: WorkloadDef, base_seed: int, generation: int) -> int:
    """Deterministic per-(key, generation) workload seed.

    A restarted workload is a *new* process: it must not replay the
    departed instance's layout, but the same (spec, seed, generation)
    must always produce the same instance.
    """
    h = zlib.crc32(f"{d.key}/{generation}".encode())
    return (base_seed * 0x9E3779B1 + h) % (2**31)


def build_workload(d: WorkloadDef, base_seed: int, generation: int = 0) -> Workload:
    """Instantiate one scenario workload (generation > 0 = restart)."""
    cls = KIND_CLASSES[d.kind]
    spec = WorkloadSpec(
        name=d.key,
        service=ServiceClass[d.service],
        rss_pages=d.rss_pages,
        n_threads=d.n_threads,
        start_epoch=d.start_epoch,
        accesses_per_thread=d.accesses_per_thread,
        populate_tier=d.populate_tier,
    )
    wl = cls(spec, seed=_instance_seed(d, base_seed, generation), **dict(d.params))
    wl.scenario_key = d.key
    wl.scenario_generation = generation
    return wl


@dataclass
class ScenarioResult:
    """Everything a scenario run produced, beyond the base result.

    Kept *separate* from :class:`ExperimentResult` on purpose: the base
    result's serialized form is pinned bit-for-bit by the golden tests,
    so scenario-only records must not widen it.
    """

    spec_name: str
    spec_hash: str
    policy: str
    seed: int
    result: ExperimentResult
    departures: list[dict] = field(default_factory=list)
    restarts: list[dict] = field(default_factory=list)
    phase_shifts: list[dict] = field(default_factory=list)
    qos_changes: list[dict] = field(default_factory=list)
    capacity_events: list[dict] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    #: one entry per teardown; ``consistent`` is True because _retire
    #: raises on any leak — recorded so goldens prove the check ran
    leak_checks: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Deterministic plain-data form (no wall-clock anywhere)."""
        return {
            "spec_name": self.spec_name,
            "spec_hash": self.spec_hash,
            "policy": self.policy,
            "seed": self.seed,
            "departures": list(self.departures),
            "restarts": list(self.restarts),
            "phase_shifts": list(self.phase_shifts),
            "qos_changes": list(self.qos_changes),
            "capacity_events": list(self.capacity_events),
            "faults": list(self.faults),
            "leak_checks": list(self.leak_checks),
            "result": self.result.to_dict(),
        }

    def summary(self) -> dict:
        """Headline numbers for the CLI table / --check assertions."""
        # Keyed by pid (stringified): a restarted workload shares its
        # name with the departed instance but is a distinct process.
        per_wl = {
            str(pid): {
                "name": ts.name,
                "epochs": len(ts.epochs),
                "first_epoch": ts.first_epoch,
                "last_epoch": ts.last_epoch,
                "mean_ops": ts.mean_ops(),
            }
            for pid, ts in sorted(self.result.workloads.items())
        }
        return {
            "scenario": self.spec_name,
            "policy": self.policy,
            "seed": self.seed,
            "n_epochs": self.result.n_epochs,
            "departures": len(self.departures),
            "restarts": len(self.restarts),
            "phase_shifts": len(self.phase_shifts),
            "qos_changes": len(self.qos_changes),
            "capacity_events": len(self.capacity_events),
            "faults_fired": len(self.faults),
            "leak_checks_passed": len(self.leak_checks),
            "workloads": per_wl,
        }


class ScenarioExperiment(ColocationExperiment):
    """A colocation experiment driven by a :class:`ScenarioSpec`."""

    #: no plan prefetch under scripted events: a reshape/reseed between
    #: epochs must see RNG draws exactly as a per-epoch run makes them,
    #: and prefetched plans would already have consumed future draws.
    plan_horizon = 1

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        seed: int | None = None,
        policy: str | None = None,
        oracle: InvariantOracle | None = None,
        **kwargs,
    ) -> None:
        spec.validate()
        self.spec = spec
        #: optional per-epoch invariant battery (fuzzer / --check); the
        #: oracle is read-only so attaching one never perturbs the run
        self.oracle = oracle
        run_seed = spec.seed if seed is None else seed
        self._defs = {d.key: d for d in spec.workloads}
        self._gen = {d.key: 0 for d in spec.workloads}
        self._pid_of: dict[str, int | None] = {d.key: None for d in spec.workloads}
        initial = [build_workload(d, run_seed, 0) for d in spec.workloads]
        super().__init__(
            policy if policy is not None else spec.policy,
            initial,
            seed=run_seed,
            **kwargs,
        )
        # Fault randomness rides its own stream so arming/disarming
        # faults never shifts workload or policy RNG state.
        self.injector = FaultInjector(seed=(run_seed * 0x5DEECE66D + 0xB) % (2**31))
        self._events_by_epoch: dict[int, list] = {}
        for ev in sorted(spec.events, key=lambda e: e.epoch):
            self._events_by_epoch.setdefault(ev.epoch, []).append(ev)
        self.scenario_result: ScenarioResult | None = None

    # -- lifecycle overrides ------------------------------------------------

    def _admit(self, wl: Workload, epoch: int) -> int:
        pid = super()._admit(wl, epoch)
        key = getattr(wl, "scenario_key", None)
        if key is not None:
            self._pid_of[key] = pid
        self.policy.workloads[pid].engine.fault_injector = self.injector
        return pid

    def _apply_epoch_events(self, epoch: int) -> None:
        self.injector.epoch = epoch
        events = self._events_by_epoch.get(epoch)
        if not events:
            return
        tracer = get_tracer()
        if tracer.enabled:
            # The base loop anchors the trace clock after this hook;
            # anchor it here too so scenario events timestamp correctly.
            tracer.set_time(epoch * self.epoch_cycles)
        for ev in events:
            self._dispatch(ev, epoch, tracer)

    def _step_epoch(self, result: ExperimentResult, epoch: int, tracer) -> None:
        super()._step_epoch(result, epoch, tracer)
        if self.oracle is not None:
            self.oracle.check_epoch(self, epoch)

    def _finish_run(self, result: ExperimentResult) -> None:
        # Teardown checks always run, oracle or not; with an oracle the
        # full battery (leaks, credits, caps, heat books, metric ranges)
        # replaces these two ad-hoc asserts and runs after the result is
        # assembled below.
        if self.oracle is None:
            from repro.fuzz.oracle import check_frame_conservation, check_store_rows

            check_frame_conservation(self.allocator)
            check_store_rows(self.allocator.store)
        self.scenario_result = ScenarioResult(
            spec_name=self.spec.name,
            spec_hash=self.spec.content_hash(),
            policy=self.policy.name,
            seed=self.seed,
            result=result,
            departures=self._departures,
            restarts=self._restarts,
            phase_shifts=self._phase_shifts,
            qos_changes=self._qos_changes,
            capacity_events=self._capacity_events,
            faults=list(self.injector.records),
            leak_checks=self._leak_checks,
        )
        if self.oracle is not None:
            self.oracle.check_final(self, result)

    # -- event dispatch ------------------------------------------------------

    _departures: list
    _restarts: list
    _phase_shifts: list
    _qos_changes: list
    _capacity_events: list
    _leak_checks: list

    def run(self, n_epochs: int | None = None) -> ExperimentResult:
        if n_epochs is not None and n_epochs != self.spec.n_epochs:
            # A shorter horizon would silently drop scripted events (the
            # epoch loop just never reaches them) — fail loudly instead.
            self.spec.check_horizon(n_epochs)
        self._departures = []
        self._restarts = []
        self._phase_shifts = []
        self._qos_changes = []
        self._capacity_events = []
        self._leak_checks = []
        return super().run(self.spec.n_epochs if n_epochs is None else n_epochs)

    def _live_pid(self, ev) -> int:
        pid = self._pid_of.get(ev.target)
        if pid is None:
            raise RuntimeError(f"event @{ev.epoch} {ev.action}: {ev.target!r} is not live")
        return pid

    def _dispatch(self, ev, epoch: int, tracer) -> None:
        handler = getattr(self, f"_ev_{ev.action}")
        handler(ev, epoch, tracer)

    def _ev_depart(self, ev, epoch: int, tracer) -> None:
        pid = self._live_pid(ev)
        counts = self._retire(pid, epoch, reason=ev.params.get("reason", "depart"))
        self._pid_of[ev.target] = None
        self._departures.append({"epoch": epoch, "key": ev.target, "pid": pid, "freed": counts})
        self._leak_checks.append(
            {"epoch": epoch, "pid": pid, "freed_total": sum(counts[k] for k in ("fast", "slow")), "consistent": True}
        )

    def _ev_restart(self, ev, epoch: int, tracer) -> None:
        self._gen[ev.target] += 1
        generation = self._gen[ev.target]
        wl = build_workload(self._defs[ev.target], self.seed, generation)
        pid = self._admit(wl, epoch)
        self._restarts.append({"epoch": epoch, "key": ev.target, "pid": pid, "generation": generation})
        if tracer.enabled:
            tracer.emit(
                EventKind.WORKLOAD_RESTART,
                ev.target,
                pid=pid,
                args={"epoch": epoch, "generation": generation},
            )

    def _ev_phase_shift(self, ev, epoch: int, tracer) -> None:
        pid = self._live_pid(ev)
        wl = self._active[pid]
        wl.reshape(attrs=ev.params.get("attrs"), reseed=ev.params.get("reseed"))
        self._phase_shifts.append({"epoch": epoch, "key": ev.target, "pid": pid, "params": dict(ev.params)})
        if tracer.enabled:
            tracer.emit(
                EventKind.PHASE_SHIFT, ev.target, pid=pid,
                args={"epoch": epoch, **ev.params},
            )

    def _ev_qos_change(self, ev, epoch: int, tracer) -> None:
        pid = self._live_pid(ev)
        new = ServiceClass[ev.params["service"]]
        old = self.policy.update_service(pid, new)
        self._qos_changes.append(
            {"epoch": epoch, "key": ev.target, "pid": pid, "from": old.name, "to": new.name}
        )
        if tracer.enabled:
            tracer.emit(
                EventKind.QOS_CHANGE, ev.target, pid=pid,
                args={"epoch": epoch, "from": old.name, "to": new.name},
            )

    def _note_capacity(self, epoch: int, tracer, what: str, **details) -> None:
        online = self.allocator.tiers[0].online
        self._capacity_events.append({"epoch": epoch, "what": what, "fast_online": online, **details})
        if tracer.enabled:
            tracer.emit(
                EventKind.CAPACITY_CHANGE, what,
                args={"epoch": epoch, "fast_online": online, **details},
            )

    def _ev_tier_offline(self, ev, epoch: int, tracer) -> None:
        taken = self.allocator.offline_frames(0, ev.params["pages"])
        self.policy.note_fast_capacity(self.allocator.tiers[0].online)
        self._note_capacity(
            epoch, tracer, "tier_offline",
            requested=ev.params["pages"], offlined=len(taken),
        )

    def _ev_tier_online(self, ev, epoch: int, tracer) -> None:
        n = self.allocator.online_frames(0, ev.params.get("pages"))
        self.policy.note_fast_capacity(self.allocator.tiers[0].online)
        self._note_capacity(epoch, tracer, "tier_online", onlined=n)

    def _ev_link_degrade(self, ev, epoch: int, tracer) -> None:
        self.machine.link.degrade(
            bandwidth_factor=ev.params.get("bandwidth_factor", 1.0),
            latency_factor=ev.params.get("latency_factor", 1.0),
        )
        self._note_capacity(
            epoch, tracer, "link_degrade",
            bandwidth_gbps=self.machine.link.bandwidth_gbps,
            added_latency_ns=self.machine.link.added_latency_ns,
        )

    def _ev_link_restore(self, ev, epoch: int, tracer) -> None:
        self.machine.link.restore()
        self._note_capacity(
            epoch, tracer, "link_restore",
            bandwidth_gbps=self.machine.link.bandwidth_gbps,
            added_latency_ns=self.machine.link.added_latency_ns,
        )

    def _ev_faults_set(self, ev, epoch: int, tracer) -> None:
        self.injector.configure(ev.params)
        if tracer.enabled:
            tracer.emit(
                EventKind.FAULT_INJECTED, "faults_set",
                args={"epoch": epoch, "probs": dict(ev.params)},
            )

    def _ev_faults_clear(self, ev, epoch: int, tracer) -> None:
        self.injector.clear()
        if tracer.enabled:
            tracer.emit(EventKind.FAULT_INJECTED, "faults_clear", args={"epoch": epoch})


def run_scenario(
    spec: ScenarioSpec | str,
    *,
    seed: int | None = None,
    policy: str | None = None,
    epochs: int | None = None,
    **kwargs,
) -> ScenarioResult:
    """Run a scenario (by spec or canned name) and return its result."""
    if isinstance(spec, str):
        from repro.scenario.library import get_scenario

        spec = get_scenario(spec)
    overrides = {}
    if epochs is not None:
        overrides["n_epochs"] = epochs
    if overrides:
        spec = spec.with_overrides(**overrides)
    exp = ScenarioExperiment(spec, seed=seed, policy=policy, **kwargs)
    exp.run()
    assert exp.scenario_result is not None
    return exp.scenario_result
