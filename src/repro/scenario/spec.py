"""Declarative scenario specifications (DESIGN.md §scenario).

A :class:`ScenarioSpec` is a scripted timeline: a set of workload
definitions plus a list of epoch-stamped events (departures, restarts,
phase shifts, QoS changes, capacity events, fault windows) that the
:class:`~repro.scenario.engine.ScenarioExperiment` applies at epoch
boundaries.  Specs are plain data — JSON-loadable, validated up front,
and content-hashable so ``harness.cache`` can key sweep cells on the
exact scenario that produced them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import numpy as np

#: workload generator kinds the engine can instantiate
VALID_KINDS = ("memcached", "pagerank", "liblinear", "microbench")
VALID_SERVICES = ("LC", "BE")
#: every scripted action the engine dispatches
VALID_ACTIONS = (
    "depart",
    "restart",
    "phase_shift",
    "qos_change",
    "tier_offline",
    "tier_online",
    "link_degrade",
    "link_restore",
    "faults_set",
    "faults_clear",
)
#: actions that name a workload
TARGETED_ACTIONS = ("depart", "restart", "phase_shift", "qos_change")
#: injectable migration-fault kinds (mirrors mm.migration.FaultKind)
FAULT_KEYS = ("aborted_sync", "lost_async", "poisoned_shadow")


class ScenarioSpecError(ValueError):
    """A spec failed validation."""


def _is_int(x) -> bool:
    """A real integer (bools masquerade as ints and must not count)."""
    return isinstance(x, (int, np.integer)) and not isinstance(x, bool)


def _is_number(x) -> bool:
    return _is_int(x) or isinstance(x, (float, np.floating))


@dataclass(frozen=True)
class WorkloadDef:
    """One workload the scenario may admit (and re-admit on restart)."""

    key: str
    kind: str
    service: str
    rss_pages: int
    n_threads: int = 4
    start_epoch: int = 0
    accesses_per_thread: int = 2_500
    populate_tier: int = 0
    #: extra generator constructor kwargs (e.g. memcached hot_frac)
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "service": self.service,
            "rss_pages": self.rss_pages,
            "n_threads": self.n_threads,
            "start_epoch": self.start_epoch,
            "accesses_per_thread": self.accesses_per_thread,
            "populate_tier": self.populate_tier,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadDef":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted mid-run event, applied at the start of ``epoch``."""

    epoch: int
    action: str
    target: str | None = None
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "action": self.action,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioEvent":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete scripted experiment timeline."""

    name: str
    n_epochs: int
    workloads: tuple[WorkloadDef, ...] = ()
    events: tuple[ScenarioEvent, ...] = ()
    policy: str = "vulcan"
    seed: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        # Tolerate list inputs (e.g. straight from JSON) by freezing.
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "events", tuple(self.events))

    # -- validation -------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Check internal consistency; returns self so calls chain."""
        if not self.name:
            raise ScenarioSpecError("scenario needs a name")
        if self.n_epochs <= 0:
            raise ScenarioSpecError("n_epochs must be positive")
        if not self.workloads:
            raise ScenarioSpecError("scenario needs at least one workload")
        keys = [d.key for d in self.workloads]
        if len(set(keys)) != len(keys):
            raise ScenarioSpecError(f"duplicate workload keys: {keys}")
        for d in self.workloads:
            self._validate_workload(d)
        alive = {d.key: None for d in self.workloads}  # key -> departed?
        starts = {d.key: d.start_epoch for d in self.workloads}
        for ev in sorted(self.events, key=lambda e: e.epoch):
            self._validate_event(ev, starts, alive)
        return self

    def _validate_workload(self, d: WorkloadDef) -> None:
        if d.kind not in VALID_KINDS:
            raise ScenarioSpecError(f"{d.key}: unknown kind {d.kind!r} (pick from {VALID_KINDS})")
        if d.service not in VALID_SERVICES:
            raise ScenarioSpecError(f"{d.key}: service must be LC or BE, got {d.service!r}")
        for name in ("rss_pages", "n_threads", "start_epoch", "accesses_per_thread"):
            if not _is_int(getattr(d, name)):
                raise ScenarioSpecError(
                    f"{d.key}: {name} must be an integer, got {getattr(d, name)!r}"
                )
        if d.rss_pages <= 0 or d.n_threads <= 0 or d.accesses_per_thread <= 0:
            raise ScenarioSpecError(f"{d.key}: rss/threads/accesses must be positive")
        if not 0 <= d.start_epoch < self.n_epochs:
            raise ScenarioSpecError(f"{d.key}: start_epoch {d.start_epoch} outside [0, {self.n_epochs})")
        if d.populate_tier not in (0, 1):
            raise ScenarioSpecError(f"{d.key}: populate_tier must be 0 or 1")

    def _validate_event(self, ev: ScenarioEvent, starts: dict, alive: dict) -> None:
        where = f"event @{ev.epoch} {ev.action}"
        if not _is_int(ev.epoch):
            # The engine dispatches events from a dict keyed by int epoch,
            # so a float/str/bool epoch would silently never fire.
            raise ScenarioSpecError(f"{where}: epoch must be an integer, got {ev.epoch!r}")
        if not 0 <= ev.epoch < self.n_epochs:
            raise ScenarioSpecError(f"{where}: epoch outside [0, {self.n_epochs})")
        if ev.action not in VALID_ACTIONS:
            raise ScenarioSpecError(f"{where}: unknown action (pick from {VALID_ACTIONS})")
        if ev.action in TARGETED_ACTIONS:
            if ev.target not in starts:
                raise ScenarioSpecError(f"{where}: unknown target {ev.target!r}")
            if ev.epoch < starts[ev.target] and ev.action != "restart":
                raise ScenarioSpecError(f"{where}: {ev.target} has not started yet")
        if ev.action == "depart":
            if alive[ev.target] == "departed":
                raise ScenarioSpecError(f"{where}: {ev.target} already departed")
            alive[ev.target] = "departed"
        elif ev.action == "restart":
            if alive[ev.target] != "departed":
                raise ScenarioSpecError(f"{where}: restart needs a prior depart of {ev.target}")
            alive[ev.target] = None
        elif ev.action == "qos_change":
            svc = ev.params.get("service")
            if svc not in VALID_SERVICES:
                raise ScenarioSpecError(f"{where}: params.service must be LC or BE")
        elif ev.action == "phase_shift":
            if not ev.params.get("attrs") and "reseed" not in ev.params:
                raise ScenarioSpecError(f"{where}: needs params.attrs and/or params.reseed")
        elif ev.action in ("tier_offline", "tier_online"):
            pages = ev.params.get("pages")
            if ev.action == "tier_offline" and (not isinstance(pages, int) or pages <= 0):
                raise ScenarioSpecError(f"{where}: params.pages must be a positive int")
            if ev.action == "tier_online" and pages is not None and (not isinstance(pages, int) or pages <= 0):
                raise ScenarioSpecError(f"{where}: params.pages must be a positive int or absent")
        elif ev.action == "link_degrade":
            bf = ev.params.get("bandwidth_factor", 1.0)
            lf = ev.params.get("latency_factor", 1.0)
            if not _is_number(bf) or not 0 < bf <= 1:
                raise ScenarioSpecError(
                    f"{where}: bandwidth_factor must be a number in (0, 1], got {bf!r}"
                )
            if not _is_number(lf) or lf < 1:
                raise ScenarioSpecError(
                    f"{where}: latency_factor must be a number >= 1, got {lf!r}"
                )
        elif ev.action == "faults_set":
            if not ev.params:
                raise ScenarioSpecError(f"{where}: needs at least one fault probability")
            for k, p in ev.params.items():
                if k not in FAULT_KEYS:
                    raise ScenarioSpecError(f"{where}: unknown fault kind {k!r} (pick from {FAULT_KEYS})")
                if not _is_number(p) or not 0.0 <= p <= 1.0:
                    raise ScenarioSpecError(
                        f"{where}: probability of {k} must be a number in [0, 1], got {p!r}"
                    )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "policy": self.policy,
            "seed": self.seed,
            "n_epochs": self.n_epochs,
            "workloads": [d.to_dict() for d in self.workloads],
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            policy=data.get("policy", "vulcan"),
            seed=data.get("seed", 1),
            n_epochs=data["n_epochs"],
            workloads=tuple(WorkloadDef.from_dict(d) for d in data.get("workloads", [])),
            events=tuple(ScenarioEvent.from_dict(e) for e in data.get("events", [])),
        ).validate()

    @classmethod
    def from_json(cls, path) -> "ScenarioSpec":
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def content_hash(self) -> str:
        """Stable digest of the full spec content.

        Two specs hash equal iff their canonical JSON forms are equal,
        which is what lets ``harness.cache`` (via ``cache_extra``) key
        sweep cells on the scenario without serializing Python objects.
        """
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def last_scripted_epoch(self) -> int:
        """Latest epoch at which anything is scripted to happen."""
        return max([d.start_epoch for d in self.workloads]
                   + [e.epoch for e in self.events], default=0)

    def check_horizon(self, n_epochs: int) -> None:
        """Reject a run horizon that would silently drop scripted activity.

        Shared by :meth:`with_overrides` and the engine's ``run()``
        override guard — both paths must fail loudly rather than run a
        truncated timeline that no longer means what the spec says.
        """
        last = self.last_scripted_epoch()
        if n_epochs <= last:
            raise ScenarioSpecError(
                f"n_epochs {n_epochs} would cut off scripted activity at epoch {last}"
            )

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """A copy with fields replaced (CLI --seed/--policy/--epochs)."""
        if "n_epochs" in kwargs and kwargs["n_epochs"] != self.n_epochs:
            self.check_horizon(kwargs["n_epochs"])
        return replace(self, **kwargs).validate()
