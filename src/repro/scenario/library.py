"""Canned scenarios (DESIGN.md §scenario, README table).

Each is a ready-to-run :class:`ScenarioSpec` sized for CI: small thread
counts and access budgets, 32 GiB fast tier (3200 pages), combined RSS
deliberately exceeding it so tiering pressure — the thing dynamic events
perturb — is always present.
"""

from __future__ import annotations

from repro.scenario.spec import ScenarioEvent, ScenarioSpec, WorkloadDef


def _mc(key: str = "mc", rss: int = 1400, start: int = 0) -> WorkloadDef:
    return WorkloadDef(key=key, kind="memcached", service="LC", rss_pages=rss, start_epoch=start)


def _pr(key: str = "pr", rss: int = 1100, start: int = 0) -> WorkloadDef:
    return WorkloadDef(key=key, kind="pagerank", service="BE", rss_pages=rss, start_epoch=start)


def _ll(key: str = "ll", rss: int = 1300, start: int = 0) -> WorkloadDef:
    return WorkloadDef(key=key, kind="liblinear", service="BE", rss_pages=rss, start_epoch=start)


def churn() -> ScenarioSpec:
    """Staggered arrivals, two departures, one restart, a fault window.

    The acceptance scenario: every teardown must leave zero leaked
    frames and CBFRP must re-partition the freed credits within one
    epoch of each departure.
    """
    return ScenarioSpec(
        name="churn",
        description="staggered arrivals, 2 departures, 1 restart, mid-run faults",
        n_epochs=40,
        seed=1,
        workloads=(_mc(start=0), _pr(start=5), _ll(start=10)),
        events=(
            ScenarioEvent(epoch=8, action="faults_set",
                          params={"aborted_sync": 0.2, "lost_async": 0.25, "poisoned_shadow": 0.2}),
            ScenarioEvent(epoch=15, action="depart", target="pr"),
            ScenarioEvent(epoch=20, action="depart", target="ll"),
            ScenarioEvent(epoch=24, action="restart", target="pr"),
            ScenarioEvent(epoch=30, action="faults_clear"),
        ),
    ).validate()


def flash_crowd() -> ScenarioSpec:
    """The LC service's hot set balloons mid-run, then recedes.

    Tests phase-shift handling: the memcached working set triples while
    a late-arriving batch job competes for the freed-then-reclaimed
    fast tier.
    """
    return ScenarioSpec(
        name="flash_crowd",
        description="LC hot-set balloons 3x mid-run while a batch job arrives",
        n_epochs=36,
        seed=1,
        workloads=(_mc(rss=1600, start=0), _pr(rss=1200, start=4), _ll(rss=1200, start=18)),
        events=(
            ScenarioEvent(epoch=10, action="phase_shift", target="mc",
                          params={"attrs": {"hot_frac": 0.30, "idle_rate": 0.8}}),
            ScenarioEvent(epoch=26, action="phase_shift", target="mc",
                          params={"attrs": {"hot_frac": 0.10, "idle_rate": 0.35}}),
        ),
    ).validate()


def degraded_tier() -> ScenarioSpec:
    """Fast tier loses a quarter of its frames, then the link degrades.

    Tests capacity events: CBFRP's partition base and the QoS GPTs must
    track the online capacity down and back up.
    """
    return ScenarioSpec(
        name="degraded_tier",
        description="fast tier loses 800 pages, link degrades, both recover",
        n_epochs=36,
        seed=1,
        workloads=(_mc(start=0), _pr(start=0), _ll(start=0)),
        events=(
            ScenarioEvent(epoch=10, action="tier_offline", params={"pages": 800}),
            ScenarioEvent(epoch=14, action="link_degrade",
                          params={"bandwidth_factor": 0.4, "latency_factor": 2.0}),
            ScenarioEvent(epoch=22, action="link_restore"),
            ScenarioEvent(epoch=26, action="tier_online"),
        ),
    ).validate()


def noisy_neighbor_restart() -> ScenarioSpec:
    """The streaming monopolist dies, restarts, then gets promoted to LC.

    Tests restart teardown/rebuild plus a live QoS reclassification:
    the paper's cold-page-dilemma aggressor becomes latency-critical
    and CBFRP must start honouring its GPT.
    """
    return ScenarioSpec(
        name="noisy_neighbor_restart",
        description="liblinear departs, restarts, then is reclassified LC",
        n_epochs=36,
        seed=1,
        workloads=(_mc(start=0), _pr(start=0), _ll(start=2)),
        events=(
            ScenarioEvent(epoch=12, action="depart", target="ll"),
            ScenarioEvent(epoch=16, action="restart", target="ll"),
            ScenarioEvent(epoch=24, action="qos_change", target="ll", params={"service": "LC"}),
        ),
    ).validate()


def fault_storm() -> ScenarioSpec:
    """Sustained high-probability migration faults of every kind.

    Tests fault absorption: page state must stay consistent while a
    third of all migrations die in typed ways, and throughput must
    recover once the storm clears.
    """
    return ScenarioSpec(
        name="fault_storm",
        description="30% of migrations fault (all kinds) for 22 epochs",
        n_epochs=36,
        seed=1,
        workloads=(_mc(start=0), _pr(start=0), _ll(start=0)),
        events=(
            ScenarioEvent(epoch=4, action="faults_set",
                          params={"aborted_sync": 0.3, "lost_async": 0.3, "poisoned_shadow": 0.3}),
            ScenarioEvent(epoch=26, action="faults_clear"),
        ),
    ).validate()


SCENARIOS = {
    "churn": churn,
    "flash_crowd": flash_crowd,
    "degraded_tier": degraded_tier,
    "noisy_neighbor_restart": noisy_neighbor_restart,
    "fault_storm": fault_storm,
}


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise KeyError(f"unknown scenario {name!r} (have: {', '.join(SCENARIOS)})") from None
