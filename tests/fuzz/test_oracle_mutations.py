"""Deliberate state corruption must be caught with precise diagnostics.

Each test runs a small real scenario to get genuine post-run state,
corrupts exactly one invariant the way a plausible bug would, and
asserts the oracle names the corruption — the right check id and a
message carrying the actual pids/pfns/counts involved.  These are the
mutation tests proving the oracle is not vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fuzz.oracle import (
    InvariantOracle,
    InvariantViolation,
    check_credit_conservation,
    check_frame_conservation,
    check_heat_consistency,
    check_no_foreign_frames,
    check_nonneg_metrics,
    check_store_rows,
)
from repro.scenario.engine import ScenarioExperiment
from repro.scenario.spec import ScenarioEvent, ScenarioSpec, WorkloadDef
from repro.sim.config import MachineConfig, SimulationConfig, TierConfig

UNIT = 10**6


def _small_machine(fast: int = 64, slow: int = 512) -> MachineConfig:
    return MachineConfig(
        n_cores=8,
        fast=TierConfig(name="fast", capacity_bytes=fast * UNIT,
                        load_latency_ns=70.0, bandwidth_gbps=205.0),
        slow=TierConfig(name="slow", capacity_bytes=slow * UNIT,
                        load_latency_ns=162.0, bandwidth_gbps=25.0),
    )


def _ran_experiment(policy: str = "vulcan") -> ScenarioExperiment:
    spec = ScenarioSpec(
        name="mutant-bed",
        n_epochs=6,
        workloads=(
            WorkloadDef(key="a", kind="microbench", service="LC", rss_pages=40,
                        n_threads=2, accesses_per_thread=500),
            WorkloadDef(key="b", kind="memcached", service="BE", rss_pages=40,
                        n_threads=2, accesses_per_thread=500),
        ),
        events=(ScenarioEvent(epoch=3, action="depart", target="b"),),
        policy=policy,
        seed=5,
    )
    exp = ScenarioExperiment(
        spec,
        machine_config=_small_machine(),
        sim=SimulationConfig(page_unit_bytes=UNIT, epoch_seconds=0.5),
        cores_per_workload=4,
    )
    exp.run()
    return exp


@pytest.fixture(scope="module")
def bed() -> ScenarioExperiment:
    # one shared run; every test corrupts a *copy-free* aspect, so each
    # must restore what it breaks (cheaper than a run per test)
    return _ran_experiment()


class TestLeakedFrame:
    def test_frame_bound_to_dead_pid_is_reported(self, bed):
        store = bed.allocator.store
        live_pid = next(iter(bed._active))
        pfn = int(store.frames_of_pid(live_pid)[0])
        old_pid = int(store.pid[pfn])
        store.pid[pfn] = 4242  # nobody is running pid 4242
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_no_foreign_frames(store, set(bed._active))
            assert exc.value.check == "leaked_frames"
            assert "4242" in str(exc.value)
            assert pfn in exc.value.context["first_pfns"]
        finally:
            store.pid[pfn] = old_pid
        check_no_foreign_frames(store, set(bed._active))  # restored => clean


class TestDoubleFree:
    def test_allocator_rejects_double_free(self, bed):
        # a frame that went through allocate+free once (workload "b"
        # departed mid-run, so its frames are back on the free lists)
        pfn = next(
            p for tier in bed.allocator.tiers for p in tier.free_list
            if bed.allocator.ever_allocated(p)
        )
        with pytest.raises(ValueError, match=f"double free of pfn {pfn}"):
            bed.allocator.free(pfn)

    def test_duplicated_free_list_entry_is_reported(self, bed):
        # a double-free that slipped past the bitmap leaves the same pfn
        # listed twice; conservation must see list != bitmap cardinality
        tier = bed.allocator.tiers[1]
        tier.free_list.append(tier.free_list[0])
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_frame_conservation(bed.allocator)
            assert exc.value.check == "frame_conservation"
            assert "duplicates" in str(exc.value)
        finally:
            tier.free_list.pop()
        check_frame_conservation(bed.allocator)

    def test_live_frame_on_free_list_is_reported(self, bed):
        store = bed.allocator.store
        live_pid = next(iter(bed._active))
        pfn = int(store.frames_of_pid(live_pid)[0])
        store.in_free_list[pfn] = True
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_frame_conservation(bed.allocator)
            assert exc.value.check == "frame_conservation"
        finally:
            store.in_free_list[pfn] = False
        check_frame_conservation(bed.allocator)


class TestCreditSkew:
    def test_minted_credit_is_reported_with_drift(self, bed):
        ledger = bed.policy.daemon.credits
        pid = next(iter(ledger.credits))
        ledger.credits[pid] += 3  # mint 3 credits out of thin air
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_credit_conservation(bed.policy)
            assert exc.value.check == "credit_conservation"
            assert "drift +3" in str(exc.value)
        finally:
            ledger.credits[pid] -= 3
        check_credit_conservation(bed.policy)

    def test_destroyed_credit_is_reported(self, bed):
        ledger = bed.policy.daemon.credits
        pid = next(iter(ledger.credits))
        ledger.credits[pid] -= 1
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_credit_conservation(bed.policy)
            assert "drift -1" in str(exc.value)
        finally:
            ledger.credits[pid] += 1


class TestHeatDesync:
    def _a_heat_book(self, bed):
        for pid, rt in bed.policy.workloads.items():
            prof = rt.profiler
            for attr in ("_heat",):
                store = getattr(prof, attr, None)
                if store is None:
                    for sub in ("pebs", "faults"):
                        child = getattr(prof, sub, None)
                        if child is not None and getattr(child, "_heat", None) is not None:
                            store = child._heat
                            break
                if store is not None and store.pids():
                    bpid = store.pids()[0]
                    if store.ordered_vpns(bpid).size:
                        return store, bpid
        pytest.skip("no populated heat book in this run")

    def test_dropped_order_key_is_reported(self, bed):
        store, pid = self._a_heat_book(bed)
        ph = store._pids[pid]
        vpn = next(iter(ph.order))
        del ph.order[vpn]  # key set loses a vpn the live mask still has
        ph._order_cache = None
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_heat_consistency(bed.policy)
            assert exc.value.check == "heat_consistency"
            assert "desynced" in str(exc.value)
        finally:
            ph.order[vpn] = None
            ph._order_cache = None
        check_heat_consistency(bed.policy)

    def test_nonzero_dead_slot_is_reported(self, bed):
        store, pid = self._a_heat_book(bed)
        ph = store._pids[pid]
        idx = int(np.flatnonzero(~ph.live)[0])
        ph.heat[idx] = 0.5  # decay compaction failed to zero a dropped slot
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_heat_consistency(bed.policy)
            assert "dead slot" in str(exc.value)
        finally:
            ph.heat[idx] = 0.0


class TestStoreRows:
    def test_free_frame_with_pid_is_reported(self, bed):
        store = bed.allocator.store
        pfn = int(np.flatnonzero(store.state == 0)[0])
        store.pid[pfn] = 7
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_store_rows(store)
            assert exc.value.check == "store_rows"
        finally:
            store.pid[pfn] = -1
        check_store_rows(store)


class TestMetricsRange:
    def test_negative_ops_is_reported(self, bed):
        result = bed.scenario_result.result
        ts = next(iter(result.workloads.values()))
        old = ts.ops[0]
        ts.ops[0] = -1.0
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_nonneg_metrics(result)
            assert exc.value.check == "metrics_range"
            assert exc.value.context["series"] == "ops"
        finally:
            ts.ops[0] = old
        check_nonneg_metrics(result)

    def test_fthr_above_one_is_reported(self, bed):
        result = bed.scenario_result.result
        ts = next(iter(result.workloads.values()))
        old = ts.fthr_true[0]
        ts.fthr_true[0] = 1.5
        try:
            with pytest.raises(InvariantViolation) as exc:
                check_nonneg_metrics(result)
            assert exc.value.context["series"] == "fthr_true"
        finally:
            ts.fthr_true[0] = old


class TestOracleObject:
    def test_epoch_is_stamped_onto_violations(self, bed):
        ledger = bed.policy.daemon.credits
        pid = next(iter(ledger.credits))
        ledger.credits[pid] += 1
        try:
            with pytest.raises(InvariantViolation) as exc:
                InvariantOracle().check_epoch(bed, 4)
            assert exc.value.epoch == 4
            assert "@epoch 4" in str(exc.value)
        finally:
            ledger.credits[pid] -= 1

    def test_clean_state_passes_full_battery(self, bed):
        oracle = InvariantOracle()
        oracle.check_epoch(bed, 0)
        oracle.check_final(bed, bed.scenario_result.result)
        assert oracle.epochs_checked == 1
        assert oracle.finals_checked == 1
