"""Campaign determinism, worker equivalence, and the ``repro fuzz`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.fuzz.runner import campaign, run_case_record
from repro.fuzz.strategies import generate_case
from repro.obs.metrics import get_registry

RUNS = 4


@pytest.fixture(scope="module")
def small_report() -> dict:
    return campaign(seed=13, runs=RUNS, workers=1, parity_check=False)


class TestCampaignDeterminism:
    def test_same_seed_identical_report(self, small_report):
        again = campaign(seed=13, runs=RUNS, workers=1, parity_check=False)
        assert json.dumps(again, sort_keys=True) == json.dumps(small_report, sort_keys=True)

    def test_serial_equals_two_workers(self, small_report):
        par = campaign(seed=13, runs=RUNS, workers=2, parity_check=False)
        a = {**small_report, "workers": 0}
        b = {**par, "workers": 0}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_report_carries_per_case_records_in_order(self, small_report):
        assert [r["index"] for r in small_report["cases"]] == list(range(RUNS))
        for rec in small_report["cases"]:
            assert rec["status"] in ("ok", "violation")
            assert rec["spec_hash"] == generate_case(13, rec["index"]).spec.content_hash()

    def test_record_is_replayable_standalone(self, small_report):
        rec = run_case_record(generate_case(13, 2))
        assert rec == small_report["cases"][2]

    def test_no_wall_clock_anywhere_in_report(self, small_report):
        blob = json.dumps(small_report)
        for needle in ("time", "elapsed", "duration", "wall"):
            assert needle not in blob.lower()


class TestObsMetrics:
    @pytest.fixture
    def registry(self):
        reg = get_registry()
        was_enabled = reg.enabled
        reg.enabled = True
        reg.reset()
        yield reg
        reg.enabled = was_enabled
        reg.reset()

    def test_campaign_bumps_counters(self, registry):
        campaign(seed=21, runs=2, workers=1, parity_check=False)
        assert registry.counter("fuzz_runs_total", status="ok").value == 2


class TestCli:
    def test_parser_accepts_documented_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--seed", "3", "--runs", "2", "--max-epochs", "10",
             "--workers", "2", "--json"]
        )
        assert (args.seed, args.runs, args.max_epochs, args.workers) == (3, 2, 10, 2)
        assert args.promote is None

    def test_promote_flag_defaults_to_golden_dir(self):
        args = build_parser().parse_args(["fuzz", "--promote"])
        assert args.promote == "tests/golden/fuzz_regressions"

    def test_clean_run_exits_zero_and_emits_deterministic_json(self, capsys):
        rc1 = main(["fuzz", "--runs", "2", "--seed", "13", "--json"])
        out1 = capsys.readouterr().out
        rc2 = main(["fuzz", "--runs", "2", "--seed", "13", "--json"])
        out2 = capsys.readouterr().out
        assert rc1 == rc2 == 0
        assert out1 == out2
        report = json.loads(out1)
        assert report["clean"] is True
        assert report["counts"]["ok"] == 2

    def test_replay_of_empty_dir_is_green(self, tmp_path, capsys):
        assert main(["fuzz", "--replay", str(tmp_path)]) == 0
        assert "no promoted crashers" in capsys.readouterr().out
