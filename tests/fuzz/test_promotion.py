"""End-to-end: a seeded bug is found, shrunk, promoted, and replays.

The bug is real corruption in a real subsystem — ``CreditLedger.transfer``
minting one extra credit per transfer — patched in at class level.  The
campaign must catch it via the credit-conservation invariant, minimize
the failing timeline, and write a content-hashed regression file; with
the bug removed the promoted crasher must replay green (the regression
contract), and with the bug present it must still fail.
"""

from __future__ import annotations

import json

import pytest

import repro.core.cbfrp as cbfrp
from repro.fuzz.promote import CRASHER_FORMAT, iter_crashers, load_crasher
from repro.fuzz.runner import campaign, case_finding

#: campaign coordinates chosen so case 0 is a vulcan multi-workload
#: timeline (probed once; generation is a pure function of the seed pair)
SEED, RUNS = 7, 2


@pytest.fixture
def minting_ledger():
    """Arm the seeded bug: every transfer mints one credit for the donor."""
    orig = cbfrp.CreditLedger.transfer

    def buggy(self, donor, borrower, units=1):
        orig(self, donor, borrower, units)
        self.credits[donor] += 1

    cbfrp.CreditLedger.transfer = buggy
    try:
        yield orig  # the genuine method, for "fix the bug" replays
    finally:
        cbfrp.CreditLedger.transfer = orig


class TestSeededBugEndToEnd:
    def test_caught_shrunk_promoted_and_replayed(self, minting_ledger, tmp_path):
        report = campaign(
            seed=SEED, runs=RUNS, workers=1,
            shrink=True, promote_dir=tmp_path, parity_check=False,
        )

        # -- caught -------------------------------------------------------
        assert report["counts"]["violations"] >= 1
        failure = report["failures"][0]
        assert failure["finding"]["check"] == "credit_conservation"
        assert "conservation broken" in failure["finding"]["message"]

        # -- shrunk: minimized <= original in events and epochs -----------
        sh = failure["shrink"]
        assert sh["steps"] > 0
        assert sh["n_events"] <= failure["original"]["n_events"]
        assert sh["n_epochs"] <= failure["original"]["n_epochs"]

        # -- promoted: content-hashed file on disk ------------------------
        paths = iter_crashers(tmp_path)
        assert paths, "no crasher file was promoted"
        data = json.loads(paths[0].read_text())
        assert data["format"] == CRASHER_FORMAT
        assert data["violation"]["check"] == "credit_conservation"
        case, violation = load_crasher(paths[0])
        assert paths[0].name == f"crasher_{case.spec.content_hash()[:12]}.json"

        # -- replays red while the bug is in ------------------------------
        finding = case_finding(case)
        assert finding is not None
        assert finding["check"] == "credit_conservation"

    def test_promoted_crasher_replays_green_after_fix(self, minting_ledger, tmp_path):
        report = campaign(
            seed=SEED, runs=1, workers=1,
            shrink=True, promote_dir=tmp_path, parity_check=False,
        )
        assert report["counts"]["violations"] == 1
        path = iter_crashers(tmp_path)[0]

        # "fix the bug" = restore the genuine transfer, then replay
        case, _violation = load_crasher(path)
        buggy = cbfrp.CreditLedger.transfer
        cbfrp.CreditLedger.transfer = minting_ledger  # the fixture yields the original
        try:
            assert case_finding(case) is None
        finally:
            cbfrp.CreditLedger.transfer = buggy
