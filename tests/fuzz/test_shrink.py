"""Shrinker properties: only-smaller, same-check, valid, deterministic.

These tests drive :func:`shrink_case` against *stub* targets (predicate
functions over the spec) so the properties are checked structurally
without running experiments; the end-to-end shrink against a real
seeded bug lives in ``test_promotion.py``.
"""

from __future__ import annotations

from repro.fuzz.shrink import shrink_case
from repro.fuzz.strategies import generate_case


def _find_case(pred, *, seed=50, tries=200, **gen_kw):
    for i in range(tries):
        case = generate_case(seed, i, **gen_kw)
        if pred(case):
            return case
    raise AssertionError("no generated case matched the predicate")


def _fails_if(pred):
    """A stub target: finding iff ``pred(spec)``; check id 'stub'."""
    def run_fn(case):
        if pred(case.spec):
            return {"check": "stub", "epoch": None, "message": "stub", "context": {}}
        return None
    return run_fn


class TestShrinkProperties:
    def test_minimized_is_never_larger(self):
        case = _find_case(lambda c: len(c.spec.events) >= 4)
        run_fn = _fails_if(lambda s: any(e.action == "depart" for e in s.events))
        if run_fn(case) is None:
            case = _find_case(lambda c: any(e.action == "depart" for e in c.spec.events)
                              and len(c.spec.events) >= 4)
        res = shrink_case(case, "stub", run_fn)
        assert res.case.spec.n_epochs <= case.spec.n_epochs
        assert len(res.case.spec.events) <= len(case.spec.events)
        assert len(res.case.spec.workloads) <= len(case.spec.workloads)

    def test_minimized_still_fails_with_same_check(self):
        case = _find_case(lambda c: any(e.action == "depart" for e in c.spec.events))
        run_fn = _fails_if(lambda s: any(e.action == "depart" for e in s.events))
        res = shrink_case(case, "stub", run_fn)
        assert run_fn(res.case)["check"] == "stub"

    def test_minimized_spec_still_validates(self):
        case = _find_case(lambda c: len(c.spec.events) >= 3)
        run_fn = _fails_if(lambda s: len(s.events) >= 1)
        res = shrink_case(case, "stub", run_fn)
        res.case.spec.validate()

    def test_single_culprit_event_is_isolated(self):
        # failure depends on one faults_set event; the shrinker should
        # strip everything else down to (close to) just that event
        case = _find_case(
            lambda c: any(e.action == "faults_set" for e in c.spec.events)
            and len(c.spec.events) >= 5
        )
        run_fn = _fails_if(lambda s: any(e.action == "faults_set" for e in s.events))
        res = shrink_case(case, "stub", run_fn)
        kept = [e.action for e in res.case.spec.events]
        assert kept.count("faults_set") == 1
        # depart/restart pairs can survive only if validation chains
        # them to the culprit, which it does not — so nothing else should
        assert len(kept) == 1
        assert len(res.case.spec.workloads) == 1
        assert res.steps > 0

    def test_shrink_is_deterministic(self):
        case = _find_case(lambda c: len(c.spec.events) >= 3)
        run_fn = _fails_if(lambda s: len(s.events) >= 1)
        a = shrink_case(case, "stub", run_fn)
        b = shrink_case(case, "stub", run_fn)
        assert a.case.to_dict() == b.case.to_dict()
        assert (a.steps, a.attempts) == (b.steps, b.attempts)

    def test_passing_case_shrinks_to_itself(self):
        case = generate_case(50, 0)
        res = shrink_case(case, "stub", lambda c: None)
        assert res.case == case
        assert res.steps == 0

    def test_attempt_cap_is_respected(self):
        case = _find_case(lambda c: len(c.spec.events) >= 4)
        run_fn = _fails_if(lambda s: True)
        res = shrink_case(case, "stub", run_fn, max_attempts=7)
        assert res.attempts <= 7
