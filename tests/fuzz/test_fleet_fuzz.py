"""Fleet fuzzing: generator validity, conservation oracle, campaign
determinism, and crasher promotion round-trips."""

from __future__ import annotations

import copy
import json

import pytest

from repro.fleet.node import node_workload_slots
from repro.fuzz.oracle import InvariantViolation, check_fleet_round
from repro.fuzz.promote import (
    iter_crashers,
    iter_fleet_crashers,
    load_fleet_crasher,
    promote_fleet_crasher,
)
from repro.fuzz.runner import fleet_campaign, run_fleet_case_record
from repro.fuzz.strategies import FleetFuzzCase, generate_fleet_case

N_GEN = 10


class TestGenerator:
    def test_cases_are_valid_by_construction(self):
        for i in range(N_GEN):
            case = generate_fleet_case(3, i)
            # validate() raises on any illegal spec; chaining returns self
            assert case.spec.validate() is not None

    def test_pure_function_of_seed_pair(self):
        for i in range(N_GEN):
            a = generate_fleet_case(3, i)
            b = generate_fleet_case(3, i)
            assert a.spec.content_hash() == b.spec.content_hash()

    def test_different_indices_differ(self):
        hashes = {generate_fleet_case(3, i).spec.content_hash() for i in range(N_GEN)}
        assert len(hashes) > 1

    def test_round_trip(self):
        case = generate_fleet_case(3, 1)
        again = FleetFuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert again.spec.content_hash() == case.spec.content_hash()
        assert (again.index, again.master_seed) == (case.index, case.master_seed)

    def test_drains_never_exceed_slot_capacity(self):
        slots = node_workload_slots()
        for i in range(N_GEN):
            spec = generate_fleet_case(3, i).spec
            active = set(spec.initially_active())
            events = sorted(spec.events, key=lambda e: (e.round, e.action, e.node or ""))
            for ev in events:
                if ev.action == "node_drain":
                    active.discard(ev.node)
                elif ev.action == "node_join":
                    active.add(ev.node)
                assert len(active) * slots >= len(spec.workloads)


class TestFleetConservation:
    """One corrupted record per detection branch of check_fleet_round."""

    KEYS = {"a", "b"}

    @pytest.fixture
    def record(self):
        return {
            "round": 1,
            "active": ["n0", "n1"],
            "assignment": {"a": "n0", "b": "n1"},
            "nodes": [
                {"node_id": "n0", "fast_capacity_pages": 400,
                 "free_fast_pages": 100, "workloads": [{"key": "a"}]},
                {"node_id": "n1", "fast_capacity_pages": 400,
                 "free_fast_pages": 300, "workloads": [{"key": "b"}]},
            ],
        }

    def test_clean_record_passes(self, record):
        check_fleet_round(record, self.KEYS)

    def test_lost_workload_detected(self, record):
        bad = copy.deepcopy(record)
        del bad["assignment"]["b"]
        with pytest.raises(InvariantViolation, match="workload set changed"):
            check_fleet_round(bad, self.KEYS)

    def test_extra_workload_detected(self, record):
        bad = copy.deepcopy(record)
        bad["assignment"]["ghost"] = "n0"
        with pytest.raises(InvariantViolation, match="workload set changed"):
            check_fleet_round(bad, self.KEYS)

    def test_assignment_to_inactive_node_detected(self, record):
        bad = copy.deepcopy(record)
        bad["active"] = ["n0"]
        bad["nodes"] = bad["nodes"][:1]
        with pytest.raises(InvariantViolation, match="inactive node"):
            check_fleet_round(bad, self.KEYS)

    def test_telemetry_from_inactive_node_detected(self, record):
        bad = copy.deepcopy(record)
        bad["nodes"].append({
            "node_id": "n9", "fast_capacity_pages": 400,
            "free_fast_pages": 400, "workloads": [],
        })
        with pytest.raises(InvariantViolation, match="telemetry from inactive"):
            check_fleet_round(bad, self.KEYS)

    def test_used_pages_out_of_range_detected(self, record):
        bad = copy.deepcopy(record)
        bad["nodes"][0]["free_fast_pages"] = 500  # used would be negative
        with pytest.raises(InvariantViolation, match="used pages"):
            check_fleet_round(bad, self.KEYS)

    def test_hosted_vs_assigned_mismatch_detected(self, record):
        bad = copy.deepcopy(record)
        bad["nodes"][0]["workloads"] = []  # n0 hosts nothing but owns "a"
        with pytest.raises(InvariantViolation, match="assigned"):
            check_fleet_round(bad, self.KEYS)

    def test_violation_carries_stable_check_id(self, record):
        bad = copy.deepcopy(record)
        del bad["assignment"]["b"]
        with pytest.raises(InvariantViolation) as exc_info:
            check_fleet_round(bad, self.KEYS)
        assert exc_info.value.to_dict()["check"] == "fleet_conservation"


RUNS = 2


@pytest.fixture(scope="module")
def small_report() -> dict:
    return fleet_campaign(seed=13, runs=RUNS, workers=1, parity_check=False)


class TestFleetCampaign:
    def test_same_seed_identical_report(self, small_report):
        again = fleet_campaign(seed=13, runs=RUNS, workers=1, parity_check=False)
        assert json.dumps(again, sort_keys=True) == json.dumps(small_report, sort_keys=True)

    def test_serial_equals_two_workers(self, small_report):
        par = fleet_campaign(seed=13, runs=RUNS, workers=2, parity_check=False)
        a = {**small_report, "workers": 0}
        b = {**par, "workers": 0}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_records_match_standalone_execution(self, small_report):
        rec = run_fleet_case_record(generate_fleet_case(13, 0))
        assert rec == small_report["cases"][0]

    def test_report_shape(self, small_report):
        assert small_report["mode"] == "fleet"
        assert [r["index"] for r in small_report["cases"]] == list(range(RUNS))
        for rec in small_report["cases"]:
            assert rec["status"] in ("ok", "violation")
            assert rec["spec_hash"] == generate_fleet_case(13, rec["index"]).spec.content_hash()

    def test_no_wall_clock_anywhere_in_report(self, small_report):
        blob = json.dumps(small_report)
        for needle in ("elapsed", "duration", "wall"):
            assert needle not in blob.lower()


class TestPromotion:
    FINDING = {"check": "fleet_conservation", "epoch": None, "message": "m", "context": {}}

    def test_round_trip(self, tmp_path):
        case = generate_fleet_case(3, 0)
        path = promote_fleet_crasher(case, self.FINDING, tmp_path)
        assert path.name == f"fleet_crasher_{case.spec.content_hash()[:12]}.json"
        loaded, violation = load_fleet_crasher(path)
        assert loaded.spec.content_hash() == case.spec.content_hash()
        assert violation == self.FINDING

    def test_promotion_is_idempotent(self, tmp_path):
        case = generate_fleet_case(3, 0)
        first = promote_fleet_crasher(case, self.FINDING, tmp_path)
        second = promote_fleet_crasher(case, self.FINDING, tmp_path)
        assert first == second
        assert len(iter_fleet_crashers(tmp_path)) == 1

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "fleet_crasher_deadbeef.json"
        path.write_text('{"format": "fuzz-crasher-v1"}')
        with pytest.raises(ValueError, match="not a fleet-crasher-v1"):
            load_fleet_crasher(path)

    def test_globs_do_not_cross_contaminate(self, tmp_path):
        case = generate_fleet_case(3, 0)
        promote_fleet_crasher(case, self.FINDING, tmp_path)
        (tmp_path / "crasher_0123456789ab.json").write_text("{}")
        assert len(iter_fleet_crashers(tmp_path)) == 1
        assert [p.name for p in iter_crashers(tmp_path)] == ["crasher_0123456789ab.json"]

    def test_missing_dir_is_empty(self, tmp_path):
        assert iter_fleet_crashers(tmp_path / "nope") == []
