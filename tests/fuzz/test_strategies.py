"""Generated timelines are valid-by-construction and seed-deterministic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fuzz.strategies import (
    FAST_GB_CHOICES,
    FuzzCase,
    generate_case,
    generate_spec,
)
from repro.policies import POLICY_REGISTRY
from repro.scenario.spec import ScenarioSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


class TestGeneration:
    def test_many_seeds_all_validate(self):
        # validate() raising inside generate_case would fail loudly; the
        # point is that 60 arbitrary draws all construct legal timelines
        for i in range(60):
            case = generate_case(99, i)
            assert isinstance(case.spec, ScenarioSpec)
            case.spec.validate()

    def test_fields_within_advertised_ranges(self):
        for i in range(30):
            case = generate_case(3, i)
            assert case.fast_gb in FAST_GB_CHOICES
            assert case.spec.policy in POLICY_REGISTRY
            assert 6 <= case.spec.n_epochs <= 24
            assert 1 <= len(case.spec.workloads) <= 4

    def test_max_epochs_respected(self):
        for i in range(20):
            case = generate_case(5, i, max_epochs=10)
            assert case.spec.n_epochs <= 10

    def test_same_seed_pair_same_case(self):
        assert generate_case(42, 3).to_dict() == generate_case(42, 3).to_dict()

    def test_different_indices_differ(self):
        hashes = {generate_case(42, i).spec.content_hash() for i in range(10)}
        assert len(hashes) == 10

    def test_case_roundtrips_through_dict(self):
        case = generate_case(8, 1)
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_generate_spec_covers_event_space(self):
        # across enough draws the generator should exercise every action
        # class it advertises (guards against a dead branch in the menu)
        seen: set[str] = set()
        for i in range(120):
            rng = np.random.default_rng([1234, i])
            spec = generate_spec(rng, name=f"s{i}", event_rate=0.9)
            seen.update(ev.action for ev in spec.events)
        assert {"depart", "restart", "phase_shift", "qos_change",
                "tier_offline", "link_degrade", "faults_set"} <= seen


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestHypothesisWrapper:
    def test_strategy_yields_valid_specs(self):
        from repro.fuzz.strategies import spec_strategy

        @settings(max_examples=25, deadline=None)
        @given(spec=spec_strategy())
        def inner(spec):
            assert isinstance(spec, ScenarioSpec)
            spec.validate()

        inner()
