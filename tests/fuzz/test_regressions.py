"""Replay every promoted crasher: fixed bugs must stay fixed.

Any ``crasher_*.json`` under ``tests/golden/fuzz_regressions/`` was a
minimized fuzz finding whose underlying bug has since been fixed; each
must now run clean under the full invariant oracle.  A failure here
means a regression resurrected a bug the fuzzer already caught once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fleet.events import FleetSpecError
from repro.fuzz.promote import (
    iter_crashers,
    iter_fleet_crashers,
    load_crasher,
    load_fleet_crasher,
)
from repro.fuzz.runner import case_finding, fleet_case_finding

REGRESSION_DIR = Path(__file__).resolve().parents[1] / "golden" / "fuzz_regressions"

CRASHERS = iter_crashers(REGRESSION_DIR)
FLEET_CRASHERS = iter_fleet_crashers(REGRESSION_DIR)


def test_regression_dir_exists():
    assert REGRESSION_DIR.is_dir(), "promoted-crasher directory is part of the repo"


@pytest.mark.parametrize("path", CRASHERS, ids=lambda p: p.name)
def test_promoted_crasher_replays_green(path):
    case, violation = load_crasher(path)
    finding = case_finding(case)
    assert finding is None, (
        f"{path.name} (originally caught [{violation['check']}]) fails again: "
        f"[{finding['check']}] {finding['message']}"
    )


@pytest.mark.parametrize("path", FLEET_CRASHERS, ids=lambda p: p.name)
def test_promoted_fleet_crasher_replays_green(path):
    """A fleet crasher is fixed either way: its spec is now rejected at
    validation (the crash is unreachable through any entry point), or it
    loads and runs clean under the full two-layer oracle."""
    try:
        case, violation = load_fleet_crasher(path)
    except FleetSpecError:
        return  # rejected up front — the original crash cannot recur
    finding = fleet_case_finding(case)
    assert finding is None, (
        f"{path.name} (originally caught [{violation['check']}]) fails again: "
        f"[{finding['check']}] {finding['message']}"
    )
