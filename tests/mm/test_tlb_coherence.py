"""Shootdown scope computation — the §3.4 payoff."""

import numpy as np

from repro.machine.cpu import CpuComplex
from repro.mm.replication import ReplicatedPageTables
from repro.mm.tlb_coherence import compute_scope, execute_shootdown


def setup(replication=True, n_threads=4):
    cpu = CpuComplex(n_cores=8, tlb_entries=64, rng=np.random.default_rng(0))
    repl = ReplicatedPageTables(enabled=replication)
    core_map = {}
    for tid in range(n_threads):
        repl.register_thread(tid)
        cpu.schedule_thread(tid, tid * 2)  # cores 0,2,4,6
        core_map[tid] = tid * 2
    return cpu, repl, core_map


def test_private_page_targets_owner_core_only():
    cpu, repl, core_map = setup()
    repl.handle_fault(100, tid=2, pfn=5)
    scope = compute_scope(repl, cpu, 100, thread_core_map=core_map)
    assert scope.target_core_ids == (4,)
    assert scope.sharing_tids == (2,)
    assert not scope.process_wide


def test_shared_page_targets_actual_sharers():
    cpu, repl, core_map = setup()
    repl.handle_fault(100, tid=0, pfn=5)
    repl.note_access(100, tid=3)
    scope = compute_scope(repl, cpu, 100, thread_core_map=core_map)
    assert scope.target_core_ids == (0, 6)
    # Threads 1 and 2 never linked the leaf: no IPI for them.
    assert 2 not in scope.target_core_ids


def test_no_replication_targets_every_process_core():
    cpu, repl, core_map = setup(replication=False)
    repl.handle_fault(100, tid=0, pfn=5)
    scope = compute_scope(repl, cpu, 100, thread_core_map=core_map)
    assert scope.target_core_ids == (0, 2, 4, 6)
    assert scope.process_wide


def test_live_schedule_used_when_no_core_map():
    cpu, repl, _ = setup()
    repl.handle_fault(100, tid=1, pfn=5)
    scope = compute_scope(repl, cpu, 100)
    assert scope.target_core_ids == (2,)


def test_initiator_excluded():
    cpu, repl, core_map = setup()
    repl.handle_fault(100, tid=1, pfn=5)
    scope = compute_scope(repl, cpu, 100, thread_core_map=core_map, initiator_core=2)
    assert scope.target_core_ids == ()


def test_execute_shootdown_invalidates_target_tlbs():
    cpu, repl, core_map = setup()
    repl.handle_fault(100, tid=0, pfn=5)
    repl.note_access(100, tid=1)
    # Both sharers cached the translation.
    cpu.core(0).tlb.insert(100, 5)
    cpu.core(2).tlb.insert(100, 5)
    cpu.core(4).tlb.insert(100, 5)  # non-sharer (stale test entry)
    scope = compute_scope(repl, cpu, 100, thread_core_map=core_map)
    cost = execute_shootdown(cpu, scope)
    assert cost > 0
    assert not cpu.core(0).tlb.contains(100)
    assert not cpu.core(2).tlb.contains(100)
    assert cpu.core(4).tlb.contains(100)  # out of scope: untouched


def test_scope_shrinks_ipi_cost():
    cpu, repl, core_map = setup()
    repl.handle_fault(100, tid=0, pfn=5)
    private_scope = compute_scope(repl, cpu, 100, thread_core_map=core_map)
    cost_private = execute_shootdown(cpu, private_scope)

    cpu2, repl2, core_map2 = setup(replication=False)
    repl2.handle_fault(100, tid=0, pfn=5)
    wide_scope = compute_scope(repl2, cpu2, 100, thread_core_map=core_map2)
    cost_wide = execute_shootdown(cpu2, wide_scope)
    assert cost_wide > cost_private


def test_unmapped_page_has_empty_scope():
    cpu, repl, core_map = setup()
    scope = compute_scope(repl, cpu, 999, thread_core_map=core_map)
    assert scope.target_core_ids == ()
    assert scope.n_targets == 0
