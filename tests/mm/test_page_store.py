"""Property tests for the struct-of-arrays frame store.

Two kinds of guarantees:

* **Store-level** — randomized alloc/access/free/migrate-ish sequences
  keep the parallel arrays internally consistent
  (:meth:`PageStatsStore.check_row_invariants`) and agree with a naive
  per-page shadow model.
* **View coherence** — :class:`PhysPage` is a window onto one row:
  writes through the object are visible in the arrays and vice versa,
  and allocator-produced pages share the allocator's store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mm.frame_alloc import FrameAllocator
from repro.mm.page import PageState, PhysPage
from repro.mm.page_store import (
    NONE_SENTINEL,
    STATE_MAPPED,
    STATE_SHADOW,
    PageStatsStore,
)


def make_store(n=64, fast=16):
    return PageStatsStore(n, fast)


# -- store-level properties ------------------------------------------------------


def test_fresh_store_passes_invariants():
    store = make_store()
    store.check_row_invariants()
    assert (store.tier_id[:16] == 0).all()
    assert (store.tier_id[16:] == 1).all()


def test_record_batch_matches_scalar_model():
    """Vectorized accounting == the old one-page-at-a-time loop."""
    rng = np.random.default_rng(7)
    store = make_store()
    # Map every frame to pid 1 so counters are legal.
    store.state[:] = STATE_MAPPED
    store.pid[:] = 1
    store.vpn[:] = np.arange(store.n_frames)

    reads = np.zeros(store.n_frames, dtype=np.int64)
    writes = np.zeros(store.n_frames, dtype=np.int64)
    for cycle in range(1, 20):
        pfns = np.unique(rng.integers(0, store.n_frames, size=10))
        n_r = rng.integers(0, 5, size=pfns.size)
        n_w = rng.integers(0, 5, size=pfns.size)
        store.record_batch(pfns, n_r, n_w, tid=3, cycle=cycle)
        reads[pfns] += n_r
        writes[pfns] += n_w
        store.check_row_invariants()
    assert (store.reads == reads).all()
    assert (store.writes == writes).all()
    assert (store.epoch_reads == reads).all()
    assert (store.epoch_writes == writes).all()
    touched = (reads > 0) | (writes > 0)
    # record_batch marks every batched pfn touched, even zero-count rows.
    assert store.touched[touched].all()
    assert (store.tids_lo[touched] == np.uint64(1 << 3)).all()


def test_reset_epoch_counters_clears_only_live_touched_rows():
    store = make_store()
    store.state[:4] = STATE_MAPPED
    store.pid[:4] = 1
    store.vpn[:4] = np.arange(4)
    store.record_batch(np.arange(4), np.ones(4, np.int64), np.zeros(4, np.int64), 0, 1)
    # Frame 3 goes SHADOW before the reset (demote-after-promote path).
    store.state[3] = STATE_SHADOW
    store.reset_epoch_counters()
    assert (store.epoch_reads[:3] == 0).all()
    assert not store.touched[:3].any()
    # The shadow keeps its counters *and* its touched bit (legacy quirk:
    # the old full-table walk skipped non-PTE-visible frames, so a later
    # remap-demote still found the stale counters and reset them then).
    assert store.epoch_reads[3] == 1
    assert store.touched[3]
    # ...and once it is MAPPED again the next reset clears it.
    store.state[3] = STATE_MAPPED
    store.reset_epoch_counters()
    assert store.epoch_reads[3] == 0
    assert not store.touched[3]


def test_frames_of_pid_and_usage_queries():
    store = make_store(n=32, fast=8)
    for pfn, pid in [(1, 10), (5, 10), (9, 10), (2, 20), (30, 20)]:
        store.state[pfn] = STATE_MAPPED
        store.pid[pfn] = pid
        store.vpn[pfn] = 100 + pfn
    store.state[9] = STATE_SHADOW  # shadows are PTE-invisible
    assert store.frames_of_pid(10).tolist() == [1, 5]
    assert store.frames_of_pid(20).tolist() == [2, 30]
    assert store.fast_usage(10) == 2
    assert store.fast_usage(20) == 1
    store.epoch_reads[1] = 4
    store.epoch_writes[2] = 9
    store.touched[[1, 2]] = True
    assert store.ground_truth_hotness(10, cut=3) == (1, 1, 1, 2)
    assert store.ground_truth_hotness(20, cut=3) == (1, 1, 0, 1)
    store.check_row_invariants()


def test_detach_row_resets_everything():
    store = make_store()
    store.state[7] = STATE_MAPPED
    store.pid[7] = 2
    store.vpn[7] = 42
    store.record_batch(np.array([7]), np.array([3]), np.array([1]), tid=70, cycle=9)
    store.heat[7] = 1.5
    store.detach_row(7)
    assert store.pid[7] == NONE_SENTINEL
    assert store.vpn[7] == NONE_SENTINEL
    assert store.reads[7] == 0 and store.writes[7] == 0
    assert store.heat[7] == 0.0
    assert store.tids_hi[7] == 0
    assert not store.touched[7]
    store.check_row_invariants()


# -- view coherence --------------------------------------------------------------


def test_physpage_view_reads_and_writes_the_arrays():
    store = make_store()
    page = PhysPage(pfn=5, store=store)
    page.attach(pid=9, vpn=123)
    assert store.state[5] == STATE_MAPPED
    assert store.pid[5] == 9 and store.vpn[5] == 123
    # Array write shows through the object...
    store.heat[5] = 2.25
    assert page.heat == 2.25
    # ...and object writes land in the arrays.
    page.record_access(is_write=True, tid=65, cycle=77)
    assert store.writes[5] == 1
    assert store.last_access_cycle[5] == 77
    assert page.accessing_tids == {65}
    assert store.tids_hi[5] == np.uint64(1 << 1)
    page.detach()
    assert page.state is PageState.FREE
    store.check_row_invariants()


def test_standalone_physpage_has_private_store():
    """Constructing without store= (unit-test idiom) still works."""
    page = PhysPage(pfn=3, tier_id=1)
    page.attach(pid=1, vpn=7)
    page.record_access(is_write=False, tid=0, cycle=1)
    assert page.reads == 1
    assert page.tier_id == 1


def test_allocator_pages_share_the_allocator_store():
    alloc = FrameAllocator(fast_frames=4, slow_frames=4)
    page = alloc.allocate(0)
    page.attach(pid=1, vpn=10)
    assert page._store is alloc.store
    assert alloc.store.state[page.pfn] == STATE_MAPPED
    assert not alloc.store.in_free_list[page.pfn]
    alloc.free(page.pfn)
    assert alloc.store.in_free_list[page.pfn]
    alloc.store.check_row_invariants()


def test_allocator_double_free_detected_via_bitmap():
    alloc = FrameAllocator(fast_frames=4, slow_frames=4)
    page = alloc.allocate(0)
    page.attach(pid=1, vpn=10)
    alloc.free(page.pfn)
    with pytest.raises(ValueError, match="double free"):
        alloc.free(page.pfn)


def test_mapped_pages_agrees_with_frames_of_pid():
    """The object-yielding walk and the vectorized query are one truth."""
    alloc = FrameAllocator(fast_frames=8, slow_frames=8)
    for vpn in range(5):
        alloc.allocate(0 if vpn < 3 else 1).attach(pid=4, vpn=vpn)
    walk = sorted(p.pfn for p in alloc.mapped_pages() if p.pid == 4)
    assert walk == alloc.store.frames_of_pid(4).tolist()
    assert alloc.store.fast_usage(4) == 3
