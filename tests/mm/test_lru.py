"""Per-CPU pagevecs and the active/inactive LRU lists."""

import pytest

from repro.mm.lru import PAGEVEC_SIZE, LruList, LruSubsystem, PerCpuPagevec


class TestPagevec:
    def test_fills_then_signals_drain(self):
        vec = PerCpuPagevec(cpu_id=0, capacity=3)
        assert vec.add(1) is False
        assert vec.add(2) is False
        assert vec.add(3) is True  # full
        assert vec.drain() == [1, 2, 3]
        assert vec.drain() == []

    def test_default_capacity_matches_linux(self):
        assert PerCpuPagevec(cpu_id=0).capacity == PAGEVEC_SIZE == 15


class TestLruList:
    def test_new_pages_enter_inactive(self):
        l = LruList()
        l.insert(1)
        assert 1 in l.inactive and 1 not in l.active

    def test_second_touch_activates(self):
        l = LruList()
        l.insert(1)
        l.mark_accessed(1)
        assert 1 in l.active

    def test_coldest_returns_inactive_cold_end(self):
        l = LruList()
        for pfn in (1, 2, 3):
            l.insert(pfn)
        assert l.coldest(2) == [1, 2]

    def test_age_moves_active_to_inactive(self):
        l = LruList()
        for pfn in (1, 2):
            l.insert(pfn)
            l.mark_accessed(pfn)
        assert l.age(1) == 1
        assert 1 in l.inactive  # oldest active demoted first

    def test_duplicate_insert_rejected(self):
        l = LruList()
        l.insert(1)
        with pytest.raises(ValueError):
            l.insert(1)

    def test_remove(self):
        l = LruList()
        l.insert(1)
        l.remove(1)
        assert len(l) == 0
        with pytest.raises(KeyError):
            l.remove(1)


class TestLruSubsystem:
    def test_pages_stuck_in_pagevec_until_drain(self):
        sub = LruSubsystem(n_cpus=2)
        sub.add_page(pfn=1, tier_id=0, cpu_id=0)
        assert not sub.is_isolatable(1, 0)
        sub.drain([0])
        assert sub.is_isolatable(1, 0)

    def test_full_pagevec_autodrains(self):
        sub = LruSubsystem(n_cpus=1)
        for pfn in range(PAGEVEC_SIZE):
            sub.add_page(pfn, tier_id=0, cpu_id=0)
        assert sub.is_isolatable(0, 0)  # vec filled and flushed itself

    def test_global_drain_covers_all_cpus(self):
        sub = LruSubsystem(n_cpus=4)
        for cpu in range(4):
            sub.add_page(100 + cpu, tier_id=1, cpu_id=cpu)
        flushed = sub.drain(None)
        assert flushed == 4
        assert sub.drain_all_calls == 1
        for cpu in range(4):
            assert sub.is_isolatable(100 + cpu, 1)

    def test_scoped_drain_leaves_other_cpus_buffered(self):
        sub = LruSubsystem(n_cpus=4)
        sub.add_page(1, tier_id=0, cpu_id=0)
        sub.add_page(2, tier_id=0, cpu_id=3)
        sub.drain([0])
        assert sub.scoped_drain_calls == 1
        assert sub.is_isolatable(1, 0)
        assert not sub.is_isolatable(2, 0)

    def test_tier_recorded_through_drain(self):
        sub = LruSubsystem(n_cpus=1)
        sub.add_page(5, tier_id=1, cpu_id=0)
        sub.drain(None)
        assert 5 in sub.lists[1]
        assert 5 not in sub.lists[0]

    def test_move_tier(self):
        sub = LruSubsystem(n_cpus=1)
        sub.add_page(5, tier_id=0, cpu_id=0)
        sub.drain(None)
        sub.move_tier(5, 0, 1)
        assert 5 in sub.lists[1] and 5 not in sub.lists[0]

    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            LruSubsystem(n_cpus=0)


class TestForgetPages:
    """Teardown support: a departing pid's frames must vanish from the
    pagevecs, the global lists, and the pending-tier map alike."""

    def test_removes_from_pagevecs_and_global_lists(self):
        sub = LruSubsystem(n_cpus=2)
        # pfns 1..15 drain cpu 0's pagevec into the tier-0 global list;
        # 20 and 21 stay buffered in cpu 1's pagevec.
        for pfn in range(1, 16):
            sub.add_page(pfn, tier_id=0, cpu_id=0)
        sub.add_page(20, tier_id=1, cpu_id=1)
        sub.add_page(21, tier_id=1, cpu_id=1)
        removed = sub.forget_pages([1, 2, 20])
        assert removed == 3
        assert 1 not in sub.lists[0] and 2 not in sub.lists[0]
        assert 3 in sub.lists[0]
        assert 20 not in sub.pagevecs[1].pending
        assert 21 in sub.pagevecs[1].pending
        # The buffered survivor still knows its tier.
        sub.drain()
        assert 21 in sub.lists[1]

    def test_clears_pending_tier(self):
        sub = LruSubsystem(n_cpus=1)
        sub.add_page(5, tier_id=1, cpu_id=0)
        assert sub.forget_pages([5]) == 1
        # A later drain must not resurrect the forgotten page.
        sub.drain()
        assert 5 not in sub.lists[0] and 5 not in sub.lists[1]

    def test_empty_and_unknown_pfns_are_noops(self):
        sub = LruSubsystem(n_cpus=1)
        sub.add_page(5, tier_id=0, cpu_id=0)
        assert sub.forget_pages([]) == 0
        assert sub.forget_pages([99]) == 0
        assert 5 in sub.pagevecs[0].pending
