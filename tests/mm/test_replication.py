"""Per-thread page-table replication (§3.4 semantics)."""

import pytest

from repro.mm import pte as P
from repro.mm.replication import ReplicatedPageTables


def make(enabled=True, tids=(0, 1, 2)) -> ReplicatedPageTables:
    r = ReplicatedPageTables(enabled=enabled)
    for t in tids:
        r.register_thread(t)
    return r


def test_fault_installs_owner_tid():
    r = make()
    v = r.handle_fault(100, tid=1, pfn=7)
    assert P.pte_tid(v) == 1
    assert r.is_private(100)
    assert r.sharing_tids(100) == {1}


def test_second_thread_promotes_to_shared():
    r = make()
    r.handle_fault(100, tid=0, pfn=7)
    changed = r.note_access(100, tid=2)
    assert changed is True
    assert not r.is_private(100)
    assert r.sharing_tids(100) == {0, 2}  # only actual sharers, not all threads
    # Third access by the same thread: no further transition.
    assert r.note_access(100, tid=2) is False


def test_owner_access_keeps_private():
    r = make()
    r.handle_fault(100, tid=0, pfn=7)
    assert r.note_access(100, tid=0) is False
    assert r.is_private(100)


def test_sharing_scope_grows_with_leaf_links():
    r = make(tids=(0, 1, 2, 3))
    r.handle_fault(100, tid=0, pfn=7)
    r.note_access(100, tid=1)
    r.note_access(100, tid=3)
    assert r.sharing_tids(100) == {0, 1, 3}


def test_leaf_sharing_single_store_semantics():
    r = make()
    r.handle_fault(100, tid=0, pfn=7)
    r.note_access(100, tid=1)
    r.update(100, P.pte_with_pfn(r.lookup(100), 42))
    # Both thread views and the process view see the new PFN.
    assert P.pte_pfn(r.table_for(0).lookup(100)) == 42
    assert P.pte_pfn(r.table_for(1).lookup(100)) == 42
    assert P.pte_pfn(r.process_table.lookup(100)) == 42


def test_unmap_disappears_everywhere():
    r = make()
    r.handle_fault(100, tid=0, pfn=7)
    r.note_access(100, tid=1)
    r.unmap(100)
    assert r.table_for(0).lookup(100) is None
    assert r.table_for(1).lookup(100) is None


def test_disabled_replication_is_process_wide():
    r = make(enabled=False)
    v = r.handle_fault(100, tid=1, pfn=7)
    assert P.pte_is_shared(v)  # everything marked shared
    assert r.sharing_tids(100) == {0, 1, 2}  # all registered threads
    assert r.table_for(0) is r.process_table
    assert r.note_access(100, tid=2) is False


def test_pages_in_same_leaf_share_one_leaf_table():
    r = make()
    r.handle_fault(100, tid=0, pfn=1)
    r.handle_fault(101, tid=1, pfn=2)  # same 512-entry leaf region
    # Each page stays private to its own toucher...
    assert r.sharing_tids(100) == {0}
    assert r.sharing_tids(101) == {1}
    # ...even though both threads link the same physical leaf table.
    assert r.table_for(0).leaf_for(100) is r.table_for(1).leaf_for(101)


def test_replica_overhead_counts_upper_levels_only():
    r = make(tids=(0, 1))
    for vpn in range(0, 600):
        r.handle_fault(vpn, tid=vpn % 2, pfn=vpn)
    overhead = r.upper_table_overhead()
    # Each replica pays its own PGD root + one PUD + one PMD = 3 upper
    # pages; two threads → 6.  The ~2 leaf tables for 600 pages are
    # shared and must NOT appear here — that is the §3.4 memory saving.
    assert overhead == 6
    # Leaves are shared: the process table and replicas reference the
    # same leaf objects.
    assert r.table_for(0).leaf_for(0) is r.process_table.leaf_for(0)


def test_tid_out_of_field_rejected():
    r = ReplicatedPageTables()
    with pytest.raises(ValueError):
        r.register_thread(0x7F)  # reserved sentinel
    with pytest.raises(ValueError):
        r.register_thread(-1)
    r.register_thread(0)
    with pytest.raises(ValueError):
        r.register_thread(0)  # duplicate


def test_unregistered_thread_fault_rejected():
    r = make(tids=(0,))
    with pytest.raises(KeyError):
        r.handle_fault(5, tid=9, pfn=1)
    r.handle_fault(5, tid=0, pfn=1)
    with pytest.raises(KeyError):
        r.note_access(5, tid=9)


def test_note_access_unmapped_rejected():
    with pytest.raises(KeyError):
        make().note_access(1, tid=0)
