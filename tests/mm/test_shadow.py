"""Nomad-style page shadowing."""

import pytest

from repro.mm.shadow import ShadowTracker


def test_retain_and_lookup():
    s = ShadowTracker()
    s.retain(fast_pfn=1, shadow_pfn=100)
    assert s.shadow_of(1) == 100
    assert len(s) == 1
    assert s.stats.retained == 1


def test_double_retain_rejected():
    s = ShadowTracker()
    s.retain(1, 100)
    with pytest.raises(ValueError):
        s.retain(1, 101)


def test_write_invalidates():
    s = ShadowTracker()
    s.retain(1, 100)
    stale = s.on_write(1)
    assert stale == 100
    assert s.shadow_of(1) is None
    assert s.stats.invalidated_by_write == 1
    assert s.on_write(1) is None  # idempotent


def test_clean_page_remap_demotable():
    s = ShadowTracker()
    s.retain(1, 100)
    assert s.can_remap_demote(1, dirty=False)
    assert s.consume(1) == 100
    assert s.stats.remap_demotions == 1
    assert s.shadow_of(1) is None


def test_dirty_page_not_remap_demotable_and_drops_shadow():
    s = ShadowTracker()
    s.retain(1, 100)
    assert not s.can_remap_demote(1, dirty=True)
    # The divergent shadow is now stale, awaiting reclaim.
    assert s.drain_stale() == [100]


def test_unshadowed_page_not_remap_demotable():
    assert not ShadowTracker().can_remap_demote(9, dirty=False)


def test_disabled_tracker():
    s = ShadowTracker(enabled=False)
    assert not s.can_remap_demote(1, dirty=False)
    with pytest.raises(RuntimeError):
        s.retain(1, 100)


def test_drain_stale_returns_once():
    s = ShadowTracker()
    s.retain(1, 100)
    s.on_write(1)
    assert s.drain_stale() == [100]
    assert s.drain_stale() == []


def test_reclaim_all():
    s = ShadowTracker()
    s.retain(1, 100)
    s.retain(2, 200)
    s.on_write(2)
    freed = sorted(s.reclaim_all())
    assert freed == [100, 200]
    assert len(s) == 0


def test_poison_pops_and_counts():
    s = ShadowTracker()
    s.retain(1, 100)
    assert s.poison(1) == 100
    assert s.stats.poisoned == 1
    assert s.shadow_of(1) is None
    # Poisoned frames are handed back immediately, never parked stale.
    assert s.drain_stale() == []


def test_poison_of_unshadowed_page_is_none():
    s = ShadowTracker()
    assert s.poison(1) is None
    assert s.stats.poisoned == 0
