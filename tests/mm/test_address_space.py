"""Processes, VMAs, demand paging, batch accounting."""

import numpy as np
import pytest

from repro.mm.address_space import AddressSpace, Process, Vma
from repro.mm.frame_alloc import FrameAllocator
from tests.conftest import make_process, populated_space


def make_space(fast=8, slow=64, n_threads=4, replication=True):
    alloc = FrameAllocator(fast_frames=fast, slow_frames=slow)
    proc = make_process(n_threads=n_threads, replication=replication)
    return AddressSpace(proc, alloc), proc, alloc


def test_vma_basics():
    v = Vma(start_vpn=100, n_pages=10)
    assert v.end_vpn == 110
    assert v.contains(100) and v.contains(109)
    assert not v.contains(110)
    np.testing.assert_array_equal(v.vpns(), np.arange(100, 110))
    with pytest.raises(ValueError):
        Vma(start_vpn=0, n_pages=0)


def test_mmap_non_overlapping():
    p = make_process()
    a = p.mmap(10)
    b = p.mmap(10)
    assert a.end_vpn <= b.start_vpn
    assert p.vma_for(a.start_vpn) is a
    assert p.vma_for(b.start_vpn) is b
    assert p.vma_for(a.end_vpn) is None  # guard gap


def test_fault_prefers_fast_then_falls_back():
    space, proc, alloc = make_space(fast=2, slow=8)
    vma = proc.mmap(4)
    tiers = [space.fault(vma.start_vpn + i, tid=0).tier_id for i in range(4)]
    assert tiers == [0, 0, 1, 1]
    assert space.major_faults == 4


def test_fault_outside_vma_segfaults():
    space, proc, _ = make_space()
    proc.mmap(4)
    with pytest.raises(KeyError):
        space.fault(1, tid=0)


def test_refault_rejected():
    space, proc, _ = make_space()
    vma = proc.mmap(2)
    space.fault(vma.start_vpn, tid=0)
    with pytest.raises(ValueError):
        space.fault(vma.start_vpn, tid=0)


def test_translate():
    space, proc, alloc = make_space()
    vma = proc.mmap(2)
    assert space.translate(vma.start_vpn) is None
    page = space.fault(vma.start_vpn, tid=0)
    assert space.translate(vma.start_vpn) == page.pfn


def test_touch_faults_then_counts():
    space, proc, alloc = make_space()
    vma = proc.mmap(2)
    page = space.touch(vma.start_vpn, tid=0, is_write=True, cycle=7)
    assert page.writes == 1 and page.last_access_cycle == 7
    page2 = space.touch(vma.start_vpn, tid=1)  # second thread: share
    assert page2 == page  # same store row (views are built per call)
    assert space.minor_faults == 1
    assert not proc.repl.is_private(vma.start_vpn)


def test_rss_tracks_faulted_pages():
    space, proc, _ = make_space()
    vma = proc.mmap(6)
    assert proc.rss_pages == 0
    space.populate(vma, tid=0)
    assert proc.rss_pages == 6


def test_populate_idempotent():
    space, proc, _ = make_space()
    vma = proc.mmap(4)
    assert space.populate(vma, tid=0) == 4
    assert space.populate(vma, tid=0) == 0


def test_record_batch_tier_split():
    alloc = FrameAllocator(fast_frames=2, slow_frames=8)
    space = populated_space(alloc, n_pages=4)  # 2 fast + 2 slow
    vma = space.process.vmas[0]
    vpns = np.array([vma.start_vpn, vma.start_vpn + 1, vma.start_vpn + 3], dtype=np.int64)
    fast, slow = space.record_batch(vpns, np.zeros(3, dtype=bool), tid=0)
    assert fast == 2 and slow == 1


def test_record_batch_counts_and_writes():
    alloc = FrameAllocator(fast_frames=8, slow_frames=8)
    space = populated_space(alloc, n_pages=2, n_threads=1)
    vma = space.process.vmas[0]
    vpns = np.array([vma.start_vpn] * 5 + [vma.start_vpn + 1] * 3, dtype=np.int64)
    writes = np.array([True, False, False, False, True, False, False, False])
    space.record_batch(vpns, writes, tid=0, cycle=3)
    p0 = alloc.page(space.translate(vma.start_vpn))
    p1 = alloc.page(space.translate(vma.start_vpn + 1))
    assert (p0.reads, p0.writes) == (3, 2)
    assert (p1.reads, p1.writes) == (3, 0)
    assert p0.last_access_cycle == 3


def test_record_batch_unmapped_rejected():
    space, proc, _ = make_space()
    proc.mmap(2)
    with pytest.raises(KeyError):
        space.record_batch(np.array([proc.vmas[0].start_vpn]), np.array([False]), tid=0)


def test_record_batch_shape_mismatch():
    space, _, _ = make_space()
    with pytest.raises(ValueError):
        space.record_batch(np.array([1, 2]), np.array([False]), tid=0)


def test_record_batch_empty():
    space, _, _ = make_space()
    assert space.record_batch(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), tid=0) == (0, 0)


def test_record_batch_promotes_sharing():
    alloc = FrameAllocator(fast_frames=8, slow_frames=8)
    space = populated_space(alloc, n_pages=2, n_threads=2)  # page i owned by tid i
    vma = space.process.vmas[0]
    vpns = np.array([vma.start_vpn + 1], dtype=np.int64)
    space.record_batch(vpns, np.array([False]), tid=0)  # tid 0 touches tid 1's page
    assert not space.process.repl.is_private(vma.start_vpn + 1)
