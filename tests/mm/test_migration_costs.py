"""Calibration tests: the cost model must reproduce every §2.2 anchor.

These are the contract between the paper's measurements and everything
the migration engine charges.  If a constant drifts, a figure breaks —
so each anchor is asserted here at tight tolerance.
"""

import pytest

from repro.mm import migration_costs as mc

MODEL = mc.MigrationCostModel()


class TestFig2SinglePage:
    def test_total_at_2_cpus(self):
        assert MODEL.single_page_breakdown(2).total == pytest.approx(50_000, rel=1e-6)

    def test_total_at_32_cpus(self):
        assert MODEL.single_page_breakdown(32).total == pytest.approx(750_000, rel=1e-6)

    def test_prep_share_at_2_cpus(self):
        assert MODEL.single_page_breakdown(2).prep_share == pytest.approx(0.383, abs=1e-6)

    def test_prep_share_at_32_cpus(self):
        assert MODEL.single_page_breakdown(32).prep_share == pytest.approx(0.769, abs=1e-6)

    def test_prep_grows_30x(self):
        """Paper: 'preparation time increasing by up to 30× when scaling
        from 2 to 32 cores'."""
        ratio = MODEL.prep_cycles(32) / MODEL.prep_cycles(2)
        assert ratio == pytest.approx(30.1, abs=0.2)

    def test_totals_monotone_in_cpus(self):
        totals = [MODEL.single_page_breakdown(c).total for c in (2, 4, 8, 16, 32)]
        assert totals == sorted(totals)

    def test_prep_share_monotone(self):
        shares = [MODEL.single_page_breakdown(c).prep_share for c in (2, 4, 8, 16, 32)]
        assert shares == sorted(shares)

    def test_breakdown_sums(self):
        b = MODEL.single_page_breakdown(8)
        assert b.total == pytest.approx(sum(b.as_dict().values()))

    def test_non_prep_phases_fixed_except_shootdown(self):
        b2, b32 = MODEL.single_page_breakdown(2), MODEL.single_page_breakdown(32)
        assert b2.unmap == b32.unmap
        assert b2.copy == b32.copy
        assert b2.remap == b32.remap
        assert b32.shootdown == pytest.approx(16 * b2.shootdown)


class TestFig3BatchShares:
    def test_tlb_share_65_percent_at_max(self):
        shares = MODEL.batch_shares(512, 32)
        assert shares["tlb"] == pytest.approx(0.65, abs=1e-3)

    def test_copy_dominates_at_few_pages(self):
        """Paper: 'When migrating few pages, page copying dominates'."""
        for threads in (2, 4, 8):
            shares = MODEL.batch_shares(2, threads)
            assert shares["copy"] > shares["tlb"]

    def test_tlb_share_grows_with_pages(self):
        shares = [MODEL.batch_shares(p, 32)["tlb"] for p in (2, 8, 32, 128, 512)]
        assert shares == sorted(shares)

    def test_tlb_share_grows_with_threads(self):
        shares = [MODEL.batch_shares(512, t)["tlb"] for t in (2, 8, 32)]
        assert shares == sorted(shares)

    def test_copy_sublinear_in_pages(self):
        """'page copying overhead grows relatively slowly' — batching."""
        c1 = MODEL.batch_copy_cycles(64)
        c2 = MODEL.batch_copy_cycles(128)
        assert c2 < 2 * c1
        assert c2 > c1

    def test_zero_cases(self):
        assert MODEL.batch_tlb_cycles(0, 32) == 0.0
        assert MODEL.batch_tlb_cycles(32, 0) == 0.0
        assert MODEL.batch_copy_cycles(0) == 0.0
        assert MODEL.batch_shares(0, 0) == {"tlb": 0.0, "copy": 0.0, "fixed": 0.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MODEL.batch_tlb_cycles(-1, 2)
        with pytest.raises(ValueError):
            MODEL.batch_copy_cycles(-1)


class TestFig7Speedups:
    def base(self, pages: int) -> float:
        return MODEL.batch_total_cycles(pages, 32, 32)

    def test_prep_opt_speedup_3_44x(self):
        s = self.base(2) / MODEL.batch_total_cycles(2, 32, 32, opt_prep=True)
        assert s == pytest.approx(3.44, abs=1e-3)

    def test_prep_plus_tlb_speedup_4_06x(self):
        s = self.base(2) / MODEL.batch_total_cycles(2, 32, 32, opt_prep=True, opt_tlb_target_cpus=1)
        assert s == pytest.approx(4.06, abs=1e-3)

    def test_benefits_shrink_with_batch_size(self):
        """Paper: 'the benefits decrease for larger migrations'."""
        speedups = []
        for p in (2, 8, 32, 128, 512):
            speedups.append(self.base(p) / MODEL.batch_total_cycles(p, 32, 32, opt_prep=True, opt_tlb_target_cpus=1))
        assert speedups == sorted(speedups, reverse=True)
        assert speedups[-1] > 1.0  # still a win, just smaller

    def test_tlb_opt_alone_helps(self):
        with_opt = MODEL.batch_total_cycles(64, 32, 32, opt_tlb_target_cpus=1)
        assert with_opt < self.base(64)


class TestModelSanity:
    def test_prep_requires_cpu(self):
        with pytest.raises(ValueError):
            MODEL.prep_cycles(0)

    def test_prep_opt_is_small_scope_prep(self):
        assert MODEL.prep_opt_cycles() == MODEL.prep_cycles(mc.PREP_OPT_SCOPE_CPUS)
        assert MODEL.prep_opt_cycles() < MODEL.prep_cycles(32) / 10

    def test_derived_constants_positive(self):
        assert mc.PREP_COEF > 0
        assert 1.0 < mc.PREP_EXP < 2.0
        assert mc.SHOOTDOWN_PER_CPU > 0
        assert mc.BATCH_IPI_PER_CPU > 0
        assert mc.BATCH_COPY_COEF > 0
        assert 0.5 < mc.BATCH_COPY_EXP < 1.0
        assert mc.REMAP_SINGLE > 0
