"""The five-phase migration engine: promotion, demotion, transactional
copies, shadow fast paths, and optimization flags."""

import numpy as np
import pytest

from repro.machine.platform import Machine
from repro.mm import pte as P
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import (
    MigrationEngine,
    MigrationOutcome,
    MigrationRequest,
    OptimizationFlags,
)
from repro.mm.shadow import ShadowTracker
from tests.conftest import make_process, small_machine_config


def build(fast=8, slow=64, flags=None, shadow=False, n_threads=4, replication=True):
    machine = Machine(small_machine_config(fast_pages=fast, slow_pages=slow), rng=np.random.default_rng(0))
    alloc = FrameAllocator(fast_frames=fast, slow_frames=slow)
    lru = LruSubsystem(n_cpus=machine.cpu.n_cores)
    proc = make_process(n_threads=n_threads, replication=replication)
    space = AddressSpace(proc, alloc)
    core_map = {tid: tid for tid in range(n_threads)}
    for tid, core in core_map.items():
        machine.cpu.schedule_thread(tid, core)
    tracker = ShadowTracker() if shadow else None
    engine = MigrationEngine(
        machine, alloc, space, lru,
        flags=flags or OptimizationFlags(),
        thread_core_map=core_map,
        shadow=tracker,
        rng=np.random.default_rng(1),
    )
    return engine, space, alloc, machine


def fault_pages(space, n, tier):
    vma = space.process.mmap(n)
    for i, vpn in enumerate(range(vma.start_vpn, vma.end_vpn)):
        space.fault(vpn, tid=i % len(space.process.tids), prefer_tier=tier)
    return vma


class TestBasicMoves:
    def test_promotion_repoints_pte_and_moves_metadata(self):
        engine, space, alloc, _ = build()
        vma = fault_pages(space, 1, tier=1)
        vpn = vma.start_vpn
        old_pfn = space.translate(vpn)
        alloc.page(old_pfn).heat = 5.0
        out = engine.migrate(MigrationRequest(pid=1, vpn=vpn, dest_tier=0))
        assert out is MigrationOutcome.SUCCESS
        new_pfn = space.translate(vpn)
        assert alloc.tier_of_pfn(new_pfn) == 0
        assert alloc.page(new_pfn).heat == 5.0
        assert engine.stats.promotions == 1
        assert engine.stats.pages_moved == 1
        # Source frame freed (no shadowing configured).
        assert old_pfn in alloc.tiers[1].free_list

    def test_demotion(self):
        engine, space, alloc, _ = build()
        vma = fault_pages(space, 1, tier=0)
        out = engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=1))
        assert out is MigrationOutcome.SUCCESS
        assert alloc.tier_of_pfn(space.translate(vma.start_vpn)) == 1
        assert engine.stats.demotions == 1

    def test_already_on_dest_tier_is_noop_success(self):
        engine, space, alloc, _ = build()
        vma = fault_pages(space, 1, tier=0)
        out = engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        assert out is MigrationOutcome.SUCCESS
        assert engine.stats.pages_moved == 0

    def test_unmapped_page_fails(self):
        engine, _, _, _ = build()
        out = engine.migrate(MigrationRequest(pid=1, vpn=424242, dest_tier=0))
        assert out is MigrationOutcome.FAILED
        assert engine.stats.failures == 1

    def test_full_destination_fails(self):
        engine, space, alloc, _ = build(fast=1)
        fault_pages(space, 1, tier=0)  # fast now full
        vma = fault_pages(space, 1, tier=1)
        out = engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        assert out is MigrationOutcome.FAILED

    def test_batch_pays_one_preparation(self):
        engine, space, alloc, _ = build()
        vma = fault_pages(space, 4, tier=1)
        reqs = [MigrationRequest(pid=1, vpn=v, dest_tier=0) for v in range(vma.start_vpn, vma.end_vpn)]
        engine.migrate_batch(reqs)
        assert engine.lru.drain_all_calls == 1
        assert engine.stats.migrations == 1
        assert engine.stats.pages_moved == 4


class TestCopyDisciplines:
    def test_sync_copy_charges_stall(self):
        engine, space, _, _ = build()
        vma = fault_pages(space, 1, tier=1)
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0, sync=True))
        assert engine.stats.stall_cycles > 0

    def test_transactional_clean_page_minimal_stall(self):
        engine, space, _, _ = build()
        vma = fault_pages(space, 1, tier=1)
        out = engine.migrate(
            MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0, sync=False, write_fraction=0.0)
        )
        assert out is MigrationOutcome.SUCCESS
        assert engine.stats.retries == 0
        # Only the commit shootdown stalls — far less than a sync copy.
        sync_engine, sync_space, _, _ = build()
        v2 = fault_pages(sync_space, 1, tier=1)
        sync_engine.migrate(MigrationRequest(pid=1, vpn=v2.start_vpn, dest_tier=0, sync=True))
        assert engine.stats.stall_cycles < sync_engine.stats.stall_cycles

    def test_transactional_write_heavy_retries_then_falls_back(self):
        engine, space, _, _ = build(flags=OptimizationFlags(async_retry_limit=2))
        vma = fault_pages(space, 1, tier=1)
        out = engine.migrate(
            MigrationRequest(
                pid=1, vpn=vma.start_vpn, dest_tier=0, sync=False,
                write_fraction=1.0, access_rate_per_kcycle=100.0,
            )
        )
        assert out is MigrationOutcome.FELL_BACK_SYNC
        assert engine.stats.retries == 3  # limit + the failed final try
        assert engine.stats.sync_fallbacks == 1
        # Page still migrated (by the fallback).
        assert engine.stats.pages_moved == 1

    def test_dirty_probability_zero_without_writes(self):
        engine, _, _, _ = build()
        req = MigrationRequest(pid=1, vpn=0, dest_tier=0, write_fraction=0.0, access_rate_per_kcycle=100.0)
        assert not engine._dirtied_during(1e9, req)


class TestShadowing:
    def test_promotion_retains_shadow(self):
        engine, space, alloc, _ = build(shadow=True)
        vma = fault_pages(space, 1, tier=1)
        old_pfn = space.translate(vma.start_vpn)
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        new_pfn = space.translate(vma.start_vpn)
        assert engine.shadow.shadow_of(new_pfn) == old_pfn
        assert old_pfn not in alloc.tiers[1].free_list  # frame retained
        assert P.pte_decode(space.process.repl.lookup(vma.start_vpn)).shadowed

    def test_clean_demotion_remaps_to_shadow(self):
        engine, space, alloc, _ = build(shadow=True)
        vma = fault_pages(space, 1, tier=1)
        old_pfn = space.translate(vma.start_vpn)
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        copies_before = engine.stats.phase_cycles["copy"]
        out = engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=1))
        assert out is MigrationOutcome.SUCCESS
        assert engine.stats.shadow_remaps == 1
        # No copy was paid for the demotion.
        assert engine.stats.phase_cycles["copy"] == copies_before
        assert space.translate(vma.start_vpn) == old_pfn

    def test_dirty_promoted_page_demotes_by_copy(self):
        engine, space, alloc, _ = build(shadow=True)
        vma = fault_pages(space, 1, tier=1)
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        # Dirty the fast copy: shadow diverges.
        repl = space.process.repl
        repl.update(vma.start_vpn, P.pte_set_flag(repl.lookup(vma.start_vpn), P.PTE_DIRTY))
        copies_before = engine.stats.phase_cycles["copy"]
        out = engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=1))
        assert out is MigrationOutcome.SUCCESS
        assert engine.stats.shadow_remaps == 0
        assert engine.stats.phase_cycles["copy"] > copies_before


class TestOptimizationFlags:
    def test_opt_prep_uses_scoped_drain(self):
        engine, space, _, _ = build(flags=OptimizationFlags(opt_prep=True, prep_scope_cpus=2))
        vma = fault_pages(space, 1, tier=1)
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        assert engine.lru.scoped_drain_calls == 1
        assert engine.lru.drain_all_calls == 0

    def test_opt_prep_cheaper_total(self):
        base_engine, base_space, _, _ = build()
        v1 = fault_pages(base_space, 1, tier=1)
        base_engine.migrate(MigrationRequest(pid=1, vpn=v1.start_vpn, dest_tier=0))

        opt_engine, opt_space, _, _ = build(flags=OptimizationFlags(opt_prep=True))
        v2 = fault_pages(opt_space, 1, tier=1)
        opt_engine.migrate(MigrationRequest(pid=1, vpn=v2.start_vpn, dest_tier=0))
        assert opt_engine.stats.total_cycles < base_engine.stats.total_cycles

    def test_opt_tlb_scopes_shootdown_for_private_page(self):
        engine, space, alloc, machine = build(flags=OptimizationFlags(opt_tlb=True))
        vma = fault_pages(space, 1, tier=1)  # owned by tid 0
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        assert machine.cpu.ipi_stats.unicast_targets == 1

        wide_engine, wide_space, _, wide_machine = build(flags=OptimizationFlags(opt_tlb=False))
        v2 = fault_pages(wide_space, 1, tier=1)
        wide_engine.migrate(MigrationRequest(pid=1, vpn=v2.start_vpn, dest_tier=0))
        assert wide_machine.cpu.ipi_stats.unicast_targets == 4  # all threads

    def test_opt_tlb_without_replication_falls_back_wide(self):
        engine, space, _, machine = build(flags=OptimizationFlags(opt_tlb=True), replication=False)
        vma = fault_pages(space, 1, tier=1)
        engine.migrate(MigrationRequest(pid=1, vpn=vma.start_vpn, dest_tier=0))
        assert machine.cpu.ipi_stats.unicast_targets == 4


class TestFaultInjection:
    """Typed fault absorption: every injected fault unwinds without
    corrupting page state, and each kind has its distinct signature."""

    def _injector(self, probs):
        from repro.scenario.faults import FaultInjector

        inj = FaultInjector(seed=7)
        inj.configure(probs)
        inj.epoch = 0
        return inj

    def test_aborted_sync_unwinds_and_stalls(self):
        engine, space, alloc, _ = build()
        vma = fault_pages(space, 1, tier=1)
        vpn = vma.start_vpn
        src = space.translate(vpn)
        engine.fault_injector = self._injector({"aborted_sync": 1.0})
        stall0 = engine.stats.stall_cycles
        out = engine.migrate(MigrationRequest(pid=1, vpn=vpn, dest_tier=0))
        assert out is MigrationOutcome.FAILED
        # The page never moved; the half-copy stalled the app.
        assert space.translate(vpn) == src
        assert engine.stats.stall_cycles > stall0
        assert engine.stats.faults_injected == {"aborted_sync": 1}
        assert engine.stats.failures == 1
        # The dest frame was unwound back to the free list.
        assert alloc.tiers[0].free == 8
        assert len(engine.fault_injector.records) == 1

    def test_lost_async_keeps_source_mapped_no_stall(self):
        from repro.mm.page import PageState

        engine, space, alloc, _ = build()
        vma = fault_pages(space, 1, tier=1)
        vpn = vma.start_vpn
        src = space.translate(vpn)
        engine.fault_injector = self._injector({"lost_async": 1.0})
        out = engine.migrate(MigrationRequest(pid=1, vpn=vpn, dest_tier=0, sync=False))
        assert out is MigrationOutcome.FAILED
        assert space.translate(vpn) == src
        assert alloc.page(src).state is PageState.MAPPED
        # Background copy wasted cycles but never stalled the app.
        assert engine.stats.stall_cycles == 0
        assert engine.stats.faults_injected == {"lost_async": 1}
        assert alloc.tiers[0].free == 8

    def test_poisoned_shadow_falls_back_to_full_copy(self):
        engine, space, alloc, _ = build(shadow=True)
        vma = fault_pages(space, 1, tier=1)
        vpn = vma.start_vpn
        # Promote with shadowing: the slow frame is retained as a twin.
        assert engine.migrate(MigrationRequest(pid=1, vpn=vpn, dest_tier=0)) is MigrationOutcome.SUCCESS
        fast_pfn = space.translate(vpn)
        assert engine.shadow.shadow_of(fast_pfn) is not None
        engine.fault_injector = self._injector({"poisoned_shadow": 1.0})
        out = engine.migrate(MigrationRequest(pid=1, vpn=vpn, dest_tier=1))
        # The corrupt twin was discarded and a full-copy demotion ran.
        assert out is MigrationOutcome.SUCCESS
        assert alloc.tier_of_pfn(space.translate(vpn)) == 1
        assert engine.shadow.stats.poisoned == 1
        assert engine.shadow.stats.remap_demotions == 0
        assert engine.stats.faults_injected == {"poisoned_shadow": 1}
        alloc.check_consistency()

    def test_unarmed_injector_is_bit_free(self):
        """Attaching an injector with no armed kinds must not consume
        RNG state or change outcomes versus no injector at all."""
        def run(injector):
            engine, space, _, _ = build()
            vma = fault_pages(space, 4, tier=1)
            engine.fault_injector = injector
            outs = [
                engine.migrate(MigrationRequest(pid=1, vpn=v, dest_tier=0))
                for v in range(vma.start_vpn, vma.end_vpn)
            ]
            return outs, engine.stats.stall_cycles

        unarmed = self._injector({})
        assert run(None) == run(unarmed)
        assert not unarmed.records
