"""Property-based integrity tests for the migration engine.

Arbitrary interleavings of promotions and demotions (sync and
transactional, with and without shadowing) must preserve the virtual
memory invariants: every VPN stays mapped to exactly one live frame of
the claimed tier, no frame backs two VPNs, and allocator accounting
balances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.platform import Machine
from repro.mm import pte as pte_mod
from repro.mm.address_space import AddressSpace
from repro.mm.frame_alloc import FrameAllocator
from repro.mm.lru import LruSubsystem
from repro.mm.migration import MigrationEngine, MigrationRequest, OptimizationFlags
from repro.mm.page import PageState
from repro.mm.shadow import ShadowTracker
from tests.conftest import make_process, small_machine_config

N_PAGES = 12
FAST = 6
SLOW = 24


def build(shadow: bool, seed: int):
    machine = Machine(small_machine_config(fast_pages=FAST, slow_pages=SLOW), rng=np.random.default_rng(0))
    alloc = FrameAllocator(fast_frames=FAST, slow_frames=SLOW)
    lru = LruSubsystem(n_cpus=machine.cpu.n_cores)
    proc = make_process(n_threads=2)
    space = AddressSpace(proc, alloc)
    vma = proc.mmap(N_PAGES)
    for i, vpn in enumerate(range(vma.start_vpn, vma.end_vpn)):
        space.fault(vpn, tid=i % 2, prefer_tier=i % 2)
    for tid, core in {0: 0, 1: 1}.items():
        machine.cpu.schedule_thread(tid, core)
    engine = MigrationEngine(
        machine, alloc, space, lru,
        flags=OptimizationFlags(opt_prep=True, opt_tlb=True),
        thread_core_map={0: 0, 1: 1},
        shadow=ShadowTracker() if shadow else None,
        rng=np.random.default_rng(seed),
    )
    return engine, space, alloc, vma


def check_invariants(space, alloc):
    seen = {}
    for vpn, value in space.process.repl.process_table.iter_ptes():
        assert pte_mod.pte_is_present(value)
        pfn = pte_mod.pte_pfn(value)
        assert pfn not in seen, f"frame {pfn} double-mapped ({seen[pfn]} and {vpn})"
        seen[pfn] = vpn
        page = alloc.page(pfn)
        assert page.state in (PageState.MAPPED, PageState.MIGRATING)
        assert page.vpn == vpn
        assert page.tier_id == alloc.tier_of_pfn(pfn)
        # A mapped frame must never be on a free list.
        assert pfn not in alloc.tiers[page.tier_id].free_list
    assert len(seen) == N_PAGES  # nothing ever unmapped
    return seen


@settings(max_examples=25, deadline=None)
@given(
    moves=st.lists(
        st.tuples(
            st.integers(0, N_PAGES - 1),  # which page
            st.integers(0, 1),  # destination tier
            st.booleans(),  # sync?
            st.floats(0.0, 1.0),  # write fraction
        ),
        max_size=30,
    ),
    shadow=st.booleans(),
    seed=st.integers(0, 2**31),
)
def test_arbitrary_migration_sequences_preserve_mappings(moves, shadow, seed):
    engine, space, alloc, vma = build(shadow, seed)
    for idx, dest, sync, wf in moves:
        engine.migrate(
            MigrationRequest(
                pid=space.process.pid,
                vpn=vma.start_vpn + idx,
                dest_tier=dest,
                sync=sync,
                write_fraction=wf,
                access_rate_per_kcycle=0.5,
            )
        )
        check_invariants(space, alloc)
    # Global conservation: live mappings + shadows + free == all frames.
    mapped = N_PAGES
    shadows = len(engine.shadow) if engine.shadow is not None else 0
    free = alloc.free_frames(0) + alloc.free_frames(1)
    assert mapped + shadows + free == FAST + SLOW


@settings(max_examples=15, deadline=None)
@given(
    batch=st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=N_PAGES, unique=True),
    seed=st.integers(0, 2**31),
)
def test_batch_promotion_respects_capacity(batch, seed):
    """Promoting more pages than the fast tier holds must fail cleanly
    for the overflow, never corrupt mappings."""
    engine, space, alloc, vma = build(shadow=False, seed=seed)
    reqs = [
        MigrationRequest(pid=space.process.pid, vpn=vma.start_vpn + i, dest_tier=0, sync=True)
        for i in batch
    ]
    outcomes = engine.migrate_batch(reqs)
    assert len(outcomes) == len(batch)
    check_invariants(space, alloc)
    fast_used = alloc.used_frames(0)
    assert fast_used <= FAST


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_shadow_roundtrip_restores_original_frame(seed):
    """Promote clean, demote via shadow: the page returns to its exact
    original slow frame, with stats balanced."""
    engine, space, alloc, vma = build(shadow=True, seed=seed)
    # Make room: the fast tier is full after population.
    engine.migrate(MigrationRequest(pid=space.process.pid, vpn=vma.start_vpn, dest_tier=1, sync=True))
    # Page 1 started slow (odd index populated slow).
    vpn = vma.start_vpn + 1
    original = space.translate(vpn)
    assert alloc.tier_of_pfn(original) == 1
    out = engine.migrate(MigrationRequest(pid=space.process.pid, vpn=vpn, dest_tier=0, sync=True))
    from repro.mm.migration import MigrationOutcome

    assert out is MigrationOutcome.SUCCESS
    engine.migrate(MigrationRequest(pid=space.process.pid, vpn=vpn, dest_tier=1, sync=True))
    assert space.translate(vpn) == original
    assert engine.stats.shadow_remaps == 1
    check_invariants(space, alloc)
