"""Frame allocator: tiers, fallback, watermarks, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.frame_alloc import FrameAllocator, OutOfFramesError


def make_alloc(fast=8, slow=16) -> FrameAllocator:
    return FrameAllocator(fast_frames=fast, slow_frames=slow)


def test_pfn_space_partitioned_by_tier():
    a = make_alloc(fast=8, slow=16)
    assert a.tier_of_pfn(0) == 0
    assert a.tier_of_pfn(7) == 0
    assert a.tier_of_pfn(8) == 1
    assert a.tier_of_pfn(23) == 1
    with pytest.raises(ValueError):
        a.tier_of_pfn(24)
    with pytest.raises(ValueError):
        a.tier_of_pfn(-1)


def test_allocate_from_each_tier():
    a = make_alloc()
    f = a.allocate(0)
    s = a.allocate(1)
    assert a.tier_of_pfn(f.pfn) == 0 and f.tier_id == 0
    assert a.tier_of_pfn(s.pfn) == 1 and s.tier_id == 1


def test_fallback_to_slow_when_fast_exhausted():
    a = make_alloc(fast=2, slow=4)
    a.allocate(0)
    a.allocate(0)
    with pytest.raises(OutOfFramesError):
        a.allocate(0, fallback=False)
    p = a.allocate(0, fallback=True)
    assert p.tier_id == 1


def test_slow_exhaustion_never_falls_back_to_fast():
    a = make_alloc(fast=2, slow=1)
    a.allocate(1)
    with pytest.raises(OutOfFramesError):
        a.allocate(1, fallback=True)


def test_free_and_reuse():
    a = make_alloc(fast=1, slow=1)
    p = a.allocate(0)
    a.free(p.pfn)
    p2 = a.allocate(0)
    assert p2.pfn == p.pfn


def test_double_free_rejected():
    a = make_alloc()
    p = a.allocate(0)
    a.free(p.pfn)
    with pytest.raises(ValueError):
        a.free(p.pfn)


def test_free_unallocated_rejected():
    with pytest.raises(ValueError):
        make_alloc().free(3)


def test_watermarks():
    a = FrameAllocator(fast_frames=100, slow_frames=100, low_watermark_frac=0.1, high_watermark_frac=0.2)
    tier = a.tiers[0]
    for _ in range(95):
        a.allocate(0)
    assert tier.below_low_watermark()  # 5 free < 10
    assert tier.frames_to_reclaim() == 15  # to reach 20 free


def test_mapped_pages_iteration():
    a = make_alloc()
    p1 = a.allocate(0)
    p1.attach(1, 100)
    p2 = a.allocate(1)
    p2.attach(1, 101)
    a.allocate(1)  # never attached: not mapped
    assert {p.pfn for p in a.mapped_pages()} == {p1.pfn, p2.pfn}
    assert {p.pfn for p in a.mapped_pages(tier_id=0)} == {p1.pfn}


def test_bad_watermark_ordering_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(4, 4, low_watermark_frac=0.5, high_watermark_frac=0.1)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 1)), max_size=60))
def test_conservation_property(ops):
    """Alloc/free sequences never lose or duplicate frames."""
    a = make_alloc(fast=6, slow=6)
    live: list[int] = []
    for do_alloc, tier in ops:
        if do_alloc:
            try:
                live.append(a.allocate(tier).pfn)
            except OutOfFramesError:
                pass
        elif live:
            a.free(live.pop())
    assert len(set(live)) == len(live)  # no duplicate handouts
    assert a.free_frames(0) + a.free_frames(1) + len(live) == 12
