"""Frame allocator: tiers, fallback, watermarks, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.frame_alloc import FrameAllocator, OutOfFramesError


def make_alloc(fast=8, slow=16) -> FrameAllocator:
    return FrameAllocator(fast_frames=fast, slow_frames=slow)


def test_pfn_space_partitioned_by_tier():
    a = make_alloc(fast=8, slow=16)
    assert a.tier_of_pfn(0) == 0
    assert a.tier_of_pfn(7) == 0
    assert a.tier_of_pfn(8) == 1
    assert a.tier_of_pfn(23) == 1
    with pytest.raises(ValueError):
        a.tier_of_pfn(24)
    with pytest.raises(ValueError):
        a.tier_of_pfn(-1)


def test_allocate_from_each_tier():
    a = make_alloc()
    f = a.allocate(0)
    s = a.allocate(1)
    assert a.tier_of_pfn(f.pfn) == 0 and f.tier_id == 0
    assert a.tier_of_pfn(s.pfn) == 1 and s.tier_id == 1


def test_fallback_to_slow_when_fast_exhausted():
    a = make_alloc(fast=2, slow=4)
    a.allocate(0)
    a.allocate(0)
    with pytest.raises(OutOfFramesError):
        a.allocate(0, fallback=False)
    p = a.allocate(0, fallback=True)
    assert p.tier_id == 1


def test_slow_exhaustion_never_falls_back_to_fast():
    a = make_alloc(fast=2, slow=1)
    a.allocate(1)
    with pytest.raises(OutOfFramesError):
        a.allocate(1, fallback=True)


def test_free_and_reuse():
    a = make_alloc(fast=1, slow=1)
    p = a.allocate(0)
    a.free(p.pfn)
    p2 = a.allocate(0)
    assert p2.pfn == p.pfn


def test_double_free_rejected():
    a = make_alloc()
    p = a.allocate(0)
    a.free(p.pfn)
    with pytest.raises(ValueError):
        a.free(p.pfn)


def test_free_unallocated_rejected():
    with pytest.raises(ValueError):
        make_alloc().free(3)


def test_watermarks():
    a = FrameAllocator(fast_frames=100, slow_frames=100, low_watermark_frac=0.1, high_watermark_frac=0.2)
    tier = a.tiers[0]
    for _ in range(95):
        a.allocate(0)
    assert tier.below_low_watermark()  # 5 free < 10
    assert tier.frames_to_reclaim() == 15  # to reach 20 free


def test_mapped_pages_iteration():
    a = make_alloc()
    p1 = a.allocate(0)
    p1.attach(1, 100)
    p2 = a.allocate(1)
    p2.attach(1, 101)
    a.allocate(1)  # never attached: not mapped
    assert {p.pfn for p in a.mapped_pages()} == {p1.pfn, p2.pfn}
    assert {p.pfn for p in a.mapped_pages(tier_id=0)} == {p1.pfn}


def test_bad_watermark_ordering_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(4, 4, low_watermark_frac=0.5, high_watermark_frac=0.1)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 1)), max_size=60))
def test_conservation_property(ops):
    """Alloc/free sequences never lose or duplicate frames."""
    a = make_alloc(fast=6, slow=6)
    live: list[int] = []
    for do_alloc, tier in ops:
        if do_alloc:
            try:
                live.append(a.allocate(tier).pfn)
            except OutOfFramesError:
                pass
        elif live:
            a.free(live.pop())
    assert len(set(live)) == len(live)  # no duplicate handouts
    assert a.free_frames(0) + a.free_frames(1) + len(live) == 12


# -- bulk teardown (free_pid) ----------------------------------------------------

def _alloc_for_pid(a, pid, *, fast=0, slow=0, vpn0=100):
    pages = []
    for i in range(fast):
        p = a.allocate(0)
        p.attach(pid, vpn0 + i)
        pages.append(p)
    for i in range(slow):
        p = a.allocate(1)
        p.attach(pid, vpn0 + fast + i)
        pages.append(p)
    return pages


def test_free_pid_releases_all_states_and_counts():
    from repro.mm.page import PageState

    a = make_alloc(fast=8, slow=16)
    mine = _alloc_for_pid(a, pid=1, fast=3, slow=2)
    other = _alloc_for_pid(a, pid=2, fast=1, slow=1, vpn0=900)
    mine[1].state = PageState.MIGRATING
    # A retained shadow twin: slow frame still bound to pid 1 as SHADOW.
    shadow = a.allocate(1)
    shadow.attach(1, 500)
    shadow.state = PageState.SHADOW

    counts = a.free_pid(1)
    assert counts == {"mapped": 4, "migrating": 1, "shadow": 1, "fast": 3, "slow": 3}
    assert a.store.owned_frames(1).size == 0
    # Other pid untouched.
    assert a.store.owned_frames(2).size == 2
    a.check_consistency()


def test_free_pid_leaves_fast_usage_consistent_with_bitmap():
    """The satellite invariant: after teardown, per-pid fast usage and
    the free-list bitmap tell the same story about the fast tier."""
    a = make_alloc(fast=8, slow=16)
    _alloc_for_pid(a, pid=1, fast=4, slow=1)
    _alloc_for_pid(a, pid=2, fast=2, slow=0, vpn0=900)
    a.free_pid(1)
    assert a.store.fast_usage(1) == 0
    assert a.store.fast_usage(2) == 2
    fast = a.tiers[0]
    free_bits = int(a.store.in_free_list[: fast.total].sum())
    assert free_bits == fast.free == fast.total - a.store.fast_usage(2)
    assert sorted(fast.free_list) == sorted(
        int(p) for p in range(fast.total) if a.store.in_free_list[p]
    )
    a.check_consistency()


def test_free_pid_of_unknown_pid_is_empty_noop():
    a = make_alloc()
    counts = a.free_pid(42)
    assert counts == {"mapped": 0, "migrating": 0, "shadow": 0, "fast": 0, "slow": 0}


def test_free_pid_detects_tampered_double_free():
    a = make_alloc()
    pages = _alloc_for_pid(a, pid=1, fast=2)
    a.store.in_free_list[pages[0].pfn] = True  # corrupt the bitmap
    with pytest.raises(RuntimeError, match="double free"):
        a.free_pid(1)


# -- capacity events (offline/online) --------------------------------------------

def test_offline_frames_come_from_free_list_tail():
    a = make_alloc(fast=8, slow=16)
    taken = a.offline_frames(0, 3)
    assert len(taken) == 3
    assert a.tiers[0].offline == 3
    assert a.tiers[0].online == 5
    assert a.tiers[0].free == 5
    # Allocation order of the remaining frames is undisturbed.
    p = a.allocate(0)
    assert p.pfn == 0
    p.attach(1, 7)
    a.check_consistency()


def test_offline_clamps_to_free_frames():
    a = make_alloc(fast=4, slow=8)
    _alloc_for_pid(a, pid=1, fast=3)
    taken = a.offline_frames(0, 10)
    assert len(taken) == 1
    assert a.tiers[0].online == 3


def test_online_restores_offlined_frames():
    a = make_alloc(fast=8, slow=16)
    a.offline_frames(0, 4)
    assert a.online_frames(0, 2) == 2
    assert a.tiers[0].offline == 2
    assert a.online_frames(0) == 2  # the rest
    assert a.tiers[0].offline == 0
    assert a.tiers[0].online == a.tiers[0].total == 8
    a.check_consistency()


def test_watermarks_scale_with_online_capacity():
    a = make_alloc(fast=100, slow=16)
    before = a.tiers[0].high_watermark
    a.offline_frames(0, 90)
    # Watermarks are fractions of *online* capacity, so shrinking the
    # tier shrinks them too instead of triggering phantom reclaim.
    assert a.tiers[0].online == 10
    assert a.tiers[0].high_watermark < before
    assert not a.tiers[0].below_low_watermark()
    a.check_consistency()


def test_check_consistency_catches_corruption():
    a = make_alloc()
    p = a.allocate(0)
    p.attach(1, 7)
    a.store.in_free_list[p.pfn] = True  # live frame marked free
    with pytest.raises(RuntimeError):
        a.check_consistency()
