"""4-level radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm import pte as P
from repro.mm.page_table import LEVEL_BITS, N_LEVELS, PageTable, vpn_indices

VPN_MAX = (1 << (LEVEL_BITS * N_LEVELS)) - 1


def test_vpn_indices_split():
    # vpn = (1 << 27) | (2 << 18) | (3 << 9) | 4
    vpn = (1 << 27) | (2 << 18) | (3 << 9) | 4
    assert vpn_indices(vpn) == (1, 2, 3, 4)


def test_vpn_indices_bounds():
    with pytest.raises(ValueError):
        vpn_indices(-1)
    with pytest.raises(ValueError):
        vpn_indices(VPN_MAX + 1)
    assert vpn_indices(VPN_MAX) == (511, 511, 511, 511)


def test_map_lookup_unmap():
    t = PageTable()
    v = P.pte_make(pfn=9, tid=1)
    t.map(100, v)
    assert t.lookup(100) == v
    assert t.mapped_count == 1
    assert t.unmap(100) == v
    assert t.lookup(100) is None
    assert t.mapped_count == 0


def test_double_map_rejected():
    t = PageTable()
    t.map(5, P.pte_make(pfn=1, tid=0))
    with pytest.raises(ValueError):
        t.map(5, P.pte_make(pfn=2, tid=0))


def test_unmap_missing_rejected():
    with pytest.raises(KeyError):
        PageTable().unmap(1)


def test_update_and_modify():
    t = PageTable()
    t.map(7, P.pte_make(pfn=1, tid=0))
    t.update(7, P.pte_make(pfn=2, tid=0))
    assert P.pte_pfn(t.lookup(7)) == 2
    t.modify(7, lambda v: P.pte_set_flag(v, P.PTE_DIRTY))
    assert P.pte_is_dirty(t.lookup(7))
    with pytest.raises(KeyError):
        t.update(8, 0)


def test_iter_ptes_sorted():
    t = PageTable()
    for vpn in (5000, 3, 700_000):
        t.map(vpn, P.pte_make(pfn=vpn % 100, tid=0))
    assert [vpn for vpn, _ in t.iter_ptes()] == [3, 5000, 700_000]


def test_sparse_vpns_far_apart():
    t = PageTable()
    far = [0, 1 << 20, 1 << 30, VPN_MAX]
    for i, vpn in enumerate(far):
        t.map(vpn, P.pte_make(pfn=i, tid=0))
    for i, vpn in enumerate(far):
        assert P.pte_pfn(t.lookup(vpn)) == i


def test_table_pages_counts_levels():
    t = PageTable()
    # 600 contiguous pages: 2 leaf tables, 1 each of PMD/PUD + root.
    for vpn in range(600):
        t.map(vpn, P.pte_make(pfn=vpn, tid=0))
    assert t.table_pages() == 1 + 1 + 1 + 2
    assert t.table_pages(include_leaves=False) == 3


def test_install_leaf_shares_node():
    a, b = PageTable(), PageTable()
    a.map(10, P.pte_make(pfn=1, tid=0))
    leaf = a.leaf_for(10)
    b.install_leaf(10, leaf)
    # A store through `a` is visible through `b` (single physical leaf).
    a.update(10, P.pte_make(pfn=42, tid=0))
    assert P.pte_pfn(b.lookup(10)) == 42


def test_install_conflicting_leaf_rejected():
    from repro.mm.page_table import PageTableNode

    a = PageTable()
    a.map(10, P.pte_make(pfn=1, tid=0))
    a_leaf = a.leaf_for(10)
    b = PageTable()
    b.install_leaf(10, a_leaf)
    with pytest.raises(ValueError):
        b.install_leaf(10, PageTableNode(level=0))
    with pytest.raises(ValueError):
        b.install_leaf(10, PageTableNode(level=1))


@settings(max_examples=30, deadline=None)
@given(vpns=st.lists(st.integers(0, VPN_MAX), min_size=1, max_size=80, unique=True))
def test_map_lookup_property(vpns):
    t = PageTable()
    for i, vpn in enumerate(vpns):
        t.map(vpn, P.pte_make(pfn=i, tid=0))
    assert t.mapped_count == len(vpns)
    for i, vpn in enumerate(vpns):
        assert P.pte_pfn(t.lookup(vpn)) == i
    assert [v for v, _ in t.iter_ptes()] == sorted(vpns)
    for vpn in vpns:
        t.unmap(vpn)
    assert t.mapped_count == 0
